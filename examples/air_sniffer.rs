//! Passive capture and key-assisted decryption: what the world's air
//! sniffer sees before and after the attacker obtains the link key.
//!
//! ```text
//! cargo run --release --example air_sniffer
//! ```

use blap_repro::attacks::eavesdrop::{decrypt_capture, EavesdropScenario};
use blap_repro::sim::SniffedFrame;

fn main() {
    let scenario = EavesdropScenario::new(7777);
    let report = scenario.run();

    println!("=== What a passive sniffer records ===\n");
    println!(
        "encrypted frames: {}   cleartext LMP control frames interleaved",
        report.captured_encrypted_frames
    );
    println!(
        "secrets readable from ciphertext alone: {}",
        report.ciphertext_contains_secrets
    );

    println!("\n=== After the link key extraction attack ===\n");
    match report.stolen_key {
        Some(key) => println!("stolen key: {key}"),
        None => println!("no key (unexpected)"),
    }
    println!(
        "secrets recovered offline: {}/{}",
        report.decrypted_secrets.len(),
        scenario.secrets.len()
    );
    for s in &report.decrypted_secrets {
        println!("  -> {:?}", String::from_utf8_lossy(s));
    }

    // Show the raw mechanics on a fresh capture for the curious reader.
    println!("\n=== Mechanics ===");
    println!("the decryptor needs: the sniffed LMP_au_rand, both addresses,");
    println!("the frame order (CCM nonce counters), and the link key. The");
    println!("first three are public; the paper's attack supplies the fourth.");
    let _ = |frames: &[SniffedFrame]| {
        // Exposed for programmatic use:
        decrypt_capture(
            frames,
            "00000000000000000000000000000000".parse().expect("valid"),
            "00:1b:7d:da:71:0a".parse().expect("valid"),
            "48:90:12:34:56:78".parse().expect("valid"),
        )
    };
}
