//! The full link key extraction attack (§IV / Fig 5) as a story: a shared
//! car's infotainment unit gives up the key to the owner's phone.
//!
//! ```text
//! cargo run --release --example car_kit_heist
//! ```

use blap_repro::attacks::link_key_extraction::ExtractionScenario;
use blap_repro::attacks::mitigations;
use blap_repro::sim::profiles;

fn main() {
    println!("=== The car-kit heist (link key extraction, Fig 5) ===\n");
    println!("Cast: M — the owner's LG VELVET (hard target)");
    println!("      C — a Galaxy S8 used as the car's shared phone (soft target)");
    println!("      A — the attacker's rooted Nexus 5x\n");

    let report = ExtractionScenario::new(profiles::galaxy_s8(), 1337).run();

    println!("step 1-2  attacker enables C's snoop log, spoofs M's BDADDR");
    println!("step 3-5  C loads the bonded key for 'M'; attacker stalls the");
    println!("          LMP authentication into a timeout\n");
    println!(
        "   C's bond with M survived the attack : {}",
        report.victim_bond_intact
    );
    println!(
        "   extraction channel                  : {}",
        report
            .channel
            .map(|c| c.to_string())
            .unwrap_or_else(|| "none".to_owned())
    );
    println!(
        "   extracted key                       : {}",
        report
            .extracted_key
            .map(|k| k.to_hex())
            .unwrap_or_else(|| "-".to_owned())
    );
    println!(
        "   matches the real bond key           : {}",
        report.key_matches
    );
    println!("\nstep 7    attacker becomes C: spoofed address, Fig 10 fake bond,");
    println!("          PAN tethering to the real M\n");
    println!(
        "   impersonation authenticated silently: {}",
        report.impersonation_validated
    );
    println!(
        "   M saw any pairing UI                : {}",
        report.victim_saw_pairing_ui
    );
    println!(
        "\nverdict: device {}\n",
        if report.vulnerable() {
            "VULNERABLE (as in the paper's Table I)"
        } else {
            "not vulnerable"
        }
    );

    println!("--- same heist against a defended stack (§VII-A filtering) ---\n");
    let (defended, verdict) =
        mitigations::extraction_with_dump_filtering(profiles::galaxy_s8(), 1337);
    println!("   key extracted   : {}", defended.extracted_key.is_some());
    println!("   key matches     : {}", defended.key_matches);
    println!("   attack succeeded: {}", verdict.attack_succeeded);
    println!("   evidence        : {}", verdict.evidence);
}
