//! The page blocking attack (§V / Fig 6b): deterministic MITM plus the
//! Just Works downgrade, contrasted with the flaky baseline race.
//!
//! ```text
//! cargo run --release --example page_blocking_mitm
//! ```

use blap_repro::attacks::page_blocking::PageBlockingScenario;
use blap_repro::sim::profiles;
use blap_repro::types::Duration;

fn main() {
    println!("=== Page blocking MITM (Fig 6b) against a Pixel 2 XL ===\n");

    let mut scenario = PageBlockingScenario::new(profiles::pixel_2_xl(), 99);
    scenario.trials = 25;

    // --- Baseline: prior work's implicit assumption.
    println!("baseline (no page blocking): A clones C's address and races C");
    println!("for M's page, 25 attempts...\n");
    let mut wins = 0;
    for trial in 0..scenario.trials {
        let outcome = scenario.run_baseline_trial(trial);
        if outcome.mitm_established {
            wins += 1;
        }
    }
    println!(
        "   MITM established {wins}/25 times ({:.0}%) — the paper measured 60%\n",
        wins as f64 * 4.0
    );

    // --- Page blocking.
    println!("page blocking: A connects FIRST (NoInputNoOutput, spoofed");
    println!("address), parks in PLOC; the user pairs 2 s later, 25 runs...\n");
    let mut blocked_wins = 0;
    let mut sample = None;
    for trial in 0..scenario.trials {
        let outcome = scenario.run_blocking_trial(trial);
        if outcome.mitm_established {
            blocked_wins += 1;
        }
        sample.get_or_insert(outcome);
    }
    let sample = sample.expect("ran trials");
    println!(
        "   MITM established {blocked_wins}/25 times ({:.0}%)",
        blocked_wins as f64 * 4.0
    );
    println!(
        "   paired with attacker        : {}",
        sample.paired_with_attacker
    );
    println!(
        "   downgraded to Just Works    : {}",
        sample.downgraded_to_just_works
    );
    println!(
        "   Fig 12b dump signature on M : {}",
        sample.fig12b_signature
    );
    println!(
        "   popup showed a number       : {} (nothing for the user to compare)",
        sample.popup_had_number
    );

    // --- What the PLOC keep-alive is for.
    println!("\nwhy the keep-alive matters: a slow user (25 s) without it...");
    let mut slow = PageBlockingScenario::new(profiles::pixel_2_xl(), 100);
    slow.trials = 5;
    slow.keepalive = false;
    slow.pairing_delay = Duration::from_secs(25);
    slow.ploc_delay = Duration::from_secs(60);
    let dead = slow.run_blocking_trial(0);
    println!(
        "   bare PLOC link survived   : {}",
        dead.paired_with_attacker
    );
    slow.keepalive = true;
    let alive = slow.run_blocking_trial(0);
    println!(
        "   with dummy SDP keep-alives: {}",
        alive.paired_with_attacker
    );
}
