//! Quickstart: build a tiny Bluetooth world, pair two devices, and watch
//! the link key cross HCI in plaintext.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use blap_repro::sim::{profiles, World};
use blap_repro::snoop::pretty;
use blap_repro::types::Duration;

fn main() {
    // A world with one phone (snoop log on) and one car-kit.
    let mut world = World::new(2022);
    let phone =
        world.add_device(profiles::lg_velvet().victim_phone_with_snoop("48:90:12:34:56:78"));
    let kit = world.add_device(profiles::car_kit("00:1b:7d:da:71:0a"));
    let kit_addr = "00:1b:7d:da:71:0a".parse().expect("valid address");

    // The user taps "pair" on the phone.
    world.device_mut(phone).host.pair_with(kit_addr);
    world.run_for(Duration::from_secs(5));

    // Both sides now hold the same bond.
    let phone_bond = world
        .device(phone)
        .host
        .keystore()
        .get(kit_addr)
        .expect("phone bonded");
    println!("phone stored link key : {}", phone_bond.link_key);
    let phone_addr = "48:90:12:34:56:78".parse().expect("valid address");
    let kit_bond = world
        .device(kit)
        .host
        .keystore()
        .get(phone_addr)
        .expect("kit bonded");
    println!("kit stored link key   : {}", kit_bond.link_key);
    assert_eq!(phone_bond.link_key, kit_bond.link_key);

    // The same key is sitting in the phone's HCI snoop log — the paper's
    // §IV observation in one line:
    let trace = world.device(phone).snoop_trace();
    let leaked = trace.link_key_for(kit_addr).expect("key logged");
    println!("key in the HCI dump   : {leaked}");
    assert_eq!(leaked, phone_bond.link_key);

    println!("\nThe pairing, as the HCI dump recorded it:\n");
    print!("{}", pretty::frame_table(&trace));

    println!("\nAnd the bond database, bt_config.conf style (Fig 10):\n");
    print!("{}", world.device(phone).host.keystore().to_config_text());
}
