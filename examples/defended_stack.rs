//! Every §VII mitigation, attacked: the repository's "does defence work"
//! demo. Runs both attacks against defended stacks and prints verdicts.
//!
//! ```text
//! cargo run --release --example defended_stack
//! ```

use blap_repro::attacks::mitigations::{
    extraction_with_dump_filtering, extraction_with_payload_encryption,
    page_blocking_with_role_check, role_check_false_positive_probe,
};
use blap_repro::sim::profiles;

fn main() {
    println!("=== Attacking defended stacks (§VII) ===\n");

    println!("[1] link key extraction vs snoop-log filtering (Android target)");
    let (report, verdict) = extraction_with_dump_filtering(profiles::lg_v50(), 41);
    println!(
        "    extracted anything : {}",
        report.extracted_key.is_some()
    );
    println!("    got the real key   : {}", report.key_matches);
    println!("    attack succeeded   : {}", verdict.attack_succeeded);
    println!("    {}\n", verdict.evidence);

    println!("[2] link key extraction vs HCI payload encryption (USB target)");
    println!("    (dump filtering alone cannot stop a hardware tap — this can)");
    let (report, verdict) = extraction_with_payload_encryption(profiles::windows_ms_driver(), 42);
    println!(
        "    extracted anything : {}",
        report.extracted_key.is_some()
    );
    println!("    got the real key   : {}", report.key_matches);
    println!(
        "    impersonation works: {}",
        report.impersonation_validated
    );
    println!("    attack succeeded   : {}", verdict.attack_succeeded);
    println!("    {}\n", verdict.evidence);

    println!("[3] page blocking vs the connection-initiator role check");
    let (outcome, verdict) = page_blocking_with_role_check(profiles::galaxy_s21(), 43);
    println!("    security alert     : {}", outcome.security_alert);
    println!("    attacker paired    : {}", outcome.paired_with_attacker);
    println!("    attack succeeded   : {}", verdict.attack_succeeded);
    println!("    {}\n", verdict.evidence);

    println!("[4] false-positive probe: honest car-kit pairing with [3] active");
    let honest = role_check_false_positive_probe(profiles::galaxy_s21(), 44);
    println!("    honest pairing ok  : {honest}");

    let all_defended = !verdict.attack_succeeded && honest;
    println!(
        "\noverall: {}",
        if all_defended {
            "defences hold without breaking legitimate use"
        } else {
            "REGRESSION: a defence failed"
        }
    );
}
