//! Allocation accounting for the batched CCM paths.
//!
//! The eavesdrop decrypt loop feeds captures through `open_many_into` and
//! falls back to `open_into` — both promise allocation-free steady state
//! once their output buffers have warmed up to the workload's high-water
//! mark. These tests pin that with the shared counting allocator from
//! `blap_obs::prof` (feature `prof-alloc`), the same discipline
//! `crates/core/tests/alloc_count.rs` enforces for the PIN-crack loop.

use blap_crypto::ccm::{Ccm, OpenBatch, SealedFrame, FRAME_LANES, KEY_LANES};
use blap_obs::prof;

#[global_allocator]
static GLOBAL: prof::CountingAlloc = prof::CountingAlloc;

/// The exact-count assertions below read process-wide counters, so the
/// tests in this binary must not allocate concurrently with each other's
/// measurement windows.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Minimum allocation count over several windows: the counters are
/// process-wide, so the libtest coordinator thread can allocate (status
/// lines, spawning the next test) concurrently with one window — but not
/// with all of them. A genuinely allocation-free steady state shows at
/// least one clean window; a per-call allocation never does.
fn min_allocations_during(mut f: impl FnMut()) -> usize {
    (0..5)
        .map(|_| {
            let (count, _bytes) = prof::allocations_during(&mut f);
            count as usize
        })
        .min()
        .expect("non-empty window set")
}

fn sealed_frames(ccm: &Ccm, count: usize) -> Vec<([u8; 13], Vec<u8>, Vec<u8>)> {
    (0..count)
        .map(|i| {
            let mut nonce = [0u8; 13];
            nonce[0] = i as u8;
            let aad = vec![i as u8; 2];
            let payload: Vec<u8> = (0..64u8).map(|b| b.wrapping_add(i as u8)).collect();
            let ct = ccm.seal(&nonce, &aad, &payload).expect("seal");
            (nonce, aad, ct)
        })
        .collect()
}

#[test]
fn open_into_is_zero_alloc_once_warm() {
    let _serial = SERIAL.lock().unwrap();
    let ccm = Ccm::new(&[0x42; 16]);
    let frames = sealed_frames(&ccm, 1);
    let (nonce, aad, ct) = &frames[0];
    let mut out = Vec::new();
    // Warm-up grows `out` to the payload length; steady state reuses it.
    ccm.open_into(nonce, aad, ct, &mut out).expect("open");
    let count = min_allocations_during(|| {
        for _ in 0..100 {
            ccm.open_into(nonce, aad, ct, &mut out).expect("open");
        }
        std::hint::black_box(&out);
    });
    assert_eq!(
        count, 0,
        "open_into must not allocate once its scratch is warm, got {count}"
    );
}

#[test]
fn seal_into_is_zero_alloc_once_warm() {
    let _serial = SERIAL.lock().unwrap();
    let ccm = Ccm::new(&[0x42; 16]);
    let nonce = [7u8; 13];
    let payload = [0x5A; 64];
    let mut out = Vec::new();
    ccm.seal_into(&nonce, b"hd", &payload, &mut out)
        .expect("seal");
    let count = min_allocations_during(|| {
        for _ in 0..100 {
            ccm.seal_into(&nonce, b"hd", &payload, &mut out)
                .expect("seal");
        }
        std::hint::black_box(&out);
    });
    assert_eq!(
        count, 0,
        "seal_into must not allocate once its scratch is warm, got {count}"
    );
}

#[test]
fn open_many_into_is_zero_alloc_once_warm() {
    let _serial = SERIAL.lock().unwrap();
    let ccm = Ccm::new(&[0x42; 16]);
    // A ragged batch: 2 full chunks plus a partial tail.
    let frames = sealed_frames(&ccm, 2 * FRAME_LANES + 3);
    let views: Vec<SealedFrame<'_>> = frames
        .iter()
        .map(|(nonce, aad, ct)| SealedFrame {
            nonce: *nonce,
            aad,
            ciphertext_and_tag: ct,
        })
        .collect();
    let mut batch = OpenBatch::new();
    ccm.open_many_into(&views, &mut batch);
    assert!(batch.iter().all(|v| v.is_ok()));
    let count = min_allocations_during(|| {
        for _ in 0..20 {
            ccm.open_many_into(&views, &mut batch);
        }
        std::hint::black_box(&batch);
    });
    assert_eq!(
        count, 0,
        "open_many_into must reuse the warmed OpenBatch arena, got {count} \
         allocations — is a per-chunk or per-frame buffer being rebuilt?"
    );
}

#[test]
fn open_check_keys_is_zero_alloc_once_warm() {
    let _serial = SERIAL.lock().unwrap();
    let ccms: Vec<Ccm> = (0..KEY_LANES as u8).map(|i| Ccm::new(&[i; 16])).collect();
    let refs: [&Ccm; KEY_LANES] = core::array::from_fn(|i| &ccms[i]);
    let frames = sealed_frames(&ccms[3], 1);
    let (nonce, aad, ct) = &frames[0];
    let mut scratch = Vec::new();
    assert_eq!(
        blap_crypto::ccm::open_check_keys(refs, nonce, aad, ct, &mut scratch),
        1 << 3
    );
    let count = min_allocations_during(|| {
        for _ in 0..100 {
            let mask = blap_crypto::ccm::open_check_keys(refs, nonce, aad, ct, &mut scratch);
            std::hint::black_box(mask);
        }
    });
    assert_eq!(
        count, 0,
        "open_check_keys must reuse the caller's scratch, got {count}"
    );
}
