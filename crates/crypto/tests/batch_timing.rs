//! Ad-hoc component timing for the batch kernels. Run manually with
//! `cargo test --release -p blap-crypto --test batch_timing -- --ignored --nocapture`.

use blap_crypto::batch::{self, Batch16, E1Batch, KeyScheduleBatch};
use blap_crypto::e1;
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut() -> R, R>(label: &str, iters: u32, mut f: F) {
    // warm up
    for _ in 0..iters / 4 {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!(
        "{label:32} {ns:10.1} ns/op  ({:6.1} ns/lane)",
        ns / batch::LANES as f64
    );
}

#[test]
#[ignore]
fn component_timing() {
    let iters = 200_000;
    let mut lanes = [[0u8; 16]; batch::LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        for (j, b) in lane.iter_mut().enumerate() {
            *b = (i * 17 + j * 3 + 1) as u8;
        }
    }
    let keys = Batch16::from_lanes(&lanes);
    let input = Batch16::splat(&[0x5au8; 16]);
    let addr: blap_types::BdAddr = "aa:bb:cc:dd:ee:ff".parse().unwrap();
    let addr_ext = batch::expand_addr_splat(addr);

    time("from_lanes", iters, || {
        Batch16::from_lanes(black_box(&lanes))
    });
    time("KeyScheduleBatch::new", iters, || {
        KeyScheduleBatch::new(black_box(&keys))
    });
    let sched = KeyScheduleBatch::new(&keys);
    time("encrypt_batch", iters, || {
        batch::encrypt_batch(black_box(&sched), black_box(&input))
    });
    time("encrypt_prime_batch", iters, || {
        batch::encrypt_prime_batch(black_box(&sched), black_box(&input))
    });
    time("e21_batch", iters, || {
        batch::e21_batch(black_box(&keys), black_box(&addr_ext))
    });
    time("E1Batch::new", iters, || E1Batch::new(black_box(&keys)));
    let e1b = E1Batch::new(&keys);
    time("e1_output", iters, || {
        e1b.e1_output(black_box(&input), black_box(&addr_ext))
    });

    // scalar reference costs
    let key = lanes[0];
    time("scalar key schedule", iters, || {
        blap_crypto::saferplus::KeySchedule::new(black_box(&key))
    });
    let sk = blap_crypto::saferplus::KeySchedule::new(&key);
    time("scalar encrypt", iters, || {
        blap_crypto::saferplus::encrypt(black_box(&sk), black_box(&[0x5au8; 16]))
    });
    time("scalar e21", iters, || {
        e1::e21(black_box(&[0x5au8; 16]), black_box(addr))
    });
    let link_key = blap_types::LinkKey::from(key);
    time("scalar e1", iters, || {
        e1::e1(
            black_box(&link_key),
            black_box(&[0x5au8; 16]),
            black_box(addr),
        )
    });
}
