//! Property tests for the cryptographic substrate.

use blap_crypto::bigint::{U256, U512};
use blap_crypto::p256;
use blap_crypto::saferplus::{decrypt, encrypt, encrypt_prime, KeySchedule};
use blap_crypto::sha256::{digest, Sha256};
use blap_crypto::{e1, hmac, ssp};
use blap_types::BdAddr;
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha256_incremental_equals_one_shot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                          split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), digest(&data));
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(key in proptest::collection::vec(any::<u8>(), 0..128),
                                               data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let a = hmac::hmac_sha256(&key, &data);
        let b = hmac::hmac_sha256(&key, &data);
        prop_assert_eq!(a, b);
        let mut other_key = key.clone();
        other_key.push(0x01);
        prop_assert_ne!(a, hmac::hmac_sha256(&other_key, &data));
    }

    #[test]
    fn saferplus_encrypt_decrypt_inverse(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let ks = KeySchedule::new(&key);
        prop_assert_eq!(decrypt(&ks, &encrypt(&ks, &block)), block);
    }

    #[test]
    fn saferplus_is_a_permutation(key in any::<[u8; 16]>(),
                                  b1 in any::<[u8; 16]>(),
                                  b2 in any::<[u8; 16]>()) {
        let ks = KeySchedule::new(&key);
        if b1 != b2 {
            prop_assert_ne!(encrypt(&ks, &b1), encrypt(&ks, &b2));
        }
        prop_assert_ne!(encrypt(&ks, &b1), encrypt_prime(&ks, &b1));
    }

    #[test]
    fn e1_symmetric_across_parties(key in any::<[u8; 16]>(),
                                   rand in any::<[u8; 16]>(),
                                   addr in any::<[u8; 6]>()) {
        let key = blap_types::LinkKey::new(key);
        let addr = BdAddr::new(addr);
        let verifier = e1::e1(&key, &rand, addr);
        let prover = e1::e1(&key, &rand, addr);
        prop_assert_eq!(verifier, prover);
    }

    #[test]
    fn u256_add_sub_inverse(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let a = U256::from_be_bytes(a);
        let b = U256::from_be_bytes(b);
        let (sum, _) = a.overflowing_add(b);
        let (diff, _) = sum.overflowing_sub(b);
        prop_assert_eq!(diff, a);
    }

    #[test]
    fn u256_mul_commutes_mod_prime(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let p = p256::field_prime();
        let a = U256::from_be_bytes(a).rem_short(p);
        let b = U256::from_be_bytes(b).rem_short(p);
        prop_assert_eq!(a.mul_mod(b, p), b.mul_mod(a, p));
    }

    #[test]
    fn u512_rem_is_bounded(a in any::<[u8; 32]>(), b in any::<[u8; 32]>(), m in 1u64..u64::MAX) {
        let product = U256::from_be_bytes(a).widening_mul(U256::from_be_bytes(b));
        let modulus = U256::from_u64(m);
        let r = product.rem(modulus);
        prop_assert!(r < modulus);
    }

    #[test]
    fn f2_binds_every_input(w in any::<[u8; 32]>(), n1 in any::<[u8; 16]>(), n2 in any::<[u8; 16]>()) {
        let a1: BdAddr = "aa:aa:aa:aa:aa:aa".parse().unwrap();
        let a2: BdAddr = "bb:bb:bb:bb:bb:bb".parse().unwrap();
        let base = ssp::f2(&w, &n1, &n2, a1, a2);
        prop_assert_eq!(base, ssp::f2(&w, &n1, &n2, a1, a2));
        if n1 != n2 {
            prop_assert_ne!(base, ssp::f2(&w, &n2, &n1, a1, a2));
        }
        prop_assert_ne!(base, ssp::f2(&w, &n1, &n2, a2, a1));
    }

    #[test]
    fn g_always_six_digits(u in any::<[u8; 32]>(), v in any::<[u8; 32]>(),
                           x in any::<[u8; 16]>(), y in any::<[u8; 16]>()) {
        prop_assert!(ssp::g(&u, &v, &x, &y) < 1_000_000);
    }
}

// Heavier EC properties with a reduced case count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ecdh_agreement_holds(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
        use p256::{KeyPair, Scalar};
        let ka = KeyPair::from_secret(Scalar::from_u64(a)).unwrap();
        let kb = KeyPair::from_secret(Scalar::from_u64(b)).unwrap();
        prop_assert_eq!(
            ka.diffie_hellman(&kb.public()).unwrap(),
            kb.diffie_hellman(&ka.public()).unwrap()
        );
    }

    #[test]
    fn scalar_mul_closure(k in 1u64..1_000_000) {
        use p256::{generator, Scalar};
        let point = generator().mul(&Scalar::from_u64(k));
        prop_assert!(point.is_on_curve());
    }

    #[test]
    fn fast_reduction_matches_slow(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        // Pins the Solinas term table (fast path, `field_mul`) against
        // binary long division (slow path, `mul_mod`/`rem`) for arbitrary
        // products.
        let p = p256::field_prime();
        let a = U256::from_be_bytes(a).rem_short(p);
        let b = U256::from_be_bytes(b).rem_short(p);
        prop_assert_eq!(p256::field_mul(a, b), a.mul_mod(b, p));
        prop_assert_eq!(p256::field_mul(a, b), U512::from_u256(U256::ZERO)
            .rem(p)
            .add_mod(a.mul_mod(b, p), p));
    }
}

// AES/CCM properties.
proptest! {
    #[test]
    fn aes_encrypt_decrypt_inverse(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        use blap_crypto::aes::Aes128;
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    #[test]
    fn aes_is_a_permutation(key in any::<[u8; 16]>(), b1 in any::<[u8; 16]>(), b2 in any::<[u8; 16]>()) {
        use blap_crypto::aes::Aes128;
        let aes = Aes128::new(&key);
        if b1 != b2 {
            prop_assert_ne!(aes.encrypt_block(&b1), aes.encrypt_block(&b2));
        }
    }

    #[test]
    fn ccm_round_trip(key in any::<[u8; 16]>(), nonce in any::<[u8; 13]>(),
                      aad in proptest::collection::vec(any::<u8>(), 0..32),
                      payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        use blap_crypto::ccm;
        let ct = ccm::encrypt(&key, &nonce, &aad, &payload).unwrap();
        prop_assert_eq!(ct.len(), payload.len() + ccm::TAG_LEN);
        let pt = ccm::decrypt(&key, &nonce, &aad, &ct).unwrap();
        prop_assert_eq!(pt, payload);
    }

    #[test]
    fn ccm_detects_any_single_bitflip(key in any::<[u8; 16]>(), nonce in any::<[u8; 13]>(),
                                      payload in proptest::collection::vec(any::<u8>(), 1..64),
                                      flip_byte in 0usize..64, flip_bit in 0u8..8) {
        use blap_crypto::ccm;
        let ct = ccm::encrypt(&key, &nonce, b"", &payload).unwrap();
        let mut tampered = ct.clone();
        let idx = flip_byte % tampered.len();
        tampered[idx] ^= 1 << flip_bit;
        prop_assert_eq!(
            ccm::decrypt(&key, &nonce, b"", &tampered),
            Err(ccm::CcmError::TagMismatch)
        );
    }

    #[test]
    fn ccm_rejects_foreign_keys(key in any::<[u8; 16]>(), other in any::<[u8; 16]>(),
                                nonce in any::<[u8; 13]>(),
                                payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        use blap_crypto::ccm;
        prop_assume!(key != other);
        let ct = ccm::encrypt(&key, &nonce, b"", &payload).unwrap();
        prop_assert!(ccm::decrypt(&other, &nonce, b"", &ct).is_err());
    }

    #[test]
    fn e22_pin_sensitivity(rand in any::<[u8; 16]>(), addr_bytes in any::<[u8; 6]>(),
                           pin1 in proptest::collection::vec(any::<u8>(), 1..16),
                           pin2 in proptest::collection::vec(any::<u8>(), 1..16)) {
        use blap_crypto::e1;
        let addr = BdAddr::new(addr_bytes);
        if pin1 != pin2 {
            prop_assert_ne!(
                e1::e22(&rand, &pin1, addr),
                e1::e22(&rand, &pin2, addr),
                "distinct PINs must give distinct init keys"
            );
        }
    }

    #[test]
    fn e22_augmented_sweep_equals_one_shot(rand in any::<[u8; 16]>(),
                                           addr_bytes in any::<[u8; 6]>(),
                                           pins in proptest::collection::vec(any::<[u8; 6]>(), 1..8)) {
        use blap_crypto::e1::{self, AugmentedPin};
        // Reusing one augmentation across a sweep of same-length PINs must
        // match rebuilding it from scratch for every candidate.
        let addr = BdAddr::new(addr_bytes);
        let mut aug = AugmentedPin::new(&pins[0], addr);
        for pin in &pins {
            aug.set_pin(pin);
            prop_assert_eq!(
                e1::e22_with_augmented(&rand, &aug),
                e1::e22(&rand, pin, addr),
                "pin {:?}", pin
            );
        }
    }

    #[test]
    fn batch_encrypt_matches_scalar_lanewise(key_bytes in any::<[u8; 256]>(),
                                             block in any::<[u8; 16]>()) {
        use blap_crypto::batch::{self, Batch16, KeyScheduleBatch};
        let keys: [[u8; 16]; 16] =
            core::array::from_fn(|lane| core::array::from_fn(|i| key_bytes[lane * 16 + i]));
        let sched = KeyScheduleBatch::new(&Batch16::from_lanes(&keys));
        let input = Batch16::splat(&block);
        let plain = batch::encrypt_batch(&sched, &input);
        let prime = batch::encrypt_prime_batch(&sched, &input);
        for (lane, key) in keys.iter().enumerate() {
            let ks = KeySchedule::new(key);
            prop_assert_eq!(plain.lane(lane), encrypt(&ks, &block), "Ar lane {}", lane);
            prop_assert_eq!(prime.lane(lane), encrypt_prime(&ks, &block), "Ar' lane {}", lane);
        }
    }

    #[test]
    fn batch_e21_e1_match_scalar_lanewise(key_bytes in any::<[u8; 256]>(),
                                          rand in any::<[u8; 16]>(),
                                          addr_bytes in any::<[u8; 6]>()) {
        use blap_crypto::batch::{self, Batch16, E1Batch};
        let keys: [[u8; 16]; 16] =
            core::array::from_fn(|lane| core::array::from_fn(|i| key_bytes[lane * 16 + i]));
        let addr = BdAddr::new(addr_bytes);
        let key_batch = Batch16::from_lanes(&keys);
        let addr_ext = batch::expand_addr_splat(addr);
        let e21_out = batch::e21_batch(&key_batch, &addr_ext);
        let e1_out = E1Batch::new(&key_batch).e1_output(&Batch16::splat(&rand), &addr_ext);
        for (lane, key) in keys.iter().enumerate() {
            prop_assert_eq!(
                blap_types::LinkKey::new(e21_out.lane(lane)),
                e1::e21(key, addr),
                "e21 lane {}", lane
            );
            let expected = e1::e1(&blap_types::LinkKey::new(*key), &rand, addr);
            let got = e1_out.lane(lane);
            prop_assert_eq!(&got[..4], &expected.sres[..], "sres lane {}", lane);
            prop_assert_eq!(&got[4..], &expected.aco[..], "aco lane {}", lane);
        }
    }
}

mod ccm_batch {
    use blap_crypto::ccm::{
        self, open_check_keys, Ccm, CcmError, OpenBatch, PlainFrame, SealedFrame, KEY_LANES,
        TAG_LEN,
    };
    use proptest::prelude::*;

    /// Frame material for batched-vs-scalar equivalence: arbitrary payload
    /// lengths and AADs per lane, frame counts straddling multiples of
    /// `FRAME_LANES` so ragged final batches are always exercised.
    fn frames_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>, [u8; ccm::NONCE_LEN])>> {
        proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 0..80),
                proptest::collection::vec(any::<u8>(), 0..40),
                any::<[u8; ccm::NONCE_LEN]>(),
            ),
            1..2 * ccm::FRAME_LANES + 4,
        )
    }

    proptest! {
        #[test]
        fn open_many_matches_scalar_open_lane_for_lane(key in any::<[u8; 16]>(),
                                                       frames in frames_strategy()) {
            let ccm = Ccm::new(&key);
            let sealed: Vec<Vec<u8>> = frames
                .iter()
                .map(|(payload, aad, nonce)| ccm.seal(nonce, aad, payload).unwrap())
                .collect();
            let views: Vec<SealedFrame<'_>> = frames
                .iter()
                .zip(&sealed)
                .map(|((_, aad, nonce), ct)| SealedFrame {
                    nonce: *nonce,
                    aad,
                    ciphertext_and_tag: ct,
                })
                .collect();
            let batched = ccm.open_many(&views);
            prop_assert_eq!(batched.len(), frames.len());
            for (i, ((payload, aad, nonce), got)) in frames.iter().zip(&batched).enumerate() {
                let want = ccm.open(nonce, aad, &sealed[i]);
                prop_assert_eq!(got, &want, "lane {}", i);
                prop_assert_eq!(got.as_deref().ok(), Some(payload.as_slice()), "lane {}", i);
            }
        }

        #[test]
        fn open_many_rejects_tamper_and_truncation_per_lane(key in any::<[u8; 16]>(),
                                                            frames in frames_strategy(),
                                                            bad in 0usize..64,
                                                            short in 0usize..64,
                                                            flip_at in 0usize..4096) {
            let ccm = Ccm::new(&key);
            let mut sealed: Vec<Vec<u8>> = frames
                .iter()
                .map(|(payload, aad, nonce)| ccm.seal(nonce, aad, payload).unwrap())
                .collect();
            let bad = bad % frames.len();
            let short = short % frames.len();
            let flip = flip_at % sealed[bad].len();
            sealed[bad][flip] ^= 0x01;
            if short != bad {
                sealed[short].truncate(TAG_LEN - 1);
            }
            let views: Vec<SealedFrame<'_>> = frames
                .iter()
                .zip(&sealed)
                .map(|((_, aad, nonce), ct)| SealedFrame {
                    nonce: *nonce,
                    aad,
                    ciphertext_and_tag: ct,
                })
                .collect();
            let mut batch = OpenBatch::new();
            ccm.open_many_into(&views, &mut batch);
            for (i, (payload, _, _)) in frames.iter().enumerate() {
                let got = batch.get(i);
                if i == bad {
                    prop_assert_eq!(got, Err(CcmError::TagMismatch), "tampered lane {}", i);
                } else if i == short {
                    prop_assert_eq!(got, Err(CcmError::Truncated), "truncated lane {}", i);
                } else {
                    prop_assert_eq!(got, Ok(payload.as_slice()), "honest lane {}", i);
                }
            }
        }

        #[test]
        fn seal_many_and_into_paths_match_scalar(key in any::<[u8; 16]>(),
                                                 frames in frames_strategy()) {
            let ccm = Ccm::new(&key);
            let views: Vec<PlainFrame<'_>> = frames
                .iter()
                .map(|(payload, aad, nonce)| PlainFrame {
                    nonce: *nonce,
                    aad,
                    payload,
                })
                .collect();
            let batched = ccm.seal_many(&views).unwrap();
            let mut scratch = Vec::new();
            let mut opened = Vec::new();
            for (i, (payload, aad, nonce)) in frames.iter().enumerate() {
                let want = ccm.seal(nonce, aad, payload).unwrap();
                prop_assert_eq!(&batched[i], &want, "seal lane {}", i);
                ccm.seal_into(nonce, aad, payload, &mut scratch).unwrap();
                prop_assert_eq!(&scratch, &want, "seal_into lane {}", i);
                ccm.open_into(nonce, aad, &want, &mut opened).unwrap();
                prop_assert_eq!(&opened, payload, "open_into lane {}", i);
                prop_assert_eq!(ccm.verify(nonce, aad, &want), Ok(()), "verify lane {}", i);
            }
        }

        #[test]
        fn open_check_keys_matches_scalar_verify(keys in proptest::collection::vec(any::<[u8; 16]>(), KEY_LANES..KEY_LANES + 1),
                                                 right in 0usize..KEY_LANES,
                                                 payload in proptest::collection::vec(any::<u8>(), 0..64),
                                                 aad in proptest::collection::vec(any::<u8>(), 0..20),
                                                 nonce in any::<[u8; ccm::NONCE_LEN]>()) {
            let ccms: Vec<Ccm> = keys.iter().map(Ccm::new).collect();
            let sealed = ccms[right].seal(&nonce, &aad, &payload).unwrap();
            let refs: [&Ccm; KEY_LANES] = core::array::from_fn(|i| &ccms[i]);
            let mut scratch = Vec::new();
            let mask = open_check_keys(refs, &nonce, &aad, &sealed, &mut scratch);
            for (i, ccm) in ccms.iter().enumerate() {
                let scalar_ok = ccm.verify(&nonce, &aad, &sealed).is_ok();
                prop_assert_eq!(mask & (1 << i) != 0, scalar_ok, "lane {}", i);
            }
            prop_assert!(mask & (1 << right) != 0, "sealing key must verify");
        }
    }
}
