//! AES-128 (FIPS 197), implemented from the specification.
//!
//! Bluetooth Secure Connections encrypts ACL traffic with AES-CCM; this
//! module provides the block cipher for [`crate::ccm`]. The S-box is
//! computed (GF(2⁸) inversion plus the affine map) rather than pasted, and
//! the implementation is pinned by the FIPS 197 Appendix C vector.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut out = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            out ^= a;
        }
        let high = a & 0x80 != 0;
        a <<= 1;
        if high {
            a ^= 0x1B; // x^8 + x^4 + x^3 + x + 1
        }
        b >>= 1;
    }
    out
}

fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^(254) in GF(2^8) by square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp != 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn tables() -> (&'static [u8; 256], &'static [u8; 256]) {
    use std::sync::OnceLock;
    static TABLES: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    let (sbox, inv_sbox) = TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv = [0u8; 256];
        #[allow(clippy::needless_range_loop)]
        for x in 0..256usize {
            let b = gf_inv(x as u8);
            // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^
            // rotl(b,4) ^ 0x63.
            let s = b
                ^ b.rotate_left(1)
                ^ b.rotate_left(2)
                ^ b.rotate_left(3)
                ^ b.rotate_left(4)
                ^ 0x63;
            sbox[x] = s;
        }
        for x in 0..256usize {
            inv[sbox[x] as usize] = x as u8;
        }
        (sbox, inv)
    });
    (sbox, inv_sbox)
}

/// An expanded AES-128 key (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Aes128(..)")
    }
}

impl Aes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let (sbox, _) = tables();
        let mut words = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            words[i].copy_from_slice(chunk);
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = sbox[*byte as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for round in 0..11 {
            for w in 0..4 {
                round_keys[round][4 * w..4 * w + 4].copy_from_slice(&words[4 * round + w]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let (sbox, _) = tables();
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut state, sbox);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state, sbox);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let (_, inv_sbox) = tables();
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[10]);
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state, inv_sbox);
        for round in (1..10).rev() {
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state, inv_sbox);
        }
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

// State layout: state[4*c + r] is row r, column c (column-major, matching
// the FIPS byte order of the input block).

fn add_round_key(state: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= key[i];
    }
}

fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
    for byte in state.iter_mut() {
        *byte = sbox[*byte as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16], inv_sbox: &[u8; 256]) {
    for byte in state.iter_mut() {
        *byte = inv_sbox[*byte as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let copy = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = copy[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let copy = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = copy[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sbox_known_entries() {
        let (sbox, inv) = tables();
        // Canonical spot checks.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        for x in 0..256 {
            assert_eq!(inv[sbox[x] as usize] as usize, x);
        }
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes128::new(&key);
        let ciphertext = aes.encrypt_block(&plaintext);
        assert_eq!(hex(&ciphertext), "69c4e0d86a7b0430d8cdb78070b4c55a");
        assert_eq!(aes.decrypt_block(&ciphertext), plaintext);
    }

    #[test]
    fn gf_arithmetic() {
        // {57} x {83} = {c1} (FIPS 197 §4.2 example).
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        // Inversion: a * a^-1 = 1 for all nonzero a.
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse failed for {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn round_trip_random_blocks() {
        let aes = Aes128::new(&[0xA5; 16]);
        for i in 0..32u8 {
            let block: [u8; 16] =
                core::array::from_fn(|j| i.wrapping_mul(17).wrapping_add(j as u8));
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }

    #[test]
    fn different_keys_different_ciphertexts() {
        let p = [0u8; 16];
        let c1 = Aes128::new(&[0x00; 16]).encrypt_block(&p);
        let c2 = Aes128::new(&[0x01; 16]).encrypt_block(&p);
        assert_ne!(c1, c2);
    }
}
