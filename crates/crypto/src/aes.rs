//! AES-128 (FIPS 197), implemented from the specification.
//!
//! Bluetooth Secure Connections encrypts ACL traffic with AES-CCM; this
//! module provides the block cipher for [`crate::ccm`]. The S-box is
//! computed (GF(2⁸) inversion plus the affine map) rather than pasted, and
//! the implementation is pinned by the FIPS 197 Appendix C vector.
//!
//! The round path is table-driven. Encryption uses the classic 32-bit
//! T-tables — SubBytes, ShiftRows and MixColumns fused into four word
//! lookups per column — built once from the same bit-serial [`gf_mul`] the
//! tables are verified against. Decryption (unused by CCM, which only ever
//! encrypts blocks) keeps the per-byte inverse layers with precomputed
//! ×9/×11/×13/×14 multiples.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut out = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            out ^= a;
        }
        let high = a & 0x80 != 0;
        a <<= 1;
        if high {
            a ^= 0x1B; // x^8 + x^4 + x^3 + x + 1
        }
        b >>= 1;
    }
    out
}

fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^(254) in GF(2^8) by square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp != 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// Precomputed cipher tables: the S-boxes, the four 32-bit encryption
/// T-tables (SubBytes, ShiftRows and MixColumns fused into one lookup per
/// state byte), and the GF(2⁸) constant multiples the matrices use.
struct AesTables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    /// `t0[x]` is the MixColumns column `(2, 1, 1, 3) · sbox[x]` packed as
    /// a little-endian word (byte 0 = row 0); `t1`–`t3` are its rotations
    /// `(3, 2, 1, 1)`, `(1, 3, 2, 1)`, `(1, 1, 3, 2)` for rows 1–3 of the
    /// shifted state.
    t0: [u32; 256],
    t1: [u32; 256],
    t2: [u32; 256],
    t3: [u32; 256],
    mul2: [u8; 256],
    mul3: [u8; 256],
    mul9: [u8; 256],
    mul11: [u8; 256],
    mul13: [u8; 256],
    mul14: [u8; 256],
}

fn tables() -> &'static AesTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Box<AesTables>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new(AesTables {
            sbox: [0; 256],
            inv_sbox: [0; 256],
            t0: [0; 256],
            t1: [0; 256],
            t2: [0; 256],
            t3: [0; 256],
            mul2: [0; 256],
            mul3: [0; 256],
            mul9: [0; 256],
            mul11: [0; 256],
            mul13: [0; 256],
            mul14: [0; 256],
        });
        #[allow(clippy::needless_range_loop)]
        for x in 0..256usize {
            let b = gf_inv(x as u8);
            // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^
            // rotl(b,4) ^ 0x63.
            let s = b
                ^ b.rotate_left(1)
                ^ b.rotate_left(2)
                ^ b.rotate_left(3)
                ^ b.rotate_left(4)
                ^ 0x63;
            t.sbox[x] = s;
            t.mul2[x] = gf_mul(x as u8, 2);
            t.mul3[x] = gf_mul(x as u8, 3);
            t.mul9[x] = gf_mul(x as u8, 9);
            t.mul11[x] = gf_mul(x as u8, 11);
            t.mul13[x] = gf_mul(x as u8, 13);
            t.mul14[x] = gf_mul(x as u8, 14);
        }
        for x in 0..256usize {
            t.inv_sbox[t.sbox[x] as usize] = x as u8;
            let s = t.sbox[x];
            let (s2, s3) = (t.mul2[s as usize], t.mul3[s as usize]);
            t.t0[x] = u32::from_le_bytes([s2, s, s, s3]);
            t.t1[x] = u32::from_le_bytes([s3, s2, s, s]);
            t.t2[x] = u32::from_le_bytes([s, s3, s2, s]);
            t.t3[x] = u32::from_le_bytes([s, s, s3, s2]);
        }
        t
    })
}

/// An expanded AES-128 key (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Aes128(..)")
    }
}

impl Aes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let sbox = &tables().sbox;
        let mut words = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            words[i].copy_from_slice(chunk);
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = sbox[*byte as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for round in 0..11 {
            for w in 0..4 {
                round_keys[round][4 * w..4 * w + 4].copy_from_slice(&words[4 * round + w]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let t = tables();
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        // Rounds 1–9: SubBytes, ShiftRows and MixColumns collapse to four
        // T-table lookups per column — `t{r}` is indexed by the byte
        // ShiftRows would move into (row r, column c), i.e. row r of
        // column c + r.
        for round in 1..10 {
            let rk = &self.round_keys[round];
            let mut next = [0u8; 16];
            for c in 0..4 {
                let col = t.t0[state[4 * c] as usize]
                    ^ t.t1[state[4 * ((c + 1) % 4) + 1] as usize]
                    ^ t.t2[state[4 * ((c + 2) % 4) + 2] as usize]
                    ^ t.t3[state[4 * ((c + 3) % 4) + 3] as usize]
                    ^ u32::from_le_bytes([rk[4 * c], rk[4 * c + 1], rk[4 * c + 2], rk[4 * c + 3]]);
                next[4 * c..4 * c + 4].copy_from_slice(&col.to_le_bytes());
            }
            state = next;
        }
        // Final round has no MixColumns: plain S-box plus the shift.
        let rk = &self.round_keys[10];
        let mut out = [0u8; 16];
        for c in 0..4 {
            for r in 0..4 {
                out[4 * c + r] = t.sbox[state[4 * ((c + r) % 4) + r] as usize] ^ rk[4 * c + r];
            }
        }
        out
    }

    /// Encrypts `N` independent 16-byte blocks with the round passes
    /// interleaved: every T-table round runs across all `N` states before
    /// the next round starts, so one block's table-load latency overlaps
    /// the XOR arithmetic of the others instead of the whole round chain
    /// serializing behind a single state register (the reason
    /// [`Self::encrypt_block`] is latency-bound rather than
    /// throughput-bound). Plain-loop style on purpose — like
    /// [`crate::batch`], the per-block inner loops are independent and the
    /// compiler schedules them freely; the scalar path stays as the pinned
    /// reference.
    ///
    /// Measured on the committed-baseline host the raw kernel plateaus at
    /// `N = 8` ([`PARALLEL_BLOCKS`], ~38 ns/block vs ~54 scalar) — the
    /// interleave is µop-throughput-bound, not load-bound, so widths 2–16
    /// sit within noise of each other (DESIGN §6 has the sweep). CCM's
    /// batched paths are the intended caller: CTR keystream blocks are
    /// independent within a frame and CBC-MAC chains are independent
    /// across frames.
    pub fn encrypt_blocks<const N: usize>(&self, blocks: &[[u8; 16]; N]) -> [[u8; 16]; N] {
        let t = tables();
        let rk0 = round_key_words(&self.round_keys[0]);
        // State as four little-endian column words per block: the T-table
        // rounds read bytes out of words and write whole words, so keeping
        // words end to end avoids a pack/unpack per round per block.
        let mut state = [[0u32; 4]; N];
        for b in 0..N {
            for c in 0..4 {
                state[b][c] = u32::from_le_bytes([
                    blocks[b][4 * c],
                    blocks[b][4 * c + 1],
                    blocks[b][4 * c + 2],
                    blocks[b][4 * c + 3],
                ]) ^ rk0[c];
            }
        }
        for round in 1..10 {
            let rk = round_key_words(&self.round_keys[round]);
            for st in state.iter_mut() {
                // Per-block temporaries instead of a second `[[u32; 4]; N]`
                // buffer: at N = 8 the double buffer is 2 × 128 bytes of
                // live state and LLVM spills the copy every round; four
                // locals keep the rotation in registers.
                let s = *st;
                let mut n = [0u32; 4];
                for c in 0..4 {
                    n[c] = t.t0[(s[c] & 0xff) as usize]
                        ^ t.t1[((s[(c + 1) % 4] >> 8) & 0xff) as usize]
                        ^ t.t2[((s[(c + 2) % 4] >> 16) & 0xff) as usize]
                        ^ t.t3[(s[(c + 3) % 4] >> 24) as usize]
                        ^ rk[c];
                }
                *st = n;
            }
        }
        let rk = &self.round_keys[10];
        let mut out = [[0u8; 16]; N];
        for b in 0..N {
            for c in 0..4 {
                for r in 0..4 {
                    out[b][4 * c + r] = t.sbox
                        [((state[b][(c + r) % 4] >> (8 * r)) & 0xff) as usize]
                        ^ rk[4 * c + r];
                }
            }
        }
        out
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let t = tables();
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[10]);
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state, &t.inv_sbox);
        for round in (1..10).rev() {
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state, t);
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state, &t.inv_sbox);
        }
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

/// Interleave width the batched callers default to. The raw kernel's
/// per-block cost is flat from N = 2 up (µop-throughput-bound; see DESIGN
/// §6 *Batched kernels* for the sweep), so the width is chosen to divide
/// CCM batches evenly and to double as the multi-key lane count.
pub const PARALLEL_BLOCKS: usize = 8;

/// Encrypts `N` blocks under `N` *different* expanded keys, rounds
/// interleaved exactly like [`Aes128::encrypt_blocks`] — the multi-key
/// axis the bulk key-confirmation path batches over (one candidate session
/// key per slot, same probe frame). Each slot's round key comes from its
/// own schedule; everything else is the single-key kernel.
pub fn encrypt_blocks_multikey<const N: usize>(
    keys: [&Aes128; N],
    blocks: &[[u8; 16]; N],
) -> [[u8; 16]; N] {
    let t = tables();
    let mut state = [[0u32; 4]; N];
    for b in 0..N {
        let rk0 = round_key_words(&keys[b].round_keys[0]);
        for c in 0..4 {
            state[b][c] = u32::from_le_bytes([
                blocks[b][4 * c],
                blocks[b][4 * c + 1],
                blocks[b][4 * c + 2],
                blocks[b][4 * c + 3],
            ]) ^ rk0[c];
        }
    }
    for round in 1..10 {
        for b in 0..N {
            let rk = round_key_words(&keys[b].round_keys[round]);
            let s = state[b];
            let mut n = [0u32; 4];
            for c in 0..4 {
                n[c] = t.t0[(s[c] & 0xff) as usize]
                    ^ t.t1[((s[(c + 1) % 4] >> 8) & 0xff) as usize]
                    ^ t.t2[((s[(c + 2) % 4] >> 16) & 0xff) as usize]
                    ^ t.t3[(s[(c + 3) % 4] >> 24) as usize]
                    ^ rk[c];
            }
            state[b] = n;
        }
    }
    let mut out = [[0u8; 16]; N];
    for b in 0..N {
        let rk = &keys[b].round_keys[10];
        for c in 0..4 {
            for r in 0..4 {
                out[b][4 * c + r] =
                    t.sbox[((state[b][(c + r) % 4] >> (8 * r)) & 0xff) as usize] ^ rk[4 * c + r];
            }
        }
    }
    out
}

// State layout: state[4*c + r] is row r, column c (column-major, matching
// the FIPS byte order of the input block).

#[inline(always)]
fn round_key_words(rk: &[u8; 16]) -> [u32; 4] {
    core::array::from_fn(|c| {
        u32::from_le_bytes([rk[4 * c], rk[4 * c + 1], rk[4 * c + 2], rk[4 * c + 3]])
    })
}

fn add_round_key(state: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= key[i];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16], inv_sbox: &[u8; 256]) {
    for byte in state.iter_mut() {
        *byte = inv_sbox[*byte as usize];
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let copy = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = copy[4 * c + r];
        }
    }
}

fn inv_mix_columns(state: &mut [u8; 16], t: &AesTables) {
    for c in 0..4 {
        let col = [
            state[4 * c] as usize,
            state[4 * c + 1] as usize,
            state[4 * c + 2] as usize,
            state[4 * c + 3] as usize,
        ];
        state[4 * c] = t.mul14[col[0]] ^ t.mul11[col[1]] ^ t.mul13[col[2]] ^ t.mul9[col[3]];
        state[4 * c + 1] = t.mul9[col[0]] ^ t.mul14[col[1]] ^ t.mul11[col[2]] ^ t.mul13[col[3]];
        state[4 * c + 2] = t.mul13[col[0]] ^ t.mul9[col[1]] ^ t.mul14[col[2]] ^ t.mul11[col[3]];
        state[4 * c + 3] = t.mul11[col[0]] ^ t.mul13[col[1]] ^ t.mul9[col[2]] ^ t.mul14[col[3]];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        // Canonical spot checks.
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
        for x in 0..256 {
            assert_eq!(t.inv_sbox[t.sbox[x] as usize] as usize, x);
        }
    }

    #[test]
    fn mul_tables_match_bit_serial_gf_mul() {
        let t = tables();
        for x in 0..256usize {
            for (table, k) in [
                (&t.mul2, 2),
                (&t.mul3, 3),
                (&t.mul9, 9),
                (&t.mul11, 11),
                (&t.mul13, 13),
                (&t.mul14, 14),
            ] {
                assert_eq!(table[x], gf_mul(x as u8, k), "x={x:#x} k={k}");
            }
        }
    }

    #[test]
    fn t_table_rounds_match_separate_layers() {
        // Reference middle round built from the textbook layers the
        // T-tables fuse; the FIPS vector alone pins one trajectory, this
        // pins the fusion on arbitrary states.
        fn reference_round(state: &[u8; 16], rk: &[u8; 16], t: &AesTables) -> [u8; 16] {
            let mut s = *state;
            for byte in s.iter_mut() {
                *byte = t.sbox[*byte as usize];
            }
            let copy = s;
            for r in 1..4 {
                for c in 0..4 {
                    s[4 * c + r] = copy[4 * ((c + r) % 4) + r];
                }
            }
            let mut out = [0u8; 16];
            for c in 0..4 {
                for r in 0..4 {
                    let coeff = [[2, 3, 1, 1], [1, 2, 3, 1], [1, 1, 2, 3], [3, 1, 1, 2]][r];
                    out[4 * c + r] =
                        (0..4).fold(rk[4 * c + r], |acc, i| acc ^ gf_mul(s[4 * c + i], coeff[i]));
                }
            }
            out
        }
        let t = tables();
        let rk: [u8; 16] = core::array::from_fn(|i| (i * 19 + 5) as u8);
        for seed in 0..8u8 {
            let state: [u8; 16] =
                core::array::from_fn(|i| seed.wrapping_mul(41).wrapping_add((i * 7) as u8));
            let mut fused = [0u8; 16];
            for c in 0..4 {
                let col = t.t0[state[4 * c] as usize]
                    ^ t.t1[state[4 * ((c + 1) % 4) + 1] as usize]
                    ^ t.t2[state[4 * ((c + 2) % 4) + 2] as usize]
                    ^ t.t3[state[4 * ((c + 3) % 4) + 3] as usize]
                    ^ u32::from_le_bytes([rk[4 * c], rk[4 * c + 1], rk[4 * c + 2], rk[4 * c + 3]]);
                fused[4 * c..4 * c + 4].copy_from_slice(&col.to_le_bytes());
            }
            assert_eq!(fused, reference_round(&state, &rk, t), "seed {seed}");
        }
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes128::new(&key);
        let ciphertext = aes.encrypt_block(&plaintext);
        assert_eq!(hex(&ciphertext), "69c4e0d86a7b0430d8cdb78070b4c55a");
        assert_eq!(aes.decrypt_block(&ciphertext), plaintext);
    }

    #[test]
    fn gf_arithmetic() {
        // {57} x {83} = {c1} (FIPS 197 §4.2 example).
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        // Inversion: a * a^-1 = 1 for all nonzero a.
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse failed for {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn round_trip_random_blocks() {
        let aes = Aes128::new(&[0xA5; 16]);
        for i in 0..32u8 {
            let block: [u8; 16] =
                core::array::from_fn(|j| i.wrapping_mul(17).wrapping_add(j as u8));
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }

    #[test]
    fn interleaved_blocks_match_scalar_path() {
        let aes = Aes128::new(&[0x3C; 16]);
        // Widths 1, 2, 4 and 8: the kernel is width-generic even though
        // callers pin PARALLEL_BLOCKS.
        fn check<const N: usize>(aes: &Aes128) {
            for seed in 0..4u8 {
                let blocks: [[u8; 16]; N] = core::array::from_fn(|b| {
                    core::array::from_fn(|i| {
                        seed.wrapping_mul(89).wrapping_add((b * 31 + i * 13) as u8)
                    })
                });
                let batched = aes.encrypt_blocks(&blocks);
                for (b, block) in blocks.iter().enumerate() {
                    assert_eq!(batched[b], aes.encrypt_block(block), "seed {seed} slot {b}");
                }
            }
        }
        check::<1>(&aes);
        check::<2>(&aes);
        check::<PARALLEL_BLOCKS>(&aes);
        check::<8>(&aes);
    }

    #[test]
    fn multikey_blocks_match_per_key_scalar_path() {
        let keys: [Aes128; 4] = core::array::from_fn(|k| Aes128::new(&[k as u8 * 55 + 3; 16]));
        let blocks: [[u8; 16]; 4] =
            core::array::from_fn(|b| core::array::from_fn(|i| (b * 47 + i * 11) as u8));
        let refs: [&Aes128; 4] = core::array::from_fn(|k| &keys[k]);
        let batched = encrypt_blocks_multikey(refs, &blocks);
        for b in 0..4 {
            assert_eq!(batched[b], keys[b].encrypt_block(&blocks[b]), "slot {b}");
        }
    }

    #[test]
    fn different_keys_different_ciphertexts() {
        let p = [0u8; 16];
        let c1 = Aes128::new(&[0x00; 16]).encrypt_block(&p);
        let c2 = Aes128::new(&[0x01; 16]).encrypt_block(&p);
        assert_ne!(c1, c2);
    }
}
