//! AES-CCM authenticated encryption (RFC 3610 construction), as Bluetooth
//! Secure Connections uses for ACL link encryption.
//!
//! The nonce layout here is the simulation's: a 13-byte nonce built from
//! the 39-bit packet counter and the central's address, which preserves the
//! properties the paper's eavesdropping discussion depends on — a captured
//! ciphertext stream is decryptable *iff* you hold the link key (and can
//! therefore derive the session encryption key), with no per-packet secret.
//!
//! Validated by encrypt/decrypt round trips, tag-tamper rejection, and
//! structural tests; CBC-MAC and CTR components follow RFC 3610 §2 with
//! `M = 8` (8-byte tag) and `L = 2` (2-byte length field).

use blap_obs::prof;

use crate::aes::Aes128;

/// Tag length in bytes (`M` in RFC 3610 terms).
pub const TAG_LEN: usize = 8;

/// Nonce length in bytes (`15 - L` with `L = 2`).
pub const NONCE_LEN: usize = 13;

/// Errors from CCM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcmError {
    /// The ciphertext was shorter than a tag.
    Truncated,
    /// The authentication tag did not verify.
    TagMismatch,
    /// The payload exceeds the 2-byte length field.
    PayloadTooLong,
}

impl std::fmt::Display for CcmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcmError::Truncated => f.write_str("ciphertext shorter than the tag"),
            CcmError::TagMismatch => f.write_str("authentication tag mismatch"),
            CcmError::PayloadTooLong => f.write_str("payload longer than 65535 bytes"),
        }
    }
}

impl std::error::Error for CcmError {}

fn ctr_block(aes: &Aes128, nonce: &[u8; NONCE_LEN], counter: u16) -> [u8; 16] {
    let mut a = [0u8; 16];
    a[0] = 0x01; // L' = L - 1 = 1
    a[1..14].copy_from_slice(nonce);
    a[14..16].copy_from_slice(&counter.to_be_bytes());
    aes.encrypt_block(&a)
}

fn cbc_mac(aes: &Aes128, nonce: &[u8; NONCE_LEN], aad: &[u8], payload: &[u8]) -> [u8; TAG_LEN] {
    // B0: flags | nonce | message length.
    let mut b0 = [0u8; 16];
    let adata = !aad.is_empty() as u8;
    // flags = 64*Adata + 8*((M-2)/2) + (L-1)
    b0[0] = 64 * adata + 8 * (((TAG_LEN - 2) / 2) as u8) + 1;
    b0[1..14].copy_from_slice(nonce);
    b0[14..16].copy_from_slice(&(payload.len() as u16).to_be_bytes());

    let mut x = aes.encrypt_block(&b0);

    // Associated data, prefixed with its 2-byte length, zero-padded. ACL
    // AAD is a 2-byte handle, so the one-block fast path avoids building a
    // temporary header Vec per MAC.
    if !aad.is_empty() {
        if aad.len() <= 14 {
            let mut block = [0u8; 16];
            block[..2].copy_from_slice(&(aad.len() as u16).to_be_bytes());
            block[2..2 + aad.len()].copy_from_slice(aad);
            for i in 0..16 {
                block[i] ^= x[i];
            }
            x = aes.encrypt_block(&block);
        } else {
            let mut header = Vec::with_capacity(2 + aad.len());
            header.extend_from_slice(&(aad.len() as u16).to_be_bytes());
            header.extend_from_slice(aad);
            for chunk in header.chunks(16) {
                let mut block = [0u8; 16];
                block[..chunk.len()].copy_from_slice(chunk);
                for i in 0..16 {
                    block[i] ^= x[i];
                }
                x = aes.encrypt_block(&block);
            }
        }
    }

    // Payload blocks, zero-padded.
    for chunk in payload.chunks(16) {
        let mut block = [0u8; 16];
        block[..chunk.len()].copy_from_slice(chunk);
        for i in 0..16 {
            block[i] ^= x[i];
        }
        x = aes.encrypt_block(&block);
    }

    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(&x[..TAG_LEN]);
    tag
}

/// A CCM context with the AES key schedule expanded once.
///
/// The free [`encrypt`]/[`decrypt`] functions expand the 11 round keys on
/// every call; a long-lived `Ccm` pays that cost once per session key. The
/// eavesdropping kernel decrypts every captured frame under the same
/// session key, so it keeps one of these per candidate key instead of
/// re-deriving the schedule per frame.
#[derive(Clone, Debug)]
pub struct Ccm {
    aes: Aes128,
}

impl Ccm {
    /// Expands `key` into a reusable CCM context.
    pub fn new(key: &[u8; 16]) -> Self {
        Ccm {
            aes: Aes128::new(key),
        }
    }

    /// Encrypts `payload` with associated data `aad`, returning
    /// `ciphertext || tag`.
    ///
    /// # Errors
    ///
    /// Returns [`CcmError::PayloadTooLong`] for payloads over 65535 bytes.
    pub fn seal(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        payload: &[u8],
    ) -> Result<Vec<u8>, CcmError> {
        // One scope per sealed frame, not per AES block: the kernel runs
        // thousands of blocks per eavesdrop sweep, and a per-block guard
        // would dominate what it measures.
        let _prof = prof::scope("crypto.ccm_seal");
        if payload.len() > u16::MAX as usize {
            return Err(CcmError::PayloadTooLong);
        }
        let raw_tag = cbc_mac(&self.aes, nonce, aad, payload);

        let mut out = Vec::with_capacity(payload.len() + TAG_LEN);
        // CTR encryption of the payload, counters 1..
        for (i, chunk) in payload.chunks(16).enumerate() {
            let keystream = ctr_block(&self.aes, nonce, (i + 1) as u16);
            for (j, byte) in chunk.iter().enumerate() {
                out.push(byte ^ keystream[j]);
            }
        }
        // Tag encrypted with counter 0.
        let a0 = ctr_block(&self.aes, nonce, 0);
        for i in 0..TAG_LEN {
            out.push(raw_tag[i] ^ a0[i]);
        }
        Ok(out)
    }

    /// Decrypts `ciphertext || tag`, verifying the tag.
    ///
    /// # Errors
    ///
    /// Returns [`CcmError::Truncated`] for inputs shorter than a tag and
    /// [`CcmError::TagMismatch`] when authentication fails (wrong key,
    /// wrong nonce, or tampered data).
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
    ) -> Result<Vec<u8>, CcmError> {
        let _prof = prof::scope("crypto.ccm_open");
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(CcmError::Truncated);
        }
        let (ciphertext, tag) = ciphertext_and_tag.split_at(ciphertext_and_tag.len() - TAG_LEN);

        let mut payload = vec![0u8; ciphertext.len()];
        for (i, (chunk_out, chunk_in)) in payload
            .chunks_mut(16)
            .zip(ciphertext.chunks(16))
            .enumerate()
        {
            let keystream = ctr_block(&self.aes, nonce, (i + 1) as u16);
            for (j, byte) in chunk_out.iter_mut().enumerate() {
                *byte = chunk_in[j] ^ keystream[j];
            }
        }

        let expected = cbc_mac(&self.aes, nonce, aad, &payload);
        let a0 = ctr_block(&self.aes, nonce, 0);
        let mut received = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            received[i] = tag[i] ^ a0[i];
        }
        // Constant-time-ish comparison (enough for a simulation).
        let diff = expected
            .iter()
            .zip(&received)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
        if diff != 0 {
            return Err(CcmError::TagMismatch);
        }
        Ok(payload)
    }
}

/// Encrypts `payload` with associated data `aad`, returning
/// `ciphertext || tag`.
///
/// One-shot form of [`Ccm::seal`]; expands the key schedule per call.
///
/// # Errors
///
/// Returns [`CcmError::PayloadTooLong`] for payloads over 65535 bytes.
pub fn encrypt(
    key: &[u8; 16],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    payload: &[u8],
) -> Result<Vec<u8>, CcmError> {
    Ccm::new(key).seal(nonce, aad, payload)
}

/// Decrypts `ciphertext || tag`, verifying the tag.
///
/// One-shot form of [`Ccm::open`]; expands the key schedule per call.
///
/// # Errors
///
/// Returns [`CcmError::Truncated`] for inputs shorter than a tag and
/// [`CcmError::TagMismatch`] when authentication fails (wrong key, wrong
/// nonce, or tampered data).
pub fn decrypt(
    key: &[u8; 16],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext_and_tag: &[u8],
) -> Result<Vec<u8>, CcmError> {
    Ccm::new(key).open(nonce, aad, ciphertext_and_tag)
}

/// Builds the simulation's 13-byte ACL nonce from a packet counter and the
/// central's address.
pub fn acl_nonce(packet_counter: u64, central: blap_types::BdAddr) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..6].copy_from_slice(&central.to_bytes());
    nonce[5..13].copy_from_slice(&packet_counter.to_be_bytes());
    // (byte 5 is shared: top counter byte overlays the address LSB — fine,
    // the pair (counter, central) still injects uniquely for < 2^56
    // packets, far beyond any session.)
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> [u8; 16] {
        core::array::from_fn(|i| i as u8)
    }

    fn nonce(tag: u8) -> [u8; NONCE_LEN] {
        core::array::from_fn(|i| tag.wrapping_add(i as u8))
    }

    #[test]
    fn round_trip_various_lengths() {
        for len in [0usize, 1, 15, 16, 17, 64, 255] {
            let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = encrypt(&key(), &nonce(1), b"header", &payload).unwrap();
            assert_eq!(ct.len(), len + TAG_LEN);
            let pt = decrypt(&key(), &nonce(1), b"header", &ct).unwrap();
            assert_eq!(pt, payload, "length {len}");
        }
    }

    #[test]
    fn long_aad_round_trips_and_differs_from_short() {
        // > 14 bytes exercises the multi-block AAD path; both paths must
        // agree with each other only through the tag semantics.
        let long_aad = [0x31u8; 40];
        let ct = encrypt(&key(), &nonce(11), &long_aad, b"payload").unwrap();
        assert_eq!(
            decrypt(&key(), &nonce(11), &long_aad, &ct).unwrap(),
            b"payload"
        );
        assert!(decrypt(&key(), &nonce(11), &long_aad[..14], &ct).is_err());
    }

    #[test]
    fn tampering_detected() {
        let ct = encrypt(&key(), &nonce(2), b"", b"secret acl payload").unwrap();
        for i in 0..ct.len() {
            let mut tampered = ct.clone();
            tampered[i] ^= 0x01;
            assert_eq!(
                decrypt(&key(), &nonce(2), b"", &tampered),
                Err(CcmError::TagMismatch),
                "flip at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn wrong_key_nonce_or_aad_rejected() {
        let ct = encrypt(&key(), &nonce(3), b"aad", b"payload").unwrap();
        let mut wrong_key = key();
        wrong_key[0] ^= 1;
        assert!(decrypt(&wrong_key, &nonce(3), b"aad", &ct).is_err());
        assert!(decrypt(&key(), &nonce(4), b"aad", &ct).is_err());
        assert!(decrypt(&key(), &nonce(3), b"axd", &ct).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(
            decrypt(&key(), &nonce(5), b"", &[0u8; TAG_LEN - 1]),
            Err(CcmError::Truncated)
        );
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let payload = b"the quick brown fox";
        let ct = encrypt(&key(), &nonce(6), b"", payload).unwrap();
        assert_ne!(&ct[..payload.len()], payload.as_slice());
    }

    #[test]
    fn nonce_uniqueness_changes_ciphertext() {
        let p = b"same payload";
        let c1 = encrypt(&key(), &nonce(7), b"", p).unwrap();
        let c2 = encrypt(&key(), &nonce(8), b"", p).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn context_matches_one_shot_functions() {
        let ccm = Ccm::new(&key());
        for len in [0usize, 1, 16, 33, 100] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let one_shot = encrypt(&key(), &nonce(9), b"aad", &payload).unwrap();
            let sealed = ccm.seal(&nonce(9), b"aad", &payload).unwrap();
            assert_eq!(sealed, one_shot, "length {len}");
            assert_eq!(ccm.open(&nonce(9), b"aad", &sealed).unwrap(), payload);
        }
        assert!(ccm.open(&nonce(10), b"aad", &[0u8; 4]).is_err());
    }

    #[test]
    fn acl_nonce_injective_in_counter() {
        let central: blap_types::BdAddr = "aa:bb:cc:dd:ee:ff".parse().unwrap();
        let n1 = acl_nonce(1, central);
        let n2 = acl_nonce(2, central);
        assert_ne!(n1, n2);
    }
}
