//! AES-CCM authenticated encryption (RFC 3610 construction), as Bluetooth
//! Secure Connections uses for ACL link encryption.
//!
//! The nonce layout here is the simulation's: a 13-byte nonce built from
//! the 39-bit packet counter and the central's address, which preserves the
//! properties the paper's eavesdropping discussion depends on — a captured
//! ciphertext stream is decryptable *iff* you hold the link key (and can
//! therefore derive the session encryption key), with no per-packet secret.
//!
//! Validated by encrypt/decrypt round trips, tag-tamper rejection, and
//! structural tests; CBC-MAC and CTR components follow RFC 3610 §2 with
//! `M = 8` (8-byte tag) and `L = 2` (2-byte length field).

use blap_obs::prof;

use crate::aes::{self, Aes128};

/// Tag length in bytes (`M` in RFC 3610 terms).
pub const TAG_LEN: usize = 8;

/// Nonce length in bytes (`15 - L` with `L = 2`).
pub const NONCE_LEN: usize = 13;

/// Frames processed in lockstep by [`Ccm::open_many`]/[`Ccm::seal_many`]:
/// their CBC-MAC chains are serial *within* a frame but independent
/// *across* frames, so the batched paths run one chain per interleave slot
/// of [`Aes128::encrypt_blocks`].
pub const FRAME_LANES: usize = aes::PARALLEL_BLOCKS;

/// Candidate session keys tested in lockstep by [`open_check_keys`] — the
/// multi-key axis ([`aes::encrypt_blocks_multikey`]) the bulk
/// key-confirmation path batches over.
pub const KEY_LANES: usize = aes::PARALLEL_BLOCKS;

/// Errors from CCM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcmError {
    /// The ciphertext was shorter than a tag.
    Truncated,
    /// The authentication tag did not verify.
    TagMismatch,
    /// The payload exceeds the 2-byte length field.
    PayloadTooLong,
}

impl std::fmt::Display for CcmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcmError::Truncated => f.write_str("ciphertext shorter than the tag"),
            CcmError::TagMismatch => f.write_str("authentication tag mismatch"),
            CcmError::PayloadTooLong => f.write_str("payload longer than 65535 bytes"),
        }
    }
}

impl std::error::Error for CcmError {}

/// The CTR input block `A_i` (RFC 3610 §2.3), *before* encryption.
#[inline(always)]
fn a_block(nonce: &[u8; NONCE_LEN], counter: u16) -> [u8; 16] {
    let mut a = [0u8; 16];
    a[0] = 0x01; // L' = L - 1 = 1
    a[1..14].copy_from_slice(nonce);
    a[14..16].copy_from_slice(&counter.to_be_bytes());
    a
}

fn ctr_block(aes: &Aes128, nonce: &[u8; NONCE_LEN], counter: u16) -> [u8; 16] {
    aes.encrypt_block(&a_block(nonce, counter))
}

/// The CBC-MAC header block `B_0`: flags, nonce, message length.
#[inline(always)]
fn b0_block(nonce: &[u8; NONCE_LEN], adata: bool, payload_len: usize) -> [u8; 16] {
    let mut b0 = [0u8; 16];
    // flags = 64*Adata + 8*((M-2)/2) + (L-1)
    b0[0] = 64 * adata as u8 + 8 * (((TAG_LEN - 2) / 2) as u8) + 1;
    b0[1..14].copy_from_slice(nonce);
    b0[14..16].copy_from_slice(&(payload_len as u16).to_be_bytes());
    b0
}

/// How many CBC-MAC blocks the length-prefixed associated data occupies.
fn aad_blocks(aad: &[u8]) -> usize {
    if aad.is_empty() {
        0
    } else {
        (2 + aad.len()).div_ceil(16)
    }
}

/// The `j`-th 16-byte chunk (zero-padded) of the conceptual stream
/// `len(aad) as u16_be || aad` — the associated-data section of the
/// CBC-MAC input, built without materializing a header Vec.
#[inline(always)]
fn aad_chunk(aad: &[u8], j: usize) -> [u8; 16] {
    let mut block = [0u8; 16];
    let mut fill = 0usize;
    if j == 0 {
        block[..2].copy_from_slice(&(aad.len() as u16).to_be_bytes());
        fill = 2;
    }
    let start = (16 * j).saturating_sub(2);
    let end = (16 * (j + 1) - 2).min(aad.len());
    if start < end {
        block[fill..fill + (end - start)].copy_from_slice(&aad[start..end]);
    }
    block
}

/// The `j`-th CBC-MAC input block of a frame (`B_0`, then the
/// length-prefixed associated data, then the zero-padded payload), for the
/// lockstep batched chains. `j` must be below `1 + aad_blocks(aad) +
/// payload.len().div_ceil(16)`.
#[inline(always)]
fn mac_block(nonce: &[u8; NONCE_LEN], aad: &[u8], payload: &[u8], j: usize) -> [u8; 16] {
    if j == 0 {
        return b0_block(nonce, !aad.is_empty(), payload.len());
    }
    let header = aad_blocks(aad);
    if j <= header {
        return aad_chunk(aad, j - 1);
    }
    let mut block = [0u8; 16];
    let chunk = &payload[16 * (j - 1 - header)..];
    let take = chunk.len().min(16);
    block[..take].copy_from_slice(&chunk[..take]);
    block
}

fn cbc_mac(aes: &Aes128, nonce: &[u8; NONCE_LEN], aad: &[u8], payload: &[u8]) -> [u8; TAG_LEN] {
    let mut x = aes.encrypt_block(&b0_block(nonce, !aad.is_empty(), payload.len()));

    // Associated data, prefixed with its 2-byte length, zero-padded. ACL
    // AAD is a 2-byte handle, so the one-block fast path avoids building a
    // temporary header Vec per MAC.
    if !aad.is_empty() {
        if aad.len() <= 14 {
            let mut block = [0u8; 16];
            block[..2].copy_from_slice(&(aad.len() as u16).to_be_bytes());
            block[2..2 + aad.len()].copy_from_slice(aad);
            for i in 0..16 {
                block[i] ^= x[i];
            }
            x = aes.encrypt_block(&block);
        } else {
            let mut header = Vec::with_capacity(2 + aad.len());
            header.extend_from_slice(&(aad.len() as u16).to_be_bytes());
            header.extend_from_slice(aad);
            for chunk in header.chunks(16) {
                let mut block = [0u8; 16];
                block[..chunk.len()].copy_from_slice(chunk);
                for i in 0..16 {
                    block[i] ^= x[i];
                }
                x = aes.encrypt_block(&block);
            }
        }
    }

    // Payload blocks, zero-padded.
    for chunk in payload.chunks(16) {
        let mut block = [0u8; 16];
        block[..chunk.len()].copy_from_slice(chunk);
        for i in 0..16 {
            block[i] ^= x[i];
        }
        x = aes.encrypt_block(&block);
    }

    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(&x[..TAG_LEN]);
    tag
}

/// A CCM context with the AES key schedule expanded once.
///
/// The free [`encrypt`]/[`decrypt`] functions expand the 11 round keys on
/// every call; a long-lived `Ccm` pays that cost once per session key. The
/// eavesdropping kernel decrypts every captured frame under the same
/// session key, so it keeps one of these per candidate key instead of
/// re-deriving the schedule per frame.
#[derive(Clone, Debug)]
pub struct Ccm {
    aes: Aes128,
}

impl Ccm {
    /// Expands `key` into a reusable CCM context.
    pub fn new(key: &[u8; 16]) -> Self {
        Ccm {
            aes: Aes128::new(key),
        }
    }

    /// Encrypts `payload` with associated data `aad`, returning
    /// `ciphertext || tag`.
    ///
    /// # Errors
    ///
    /// Returns [`CcmError::PayloadTooLong`] for payloads over 65535 bytes.
    pub fn seal(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        payload: &[u8],
    ) -> Result<Vec<u8>, CcmError> {
        // One scope per sealed frame, not per AES block: the kernel runs
        // thousands of blocks per eavesdrop sweep, and a per-block guard
        // would dominate what it measures.
        let _prof = prof::scope("crypto.ccm_seal");
        if payload.len() > u16::MAX as usize {
            return Err(CcmError::PayloadTooLong);
        }
        let raw_tag = cbc_mac(&self.aes, nonce, aad, payload);

        let mut out = Vec::with_capacity(payload.len() + TAG_LEN);
        // CTR encryption of the payload, counters 1..
        for (i, chunk) in payload.chunks(16).enumerate() {
            let keystream = ctr_block(&self.aes, nonce, (i + 1) as u16);
            for (j, byte) in chunk.iter().enumerate() {
                out.push(byte ^ keystream[j]);
            }
        }
        // Tag encrypted with counter 0.
        let a0 = ctr_block(&self.aes, nonce, 0);
        for i in 0..TAG_LEN {
            out.push(raw_tag[i] ^ a0[i]);
        }
        Ok(out)
    }

    /// Decrypts `ciphertext || tag`, verifying the tag.
    ///
    /// # Errors
    ///
    /// Returns [`CcmError::Truncated`] for inputs shorter than a tag and
    /// [`CcmError::TagMismatch`] when authentication fails (wrong key,
    /// wrong nonce, or tampered data).
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
    ) -> Result<Vec<u8>, CcmError> {
        let _prof = prof::scope("crypto.ccm_open");
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(CcmError::Truncated);
        }
        let (ciphertext, tag) = ciphertext_and_tag.split_at(ciphertext_and_tag.len() - TAG_LEN);

        let mut payload = vec![0u8; ciphertext.len()];
        for (i, (chunk_out, chunk_in)) in payload
            .chunks_mut(16)
            .zip(ciphertext.chunks(16))
            .enumerate()
        {
            let keystream = ctr_block(&self.aes, nonce, (i + 1) as u16);
            for (j, byte) in chunk_out.iter_mut().enumerate() {
                *byte = chunk_in[j] ^ keystream[j];
            }
        }

        let expected = cbc_mac(&self.aes, nonce, aad, &payload);
        let a0 = ctr_block(&self.aes, nonce, 0);
        let mut received = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            received[i] = tag[i] ^ a0[i];
        }
        // Constant-time-ish comparison (enough for a simulation).
        let diff = expected
            .iter()
            .zip(&received)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
        if diff != 0 {
            return Err(CcmError::TagMismatch);
        }
        Ok(payload)
    }
}

impl Ccm {
    /// Zero-allocation [`Ccm::seal`]: clears `out` and appends
    /// `ciphertext || tag`. With enough capacity retained from a previous
    /// call this never allocates — the scratch-reuse form the per-frame
    /// loops use (PR-3 HCI `encode_into` idiom). The CTR keystream runs
    /// through the interleaved kernel ([`Aes128::encrypt_blocks`]),
    /// [`aes::PARALLEL_BLOCKS`] counters per pass.
    ///
    /// # Errors
    ///
    /// Returns [`CcmError::PayloadTooLong`] for payloads over 65535 bytes
    /// (`out` is left cleared).
    pub fn seal_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CcmError> {
        let _prof = prof::scope("crypto.ccm_seal");
        out.clear();
        if payload.len() > u16::MAX as usize {
            return Err(CcmError::PayloadTooLong);
        }
        out.reserve(payload.len() + TAG_LEN);
        let raw_tag = cbc_mac(&self.aes, nonce, aad, payload);
        let a0 = self.ctr_xor_into(nonce, payload, out);
        for i in 0..TAG_LEN {
            out.push(raw_tag[i] ^ a0[i]);
        }
        Ok(())
    }

    /// Zero-allocation [`Ccm::open`]: clears `out` and appends the
    /// verified plaintext. On any error `out` is left cleared — the
    /// unauthenticated bytes are never observable. Keystream generation is
    /// batched like [`Ccm::seal_into`]; the CBC-MAC chain stays serial
    /// (it is serial by construction *within* a frame — [`Ccm::open_many`]
    /// batches it *across* frames).
    ///
    /// # Errors
    ///
    /// Returns [`CcmError::Truncated`] for inputs shorter than a tag and
    /// [`CcmError::TagMismatch`] when authentication fails.
    pub fn open_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CcmError> {
        let _prof = prof::scope("crypto.ccm_open");
        out.clear();
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(CcmError::Truncated);
        }
        let (ciphertext, tag) = ciphertext_and_tag.split_at(ciphertext_and_tag.len() - TAG_LEN);
        out.reserve(ciphertext.len());
        let a0 = self.ctr_xor_into(nonce, ciphertext, out);
        let expected = cbc_mac(&self.aes, nonce, aad, out);
        let mut diff = 0u8;
        for i in 0..TAG_LEN {
            diff |= expected[i] ^ tag[i] ^ a0[i];
        }
        if diff != 0 {
            out.clear();
            return Err(CcmError::TagMismatch);
        }
        Ok(())
    }

    /// Verifies the tag without materializing the plaintext (one stack
    /// block of scratch) — the scalar confirmation path for the batched
    /// key-candidate verdicts of [`open_check_keys`], mirroring how the
    /// PIN cracker re-confirms batch hits with the scalar engine.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ccm::open`]: [`CcmError::Truncated`] or
    /// [`CcmError::TagMismatch`].
    pub fn verify(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
    ) -> Result<(), CcmError> {
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(CcmError::Truncated);
        }
        let (ciphertext, tag) = ciphertext_and_tag.split_at(ciphertext_and_tag.len() - TAG_LEN);
        let mut x = self
            .aes
            .encrypt_block(&b0_block(nonce, !aad.is_empty(), ciphertext.len()));
        for j in 0..aad_blocks(aad) {
            x = self.aes.encrypt_block(&xor16(&x, &aad_chunk(aad, j)));
        }
        for (i, chunk) in ciphertext.chunks(16).enumerate() {
            let ks = ctr_block(&self.aes, nonce, (i + 1) as u16);
            let mut block = [0u8; 16];
            for (b, &byte) in chunk.iter().enumerate() {
                block[b] = byte ^ ks[b];
            }
            x = self.aes.encrypt_block(&xor16(&x, &block));
        }
        let a0 = ctr_block(&self.aes, nonce, 0);
        let mut diff = 0u8;
        for i in 0..TAG_LEN {
            diff |= x[i] ^ tag[i] ^ a0[i];
        }
        if diff != 0 {
            return Err(CcmError::TagMismatch);
        }
        Ok(())
    }

    /// Opens a slice of frames with both parallelism axes exploited:
    /// CTR keystream blocks interleaved across frames *and* the per-frame
    /// CBC-MAC chains run [`FRAME_LANES`] frames in lockstep (serial
    /// within a frame, independent across frames — the across-frames
    /// batching axis PR 6 used for SAFER+ candidates). Results land in the
    /// reusable `out` buffer: one plaintext arena plus a per-frame
    /// verdict, allocation-free once `out` has warmed up.
    ///
    /// Per-frame errors surface through [`OpenBatch::get`]; a truncated or
    /// tampered frame never hides the neighbours in its batch.
    pub fn open_many_into(&self, frames: &[SealedFrame<'_>], out: &mut OpenBatch) {
        let _prof = prof::scope("crypto.ccm_open_many");
        out.data.clear();
        out.frames.clear();
        const W: usize = FRAME_LANES;
        let mut iter = frames.chunks(W);
        let Some(first) = iter.next() else {
            return;
        };
        // Software pipeline, one chunk deep: a chunk's CBC-MAC passes are
        // serially dependent (pass j+1 chains on pass j's outputs), which
        // leaves the out-of-order window starved between passes — measured
        // ~60 ns/block against the kernel's ~38 ns throughput. CTR passes
        // have no such chain, so the loop below runs chunk k's MAC passes
        // alternated with chunk k+1's CTR passes: every serial MAC step
        // has a full pass of independent work in flight next to it.
        let mut cur_chunk = first;
        let mut cur = prepare_chunk(cur_chunk, &mut out.data);
        let cur_start = cur.start;
        for j in 0..=cur.max_ctr {
            let region = &mut out.data[cur_start..];
            self.ctr_pass(&mut cur, cur_chunk, j, region, cur_start);
        }
        loop {
            match iter.next() {
                Some(next_chunk) => {
                    let mut next = prepare_chunk(next_chunk, &mut out.data);
                    let split = next.start;
                    let (mac_data, ctr_data) = out.data.split_at_mut(split);
                    let mut x = [[0u8; 16]; W];
                    let passes = cur.mac_max.max(next.max_ctr + 1);
                    for j in 0..passes {
                        if j <= next.max_ctr {
                            self.ctr_pass(&mut next, next_chunk, j, ctr_data, split);
                        }
                        if j < cur.mac_max {
                            self.mac_pass(&cur, cur_chunk, j, mac_data, &mut x);
                        }
                    }
                    push_verdicts(&cur, cur_chunk, &x, out);
                    cur = next;
                    cur_chunk = next_chunk;
                }
                None => {
                    // Drain: the last chunk's MAC has no CTR to overlap.
                    let mut x = [[0u8; 16]; W];
                    for j in 0..cur.mac_max {
                        let data = &out.data;
                        self.mac_pass(&cur, cur_chunk, j, data, &mut x);
                    }
                    push_verdicts(&cur, cur_chunk, &x, out);
                    return;
                }
            }
        }
    }

    /// One lockstep CTR pass: encrypts counter `j` of every lane in the
    /// chunk and xors the keystream into the arena region (`rebase` maps
    /// the chunk's absolute arena offsets into `data`). Pass 0 captures the
    /// per-lane tag-whitening pad `A_0` instead of producing payload.
    fn ctr_pass(
        &self,
        g: &mut ChunkGeom,
        chunk: &[SealedFrame<'_>],
        j: usize,
        data: &mut [u8],
        rebase: usize,
    ) {
        let mut inputs = g.template;
        if j == 0 {
            g.a0 = self.aes.encrypt_blocks(&inputs);
            return;
        }
        let cb = (j as u16).to_be_bytes();
        for input in &mut inputs {
            input[14] = cb[0];
            input[15] = cb[1];
        }
        let ks = self.aes.encrypt_blocks(&inputs);
        for (i, frame) in chunk.iter().enumerate() {
            if j <= g.nblocks[i] {
                let lo = 16 * (j - 1);
                let hi = g.ct_len[i].min(16 * j);
                let ct = &frame.ciphertext_and_tag[lo..hi];
                let dst = &mut data[g.base[i] - rebase + lo..g.base[i] - rebase + hi];
                for (b, (&c, k)) in ct.iter().zip(&ks[i]).enumerate() {
                    dst[b] = c ^ k;
                }
            }
        }
    }

    /// One lockstep CBC-MAC pass: chains block `j` of every live lane
    /// (`B_0`, then length-prefixed AAD, then the decrypted payload read
    /// back out of the arena). Exhausted lanes re-encrypt their state into
    /// a discarded slot rather than branching the kernel.
    fn mac_pass(
        &self,
        g: &ChunkGeom,
        chunk: &[SealedFrame<'_>],
        j: usize,
        data: &[u8],
        x: &mut [[u8; 16]; FRAME_LANES],
    ) {
        let mut inputs = *x;
        for i in 0..FRAME_LANES {
            if j >= g.blocks[i] {
                continue;
            }
            if j == 0 {
                inputs[i] = xor16(&x[i], &g.b0[i]);
            } else if j <= g.header[i] {
                inputs[i] = xor16(&x[i], &aad_chunk(chunk[i].aad, j - 1));
            } else {
                // Payload block: xor the (zero-padded) chunk straight into
                // the chaining state — no 16-byte staging copy.
                let off = 16 * (j - 1 - g.header[i]);
                let take = (g.ct_len[i] - off).min(16);
                let payload = &data[g.base[i] + off..g.base[i] + off + take];
                for (b, &byte) in payload.iter().enumerate() {
                    inputs[i][b] ^= byte;
                }
            }
        }
        let y = self.aes.encrypt_blocks(&inputs);
        for i in 0..FRAME_LANES {
            if j < g.blocks[i] {
                x[i] = y[i];
            }
        }
    }

    /// Allocating convenience over [`Ccm::open_many_into`]: one
    /// `Vec<u8>` per successfully opened frame.
    pub fn open_many(&self, frames: &[SealedFrame<'_>]) -> Vec<Result<Vec<u8>, CcmError>> {
        let mut batch = OpenBatch::new();
        self.open_many_into(frames, &mut batch);
        (0..batch.len())
            .map(|i| batch.get(i).map(<[u8]>::to_vec))
            .collect()
    }

    /// Seals a slice of frames with the CBC-MAC chains batched
    /// [`FRAME_LANES`]-wide across frames and each frame's CTR keystream
    /// through the interleaved kernel.
    ///
    /// # Errors
    ///
    /// Returns [`CcmError::PayloadTooLong`] if *any* payload exceeds the
    /// 2-byte length field (nothing is sealed — a mixed batch is a caller
    /// bug, not a partial success).
    pub fn seal_many(&self, frames: &[PlainFrame<'_>]) -> Result<Vec<Vec<u8>>, CcmError> {
        let _prof = prof::scope("crypto.ccm_seal_many");
        if frames.iter().any(|f| f.payload.len() > u16::MAX as usize) {
            return Err(CcmError::PayloadTooLong);
        }
        const W: usize = FRAME_LANES;
        let mut sealed = Vec::with_capacity(frames.len());
        for chunk in frames.chunks(W) {
            let lanes = chunk.len();
            let mac_lanes: [MacLane<'_>; W] = core::array::from_fn(|i| {
                let lane = i.min(lanes - 1);
                let aad = chunk[lane].aad;
                MacLane {
                    b0: b0_block(
                        &chunk[lane].nonce,
                        !aad.is_empty(),
                        chunk[lane].payload.len(),
                    ),
                    aad,
                    header: aad_blocks(aad),
                    payload: chunk[lane].payload,
                    blocks: if i < lanes {
                        1 + aad_blocks(aad) + chunk[lane].payload.len().div_ceil(16)
                    } else {
                        0
                    },
                }
            });
            let tags = cbc_mac_lockstep(&self.aes, &mac_lanes);
            for (i, frame) in chunk.iter().enumerate() {
                let mut out = Vec::with_capacity(frame.payload.len() + TAG_LEN);
                let a0 = self.ctr_xor_into(&frame.nonce, frame.payload, &mut out);
                for b in 0..TAG_LEN {
                    out.push(tags[i][b] ^ a0[b]);
                }
                sealed.push(out);
            }
        }
        Ok(sealed)
    }

    /// CTR-transforms `src` (counters 1..) appending to `out`, keystream
    /// blocks generated [`aes::PARALLEL_BLOCKS`] at a time through the
    /// interleaved kernel; returns the counter-0 keystream block (the tag
    /// whitening pad), which rides in the first interleave pass for free.
    fn ctr_xor_into(&self, nonce: &[u8; NONCE_LEN], src: &[u8], out: &mut Vec<u8>) -> [u8; 16] {
        const W: usize = aes::PARALLEL_BLOCKS;
        let nblocks = src.len().div_ceil(16);
        let mut a0 = [0u8; 16];
        let mut counter = 0usize;
        while counter <= nblocks {
            // Over-generating up to W-1 keystream blocks past the end is
            // harmless: the counters stay far below the u16 field (the
            // 65535-byte payload cap bounds them at 4096).
            let inputs: [[u8; 16]; W] =
                core::array::from_fn(|i| a_block(nonce, (counter + i) as u16));
            let ks = self.aes.encrypt_blocks(&inputs);
            for (i, k) in ks.iter().enumerate() {
                let c = counter + i;
                if c == 0 {
                    a0 = *k;
                } else if c <= nblocks {
                    let chunk = &src[16 * (c - 1)..src.len().min(16 * c)];
                    for (b, &byte) in chunk.iter().enumerate() {
                        out.push(byte ^ k[b]);
                    }
                }
            }
            counter += W;
        }
        a0
    }
}

/// Borrowed view of one sealed frame for the batched open paths.
#[derive(Clone, Copy, Debug)]
pub struct SealedFrame<'a> {
    /// The 13-byte CCM nonce the frame was sealed under.
    pub nonce: [u8; NONCE_LEN],
    /// Associated data (authenticated, not encrypted).
    pub aad: &'a [u8],
    /// `ciphertext || tag` as captured.
    pub ciphertext_and_tag: &'a [u8],
}

/// Borrowed view of one plaintext frame for [`Ccm::seal_many`].
#[derive(Clone, Copy, Debug)]
pub struct PlainFrame<'a> {
    /// The 13-byte CCM nonce to seal under (unique per frame!).
    pub nonce: [u8; NONCE_LEN],
    /// Associated data (authenticated, not encrypted).
    pub aad: &'a [u8],
    /// The payload to seal.
    pub payload: &'a [u8],
}

/// Reusable output of [`Ccm::open_many_into`]: all plaintexts in one
/// arena plus a per-frame verdict. Clearing on reuse retains capacity, so
/// a steady-state decrypt loop stops allocating once the arena has grown
/// to the largest batch it has seen.
#[derive(Clone, Debug, Default)]
pub struct OpenBatch {
    /// Plaintext arena, frames concatenated in input order.
    data: Vec<u8>,
    /// Per-frame verdict: arena byte range, or the open error.
    frames: Vec<Result<(u32, u32), CcmError>>,
}

impl OpenBatch {
    /// An empty buffer; capacity grows on first use.
    pub fn new() -> OpenBatch {
        OpenBatch::default()
    }

    /// Number of frames in the last [`Ccm::open_many_into`] call.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the buffer holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The verified plaintext of frame `i`, or why it failed to open.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn get(&self, i: usize) -> Result<&[u8], CcmError> {
        match &self.frames[i] {
            Ok((lo, hi)) => Ok(&self.data[*lo as usize..*hi as usize]),
            Err(err) => Err(err.clone()),
        }
    }

    /// Per-frame outcomes in input order.
    pub fn iter(&self) -> impl Iterator<Item = Result<&[u8], CcmError>> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Per-chunk lane geometry and carried CTR results for the pipelined
/// [`Ccm::open_many_into`]: everything the CTR and MAC passes need, with
/// no borrows into the arena so two chunks can be in flight at once.
struct ChunkGeom {
    /// Arena offset where this chunk's plaintext region starts.
    start: usize,
    /// Absolute arena offset of each lane's plaintext.
    base: [usize; FRAME_LANES],
    ct_len: [usize; FRAME_LANES],
    valid: [bool; FRAME_LANES],
    /// CTR payload blocks per lane (`ct_len.div_ceil(16)`).
    nblocks: [usize; FRAME_LANES],
    max_ctr: usize,
    /// `aad_blocks(aad)` per lane.
    header: [usize; FRAME_LANES],
    /// Total MAC blocks per lane; 0 marks a padding/invalid lane.
    blocks: [usize; FRAME_LANES],
    mac_max: usize,
    /// Precomputed `B_0` per lane (flags, nonce, length).
    b0: [[u8; 16]; FRAME_LANES],
    /// `A_0` CTR template per lane — passes re-stamp only the counter.
    template: [[u8; 16]; FRAME_LANES],
    /// Per-lane tag-whitening pad, captured by CTR pass 0.
    a0: [[u8; 16]; FRAME_LANES],
}

/// Lays out a chunk's plaintext region in the arena and precomputes the
/// per-lane block geometry. Too-short frames get zero blocks of work and a
/// [`CcmError::Truncated`] verdict later. Padding lanes (ragged last
/// chunk) replicate lane 0's nonce into their templates so the kernel
/// encrypts something valid into a discarded slot.
fn prepare_chunk(chunk: &[SealedFrame<'_>], data: &mut Vec<u8>) -> ChunkGeom {
    const W: usize = FRAME_LANES;
    let lanes = chunk.len();
    let start = data.len();
    let mut base = [0usize; W];
    let mut ct_len = [0usize; W];
    let mut valid = [false; W];
    for (i, frame) in chunk.iter().enumerate() {
        if frame.ciphertext_and_tag.len() >= TAG_LEN {
            valid[i] = true;
            ct_len[i] = frame.ciphertext_and_tag.len() - TAG_LEN;
        }
        base[i] = data.len();
        data.resize(data.len() + ct_len[i], 0);
    }
    let nblocks: [usize; W] = core::array::from_fn(|i| ct_len[i].div_ceil(16));
    let mut header = [0usize; W];
    let mut blocks = [0usize; W];
    let mut b0 = [[0u8; 16]; W];
    let mut template = [[0u8; 16]; W];
    for i in 0..W {
        let lane = i.min(lanes - 1);
        let aad = chunk[lane].aad;
        header[i] = aad_blocks(aad);
        b0[i] = b0_block(&chunk[lane].nonce, !aad.is_empty(), ct_len[lane]);
        template[i] = a_block(&chunk[lane].nonce, 0);
        if i < lanes && valid[i] {
            blocks[i] = 1 + header[i] + nblocks[i];
        }
    }
    ChunkGeom {
        start,
        base,
        ct_len,
        valid,
        nblocks,
        max_ctr: *nblocks.iter().max().expect("W > 0"),
        header,
        blocks,
        mac_max: *blocks.iter().max().expect("W > 0"),
        b0,
        template,
        a0: [[0u8; 16]; W],
    }
}

/// Compares each lane's final MAC state against its (whitened) received
/// tag and records the per-frame verdicts.
fn push_verdicts(
    g: &ChunkGeom,
    chunk: &[SealedFrame<'_>],
    x: &[[u8; 16]; FRAME_LANES],
    out: &mut OpenBatch,
) {
    for (i, frame) in chunk.iter().enumerate() {
        if !g.valid[i] {
            out.frames.push(Err(CcmError::Truncated));
            continue;
        }
        let tag = &frame.ciphertext_and_tag[g.ct_len[i]..];
        let mut diff = 0u8;
        for b in 0..TAG_LEN {
            diff |= x[i][b] ^ tag[b] ^ g.a0[i][b];
        }
        if diff == 0 {
            out.frames
                .push(Ok((g.base[i] as u32, (g.base[i] + g.ct_len[i]) as u32)));
        } else {
            out.frames.push(Err(CcmError::TagMismatch));
        }
    }
}

/// One lane of a lockstep CBC-MAC batch.
struct MacLane<'a> {
    /// The precomputed `B_0` header block (flags, nonce, length) — built
    /// once per lane so the per-pass hot loop never touches the nonce.
    b0: [u8; 16],
    aad: &'a [u8],
    /// `aad_blocks(aad)`, hoisted out of the per-block selection.
    header: usize,
    payload: &'a [u8],
    /// Total MAC blocks; 0 marks a padding/invalid lane that only keeps an
    /// interleave slot occupied.
    blocks: usize,
}

/// Runs [`FRAME_LANES`] CBC-MAC chains in lockstep: step `j` encrypts
/// block `j` of every live lane in one interleaved pass. Lanes past their
/// last block re-encrypt garbage in their slot without updating their
/// state — ragged batches stay branch-light.
fn cbc_mac_lockstep(
    aes: &Aes128,
    lanes: &[MacLane<'_>; FRAME_LANES],
) -> [[u8; TAG_LEN]; FRAME_LANES] {
    const W: usize = FRAME_LANES;
    let max_blocks = lanes.iter().map(|l| l.blocks).max().unwrap_or(0);
    let mut x = [[0u8; 16]; W];
    for j in 0..max_blocks {
        let mut inputs = x;
        for (i, lane) in lanes.iter().enumerate() {
            if j >= lane.blocks {
                // Exhausted lane: re-encrypt the current state into a
                // discarded slot rather than branching the kernel.
            } else if j == 0 {
                inputs[i] = xor16(&x[i], &lane.b0);
            } else if j <= lane.header {
                inputs[i] = xor16(&x[i], &aad_chunk(lane.aad, j - 1));
            } else {
                // Payload block: xor the (zero-padded) chunk straight into
                // the chaining state — no 16-byte staging copy.
                let off = 16 * (j - 1 - lane.header);
                let take = (lane.payload.len() - off).min(16);
                for (dst, src) in inputs[i].iter_mut().zip(&lane.payload[off..off + take]) {
                    *dst ^= src;
                }
            }
        }
        let y = aes.encrypt_blocks(&inputs);
        for i in 0..W {
            if j < lanes[i].blocks {
                x[i] = y[i];
            }
        }
    }
    core::array::from_fn(|i| core::array::from_fn(|b| x[i][b]))
}

/// Verifies one sealed frame under [`KEY_LANES`] candidate session keys at
/// once — the eavesdrop analogue of the PIN cracker's
/// `check_batch`: lanes are *keys*, not frames, interleaved through
/// [`aes::encrypt_blocks_multikey`]. Returns a bitmask of lanes whose tag
/// authenticated (bit `i` = `ccms[i]`); a truncated input returns 0.
///
/// `scratch` holds the per-lane trial decryptions between the CTR and MAC
/// phases and is reused across calls without allocating in steady state.
/// Callers should re-confirm any set lane with the scalar [`Ccm::verify`],
/// like the PIN cracker re-confirms batch hits.
pub fn open_check_keys(
    ccms: [&Ccm; KEY_LANES],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext_and_tag: &[u8],
    scratch: &mut Vec<u8>,
) -> u8 {
    let _prof = prof::scope("crypto.ccm_check_keys");
    const W: usize = KEY_LANES;
    if ciphertext_and_tag.len() < TAG_LEN {
        return 0;
    }
    let (ct, tag) = ciphertext_and_tag.split_at(ciphertext_and_tag.len() - TAG_LEN);
    let nblocks = ct.len().div_ceil(16);
    let keys: [&Aes128; W] = core::array::from_fn(|i| &ccms[i].aes);

    // CTR phase: the A_j input is key-independent, so every pass encrypts
    // the same block under the W candidate schedules.
    scratch.clear();
    scratch.resize(W * ct.len(), 0);
    let mut a0 = [[0u8; 16]; W];
    for j in 0..=nblocks {
        let block = a_block(nonce, j as u16);
        let ks = aes::encrypt_blocks_multikey(keys, &[block; W]);
        if j == 0 {
            a0 = ks;
            continue;
        }
        let lo = 16 * (j - 1);
        let hi = ct.len().min(16 * j);
        for i in 0..W {
            let dst = &mut scratch[i * ct.len() + lo..i * ct.len() + hi];
            for (b, (&c, k)) in ct[lo..hi].iter().zip(&ks[i]).enumerate() {
                dst[b] = c ^ k;
            }
        }
    }

    // MAC phase: each lane chains over its own trial plaintext.
    let blocks = 1 + aad_blocks(aad) + nblocks;
    let mut x = [[0u8; 16]; W];
    for j in 0..blocks {
        let inputs: [[u8; 16]; W] = core::array::from_fn(|i| {
            let payload = &scratch[i * ct.len()..(i + 1) * ct.len()];
            xor16(&x[i], &mac_block(nonce, aad, payload, j))
        });
        x = aes::encrypt_blocks_multikey(keys, &inputs);
    }

    let mut mask = 0u8;
    for i in 0..W {
        let mut diff = 0u8;
        for b in 0..TAG_LEN {
            diff |= x[i][b] ^ tag[b] ^ a0[i][b];
        }
        if diff == 0 {
            mask |= 1 << i;
        }
    }
    mask
}

#[inline(always)]
fn xor16(a: &[u8; 16], b: &[u8; 16]) -> [u8; 16] {
    core::array::from_fn(|i| a[i] ^ b[i])
}

/// Encrypts `payload` with associated data `aad`, returning
/// `ciphertext || tag`.
///
/// One-shot form of [`Ccm::seal`]; expands the key schedule per call.
///
/// # Errors
///
/// Returns [`CcmError::PayloadTooLong`] for payloads over 65535 bytes.
pub fn encrypt(
    key: &[u8; 16],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    payload: &[u8],
) -> Result<Vec<u8>, CcmError> {
    Ccm::new(key).seal(nonce, aad, payload)
}

/// Decrypts `ciphertext || tag`, verifying the tag.
///
/// One-shot form of [`Ccm::open`]; expands the key schedule per call.
///
/// # Errors
///
/// Returns [`CcmError::Truncated`] for inputs shorter than a tag and
/// [`CcmError::TagMismatch`] when authentication fails (wrong key, wrong
/// nonce, or tampered data).
pub fn decrypt(
    key: &[u8; 16],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext_and_tag: &[u8],
) -> Result<Vec<u8>, CcmError> {
    Ccm::new(key).open(nonce, aad, ciphertext_and_tag)
}

/// Builds the simulation's 13-byte ACL nonce from a packet counter and the
/// central's address.
pub fn acl_nonce(packet_counter: u64, central: blap_types::BdAddr) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..6].copy_from_slice(&central.to_bytes());
    nonce[5..13].copy_from_slice(&packet_counter.to_be_bytes());
    // (byte 5 is shared: top counter byte overlays the address LSB — fine,
    // the pair (counter, central) still injects uniquely for < 2^56
    // packets, far beyond any session.)
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> [u8; 16] {
        core::array::from_fn(|i| i as u8)
    }

    fn nonce(tag: u8) -> [u8; NONCE_LEN] {
        core::array::from_fn(|i| tag.wrapping_add(i as u8))
    }

    #[test]
    fn round_trip_various_lengths() {
        for len in [0usize, 1, 15, 16, 17, 64, 255] {
            let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = encrypt(&key(), &nonce(1), b"header", &payload).unwrap();
            assert_eq!(ct.len(), len + TAG_LEN);
            let pt = decrypt(&key(), &nonce(1), b"header", &ct).unwrap();
            assert_eq!(pt, payload, "length {len}");
        }
    }

    #[test]
    fn long_aad_round_trips_and_differs_from_short() {
        // > 14 bytes exercises the multi-block AAD path; both paths must
        // agree with each other only through the tag semantics.
        let long_aad = [0x31u8; 40];
        let ct = encrypt(&key(), &nonce(11), &long_aad, b"payload").unwrap();
        assert_eq!(
            decrypt(&key(), &nonce(11), &long_aad, &ct).unwrap(),
            b"payload"
        );
        assert!(decrypt(&key(), &nonce(11), &long_aad[..14], &ct).is_err());
    }

    #[test]
    fn tampering_detected() {
        let ct = encrypt(&key(), &nonce(2), b"", b"secret acl payload").unwrap();
        for i in 0..ct.len() {
            let mut tampered = ct.clone();
            tampered[i] ^= 0x01;
            assert_eq!(
                decrypt(&key(), &nonce(2), b"", &tampered),
                Err(CcmError::TagMismatch),
                "flip at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn wrong_key_nonce_or_aad_rejected() {
        let ct = encrypt(&key(), &nonce(3), b"aad", b"payload").unwrap();
        let mut wrong_key = key();
        wrong_key[0] ^= 1;
        assert!(decrypt(&wrong_key, &nonce(3), b"aad", &ct).is_err());
        assert!(decrypt(&key(), &nonce(4), b"aad", &ct).is_err());
        assert!(decrypt(&key(), &nonce(3), b"axd", &ct).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(
            decrypt(&key(), &nonce(5), b"", &[0u8; TAG_LEN - 1]),
            Err(CcmError::Truncated)
        );
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let payload = b"the quick brown fox";
        let ct = encrypt(&key(), &nonce(6), b"", payload).unwrap();
        assert_ne!(&ct[..payload.len()], payload.as_slice());
    }

    #[test]
    fn nonce_uniqueness_changes_ciphertext() {
        let p = b"same payload";
        let c1 = encrypt(&key(), &nonce(7), b"", p).unwrap();
        let c2 = encrypt(&key(), &nonce(8), b"", p).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn context_matches_one_shot_functions() {
        let ccm = Ccm::new(&key());
        for len in [0usize, 1, 16, 33, 100] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let one_shot = encrypt(&key(), &nonce(9), b"aad", &payload).unwrap();
            let sealed = ccm.seal(&nonce(9), b"aad", &payload).unwrap();
            assert_eq!(sealed, one_shot, "length {len}");
            assert_eq!(ccm.open(&nonce(9), b"aad", &sealed).unwrap(), payload);
        }
        assert!(ccm.open(&nonce(10), b"aad", &[0u8; 4]).is_err());
    }

    #[test]
    fn acl_nonce_injective_in_counter() {
        let central: blap_types::BdAddr = "aa:bb:cc:dd:ee:ff".parse().unwrap();
        let n1 = acl_nonce(1, central);
        let n2 = acl_nonce(2, central);
        assert_ne!(n1, n2);
    }

    /// RFC 3610 Packet Vector #1 uses exactly our parameters (M = 8,
    /// L = 2), so the published bytes pin the scalar kernel against an
    /// external reference instead of only self-round-trips.
    #[test]
    fn rfc3610_packet_vector_1() {
        let key: [u8; 16] = core::array::from_fn(|i| 0xC0 + i as u8);
        let nonce: [u8; NONCE_LEN] = [
            0x00, 0x00, 0x00, 0x03, 0x02, 0x01, 0x00, 0xA0, 0xA1, 0xA2, 0xA3, 0xA4, 0xA5,
        ];
        let aad: Vec<u8> = (0x00..=0x07).collect();
        let payload: Vec<u8> = (0x08..=0x1E).collect();
        let expected: [u8; 31] = [
            0x58, 0x8C, 0x97, 0x9A, 0x61, 0xC6, 0x63, 0xD2, 0xF0, 0x66, 0xD0, 0xC2, 0xC0, 0xF9,
            0x89, 0x80, 0x6D, 0x5F, 0x6B, 0x61, 0xDA, 0xC3, 0x84, 0x17, 0xE8, 0xD1, 0x2C, 0xFD,
            0xF9, 0x26, 0xE0,
        ];
        let sealed = encrypt(&key, &nonce, &aad, &payload).unwrap();
        assert_eq!(sealed, expected);
        assert_eq!(decrypt(&key, &nonce, &aad, &expected).unwrap(), payload);
        let ccm = Ccm::new(&key);
        assert_eq!(ccm.verify(&nonce, &aad, &expected), Ok(()));
        let mut out = Vec::new();
        ccm.open_into(&nonce, &aad, &expected, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn seal_into_open_into_match_scalar_paths() {
        let ccm = Ccm::new(&key());
        let mut sealed = Vec::new();
        let mut opened = Vec::new();
        for len in [0usize, 1, 15, 16, 17, 48, 63, 64, 65, 200] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
            ccm.seal_into(&nonce(20), b"aad", &payload, &mut sealed)
                .unwrap();
            assert_eq!(
                sealed,
                ccm.seal(&nonce(20), b"aad", &payload).unwrap(),
                "length {len}"
            );
            ccm.open_into(&nonce(20), b"aad", &sealed, &mut opened)
                .unwrap();
            assert_eq!(opened, payload, "length {len}");
        }
    }

    #[test]
    fn open_into_clears_output_on_failure() {
        let ccm = Ccm::new(&key());
        let mut sealed = ccm.seal(&nonce(21), b"", b"sensitive").unwrap();
        let mut out = Vec::new();
        *sealed.last_mut().unwrap() ^= 1;
        assert_eq!(
            ccm.open_into(&nonce(21), b"", &sealed, &mut out),
            Err(CcmError::TagMismatch)
        );
        assert!(out.is_empty());
        assert_eq!(
            ccm.open_into(&nonce(21), b"", &[0u8; TAG_LEN - 1], &mut out),
            Err(CcmError::Truncated)
        );
        assert!(out.is_empty());
    }

    #[test]
    fn verify_agrees_with_open() {
        let ccm = Ccm::new(&key());
        for len in [0usize, 5, 16, 40, 100] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let sealed = ccm.seal(&nonce(22), b"hdr", &payload).unwrap();
            assert_eq!(ccm.verify(&nonce(22), b"hdr", &sealed), Ok(()));
            let mut bad = sealed.clone();
            bad[len / 2] ^= 0x80;
            assert_eq!(
                ccm.verify(&nonce(22), b"hdr", &bad),
                Err(CcmError::TagMismatch),
                "length {len}"
            );
        }
        assert_eq!(
            ccm.verify(&nonce(22), b"", &[0u8; 3]),
            Err(CcmError::Truncated)
        );
    }

    /// Batched open must agree with the scalar reference lane for lane,
    /// including ragged final batches (every count around FRAME_LANES).
    #[test]
    fn open_many_matches_scalar_lane_for_lane() {
        let ccm = Ccm::new(&key());
        for count in 0..=2 * FRAME_LANES + 1 {
            let aads: Vec<Vec<u8>> = (0..count)
                .map(|i| (0..(i * 5) % 23).map(|b| b as u8).collect())
                .collect();
            let sealed: Vec<Vec<u8>> = (0..count)
                .map(|i| {
                    let payload: Vec<u8> = (0..(i * 31) % 70).map(|b| (b + i) as u8).collect();
                    ccm.seal(&nonce(i as u8), &aads[i], &payload).unwrap()
                })
                .collect();
            let frames: Vec<SealedFrame<'_>> = (0..count)
                .map(|i| SealedFrame {
                    nonce: nonce(i as u8),
                    aad: &aads[i],
                    ciphertext_and_tag: &sealed[i],
                })
                .collect();
            let batched = ccm.open_many(&frames);
            assert_eq!(batched.len(), count);
            for (i, got) in batched.iter().enumerate() {
                let want = ccm.open(&nonce(i as u8), &aads[i], &sealed[i]);
                assert_eq!(got, &want, "count {count} lane {i}");
            }
        }
    }

    /// A tampered or truncated lane fails alone; its batch neighbours
    /// still open.
    #[test]
    fn open_many_isolates_bad_lanes() {
        let ccm = Ccm::new(&key());
        let sealed: Vec<Vec<u8>> = (0..FRAME_LANES + 2)
            .map(|i| {
                ccm.seal(&nonce(i as u8), b"aad", format!("payload {i}").as_bytes())
                    .unwrap()
            })
            .collect();
        let mut tampered = sealed[1].clone();
        tampered[0] ^= 1;
        let frames: Vec<SealedFrame<'_>> = (0..sealed.len())
            .map(|i| SealedFrame {
                nonce: nonce(i as u8),
                aad: b"aad",
                ciphertext_and_tag: match i {
                    1 => &tampered,
                    2 => &sealed[2][..TAG_LEN - 1],
                    _ => &sealed[i],
                },
            })
            .collect();
        let mut batch = OpenBatch::new();
        ccm.open_many_into(&frames, &mut batch);
        assert_eq!(batch.len(), frames.len());
        for (i, got) in batch.iter().enumerate() {
            match i {
                1 => assert_eq!(got, Err(CcmError::TagMismatch)),
                2 => assert_eq!(got, Err(CcmError::Truncated)),
                _ => assert_eq!(got, Ok(format!("payload {i}").as_bytes())),
            }
        }
    }

    #[test]
    fn seal_many_matches_scalar_lane_for_lane() {
        let ccm = Ccm::new(&key());
        for count in [0usize, 1, FRAME_LANES - 1, FRAME_LANES, FRAME_LANES + 1, 9] {
            let payloads: Vec<Vec<u8>> = (0..count)
                .map(|i| (0..(i * 17) % 50).map(|b| (b * 3 + i) as u8).collect())
                .collect();
            let frames: Vec<PlainFrame<'_>> = (0..count)
                .map(|i| PlainFrame {
                    nonce: nonce(i as u8),
                    aad: b"hdr",
                    payload: &payloads[i],
                })
                .collect();
            let batched = ccm.seal_many(&frames).unwrap();
            for (i, got) in batched.iter().enumerate() {
                let want = ccm.seal(&nonce(i as u8), b"hdr", &payloads[i]).unwrap();
                assert_eq!(got, &want, "count {count} lane {i}");
            }
        }
        let too_long = vec![0u8; u16::MAX as usize + 1];
        let frames = [PlainFrame {
            nonce: nonce(0),
            aad: b"",
            payload: &too_long,
        }];
        assert_eq!(ccm.seal_many(&frames), Err(CcmError::PayloadTooLong));
    }

    #[test]
    fn open_check_keys_flags_exactly_the_right_lane() {
        let right = Ccm::new(&key());
        let sealed = right
            .seal(&nonce(30), b"aad", b"confirm me please")
            .unwrap();
        let wrong: Vec<Ccm> = (0..KEY_LANES)
            .map(|i| {
                let mut k = key();
                k[0] ^= (i + 1) as u8;
                Ccm::new(&k)
            })
            .collect();
        let mut scratch = Vec::new();
        for slot in 0..KEY_LANES {
            let ccms: [&Ccm; KEY_LANES] =
                core::array::from_fn(|i| if i == slot { &right } else { &wrong[i] });
            let mask = open_check_keys(ccms, &nonce(30), b"aad", &sealed, &mut scratch);
            assert_eq!(mask, 1 << slot, "right key in slot {slot}");
        }
        let all_wrong: [&Ccm; KEY_LANES] = core::array::from_fn(|i| &wrong[i]);
        assert_eq!(
            open_check_keys(all_wrong, &nonce(30), b"aad", &sealed, &mut scratch),
            0
        );
        let all_right: [&Ccm; KEY_LANES] = core::array::from_fn(|_| &right);
        assert_eq!(
            open_check_keys(all_right, &nonce(30), b"aad", &sealed, &mut scratch),
            ((1u16 << KEY_LANES) - 1) as u8
        );
        assert_eq!(
            open_check_keys(
                all_right,
                &nonce(30),
                b"aad",
                &sealed[..TAG_LEN - 1],
                &mut scratch
            ),
            0
        );
    }
}
