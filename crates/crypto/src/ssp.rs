//! Secure Simple Pairing cryptographic functions.
//!
//! Core Spec Vol 2 Part H defines the SSP/Secure-Connections toolbox on top
//! of HMAC-SHA-256:
//!
//! * [`f1`] — commitment values for Authentication Stage 1,
//! * [`g`] — the six-digit numeric verification value,
//! * [`f2`] — link-key derivation from `DHKey` (the value the paper's
//!   extraction attack steals),
//! * [`f3`] — check values for Authentication Stage 2,
//! * [`h3`]/[`h4`]/[`h5`] — Secure-Connections encryption-key derivation and
//!   secure authentication (the challenge/response this reproduction's LMP
//!   engine runs for bonded devices).
//!
//! Byte-ordering conventions follow the natural big-endian rendering of each
//! quantity; both protocol ends share these functions, and the published
//! HMAC-SHA-256 vectors pin the underlying MAC.

use blap_types::{BdAddr, LinkKey};

use crate::hmac::hmac_sha256;

/// 128-bit nonce used throughout SSP.
pub type Nonce = [u8; 16];

/// Truncates an HMAC output to its most significant 128 bits.
fn msb128(mac: [u8; 32]) -> [u8; 16] {
    let mut out = [0u8; 16];
    out.copy_from_slice(&mac[..16]);
    out
}

/// `f1(U, V, X, Z)` — commitment function for Authentication Stage 1.
///
/// `u`/`v` are the two public-key x-coordinates, `x` the committing side's
/// nonce, `z` zero for Numeric Comparison / Just Works.
pub fn f1(u: &[u8; 32], v: &[u8; 32], x: &Nonce, z: u8) -> [u8; 16] {
    let mut msg = Vec::with_capacity(65);
    msg.extend_from_slice(u);
    msg.extend_from_slice(v);
    msg.push(z);
    msb128(hmac_sha256(x, &msg))
}

/// `g(U, V, X, Y)` — computes the six-digit numeric verification value both
/// displays show during Numeric Comparison.
///
/// Just Works runs the same computation but auto-confirms it, which is why
/// it offers no MITM protection.
pub fn g(u: &[u8; 32], v: &[u8; 32], x: &Nonce, y: &Nonce) -> u32 {
    let mut msg = Vec::with_capacity(96);
    msg.extend_from_slice(u);
    msg.extend_from_slice(v);
    msg.extend_from_slice(x);
    msg.extend_from_slice(y);
    let digest = crate::sha256::digest(&msg);
    let tail = u32::from_be_bytes([digest[28], digest[29], digest[30], digest[31]]);
    tail % 1_000_000
}

/// `f2(W, N1, N2, keyID, A1, A2)` — derives the 128-bit link key from the
/// ECDH shared secret `W` (`DHKey`), both nonces and both addresses.
///
/// `keyID` is the ASCII string `"btlk"`. The output of this function is the
/// exact secret that crosses HCI in `HCI_Link_Key_Notification` — the value
/// the paper's extraction attack recovers from the HCI dump.
pub fn f2(w: &[u8; 32], n1: &Nonce, n2: &Nonce, a1: BdAddr, a2: BdAddr) -> LinkKey {
    let mut msg = Vec::with_capacity(48);
    msg.extend_from_slice(n1);
    msg.extend_from_slice(n2);
    msg.extend_from_slice(b"btlk");
    msg.extend_from_slice(&a1.to_bytes());
    msg.extend_from_slice(&a2.to_bytes());
    LinkKey::new(msb128(hmac_sha256(w, &msg)))
}

/// `f3(W, N1, N2, R, IOcap, A1, A2)` — check value for Authentication
/// Stage 2; binds the IO capabilities actually exchanged into the transcript.
#[allow(clippy::too_many_arguments)]
pub fn f3(
    w: &[u8; 32],
    n1: &Nonce,
    n2: &Nonce,
    r: &Nonce,
    io_cap: [u8; 3],
    a1: BdAddr,
    a2: BdAddr,
) -> [u8; 16] {
    let mut msg = Vec::with_capacity(63);
    msg.extend_from_slice(n1);
    msg.extend_from_slice(n2);
    msg.extend_from_slice(r);
    msg.extend_from_slice(&io_cap);
    msg.extend_from_slice(&a1.to_bytes());
    msg.extend_from_slice(&a2.to_bytes());
    msb128(hmac_sha256(w, &msg))
}

/// `h3(T, A1, A2, ACO)` — Secure-Connections encryption key (`keyID =
/// "btak"`), derived from the link key `T` after authentication completes.
pub fn h3(t: &LinkKey, a1: BdAddr, a2: BdAddr, aco: &[u8; 8]) -> [u8; 16] {
    let mut msg = Vec::with_capacity(24);
    msg.extend_from_slice(b"btak");
    msg.extend_from_slice(&a1.to_bytes());
    msg.extend_from_slice(&a2.to_bytes());
    msg.extend_from_slice(aco);
    msb128(hmac_sha256(t.as_ref(), &msg))
}

/// `h4(T, A1, A2)` — Secure-Connections device authentication key (`keyID =
/// "btdk"`), derived from the link key `T`.
pub fn h4(t: &LinkKey, a1: BdAddr, a2: BdAddr) -> [u8; 16] {
    let mut msg = Vec::with_capacity(16);
    msg.extend_from_slice(b"btdk");
    msg.extend_from_slice(&a1.to_bytes());
    msg.extend_from_slice(&a2.to_bytes());
    msb128(hmac_sha256(t.as_ref(), &msg))
}

/// `h5(S, R1, R2)` — secure authentication response. Returns
/// `(SRES, ACO)`: the 32-bit signed response the prover returns to the
/// verifier's challenge and the 64-bit authenticated ciphering offset that
/// feeds encryption-key derivation.
pub fn h5(s: &[u8; 16], r1: &Nonce, r2: &Nonce) -> ([u8; 4], [u8; 8]) {
    let mut msg = Vec::with_capacity(32);
    msg.extend_from_slice(r1);
    msg.extend_from_slice(r2);
    let mac = hmac_sha256(s, &msg);
    let mut sres = [0u8; 4];
    sres.copy_from_slice(&mac[..4]);
    let mut aco = [0u8; 8];
    aco.copy_from_slice(&mac[4..12]);
    (sres, aco)
}

/// Convenience driver for mutual secure authentication: both devices derive
/// the device authentication key with [`h4`] and compute the expected
/// response to a challenge with [`h5`].
///
/// Returns `(SRES, ACO)` for the challenge pair `(r1, r2)` under link key
/// `t` between central `a1` and peripheral `a2`.
pub fn secure_authentication_response(
    t: &LinkKey,
    a1: BdAddr,
    a2: BdAddr,
    r1: &Nonce,
    r2: &Nonce,
) -> ([u8; 4], [u8; 8]) {
    let dev_key = h4(t, a1, a2);
    h5(&dev_key, r1, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> BdAddr {
        BdAddr::new([0x00, 0x11, 0x22, 0x33, 0x44, last])
    }

    #[test]
    fn f1_commitment_binds_all_inputs() {
        let u = [1u8; 32];
        let v = [2u8; 32];
        let x = [3u8; 16];
        let base = f1(&u, &v, &x, 0);
        assert_ne!(base, f1(&v, &u, &x, 0), "swapped keys must differ");
        assert_ne!(base, f1(&u, &v, &[4u8; 16], 0), "different nonce");
        assert_ne!(base, f1(&u, &v, &x, 1), "different z");
        // Deterministic.
        assert_eq!(base, f1(&u, &v, &x, 0));
    }

    #[test]
    fn g_is_six_digits() {
        for seed in 0..32u8 {
            let u = [seed; 32];
            let v = [seed.wrapping_add(1); 32];
            let x = [seed.wrapping_add(2); 16];
            let y = [seed.wrapping_add(3); 16];
            let value = g(&u, &v, &x, &y);
            assert!(value < 1_000_000, "g produced {value}");
        }
    }

    #[test]
    fn g_symmetric_inputs_agree() {
        // Both sides compute g over the same transcript, so identical inputs
        // must give identical outputs — that is what the user compares.
        let u = [9u8; 32];
        let v = [7u8; 32];
        let x = [5u8; 16];
        let y = [3u8; 16];
        assert_eq!(g(&u, &v, &x, &y), g(&u, &v, &x, &y));
        assert_ne!(g(&u, &v, &x, &y), g(&v, &u, &x, &y));
    }

    #[test]
    fn f2_derives_equal_keys_for_equal_transcripts() {
        let w = [0xAB; 32];
        let n1 = [1u8; 16];
        let n2 = [2u8; 16];
        let k1 = f2(&w, &n1, &n2, addr(1), addr(2));
        let k2 = f2(&w, &n1, &n2, addr(1), addr(2));
        assert_eq!(k1, k2);
        // Any transcript difference changes the key.
        assert_ne!(k1, f2(&w, &n2, &n1, addr(1), addr(2)));
        assert_ne!(k1, f2(&w, &n1, &n2, addr(2), addr(1)));
        assert_ne!(k1, f2(&[0xAC; 32], &n1, &n2, addr(1), addr(2)));
    }

    #[test]
    fn f3_binds_io_capabilities() {
        let w = [0x11; 32];
        let n = [0u8; 16];
        let r = [9u8; 16];
        let c1 = f3(&w, &n, &n, &r, [0x03, 0x00, 0x05], addr(1), addr(2));
        let c2 = f3(&w, &n, &n, &r, [0x01, 0x00, 0x05], addr(1), addr(2));
        assert_ne!(c1, c2, "io capability must be bound into the check value");
    }

    #[test]
    fn h4_h5_round() {
        let key: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse().unwrap();
        let r1 = [0x55; 16];
        let r2 = [0x66; 16];
        let (sres_a, aco_a) = secure_authentication_response(&key, addr(1), addr(2), &r1, &r2);
        let (sres_b, aco_b) = secure_authentication_response(&key, addr(1), addr(2), &r1, &r2);
        assert_eq!(sres_a, sres_b);
        assert_eq!(aco_a, aco_b);
        // Different link key fails the challenge.
        let wrong: LinkKey = "00000000000000000000000000000000".parse().unwrap();
        let (sres_w, _) = secure_authentication_response(&wrong, addr(1), addr(2), &r1, &r2);
        assert_ne!(sres_a, sres_w);
    }

    #[test]
    fn h3_encryption_key_depends_on_aco() {
        let key: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse().unwrap();
        let k1 = h3(&key, addr(1), addr(2), &[1u8; 8]);
        let k2 = h3(&key, addr(1), addr(2), &[2u8; 8]);
        assert_ne!(k1, k2);
    }

    #[test]
    fn end_to_end_pairing_key_agreement() {
        use crate::p256::{KeyPair, Scalar};
        // Simulate the Fig 2a flow at the crypto level.
        let dev_a = KeyPair::from_secret(Scalar::from_be_bytes([0x31; 32])).unwrap();
        let dev_b = KeyPair::from_secret(Scalar::from_be_bytes([0x64; 32])).unwrap();
        let w_a = dev_a.diffie_hellman(&dev_b.public()).unwrap();
        let w_b = dev_b.diffie_hellman(&dev_a.public()).unwrap();
        let na = [0xA1; 16];
        let nb = [0xB2; 16];
        let ka = f2(&w_a, &na, &nb, addr(0xA), addr(0xB));
        let kb = f2(&w_b, &na, &nb, addr(0xA), addr(0xB));
        assert_eq!(ka, kb, "both ends must derive the same link key");
    }
}
