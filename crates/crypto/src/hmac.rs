//! HMAC-SHA-256 (RFC 2104), the keyed MAC every modern Bluetooth pairing
//! function is built from.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA-256(key, message)`.
///
/// Keys longer than the 64-byte block are pre-hashed, per RFC 2104.
///
/// # Examples
///
/// ```
/// let mac = blap_crypto::hmac::hmac_sha256(&[0x0b; 20], b"Hi There");
/// assert_eq!(mac[0], 0xb0);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut block_key = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = crate::sha256::digest(key);
        block_key[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        block_key[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= block_key[i];
        opad[i] ^= block_key[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Vectors from RFC 4231.

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(
            hmac_sha256(b"key-a", b"message"),
            hmac_sha256(b"key-b", b"message")
        );
    }
}
