//! Legacy LMP authentication and key-generation functions `E1`, `E21`,
//! `E22`, `E3` (Core Spec Vol 2 Part H, legacy security).
//!
//! These are the SAFER+-based functions pre-Secure-Connections controllers
//! run. The BLAP paper's testbed negotiates SSP, so the simulation's default
//! path is the HMAC-based `h4`/`h5` chain in [`crate::ssp`]; the legacy
//! functions are implemented for completeness (devices below v4.1 in the
//! profile catalog) and exercised by the ablation benches.

use blap_types::{BdAddr, LinkKey};

use crate::saferplus::{encrypt, encrypt_prime, KeySchedule};

/// The byte offsets applied to the link key to form K̃ for `Ar'`
/// (the "offset" step of E1/E3). Alternating add/XOR of eight primes.
pub(crate) const OFFSET_CONSTANTS: [u8; 8] = [233, 229, 223, 193, 179, 167, 149, 131];

/// Whether position `i` of the offset step *adds* its constant (the rest
/// XOR it): first half add on even, XOR on odd; second half the reverse.
pub(crate) const OFFSET_IS_ADD: [bool; 16] = [
    true, false, true, false, true, false, true, false, false, true, false, true, false, true,
    false, true,
];

pub(crate) fn offset_key(key: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for i in 0..16 {
        let c = OFFSET_CONSTANTS[i % 8];
        out[i] = if OFFSET_IS_ADD[i] {
            key[i].wrapping_add(c)
        } else {
            key[i] ^ c
        };
    }
    out
}

pub(crate) fn expand_addr(addr: BdAddr) -> [u8; 16] {
    let bytes = addr.to_bytes();
    core::array::from_fn(|i| bytes[i % 6])
}

fn expand_cof(cof: &[u8; 12]) -> [u8; 16] {
    core::array::from_fn(|i| cof[i % 12])
}

/// Result of the `E1` authentication function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct E1Output {
    /// The 32-bit signed response returned to the verifier.
    pub sres: [u8; 4],
    /// The 96-bit Authenticated Ciphering Offset fed into `E3`.
    pub aco: [u8; 12],
}

/// A link key with both SAFER+ schedules (`K` and the offset K̃) expanded
/// once, for callers that run `E1`/`E3` repeatedly under the same key —
/// mutual authentication runs both directions, and `E3` follows `E1` on
/// every encryption start, each needing the same two schedules.
#[derive(Clone, Debug)]
pub struct E1Key {
    sched: KeySchedule,
    sched_tilde: KeySchedule,
}

impl E1Key {
    /// Expands both schedules for `key`.
    pub fn new(key: &LinkKey) -> Self {
        let k = key.to_bytes();
        E1Key {
            sched: KeySchedule::new(&k),
            sched_tilde: KeySchedule::new(&offset_key(&k)),
        }
    }

    /// `E1` with the pre-expanded schedules (see [`e1`]).
    pub fn e1(&self, rand: &[u8; 16], address: BdAddr) -> E1Output {
        let _prof = blap_obs::prof::scope("crypto.e1");
        let stage1 = encrypt(&self.sched, rand);
        // (Ar(K, RAND) XOR RAND) +16 expanded-address
        let addr_ext = expand_addr(address);
        let mut input2 = [0u8; 16];
        for i in 0..16 {
            input2[i] = (stage1[i] ^ rand[i]).wrapping_add(addr_ext[i]);
        }
        let out = encrypt_prime(&self.sched_tilde, &input2);
        let mut sres = [0u8; 4];
        sres.copy_from_slice(&out[..4]);
        let mut aco = [0u8; 12];
        aco.copy_from_slice(&out[4..16]);
        E1Output { sres, aco }
    }

    /// `E3` with the pre-expanded schedules (see [`e3`]).
    pub fn e3(&self, rand: &[u8; 16], cof: &[u8; 12]) -> [u8; 16] {
        let stage1 = encrypt(&self.sched, rand);
        let cof_ext = expand_cof(cof);
        let mut input2 = [0u8; 16];
        for i in 0..16 {
            input2[i] = (stage1[i] ^ rand[i]).wrapping_add(cof_ext[i]);
        }
        encrypt_prime(&self.sched_tilde, &input2)
    }
}

/// `E1(K, RAND, BD_ADDR)` — the legacy LMP challenge-response function.
///
/// The verifier sends `RAND`; the prover (and the verifier locally) compute
/// `E1` over the shared link key and the *claimant's* address, compare
/// `SRES`, and keep `ACO` for encryption-key derivation.
///
/// One-shot form of [`E1Key::e1`]; expands both key schedules per call.
///
/// # Examples
///
/// ```
/// use blap_crypto::e1::e1;
/// use blap_types::{BdAddr, LinkKey};
///
/// let key: LinkKey = "00112233445566778899aabbccddeeff".parse().unwrap();
/// let addr: BdAddr = "aa:bb:cc:dd:ee:ff".parse().unwrap();
/// let verifier = e1(&key, &[7u8; 16], addr);
/// let prover = e1(&key, &[7u8; 16], addr);
/// assert_eq!(verifier.sres, prover.sres);
/// ```
pub fn e1(key: &LinkKey, rand: &[u8; 16], address: BdAddr) -> E1Output {
    E1Key::new(key).e1(rand, address)
}

/// `E21(RAND, BD_ADDR)` — legacy unit/combination key generation.
pub fn e21(rand: &[u8; 16], address: BdAddr) -> LinkKey {
    let mut x = *rand;
    x[15] ^= 6;
    let y = expand_addr(address);
    LinkKey::new(encrypt_prime(&KeySchedule::new(&x), &y))
}

/// The address-augmented PIN buffer `E22` derives its SAFER+ key from.
///
/// The augmentation (address bytes appended up to 16 total) depends only
/// on the PIN *length* and the claimant address, so a candidate sweep over
/// fixed-length PINs builds this once per batch and rewrites just the
/// digit bytes per candidate ([`AugmentedPin::set_pin`]) instead of
/// re-deriving the whole buffer per call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AugmentedPin {
    /// The cyclic 16-byte expansion of the augmented buffer — maintained
    /// directly, so a candidate sweep never re-expands it: `set_pin`
    /// rewrites just the (at most three) expanded slots each PIN byte
    /// cycles into.
    key: [u8; 16],
    pin_len: usize,
    aug_len: usize,
}

impl AugmentedPin {
    /// Augments `pin` with `address` bytes up to 16 total.
    ///
    /// # Panics
    ///
    /// Panics when `pin` is empty or longer than 16 bytes.
    pub fn new(pin: &[u8], address: BdAddr) -> AugmentedPin {
        assert!(
            !pin.is_empty() && pin.len() <= 16,
            "PIN must be 1..=16 bytes, got {}",
            pin.len()
        );
        let addr = address.to_bytes();
        let mut buf = [0u8; 16];
        buf[..pin.len()].copy_from_slice(pin);
        let mut aug_len = pin.len();
        for byte in addr.iter() {
            if aug_len == 16 {
                break;
            }
            buf[aug_len] = *byte;
            aug_len += 1;
        }
        AugmentedPin {
            key: core::array::from_fn(|i| buf[i % aug_len]),
            pin_len: pin.len(),
            aug_len,
        }
    }

    /// Replaces the PIN bytes, keeping the address augmentation — the
    /// amortized per-candidate update of a fixed-length sweep.
    ///
    /// # Panics
    ///
    /// Panics when `pin` is not exactly the length this buffer was built
    /// for (a different length changes the augmentation itself).
    pub fn set_pin(&mut self, pin: &[u8]) {
        assert_eq!(
            pin.len(),
            self.pin_len,
            "augmented buffer was built for a {}-byte PIN",
            self.pin_len
        );
        for (j, &byte) in pin.iter().enumerate() {
            let mut i = j;
            while i < 16 {
                self.key[i] = byte;
                i += self.aug_len;
            }
        }
    }

    /// The cyclic 16-byte expansion forming the SAFER+ key.
    pub fn safer_key(&self) -> [u8; 16] {
        self.key
    }

    /// The candidate-independent `E22` cipher input: `RAND` with the
    /// augmented length folded into its last byte.
    pub fn e22_input(&self, rand: &[u8; 16]) -> [u8; 16] {
        let mut y = *rand;
        y[15] ^= self.aug_len as u8;
        y
    }
}

/// `E22(RAND, PIN, BD_ADDR)` — legacy initialization key generation.
///
/// The PIN (1–16 bytes) is augmented with the claimant's address when
/// shorter than 16 bytes, then expanded cyclically to form the SAFER+ key.
///
/// One-shot form of [`e22_with_augmented`]; re-derives the augmentation
/// per call.
///
/// # Panics
///
/// Panics when `pin` is empty or longer than 16 bytes.
pub fn e22(rand: &[u8; 16], pin: &[u8], address: BdAddr) -> LinkKey {
    e22_with_augmented(rand, &AugmentedPin::new(pin, address))
}

/// `E22` over a pre-augmented PIN buffer — the candidate-sweep entry point
/// that skips re-deriving the address augmentation per call.
pub fn e22_with_augmented(rand: &[u8; 16], aug: &AugmentedPin) -> LinkKey {
    LinkKey::new(encrypt_prime(
        &KeySchedule::new(&aug.safer_key()),
        &aug.e22_input(rand),
    ))
}

/// `E3(K, RAND, COF)` — legacy encryption key generation from the link key,
/// a public random number and the ciphering offset (the ACO from `E1`, or
/// the central's address for broadcast encryption).
///
/// One-shot form of [`E1Key::e3`]; expands both key schedules per call.
pub fn e3(key: &LinkKey, rand: &[u8; 16], cof: &[u8; 12]) -> [u8; 16] {
    E1Key::new(key).e3(rand, cof)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> LinkKey {
        "00112233445566778899aabbccddeeff".parse().unwrap()
    }

    fn addr() -> BdAddr {
        "aa:bb:cc:dd:ee:ff".parse().unwrap()
    }

    #[test]
    fn e1_is_deterministic_and_key_bound() {
        let rand = [0x5A; 16];
        let a = e1(&key(), &rand, addr());
        let b = e1(&key(), &rand, addr());
        assert_eq!(a, b);
        let wrong: LinkKey = "ffeeddccbbaa99887766554433221100".parse().unwrap();
        assert_ne!(a.sres, e1(&wrong, &rand, addr()).sres);
    }

    #[test]
    fn e1_binds_challenge_and_address() {
        let a = e1(&key(), &[1u8; 16], addr());
        assert_ne!(a.sres, e1(&key(), &[2u8; 16], addr()).sres);
        let other: BdAddr = "aa:bb:cc:dd:ee:fe".parse().unwrap();
        assert_ne!(a.sres, e1(&key(), &[1u8; 16], other).sres);
    }

    #[test]
    fn e21_depends_on_both_inputs() {
        let k1 = e21(&[1u8; 16], addr());
        assert_ne!(k1, e21(&[2u8; 16], addr()));
        let other: BdAddr = "00:00:00:00:00:01".parse().unwrap();
        assert_ne!(k1, e21(&[1u8; 16], other));
    }

    #[test]
    fn e22_pin_lengths() {
        let rand = [9u8; 16];
        let short = e22(&rand, b"0000", addr());
        let long = e22(&rand, b"0123456789abcdef", addr());
        assert_ne!(short, long);
        // Same PIN, different address (address only matters for short PINs).
        let other: BdAddr = "00:00:00:00:00:01".parse().unwrap();
        assert_ne!(short, e22(&rand, b"0000", other));
    }

    #[test]
    #[should_panic(expected = "PIN must be")]
    fn e22_rejects_empty_pin() {
        let _ = e22(&[0u8; 16], b"", addr());
    }

    #[test]
    fn e3_differs_per_cof() {
        let rand = [3u8; 16];
        let k1 = e3(&key(), &rand, &[1u8; 12]);
        let k2 = e3(&key(), &rand, &[2u8; 12]);
        assert_ne!(k1, k2);
    }

    #[test]
    fn e1key_context_matches_one_shot_functions() {
        let ctx = E1Key::new(&key());
        for seed in [0u8, 0x5A, 0xFF] {
            let rand = [seed; 16];
            assert_eq!(ctx.e1(&rand, addr()), e1(&key(), &rand, addr()));
            assert_eq!(ctx.e3(&rand, &[seed; 12]), e3(&key(), &rand, &[seed; 12]));
        }
    }

    #[test]
    fn e22_short_pin_augmentation_caps_at_sixteen_bytes() {
        // A 12-byte PIN only has room for 4 of the 6 address bytes; the
        // fixed-buffer augmentation must stop at 16 exactly like the old
        // Vec-based path did.
        let rand = [7u8; 16];
        let k12 = e22(&rand, b"012345678901", addr());
        let k16 = e22(&rand, b"0123456789012345", addr());
        assert_ne!(k12, k16);
        // Deterministic across calls (buffer reuse leaks nothing).
        assert_eq!(k12, e22(&rand, b"012345678901", addr()));
    }

    #[test]
    fn e22_with_augmented_matches_one_shot() {
        let rand = [0x3Cu8; 16];
        for pin in [b"1".as_slice(), b"4821", b"985310", b"0123456789abcdef"] {
            let aug = AugmentedPin::new(pin, addr());
            assert_eq!(
                e22_with_augmented(&rand, &aug),
                e22(&rand, pin, addr()),
                "pin {pin:?}"
            );
        }
    }

    #[test]
    fn augmented_set_pin_reuses_the_address_suffix() {
        let rand = [0x77u8; 16];
        let mut aug = AugmentedPin::new(b"000000", addr());
        for pin in [b"123456".as_slice(), b"999999", b"000000"] {
            aug.set_pin(pin);
            assert_eq!(
                e22_with_augmented(&rand, &aug),
                e22(&rand, pin, addr()),
                "pin {pin:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "built for a 6-byte PIN")]
    fn augmented_set_pin_rejects_length_change() {
        let mut aug = AugmentedPin::new(b"000000", addr());
        aug.set_pin(b"1234");
    }

    #[test]
    fn mutual_authentication_succeeds_with_shared_key() {
        // Verifier challenges, prover responds; both run E1 over the
        // claimant address and must agree.
        let rand = [0xC3; 16];
        let claimant = addr();
        let verifier_view = e1(&key(), &rand, claimant);
        let prover_view = e1(&key(), &rand, claimant);
        assert_eq!(verifier_view.sres, prover_view.sres);
        assert_eq!(verifier_view.aco, prover_view.aco);
    }
}
