//! From-scratch implementations of the cryptographic primitives the
//! Bluetooth BR/EDR security architecture uses, as needed by the BLAP
//! reproduction.
//!
//! Nothing here is intended for production use — the point is that the
//! simulated controller derives *real* link keys through *real* protocol
//! math, so the attack code extracts a key that genuinely authenticates:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (validated against published vectors),
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104; validated against RFC 4231 vectors),
//! * [`p256`] — NIST P-256 elliptic-curve Diffie-Hellman on a from-scratch
//!   256-bit integer stack ([`bigint`]),
//! * [`ssp`] — the Secure Simple Pairing functions `f1`, `f2`, `f3`, `g` and
//!   the Secure-Connections functions `h3`, `h4`, `h5`,
//! * [`saferplus`] + [`e1`] — the legacy SAFER+-based `E1`/`E21`/`E22`/`E3`
//!   functions used by pre-SSP LMP authentication,
//! * [`batch`] — byte-sliced SWAR batch kernels running the SAFER+
//!   pipeline for eight candidate keys at once (the PIN-cracking hot path),
//! * [`aes`] + [`ccm`] — AES-128 (T-table, with an interleaved
//!   multi-block kernel) and AES-CCM link encryption, including batched
//!   `open_many`/`seal_many` over frame slices and a multi-key
//!   `open_check_keys` lane for bulk link-key confirmation (the
//!   eavesdrop hot path).
//!
//! # Example: derive the same link key on both sides
//!
//! ```
//! use blap_crypto::p256::{KeyPair, Scalar};
//! use blap_crypto::ssp;
//! use blap_types::BdAddr;
//!
//! let a = KeyPair::from_secret(Scalar::from_u64(0x1234_5678_9abc)).unwrap();
//! let b = KeyPair::from_secret(Scalar::from_u64(0xfeed_f00d_dead)).unwrap();
//!
//! let dh_ab = a.diffie_hellman(&b.public()).unwrap();
//! let dh_ba = b.diffie_hellman(&a.public()).unwrap();
//! assert_eq!(dh_ab, dh_ba);
//!
//! let addr_a: BdAddr = "aa:aa:aa:aa:aa:aa".parse().unwrap();
//! let addr_b: BdAddr = "bb:bb:bb:bb:bb:bb".parse().unwrap();
//! let n_a = [1u8; 16];
//! let n_b = [2u8; 16];
//! let key_on_a = ssp::f2(&dh_ab, &n_a, &n_b, addr_a, addr_b);
//! let key_on_b = ssp::f2(&dh_ba, &n_a, &n_b, addr_a, addr_b);
//! assert_eq!(key_on_a, key_on_b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod batch;
pub mod bigint;
pub mod ccm;
pub mod e1;
pub mod hmac;
pub mod p256;
pub mod saferplus;
pub mod sha256;
pub mod ssp;
