//! Minimal 256-bit unsigned integer arithmetic for the P-256 implementation.
//!
//! The representation is four little-endian `u64` limbs. The reduction path
//! is a straightforward binary long division — slow compared to real crypto
//! libraries but simple to audit, and plenty fast for a protocol simulation
//! where a pairing performs a handful of scalar multiplications.

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer (four little-endian 64-bit limbs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    limbs: [u64; 4],
}

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// One.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256 { limbs }
    }

    /// The little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.limbs
    }

    /// Creates a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Parses a big-endian 32-byte array.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        #[allow(clippy::needless_range_loop)]
        for (i, limb) in limbs.iter_mut().enumerate() {
            let offset = 32 - 8 * (i + 1);
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[offset..offset + 8]);
            *limb = u64::from_be_bytes(chunk);
        }
        U256 { limbs }
    }

    /// Serializes to a big-endian 32-byte array.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.limbs.iter().enumerate() {
            let offset = 32 - 8 * (i + 1);
            out[offset..offset + 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Parses a big-endian hex string of at most 64 digits.
    ///
    /// # Panics
    ///
    /// Panics on invalid hex; intended for compile-time-known constants.
    pub fn from_hex(hex: &str) -> Self {
        assert!(hex.len() <= 64, "hex literal longer than 256 bits");
        let mut bytes = [0u8; 32];
        let padded = format!("{hex:0>64}");
        for (i, byte) in bytes.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&padded[2 * i..2 * i + 2], 16).expect("invalid hex digit");
        }
        U256::from_be_bytes(bytes)
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 256);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Whether the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return 64 * i + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Wrapping addition; returns `(sum, carry)`.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        #[allow(clippy::needless_range_loop)] // indexes three arrays in lockstep
        for i in 0..4 {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256 { limbs: out }, carry)
    }

    /// Wrapping subtraction; returns `(difference, borrow)`.
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        #[allow(clippy::needless_range_loop)] // indexes three arrays in lockstep
        for i in 0..4 {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256 { limbs: out }, borrow)
    }

    /// Full 256×256→512-bit multiplication.
    pub fn widening_mul(self, rhs: U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let acc =
                    out[i + j] as u128 + (self.limbs[i] as u128) * (rhs.limbs[j] as u128) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            out[i + 4] = out[i + 4].wrapping_add(carry as u64);
        }
        U512 { limbs: out }
    }

    /// Full 256-bit squaring: `self * self` as 512 bits.
    ///
    /// Exploits product symmetry — the off-diagonal partial products are
    /// computed once and doubled, nearly halving the 64×64 multiplies of
    /// [`Self::widening_mul`]. Squaring dominates scalar multiplication
    /// (every point double is mostly squarings), which makes this worth a
    /// dedicated path.
    pub fn widening_sq(self) -> U512 {
        let a = self.limbs;
        // Off-diagonal terms a_i * a_j for i < j.
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in i + 1..4 {
                let acc = out[i + j] as u128 + (a[i] as u128) * (a[j] as u128) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            out[i + 4] = out[i + 4].wrapping_add(carry as u64);
        }
        // Double them (the sum is < 2^511, so no bit falls off the top).
        let mut top = 0u64;
        for limb in out.iter_mut() {
            let next_top = *limb >> 63;
            *limb = (*limb << 1) | top;
            top = next_top;
        }
        debug_assert_eq!(top, 0);
        // Add the diagonal squares a_i² at position 2i.
        let mut carry = 0u128;
        for k in 0..8 {
            let mut acc = out[k] as u128 + carry;
            carry = 0;
            if k % 2 == 0 {
                let sq = (a[k / 2] as u128) * (a[k / 2] as u128);
                acc += sq & 0xffff_ffff_ffff_ffff;
                carry = sq >> 64;
            }
            out[k] = acc as u64;
            carry += acc >> 64;
        }
        debug_assert_eq!(carry, 0);
        U512 { limbs: out }
    }

    /// Modular addition: `(self + rhs) mod m`. Requires both operands `< m`.
    pub fn add_mod(self, rhs: U256, m: U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || sum >= m {
            sum.overflowing_sub(m).0
        } else {
            sum
        }
    }

    /// Modular subtraction: `(self - rhs) mod m`. Requires both operands `< m`.
    pub fn sub_mod(self, rhs: U256, m: U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.overflowing_add(m).0
        } else {
            diff
        }
    }

    /// Modular multiplication: `(self * rhs) mod m`.
    pub fn mul_mod(self, rhs: U256, m: U256) -> U256 {
        self.widening_mul(rhs).rem(m)
    }

    /// Modular exponentiation: `self^exp mod m` (square-and-multiply).
    pub fn pow_mod(self, exp: U256, m: U256) -> U256 {
        let mut result = U256::ONE.rem_short(m);
        let base = self.rem_short(m);
        let nbits = exp.bits();
        for i in (0..nbits).rev() {
            result = result.mul_mod(result, m);
            if exp.bit(i) {
                result = result.mul_mod(base, m);
            }
        }
        result
    }

    /// Modular inverse for prime modulus via Fermat's little theorem:
    /// `self^(m-2) mod m`.
    ///
    /// Returns `None` when `self ≡ 0 (mod m)`.
    pub fn inv_mod_prime(self, m: U256) -> Option<U256> {
        if self.rem_short(m).is_zero() {
            return None;
        }
        let exp = m.overflowing_sub(U256::from_u64(2)).0;
        Some(self.pow_mod(exp, m))
    }

    /// Remainder of a 256-bit value modulo `m` (binary reduction).
    pub fn rem_short(self, m: U256) -> U256 {
        if m.bits() >= 255 {
            // At most one subtraction is needed.
            let mut r = self;
            while r >= m {
                r = r.overflowing_sub(m).0;
            }
            r
        } else {
            U512::from_u256(self).rem(m)
        }
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x")?;
        for byte in self.to_be_bytes() {
            write!(f, "{byte:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for byte in self.to_be_bytes() {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

/// A 512-bit unsigned integer — the product width of two [`U256`] values.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U512 {
    limbs: [u64; 8],
}

impl U512 {
    /// Widens a 256-bit value.
    pub fn from_u256(v: U256) -> Self {
        let mut limbs = [0u64; 8];
        limbs[..4].copy_from_slice(&v.limbs());
        U512 { limbs }
    }

    /// The little-endian 64-bit limbs.
    pub fn limbs_le(&self) -> [u64; 8] {
        self.limbs
    }

    /// Bit `i` (0 = least significant).
    fn bit(&self, i: usize) -> bool {
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits.
    fn bits(&self) -> usize {
        for i in (0..8).rev() {
            if self.limbs[i] != 0 {
                return 64 * i + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Remainder modulo `m` by binary long division.
    ///
    /// Named `rem` deliberately (despite shadowing potential with
    /// `core::ops::Rem::rem`): the operand types differ (`U512 % U256`) and
    /// implementing the operator trait would promise more arithmetic than
    /// this crate needs.
    ///
    /// # Panics
    ///
    /// Panics when `m` is zero.
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, m: U256) -> U256 {
        assert!(!m.is_zero(), "division by zero modulus");
        let mut r = U256::ZERO;
        for i in (0..self.bits()).rev() {
            // r = r * 2 + bit, reducing immediately so r stays < m.
            let (shifted, carry) = r.overflowing_add(r);
            let (mut next, carry2) =
                shifted.overflowing_add(if self.bit(i) { U256::ONE } else { U256::ZERO });
            if carry || carry2 || next >= m {
                next = next.overflowing_sub(m).0;
            }
            // After one conditional subtraction next may still be >= m when a
            // carry occurred with a small modulus; subtract until reduced.
            while next >= m {
                next = next.overflowing_sub(m).0;
            }
            r = next;
        }
        r
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(0x")?;
        for limb in self.limbs.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_byte_round_trip() {
        let v = U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        assert_eq!(
            v.to_string(),
            "0xffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
        );
    }

    #[test]
    fn add_sub_inverse() {
        let a = U256::from_hex("123456789abcdef0fedcba9876543210aaaaaaaabbbbbbbbccccccccdddddddd");
        let b = U256::from_hex("0fedcba987654321123456789abcdef055555555444444443333333322222222");
        let (sum, carry) = a.overflowing_add(b);
        assert!(!carry);
        let (diff, borrow) = sum.overflowing_sub(b);
        assert!(!borrow);
        assert_eq!(diff, a);
    }

    #[test]
    fn carry_and_borrow_propagate() {
        let max =
            U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
        let (sum, carry) = max.overflowing_add(U256::ONE);
        assert!(carry);
        assert!(sum.is_zero());
        let (diff, borrow) = U256::ZERO.overflowing_sub(U256::ONE);
        assert!(borrow);
        assert_eq!(diff, max);
    }

    #[test]
    fn widening_sq_matches_widening_mul() {
        let samples = [
            U256::ZERO,
            U256::ONE,
            U256::from_u64(0xffff_ffff_ffff_ffff),
            U256::from_hex("deadbeefcafebabe0123456789abcdef0fedcba9876543211122334455667788"),
            U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"),
            U256::from_hex("ffffffff00000001000000000000000000000000fffffffffffffffffffffffe"),
            U256::from_limbs([u64::MAX, 0, u64::MAX, 0]),
            U256::from_limbs([0, u64::MAX, 0, u64::MAX]),
        ];
        for a in samples {
            assert_eq!(a.widening_sq(), a.widening_mul(a), "squaring {a}");
        }
    }

    #[test]
    fn widening_mul_small_values() {
        let a = U256::from_u64(0xffff_ffff_ffff_ffff);
        let prod = a.widening_mul(a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(prod.limbs[0], 1);
        assert_eq!(prod.limbs[1], 0xffff_ffff_ffff_fffe);
        assert_eq!(prod.limbs[2], 0);
    }

    #[test]
    fn rem_matches_u128_arithmetic() {
        let cases: [(u128, u64); 6] = [
            (12345678901234567890, 97),
            (u128::MAX, 1_000_003),
            (0, 7),
            (6, 7),
            (7, 7),
            (8, 7),
        ];
        for (value, modulus) in cases {
            let a = U256::from_limbs([value as u64, (value >> 64) as u64, 0, 0]);
            let m = U256::from_u64(modulus);
            let r = U512::from_u256(a).rem(m);
            assert_eq!(r, U256::from_u64((value % modulus as u128) as u64));
        }
    }

    #[test]
    fn mul_mod_small() {
        let m = U256::from_u64(1_000_000_007);
        let a = U256::from_u64(123_456_789);
        let b = U256::from_u64(987_654_321);
        let expected = (123_456_789u128 * 987_654_321u128 % 1_000_000_007u128) as u64;
        assert_eq!(a.mul_mod(b, m), U256::from_u64(expected));
    }

    #[test]
    fn pow_mod_small() {
        let m = U256::from_u64(1_000_000_007);
        // 5^20 mod 1e9+7
        let mut expected = 1u128;
        for _ in 0..20 {
            expected = expected * 5 % 1_000_000_007;
        }
        assert_eq!(
            U256::from_u64(5).pow_mod(U256::from_u64(20), m),
            U256::from_u64(expected as u64)
        );
    }

    #[test]
    fn fermat_inverse() {
        let p = U256::from_u64(1_000_000_007);
        let a = U256::from_u64(1234);
        let inv = a.inv_mod_prime(p).unwrap();
        assert_eq!(a.mul_mod(inv, p), U256::ONE);
        assert_eq!(U256::ZERO.inv_mod_prime(p), None);
    }

    #[test]
    fn inverse_mod_p256_prime() {
        let p = U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
        let a = U256::from_hex("deadbeefcafebabe0123456789abcdef0fedcba9876543211122334455667788");
        let inv = a.inv_mod_prime(p).unwrap();
        assert_eq!(a.mul_mod(inv, p), U256::ONE);
    }

    #[test]
    fn bits_and_bit_access() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        let v = U256::from_limbs([0, 0, 0, 1]);
        assert_eq!(v.bits(), 193);
        assert!(v.bit(192));
        assert!(!v.bit(0));
        assert!(U256::from_u64(5).is_odd());
        assert!(!U256::from_u64(4).is_odd());
    }

    #[test]
    fn ordering() {
        let small = U256::from_u64(5);
        let big = U256::from_limbs([0, 0, 0, 1]);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(small.cmp(&small), Ordering::Equal);
    }
}
