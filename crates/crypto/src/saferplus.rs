//! SAFER+ block cipher (128-bit key variant) — the primitive underneath the
//! legacy Bluetooth `E1`/`E21`/`E22`/`E3` functions.
//!
//! Implemented from the published algorithm description: 16-byte blocks,
//! eight rounds, exponent/logarithm S-boxes over 45^x mod 257, the
//! Pseudo-Hadamard Transform diffusion layer and the "Armenian shuffle"
//! permutation, plus the `Ar'` variant Bluetooth defines (round-1 input
//! re-injected before round 3).
//!
//! **Validation note.** No official SAFER+ test vectors were available to
//! this offline reproduction, so the implementation is pinned by structural
//! properties instead: encrypt/decrypt inversion for arbitrary key/block
//! pairs (property-tested), avalanche behaviour, and S-box bijectivity.
//! Both endpoints of the simulated protocol share this implementation, so
//! all legacy-authentication semantics of the paper are preserved even if a
//! constant differs from the genuine cipher.

/// Block and key size in bytes.
pub const BLOCK_LEN: usize = 16;

/// Number of rounds for the 128-bit key variant.
const ROUNDS: usize = 8;

/// The "Armenian shuffle" permutation applied after each PHT layer.
const SHUFFLE: [usize; 16] = [8, 11, 12, 15, 2, 1, 6, 5, 10, 9, 14, 13, 0, 7, 4, 3];

/// Positions that take XOR in key-addition 1 / EXP in the S-box layer.
const XOR_POSITIONS: [bool; 16] = [
    true, false, false, true, true, false, false, true, true, false, false, true, true, false,
    false, true,
];

fn exp_tables() -> (&'static [u8; 256], &'static [u8; 256]) {
    use std::sync::OnceLock;
    static TABLES: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    let (exp, log) = TABLES.get_or_init(|| {
        let mut exp = [0u8; 256];
        let mut log = [0u8; 256];
        let mut value: u32 = 1;
        for (i, e) in exp.iter_mut().enumerate() {
            *e = (value % 256) as u8; // 256 ≡ 0 (only at i = 128)
            let _ = i;
            value = value * 45 % 257;
        }
        for i in 0..256 {
            log[exp[i] as usize] = i as u8;
        }
        (exp, log)
    });
    (exp, log)
}

/// The 17 × 16-byte subkey schedule for a 128-bit key.
#[derive(Clone)]
pub struct KeySchedule {
    subkeys: [[u8; 16]; 17],
}

impl std::fmt::Debug for KeySchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("KeySchedule(..)")
    }
}

impl KeySchedule {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let (exp, _) = exp_tables();
        // 17-byte register: key bytes plus their XOR checksum byte.
        let mut register = [0u8; 17];
        register[..16].copy_from_slice(key);
        register[16] = key.iter().fold(0, |acc, b| acc ^ b);

        let mut subkeys = [[0u8; 16]; 17];
        subkeys[0].copy_from_slice(&register[..16]);

        for p in 2..=17usize {
            for byte in register.iter_mut() {
                *byte = byte.rotate_left(3);
            }
            for i in 0..16 {
                let bias = exp[exp[(17 * p + i + 1) % 257 % 256] as usize];
                subkeys[p - 1][i] = register[(p - 1 + i) % 17].wrapping_add(bias);
            }
        }
        KeySchedule { subkeys }
    }

    fn subkey(&self, i: usize) -> &[u8; 16] {
        &self.subkeys[i]
    }
}

fn add_key_type1(state: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        if XOR_POSITIONS[i] {
            state[i] ^= key[i];
        } else {
            state[i] = state[i].wrapping_add(key[i]);
        }
    }
}

fn add_key_type2(state: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        if XOR_POSITIONS[i] {
            state[i] = state[i].wrapping_add(key[i]);
        } else {
            state[i] ^= key[i];
        }
    }
}

fn sub_key_type2(state: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        if XOR_POSITIONS[i] {
            state[i] = state[i].wrapping_sub(key[i]);
        } else {
            state[i] ^= key[i];
        }
    }
}

fn sub_key_type1(state: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        if XOR_POSITIONS[i] {
            state[i] ^= key[i];
        } else {
            state[i] = state[i].wrapping_sub(key[i]);
        }
    }
}

fn nonlinear_forward(state: &mut [u8; 16]) {
    let (exp, log) = exp_tables();
    for i in 0..16 {
        state[i] = if XOR_POSITIONS[i] {
            exp[state[i] as usize]
        } else {
            log[state[i] as usize]
        };
    }
}

fn nonlinear_inverse(state: &mut [u8; 16]) {
    let (exp, log) = exp_tables();
    for i in 0..16 {
        state[i] = if XOR_POSITIONS[i] {
            log[state[i] as usize]
        } else {
            exp[state[i] as usize]
        };
    }
}

fn linear_forward(state: &mut [u8; 16]) {
    for _ in 0..4 {
        // PHT on adjacent pairs: (a, b) -> (2a + b, a + b).
        for pair in 0..8 {
            let a = state[2 * pair];
            let b = state[2 * pair + 1];
            state[2 * pair] = a.wrapping_mul(2).wrapping_add(b);
            state[2 * pair + 1] = a.wrapping_add(b);
        }
        let copy = *state;
        for i in 0..16 {
            state[i] = copy[SHUFFLE[i]];
        }
    }
}

fn linear_inverse(state: &mut [u8; 16]) {
    for _ in 0..4 {
        let copy = *state;
        for (i, &dst) in SHUFFLE.iter().enumerate() {
            state[dst] = copy[i];
        }
        // Inverse PHT: (x, y) -> (x - y, 2y - x).
        for pair in 0..8 {
            let x = state[2 * pair];
            let y = state[2 * pair + 1];
            state[2 * pair] = x.wrapping_sub(y);
            state[2 * pair + 1] = y.wrapping_mul(2).wrapping_sub(x);
        }
    }
}

/// Encrypts one block with the plain SAFER+ round function (`Ar`).
pub fn encrypt(key: &KeySchedule, block: &[u8; 16]) -> [u8; 16] {
    run_rounds(key, block, None)
}

/// Encrypts one block with the Bluetooth `Ar'` variant, in which the round-1
/// input is re-combined (type-1 pattern) with the state entering round 3.
pub fn encrypt_prime(key: &KeySchedule, block: &[u8; 16]) -> [u8; 16] {
    run_rounds(key, block, Some(*block))
}

fn run_rounds(key: &KeySchedule, block: &[u8; 16], reinject: Option<[u8; 16]>) -> [u8; 16] {
    let mut state = *block;
    for round in 0..ROUNDS {
        if round == 2 {
            if let Some(original) = reinject {
                add_key_type1(&mut state, &original);
            }
        }
        add_key_type1(&mut state, key.subkey(2 * round));
        nonlinear_forward(&mut state);
        add_key_type2(&mut state, key.subkey(2 * round + 1));
        linear_forward(&mut state);
    }
    add_key_type1(&mut state, key.subkey(16));
    state
}

/// Decrypts one block of plain SAFER+ (`Ar⁻¹`).
///
/// Bluetooth's E-functions never decrypt; this exists to property-test that
/// the cipher is a permutation and every layer inverts cleanly.
pub fn decrypt(key: &KeySchedule, block: &[u8; 16]) -> [u8; 16] {
    let mut state = *block;
    sub_key_type1(&mut state, key.subkey(16));
    for round in (0..ROUNDS).rev() {
        linear_inverse(&mut state);
        sub_key_type2(&mut state, key.subkey(2 * round + 1));
        nonlinear_inverse(&mut state);
        sub_key_type1(&mut state, key.subkey(2 * round));
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sboxes_are_bijective_inverses() {
        let (exp, log) = exp_tables();
        let mut seen = [false; 256];
        for i in 0..256 {
            assert!(!seen[exp[i] as usize], "exp not injective at {i}");
            seen[exp[i] as usize] = true;
            assert_eq!(log[exp[i] as usize] as usize, i);
        }
        // 45^128 mod 257 = 256, stored as 0.
        assert_eq!(exp[128], 0);
        assert_eq!(log[0], 128);
        assert_eq!(exp[0], 1);
    }

    #[test]
    fn linear_layer_inverts() {
        let mut state: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(37));
        let original = state;
        linear_forward(&mut state);
        assert_ne!(state, original);
        linear_inverse(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = KeySchedule::new(&[0x2B; 16]);
        let plain: [u8; 16] = core::array::from_fn(|i| i as u8);
        let cipher = encrypt(&key, &plain);
        assert_ne!(cipher, plain);
        assert_eq!(decrypt(&key, &cipher), plain);
    }

    #[test]
    fn different_keys_differ() {
        let plain = [0u8; 16];
        let c1 = encrypt(&KeySchedule::new(&[0x00; 16]), &plain);
        let c2 = encrypt(&KeySchedule::new(&[0x01; 16]), &plain);
        assert_ne!(c1, c2);
    }

    #[test]
    fn prime_variant_differs_from_plain() {
        let key = KeySchedule::new(&[0x55; 16]);
        let block: [u8; 16] = core::array::from_fn(|i| (i * 17) as u8);
        assert_ne!(encrypt(&key, &block), encrypt_prime(&key, &block));
    }

    #[test]
    fn avalanche_in_plaintext() {
        let key = KeySchedule::new(&[0xA5; 16]);
        let base = [0u8; 16];
        let mut flipped = base;
        flipped[0] ^= 1;
        let c1 = encrypt(&key, &base);
        let c2 = encrypt(&key, &flipped);
        let differing_bits: u32 = c1.iter().zip(&c2).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert!(
            differing_bits >= 30,
            "weak avalanche: only {differing_bits} bits changed"
        );
    }

    #[test]
    fn key_schedule_subkeys_are_distinct() {
        let ks = KeySchedule::new(&[0x0F; 16]);
        for i in 0..17 {
            for j in (i + 1)..17 {
                assert_ne!(ks.subkey(i), ks.subkey(j), "subkeys {i} and {j} collide");
            }
        }
    }
}
