//! SAFER+ block cipher (128-bit key variant) — the primitive underneath the
//! legacy Bluetooth `E1`/`E21`/`E22`/`E3` functions.
//!
//! Implemented from the published algorithm description: 16-byte blocks,
//! eight rounds, exponent/logarithm S-boxes over 45^x mod 257, the
//! Pseudo-Hadamard Transform diffusion layer and the "Armenian shuffle"
//! permutation, plus the `Ar'` variant Bluetooth defines (round-1 input
//! re-injected before round 3).
//!
//! **Validation note.** No official SAFER+ test vectors were available to
//! this offline reproduction, so the implementation is pinned by structural
//! properties instead: encrypt/decrypt inversion for arbitrary key/block
//! pairs (property-tested), avalanche behaviour, and S-box bijectivity.
//! Both endpoints of the simulated protocol share this implementation, so
//! all legacy-authentication semantics of the paper are preserved even if a
//! constant differs from the genuine cipher.

/// Block and key size in bytes.
pub const BLOCK_LEN: usize = 16;

/// Number of rounds for the 128-bit key variant.
pub(crate) const ROUNDS: usize = 8;

/// The "Armenian shuffle" permutation applied after each PHT layer.
pub(crate) const SHUFFLE: [usize; 16] = [8, 11, 12, 15, 2, 1, 6, 5, 10, 9, 14, 13, 0, 7, 4, 3];

/// Positions that take XOR in key-addition 1 / EXP in the S-box layer.
pub(crate) const XOR_POSITIONS: [bool; 16] = [
    true, false, false, true, true, false, false, true, true, false, false, true, true, false,
    false, true,
];

/// Precomputed cipher tables: the exp/log S-boxes plus the key-schedule
/// bias words `B[p][i] = exp[exp[(17p + i + 1) mod 257 mod 256]]` for
/// p = 2..=17, which are key-independent and were previously recomputed —
/// two chained S-box lookups and two modular reductions per byte — on
/// every key expansion. `pincrack` expands five schedules per candidate
/// PIN, so this table is squarely on the per-candidate hot path.
pub(crate) struct SaferTables {
    pub(crate) exp: [u8; 256],
    pub(crate) log: [u8; 256],
    pub(crate) biases: [[u8; 16]; 16],
}

pub(crate) fn safer_tables() -> &'static SaferTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<SaferTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 256];
        let mut log = [0u8; 256];
        let mut value: u32 = 1;
        for e in exp.iter_mut() {
            *e = (value % 256) as u8; // 256 ≡ 0 (only at i = 128)
            value = value * 45 % 257;
        }
        for i in 0..256 {
            log[exp[i] as usize] = i as u8;
        }
        let mut biases = [[0u8; 16]; 16];
        for p in 2..=17usize {
            for i in 0..16 {
                biases[p - 2][i] = exp[exp[(17 * p + i + 1) % 257 % 256] as usize];
            }
        }
        SaferTables { exp, log, biases }
    })
}

pub(crate) fn exp_tables() -> (&'static [u8; 256], &'static [u8; 256]) {
    let t = safer_tables();
    (&t.exp, &t.log)
}

/// The 17 × 16-byte subkey schedule for a 128-bit key.
#[derive(Clone)]
pub struct KeySchedule {
    subkeys: [[u8; 16]; 17],
}

impl std::fmt::Debug for KeySchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("KeySchedule(..)")
    }
}

impl KeySchedule {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let biases = &safer_tables().biases;
        // 17-byte register: key bytes plus their XOR checksum byte.
        let mut register = [0u8; 17];
        register[..16].copy_from_slice(key);
        register[16] = key.iter().fold(0, |acc, b| acc ^ b);

        let mut subkeys = [[0u8; 16]; 17];
        subkeys[0].copy_from_slice(&register[..16]);

        // Subkey `p` reads the register after `p - 1` rotate-left-by-3
        // passes, and per-byte rotations cycle mod 8 — so the eight
        // distinct register states are computed straight from the original
        // register (seven SWAR passes, no serial chain) instead of
        // chaining sixteen dependent in-place rotations. Each is stored
        // doubled so the mod-17 extraction window below is a contiguous
        // 16-byte slice (a vector load plus bias add) instead of sixteen
        // modular index computations.
        let mut rotations = [[0u8; 34]; 8];
        rotations[0][..17].copy_from_slice(&register);
        rotations[0][17..].copy_from_slice(&register);
        for r in 1..8u32 {
            let rotated = rotl_each_byte(&register, r);
            rotations[r as usize][..17].copy_from_slice(&rotated);
            rotations[r as usize][17..].copy_from_slice(&rotated);
        }
        for p in 2..=17usize {
            let window = &rotations[3 * (p - 1) % 8][p - 1..p + 15];
            let bias = &biases[p - 2];
            for i in 0..16 {
                subkeys[p - 1][i] = window[i].wrapping_add(bias[i]);
            }
        }
        KeySchedule { subkeys }
    }

    fn subkey(&self, i: usize) -> &[u8; 16] {
        &self.subkeys[i]
    }
}

/// Rotates every byte of the key register left by `r` bits (1..=7),
/// SWAR-style: the register is processed as two 8-byte words plus a tail
/// byte, with the bit groups masked so no byte's bits cross into its
/// neighbour. Native byte order is fine — the masks are splatted and each
/// byte's rotation is independent of its position in the word.
fn rotl_each_byte(register: &[u8; 17], r: u32) -> [u8; 17] {
    debug_assert!((1..8).contains(&r));
    let keep = u64::from_ne_bytes([0xFF >> r; 8]); // bits that move up by r
    let wrap = u64::from_ne_bytes([(1 << r) - 1; 8]); // bits that wrap down
    let mut out = [0u8; 17];
    for (dst, src) in out.chunks_exact_mut(8).zip(register.chunks_exact(8)) {
        let w = u64::from_ne_bytes(src.try_into().expect("8-byte chunk"));
        let rotated = ((w & keep) << r) | ((w >> (8 - r)) & wrap);
        dst.copy_from_slice(&rotated.to_ne_bytes());
    }
    out[16] = register[16].rotate_left(r);
    out
}

fn add_key_type1(state: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        if XOR_POSITIONS[i] {
            state[i] ^= key[i];
        } else {
            state[i] = state[i].wrapping_add(key[i]);
        }
    }
}

/// One fused SAFER+ substitution layer: key-addition 1, the exp/log
/// S-box pass and key-addition 2 collapsed into a single sweep over the
/// state instead of three. The per-position operation pairing (XOR→exp→add
/// vs add→log→XOR) follows [`XOR_POSITIONS`]; [`decrypt`] still inverts
/// each layer separately, so the encrypt/decrypt round-trip tests pin this
/// fusion against the unfused composition.
fn substitute_fused(
    state: &mut [u8; 16],
    k1: &[u8; 16],
    k2: &[u8; 16],
    exp: &[u8; 256],
    log: &[u8; 256],
) {
    for i in 0..16 {
        state[i] = if XOR_POSITIONS[i] {
            exp[(state[i] ^ k1[i]) as usize].wrapping_add(k2[i])
        } else {
            log[state[i].wrapping_add(k1[i]) as usize] ^ k2[i]
        };
    }
}

fn sub_key_type2(state: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        if XOR_POSITIONS[i] {
            state[i] = state[i].wrapping_sub(key[i]);
        } else {
            state[i] ^= key[i];
        }
    }
}

fn sub_key_type1(state: &mut [u8; 16], key: &[u8; 16]) {
    for i in 0..16 {
        if XOR_POSITIONS[i] {
            state[i] ^= key[i];
        } else {
            state[i] = state[i].wrapping_sub(key[i]);
        }
    }
}

fn nonlinear_inverse(state: &mut [u8; 16]) {
    let (exp, log) = exp_tables();
    for i in 0..16 {
        state[i] = if XOR_POSITIONS[i] {
            log[state[i] as usize]
        } else {
            exp[state[i] as usize]
        };
    }
}

fn linear_forward(state: &mut [u8; 16]) {
    for _ in 0..4 {
        // PHT on adjacent pairs: (a, b) -> (2a + b, a + b).
        for pair in 0..8 {
            let a = state[2 * pair];
            let b = state[2 * pair + 1];
            state[2 * pair] = a.wrapping_mul(2).wrapping_add(b);
            state[2 * pair + 1] = a.wrapping_add(b);
        }
        let copy = *state;
        for i in 0..16 {
            state[i] = copy[SHUFFLE[i]];
        }
    }
}

fn linear_inverse(state: &mut [u8; 16]) {
    for _ in 0..4 {
        let copy = *state;
        for (i, &dst) in SHUFFLE.iter().enumerate() {
            state[dst] = copy[i];
        }
        // Inverse PHT: (x, y) -> (x - y, 2y - x).
        for pair in 0..8 {
            let x = state[2 * pair];
            let y = state[2 * pair + 1];
            state[2 * pair] = x.wrapping_sub(y);
            state[2 * pair + 1] = y.wrapping_mul(2).wrapping_sub(x);
        }
    }
}

/// Encrypts one block with the plain SAFER+ round function (`Ar`).
pub fn encrypt(key: &KeySchedule, block: &[u8; 16]) -> [u8; 16] {
    run_rounds(key, block, None)
}

/// Encrypts one block with the Bluetooth `Ar'` variant, in which the round-1
/// input is re-combined (type-1 pattern) with the state entering round 3.
pub fn encrypt_prime(key: &KeySchedule, block: &[u8; 16]) -> [u8; 16] {
    run_rounds(key, block, Some(*block))
}

fn run_rounds(key: &KeySchedule, block: &[u8; 16], reinject: Option<[u8; 16]>) -> [u8; 16] {
    let (exp, log) = exp_tables();
    let mut state = *block;
    for round in 0..ROUNDS {
        if round == 2 {
            if let Some(original) = reinject {
                add_key_type1(&mut state, &original);
            }
        }
        substitute_fused(
            &mut state,
            key.subkey(2 * round),
            key.subkey(2 * round + 1),
            exp,
            log,
        );
        linear_forward(&mut state);
    }
    add_key_type1(&mut state, key.subkey(16));
    state
}

/// Decrypts one block of plain SAFER+ (`Ar⁻¹`).
///
/// Bluetooth's E-functions never decrypt; this exists to property-test that
/// the cipher is a permutation and every layer inverts cleanly.
pub fn decrypt(key: &KeySchedule, block: &[u8; 16]) -> [u8; 16] {
    let mut state = *block;
    sub_key_type1(&mut state, key.subkey(16));
    for round in (0..ROUNDS).rev() {
        linear_inverse(&mut state);
        sub_key_type2(&mut state, key.subkey(2 * round + 1));
        nonlinear_inverse(&mut state);
        sub_key_type1(&mut state, key.subkey(2 * round));
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sboxes_are_bijective_inverses() {
        let (exp, log) = exp_tables();
        let mut seen = [false; 256];
        for i in 0..256 {
            assert!(!seen[exp[i] as usize], "exp not injective at {i}");
            seen[exp[i] as usize] = true;
            assert_eq!(log[exp[i] as usize] as usize, i);
        }
        // 45^128 mod 257 = 256, stored as 0.
        assert_eq!(exp[128], 0);
        assert_eq!(log[0], 128);
        assert_eq!(exp[0], 1);
    }

    #[test]
    fn swar_rotate_matches_per_byte_rotate() {
        let register: [u8; 17] = core::array::from_fn(|i| (i * 37 + 11) as u8);
        for r in 1..8u32 {
            let swar = rotl_each_byte(&register, r);
            let reference: [u8; 17] = core::array::from_fn(|i| register[i].rotate_left(r));
            assert_eq!(swar, reference, "rotation by {r}");
        }
    }

    #[test]
    fn linear_layer_inverts() {
        let mut state: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(37));
        let original = state;
        linear_forward(&mut state);
        assert_ne!(state, original);
        linear_inverse(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = KeySchedule::new(&[0x2B; 16]);
        let plain: [u8; 16] = core::array::from_fn(|i| i as u8);
        let cipher = encrypt(&key, &plain);
        assert_ne!(cipher, plain);
        assert_eq!(decrypt(&key, &cipher), plain);
    }

    #[test]
    fn different_keys_differ() {
        let plain = [0u8; 16];
        let c1 = encrypt(&KeySchedule::new(&[0x00; 16]), &plain);
        let c2 = encrypt(&KeySchedule::new(&[0x01; 16]), &plain);
        assert_ne!(c1, c2);
    }

    #[test]
    fn prime_variant_differs_from_plain() {
        let key = KeySchedule::new(&[0x55; 16]);
        let block: [u8; 16] = core::array::from_fn(|i| (i * 17) as u8);
        assert_ne!(encrypt(&key, &block), encrypt_prime(&key, &block));
    }

    #[test]
    fn avalanche_in_plaintext() {
        let key = KeySchedule::new(&[0xA5; 16]);
        let base = [0u8; 16];
        let mut flipped = base;
        flipped[0] ^= 1;
        let c1 = encrypt(&key, &base);
        let c2 = encrypt(&key, &flipped);
        let differing_bits: u32 = c1.iter().zip(&c2).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert!(
            differing_bits >= 30,
            "weak avalanche: only {differing_bits} bits changed"
        );
    }

    #[test]
    fn key_schedule_matches_inline_bias_reference() {
        // The bias table hoists `exp[exp[(17p + i + 1) % 257 % 256]]` out
        // of the expansion loop; this reference recomputes it inline (the
        // pre-table code path) so a table regression cannot slip through
        // the encrypt/decrypt round-trip tests, which any self-consistent
        // schedule would pass.
        fn reference_schedule(key: &[u8; 16]) -> [[u8; 16]; 17] {
            let (exp, _) = exp_tables();
            let mut register = [0u8; 17];
            register[..16].copy_from_slice(key);
            register[16] = key.iter().fold(0, |acc, b| acc ^ b);
            let mut subkeys = [[0u8; 16]; 17];
            subkeys[0].copy_from_slice(&register[..16]);
            for p in 2..=17usize {
                for byte in register.iter_mut() {
                    *byte = byte.rotate_left(3);
                }
                for i in 0..16 {
                    let bias = exp[exp[(17 * p + i + 1) % 257 % 256] as usize];
                    subkeys[p - 1][i] = register[(p - 1 + i) % 17].wrapping_add(bias);
                }
            }
            subkeys
        }
        for key in [
            [0u8; 16],
            [0xFF; 16],
            core::array::from_fn(|i| (i * 31) as u8),
        ] {
            assert_eq!(KeySchedule::new(&key).subkeys, reference_schedule(&key));
        }
    }

    #[test]
    fn fused_substitution_matches_separate_layers() {
        // Reference composition the fusion replaced: key-addition 1, the
        // S-box pass, key-addition 2 as three sweeps.
        let (exp, log) = exp_tables();
        let k1: [u8; 16] = core::array::from_fn(|i| (i * 13 + 7) as u8);
        let k2: [u8; 16] = core::array::from_fn(|i| (i * 29 + 3) as u8);
        for seed in 0..8u8 {
            let start: [u8; 16] =
                core::array::from_fn(|i| seed.wrapping_mul(31).wrapping_add(i as u8));
            let mut reference = start;
            add_key_type1(&mut reference, &k1);
            for i in 0..16 {
                reference[i] = if XOR_POSITIONS[i] {
                    exp[reference[i] as usize]
                } else {
                    log[reference[i] as usize]
                };
            }
            for i in 0..16 {
                if XOR_POSITIONS[i] {
                    reference[i] = reference[i].wrapping_add(k2[i]);
                } else {
                    reference[i] ^= k2[i];
                }
            }
            let mut fused = start;
            substitute_fused(&mut fused, &k1, &k2, exp, log);
            assert_eq!(fused, reference, "seed {seed}");
        }
    }

    #[test]
    fn key_schedule_subkeys_are_distinct() {
        let ks = KeySchedule::new(&[0x0F; 16]);
        for i in 0..17 {
            for j in (i + 1)..17 {
                assert_ne!(ks.subkey(i), ks.subkey(j), "subkeys {i} and {j} collide");
            }
        }
    }
}
