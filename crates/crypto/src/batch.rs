//! Byte-sliced batch kernels for the SAFER+ pipeline: [`LANES`] independent
//! 16-byte states processed as 16 *columns*, where column `i` holds byte `i`
//! of every lane. In this layout the key additions, the PHT diffusion layer
//! and the Armenian shuffle each touch all lanes with one vector operation
//! per state byte, and the candidate-independent inputs of the `E21`/`E1`
//! chain (RAND, expanded BD_ADDR, masked combination words) splat to a
//! constant column computed once per challenge instead of once per
//! candidate.
//!
//! A column is a plain `[u8; LANES]` array and every column operation is an
//! elementwise loop — deliberately so: the compiler auto-vectorizes each
//! into a single 16-wide SIMD instruction (`paddb` and friends on x86-64),
//! which both doubles the lane count and removes the mask arithmetic that a
//! hand-rolled `u64` SWAR formulation would pay per operation. (An earlier
//! `u64`-column variant of this module measured barely ahead of the
//! auto-vectorized scalar path for exactly that reason.)
//!
//! The S-box pass cannot be word-parallelized (each byte indexes a table),
//! but in column form the sixteen lookups per column are independent, so
//! the out-of-order core overlaps their latencies — where the scalar path
//! serializes its lookups behind one state register.
//!
//! The scalar [`crate::saferplus`] implementation is the pinned correctness
//! reference: every kernel here is property-tested lane-by-lane against it
//! (see the module tests and `tests/prop_crypto.rs`), and the PIN-cracking
//! caller keeps the scalar verdict path alive for the same reason.
//!
//! Nothing in this module allocates; all state is fixed-size arrays.

use blap_types::BdAddr;

use crate::e1::{expand_addr, offset_key};
use crate::saferplus::{exp_tables, safer_tables, ROUNDS, SHUFFLE, XOR_POSITIONS};

/// Lanes per batch: one column holds one byte of each lane.
pub const LANES: usize = 16;

/// One byte position across all lanes.
type Col = [u8; LANES];

/// Splats one byte across all lanes of a column.
#[inline(always)]
const fn splat(byte: u8) -> Col {
    [byte; LANES]
}

/// Lane-parallel byte-wise wrapping addition.
#[inline(always)]
fn col_add(a: &Col, b: &Col) -> Col {
    let mut out = [0u8; LANES];
    for l in 0..LANES {
        out[l] = a[l].wrapping_add(b[l]);
    }
    out
}

/// Lane-parallel byte-wise doubling (`2a mod 256` per lane).
#[inline(always)]
fn col_dbl(a: &Col) -> Col {
    let mut out = [0u8; LANES];
    for l in 0..LANES {
        out[l] = a[l].wrapping_add(a[l]);
    }
    out
}

/// Lane-parallel byte-wise XOR.
#[inline(always)]
fn col_xor(a: &Col, b: &Col) -> Col {
    let mut out = [0u8; LANES];
    for l in 0..LANES {
        out[l] = a[l] ^ b[l];
    }
    out
}

/// Lane-parallel per-byte rotate-left by one — the column form of the
/// scalar key schedule's register rotation. The schedule's eight rotation
/// states are built by chaining this (a constant shift vectorizes to a
/// fixed shift-and-mask pair; a variable one does not).
#[inline(always)]
fn col_rotl1(w: &Col) -> Col {
    let mut out = [0u8; LANES];
    for l in 0..LANES {
        out[l] = w[l].rotate_left(1);
    }
    out
}

/// The key-schedule bias words pre-splatted to columns, built once per
/// process: `splat` is a multi-instruction broadcast, and the subkey pass
/// would otherwise rebuild 256 of them per schedule expansion.
fn bias_splats() -> &'static [[Col; 16]; 16] {
    use std::sync::OnceLock;
    static SPLATS: OnceLock<[[Col; 16]; 16]> = OnceLock::new();
    SPLATS.get_or_init(|| {
        let biases = &safer_tables().biases;
        core::array::from_fn(|p| core::array::from_fn(|i| splat(biases[p][i])))
    })
}

/// One table pass over a column: each lane's byte indexes `table`.
#[inline(always)]
fn lookup_column(table: &[u8; 256], x: &Col) -> Col {
    let mut out = [0u8; LANES];
    for l in 0..LANES {
        out[l] = table[x[l] as usize];
    }
    out
}

/// [`LANES`] 16-byte blocks in column-major form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Batch16 {
    cols: [Col; 16],
}

impl Batch16 {
    /// The same block in every lane — the hoisted form of a
    /// candidate-independent input (a challenge RAND, an expanded address,
    /// a masked combination word).
    pub fn splat(block: &[u8; 16]) -> Batch16 {
        Batch16 {
            cols: core::array::from_fn(|i| splat(block[i])),
        }
    }

    /// Packs [`LANES`] lane-major blocks into column form.
    pub fn from_lanes(lanes: &[[u8; 16]; LANES]) -> Batch16 {
        Batch16 {
            cols: core::array::from_fn(|i| core::array::from_fn(|lane| lanes[lane][i])),
        }
    }

    /// Extracts one lane's 16-byte block.
    ///
    /// # Panics
    ///
    /// Panics when `lane >= LANES`.
    pub fn lane(&self, lane: usize) -> [u8; 16] {
        assert!(lane < LANES, "lane {lane} out of range");
        core::array::from_fn(|i| self.cols[i][lane])
    }

    /// Lane-parallel XOR with another batch (unmasking, key combination).
    pub fn xor(&self, other: &Batch16) -> Batch16 {
        Batch16 {
            cols: core::array::from_fn(|i| col_xor(&self.cols[i], &other.cols[i])),
        }
    }

    /// XORs a single byte into one column of every lane — the column form
    /// of `E21`'s `x[15] ^= 6` and `E22`'s `y[15] ^= len` tweaks.
    pub fn xor_byte(&self, index: usize, byte: u8) -> Batch16 {
        let mut cols = self.cols;
        cols[index] = col_xor(&cols[index], &splat(byte));
        Batch16 { cols }
    }

    /// Bitmask of lanes whose first four bytes equal `prefix` — the SRES
    /// comparison of the PIN-cracking verdict, over all lanes at once.
    pub fn match4_mask(&self, prefix: &[u8; 4]) -> u16 {
        let mut mismatch = [0u8; LANES];
        for (col, &want) in self.cols.iter().zip(prefix) {
            for (m, &got) in mismatch.iter_mut().zip(col) {
                *m |= got ^ want;
            }
        }
        let mut mask = 0u16;
        for (l, m) in mismatch.iter().enumerate() {
            if *m == 0 {
                mask |= 1 << l;
            }
        }
        mask
    }
}

/// The 17 × 16-byte SAFER+ subkey schedule for all lanes, column-major.
///
/// Derivation mirrors [`crate::saferplus::KeySchedule::new`] exactly, but
/// the register rotations and bias additions run once per column (all
/// lanes) instead of once per lane, and the eight distinct per-byte
/// rotation states are computed once up front (rotations cycle mod 8)
/// instead of re-rotating the register on every pass. The key-independent
/// bias words are splat columns added in one vector operation each.
pub struct KeyScheduleBatch {
    subkeys: [[Col; 16]; 17],
}

impl KeyScheduleBatch {
    /// Expands the schedule for [`LANES`] keys given in column form.
    pub fn new(keys: &Batch16) -> KeyScheduleBatch {
        let biases = bias_splats();
        // 17-column register: the key columns plus their XOR checksum.
        let mut register = [[0u8; LANES]; 17];
        register[..16].copy_from_slice(&keys.cols);
        register[16] = keys
            .cols
            .iter()
            .fold([0u8; LANES], |acc, c| col_xor(&acc, c));

        // The eight distinct per-byte rotation states (rotations cycle mod
        // 8, as in the scalar path), each stored *doubled* so the subkey
        // pass below reads a contiguous 16-column window instead of doing
        // a modular index per column.
        let mut rot2 = [[[0u8; LANES]; 34]; 8];
        rot2[0][..17].copy_from_slice(&register);
        for r in 1..8 {
            let (done, rest) = rot2.split_at_mut(r);
            for (dst, src) in rest[0].iter_mut().zip(&done[r - 1][..17]) {
                *dst = col_rotl1(src);
            }
        }
        for rot in rot2.iter_mut() {
            for i in 0..17 {
                rot[17 + i] = rot[i];
            }
        }

        let mut subkeys = [[[0u8; LANES]; 16]; 17];
        subkeys[0].copy_from_slice(&register[..16]);
        for p in 2..=17usize {
            let rotation = &rot2[3 * (p - 1) % 8];
            let bias = &biases[p - 2];
            for i in 0..16 {
                subkeys[p - 1][i] = col_add(&rotation[p - 1 + i], &bias[i]);
            }
        }
        KeyScheduleBatch { subkeys }
    }
}

/// The fused substitution layer over all columns: key-addition 1, the
/// exp/log S-box pass and key-addition 2 in one sweep, following the
/// per-position pairing of the scalar [`crate::saferplus`] path.
#[inline(always)]
fn substitute_fused_batch(
    state: &mut [Col; 16],
    k1: &[Col; 16],
    k2: &[Col; 16],
    exp: &[u8; 256],
    log: &[u8; 256],
) {
    // Three whole-state passes, not one fused pass per column: the S-box
    // writes each result column byte by byte, and reading it back as a
    // vector right away would stall on store forwarding (wide load over
    // sixteen narrow stores). With the key mixes batched into their own
    // passes, fifteen columns of lookups separate each narrow-store burst
    // from its wide reload.
    for i in 0..16 {
        state[i] = if XOR_POSITIONS[i] {
            col_xor(&state[i], &k1[i])
        } else {
            col_add(&state[i], &k1[i])
        };
    }
    for i in 0..16 {
        let table = if XOR_POSITIONS[i] { exp } else { log };
        state[i] = lookup_column(table, &state[i]);
    }
    for i in 0..16 {
        state[i] = if XOR_POSITIONS[i] {
            col_add(&state[i], &k2[i])
        } else {
            col_xor(&state[i], &k2[i])
        };
    }
}

/// Four PHT-plus-shuffle passes over all columns. The pair arithmetic is
/// two vector adds and a doubling per byte position for every lane at once,
/// and the Armenian shuffle is sixteen column moves for the whole batch.
#[inline(always)]
fn pht_pairs(state: &mut [Col; 16]) {
    for pair in 0..8 {
        let a = state[2 * pair];
        let b = state[2 * pair + 1];
        state[2 * pair] = col_add(&col_dbl(&a), &b);
        state[2 * pair + 1] = col_add(&a, &b);
    }
}

#[inline(always)]
fn linear_forward_batch(state: &mut [Col; 16]) {
    // Ping-pong between two buffers so each shuffle is sixteen column
    // moves, not a 256-byte defensive copy plus the moves.
    let mut tmp = [[0u8; LANES]; 16];
    for _ in 0..2 {
        pht_pairs(state);
        for i in 0..16 {
            tmp[i] = state[SHUFFLE[i]];
        }
        pht_pairs(&mut tmp);
        for i in 0..16 {
            state[i] = tmp[SHUFFLE[i]];
        }
    }
}

#[inline(always)]
fn add_key_type1_batch(state: &mut [Col; 16], key: &[Col; 16]) {
    for i in 0..16 {
        if XOR_POSITIONS[i] {
            state[i] = col_xor(&state[i], &key[i]);
        } else {
            state[i] = col_add(&state[i], &key[i]);
        }
    }
}

fn run_rounds_batch(key: &KeyScheduleBatch, block: &Batch16, reinject: bool) -> Batch16 {
    let (exp, log) = exp_tables();
    let mut state = block.cols;
    for round in 0..ROUNDS {
        if round == 2 && reinject {
            add_key_type1_batch(&mut state, &block.cols);
        }
        substitute_fused_batch(
            &mut state,
            &key.subkeys[2 * round],
            &key.subkeys[2 * round + 1],
            exp,
            log,
        );
        linear_forward_batch(&mut state);
    }
    add_key_type1_batch(&mut state, &key.subkeys[16]);
    Batch16 { cols: state }
}

/// Encrypts all lanes with the plain SAFER+ round function (`Ar`).
pub fn encrypt_batch(key: &KeyScheduleBatch, block: &Batch16) -> Batch16 {
    run_rounds_batch(key, block, false)
}

/// Encrypts all lanes with the Bluetooth `Ar'` variant (round-1 input
/// re-injected before round 3).
pub fn encrypt_prime_batch(key: &KeyScheduleBatch, block: &Batch16) -> Batch16 {
    run_rounds_batch(key, block, true)
}

/// `E21` for all lanes: per-lane `RAND`s (column form), one shared address.
///
/// `addr_ext` must be [`Batch16::splat`] of the expanded address — hoist it
/// with [`expand_addr_splat`] so it is built once per challenge.
pub fn e21_batch(rands: &Batch16, addr_ext: &Batch16) -> Batch16 {
    let x = rands.xor_byte(15, 6);
    encrypt_prime_batch(&KeyScheduleBatch::new(&x), addr_ext)
}

/// The splatted 16-byte cyclic expansion of a device address — the hoisted
/// candidate-independent half of `E21` (and of `E1`'s second stage).
pub fn expand_addr_splat(address: BdAddr) -> Batch16 {
    Batch16::splat(&expand_addr(address))
}

/// `E1` for all lanes: per-lane link keys, shared challenge and address.
///
/// Expands both SAFER+ schedules (`K` and the offset K̃) for every lane on
/// construction, mirroring [`crate::e1::E1Key`].
pub struct E1Batch {
    sched: KeyScheduleBatch,
    sched_tilde: KeyScheduleBatch,
}

impl E1Batch {
    /// Expands both schedule batches for the lane keys in `keys`.
    ///
    /// The offset step runs in column form: each of the sixteen alternating
    /// add/XOR constants is one splat-column operation for all lanes.
    pub fn new(keys: &Batch16) -> E1Batch {
        let offsets = offset_key(&[0u8; 16]);
        let tilde = Batch16 {
            cols: core::array::from_fn(|i| {
                // offset_key on zero yields the raw constant per position;
                // re-apply it lane-parallel with the same add/XOR pattern.
                let c = splat(offsets[i]);
                if crate::e1::OFFSET_IS_ADD[i] {
                    col_add(&keys.cols[i], &c)
                } else {
                    col_xor(&keys.cols[i], &c)
                }
            }),
        };
        E1Batch {
            sched: KeyScheduleBatch::new(keys),
            sched_tilde: KeyScheduleBatch::new(&tilde),
        }
    }

    /// The full 16-byte `E1` output (SRES ‖ ACO) for every lane.
    ///
    /// `rand` must be the splatted challenge and `addr_ext` the splatted
    /// expanded claimant address ([`expand_addr_splat`]) — both hoisted per
    /// challenge by the caller.
    pub fn e1_output(&self, rand: &Batch16, addr_ext: &Batch16) -> Batch16 {
        let stage1 = encrypt_batch(&self.sched, rand);
        let input2 = Batch16 {
            cols: core::array::from_fn(|i| {
                col_add(&col_xor(&stage1.cols[i], &rand.cols[i]), &addr_ext.cols[i])
            }),
        };
        encrypt_prime_batch(&self.sched_tilde, &input2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::e1::{self, E1Output};
    use crate::saferplus::{encrypt, encrypt_prime, KeySchedule};
    use blap_types::LinkKey;

    fn lane_blocks(seed: u8) -> [[u8; 16]; LANES] {
        core::array::from_fn(|lane| {
            core::array::from_fn(|i| (seed as usize * 31 + lane * 17 + i * 7) as u8 ^ (lane as u8))
        })
    }

    #[test]
    fn pack_unpack_round_trips() {
        let lanes = lane_blocks(3);
        let batch = Batch16::from_lanes(&lanes);
        for (i, lane) in lanes.iter().enumerate() {
            assert_eq!(batch.lane(i), *lane, "lane {i}");
        }
        let splatted = Batch16::splat(&lanes[0]);
        for i in 0..LANES {
            assert_eq!(splatted.lane(i), lanes[0]);
        }
    }

    #[test]
    fn column_helpers_match_per_byte_reference() {
        let a: Col = core::array::from_fn(|i| (i as u8).wrapping_mul(37).wrapping_add(0x7d));
        let b: Col = core::array::from_fn(|i| (i as u8).wrapping_mul(91).wrapping_add(0xfe));
        let add = col_add(&a, &b);
        let dbl = col_dbl(&a);
        for lane in 0..LANES {
            assert_eq!(add[lane], a[lane].wrapping_add(b[lane]), "add {lane}");
            assert_eq!(dbl[lane], a[lane].wrapping_mul(2), "dbl {lane}");
        }
        let mut rot = a;
        for r in 1..8u32 {
            rot = col_rotl1(&rot);
            for lane in 0..LANES {
                assert_eq!(rot[lane], a[lane].rotate_left(r), "rot {r}/{lane}");
            }
        }
    }

    #[test]
    fn batch_encrypt_matches_scalar_per_lane() {
        let keys = lane_blocks(5);
        let blocks = lane_blocks(11);
        let key_batch = Batch16::from_lanes(&keys);
        let block_batch = Batch16::from_lanes(&blocks);
        let ks = KeyScheduleBatch::new(&key_batch);
        let plain = encrypt_batch(&ks, &block_batch);
        let prime = encrypt_prime_batch(&ks, &block_batch);
        for lane in 0..LANES {
            let scalar_ks = KeySchedule::new(&keys[lane]);
            assert_eq!(
                plain.lane(lane),
                encrypt(&scalar_ks, &blocks[lane]),
                "Ar lane {lane}"
            );
            assert_eq!(
                prime.lane(lane),
                encrypt_prime(&scalar_ks, &blocks[lane]),
                "Ar' lane {lane}"
            );
        }
    }

    #[test]
    fn e21_batch_matches_scalar() {
        let addr: BdAddr = "aa:bb:cc:dd:ee:ff".parse().expect("valid");
        let rands = lane_blocks(23);
        let out = e21_batch(&Batch16::from_lanes(&rands), &expand_addr_splat(addr));
        for (lane, rand) in rands.iter().enumerate() {
            assert_eq!(
                LinkKey::new(out.lane(lane)),
                e1::e21(rand, addr),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn e1_batch_matches_scalar() {
        let addr: BdAddr = "00:1b:7d:da:71:0a".parse().expect("valid");
        let keys = lane_blocks(42);
        let rand = [0x5Au8; 16];
        let batch = E1Batch::new(&Batch16::from_lanes(&keys));
        let out = batch.e1_output(&Batch16::splat(&rand), &expand_addr_splat(addr));
        for (lane, key) in keys.iter().enumerate() {
            let expected: E1Output = e1::e1(&LinkKey::new(*key), &rand, addr);
            let got = out.lane(lane);
            assert_eq!(&got[..4], &expected.sres, "sres lane {lane}");
            assert_eq!(&got[4..], &expected.aco, "aco lane {lane}");
        }
    }

    #[test]
    fn match4_mask_flags_exactly_the_matching_lanes() {
        let mut lanes = lane_blocks(7);
        let target = [9u8, 8, 7, 6];
        lanes[2][..4].copy_from_slice(&target);
        lanes[5][..4].copy_from_slice(&target);
        lanes[14][..4].copy_from_slice(&target);
        // Lane 6: three of four bytes match — must not be flagged.
        lanes[6][..3].copy_from_slice(&target[..3]);
        lanes[6][3] = target[3].wrapping_add(1);
        let mask = Batch16::from_lanes(&lanes).match4_mask(&target);
        assert_eq!(mask, (1 << 2) | (1 << 5) | (1 << 14));
    }
}
