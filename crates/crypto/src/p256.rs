//! NIST P-256 (secp256r1) elliptic-curve Diffie-Hellman.
//!
//! Secure Simple Pairing's Authentication Stage 1 exchanges P-256 public
//! keys (P-192 for pre-4.1 devices); the shared secret `DHKey` feeds the
//! `f2` link-key derivation. This module implements the curve from its
//! domain parameters on top of [`crate::bigint`]: fast Solinas reduction in
//! the field, Jacobian-coordinate group arithmetic, double-and-add scalar
//! multiplication, and public-key validation (the check whose absence
//! enabled the Biham–Neumann invalid-curve attack cited by the paper).
//!
//! Correctness is established structurally: the fast field reduction is
//! property-tested against the slow binary long division in
//! [`crate::bigint`], the generator satisfies the curve equation,
//! `n·G = ∞`, scalar multiplication distributes over scalar addition, and
//! ECDH agreement holds for arbitrary key pairs.

use std::fmt;

use crate::bigint::{U256, U512};

/// The field prime `p = 2^256 - 2^224 + 2^192 + 2^96 - 1`.
pub fn field_prime() -> U256 {
    U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
}

/// The group order `n`.
pub fn group_order() -> U256 {
    U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")
}

fn curve_b() -> U256 {
    U256::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
}

/// The base point `G`.
pub fn generator() -> Point {
    Point::Affine {
        x: U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
        y: U256::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"),
    }
}

// --- fast field arithmetic -------------------------------------------------

/// Reduces a 512-bit product modulo the P-256 prime using the NIST/Solinas
/// term decomposition over 32-bit words.
pub(crate) fn reduce_wide(value: U512) -> U256 {
    // Split into sixteen little-endian 32-bit words c0..c15.
    let limbs = {
        let mut l = [0u64; 8];
        // U512 has no public limb accessor; round-trip through U256 halves.
        // (Cheap: just byte plumbing.)
        let bytes = u512_to_le_words(value);
        l.copy_from_slice(&bytes);
        l
    };
    let mut c = [0u32; 16];
    for i in 0..8 {
        c[2 * i] = limbs[i] as u32;
        c[2 * i + 1] = (limbs[i] >> 32) as u32;
    }

    // Terms from FIPS 186 fast reduction for p256, given as big-endian word
    // tuples (w7..w0); indices into c. `None` means zero.
    const fn w(i: usize) -> Option<usize> {
        Some(i)
    }
    let z: Option<usize> = None;
    // Each row is (w7, w6, w5, w4, w3, w2, w1, w0).
    let terms: [([Option<usize>; 8], i64); 9] = [
        ([w(7), w(6), w(5), w(4), w(3), w(2), w(1), w(0)], 1), // s1
        ([w(15), w(14), w(13), w(12), w(11), z, z, z], 2),     // s2
        ([z, w(15), w(14), w(13), w(12), z, z, z], 2),         // s3
        ([w(15), w(14), z, z, z, w(10), w(9), w(8)], 1),       // s4
        ([w(8), w(13), w(15), w(14), w(13), w(11), w(10), w(9)], 1), // s5
        ([w(10), w(8), z, z, z, w(13), w(12), w(11)], -1),     // s6
        ([w(11), w(9), z, z, w(15), w(14), w(13), w(12)], -1), // s7
        ([w(12), z, w(10), w(9), w(8), w(15), w(14), w(13)], -1), // s8
        ([w(13), z, w(11), w(10), w(9), z, w(15), w(14)], -1), // s9
    ];

    // Accumulate word-wise with a signed accumulator.
    let mut acc = [0i64; 8];
    for (words, sign) in terms {
        for (be_idx, src) in words.iter().enumerate() {
            if let Some(ci) = src {
                let le_idx = 7 - be_idx;
                acc[le_idx] += sign * c[*ci] as i64;
            }
        }
    }

    // Carry-propagate into 32-bit words; `carry` may go negative.
    let mut words = [0u32; 8];
    let mut carry: i64 = 0;
    for i in 0..8 {
        let v = acc[i] + carry;
        words[i] = (v & 0xffff_ffff) as u32;
        carry = v >> 32; // arithmetic shift keeps the sign
    }

    let mut r = u256_from_le_words(words);
    let p = field_prime();
    // r_actual = r + carry * 2^256; fold the carry in using
    // 2^256 ≡ 2^256 - p (mod p).
    let fold = p_complement();
    while carry > 0 {
        let (sum, overflow) = r.overflowing_add(fold);
        r = sum;
        carry -= 1;
        if overflow {
            carry += 1;
        }
        if r >= p {
            r = r.overflowing_sub(p).0;
        }
    }
    while carry < 0 {
        let (diff, borrow) = r.overflowing_sub(fold);
        r = diff;
        carry += 1;
        if borrow {
            carry -= 1;
        }
    }
    while r >= p {
        r = r.overflowing_sub(p).0;
    }
    r
}

/// `2^256 - p` (the additive fold constant for carries past 2^256).
fn p_complement() -> U256 {
    // 2^256 - p = 2^224 - 2^192 - 2^96 + 1
    U256::ZERO.overflowing_sub(field_prime()).0
}

fn u512_to_le_words(value: U512) -> [u64; 8] {
    value.limbs_le()
}

fn u256_from_le_words(words: [u32; 8]) -> U256 {
    let mut limbs = [0u64; 4];
    for i in 0..4 {
        limbs[i] = words[2 * i] as u64 | (words[2 * i + 1] as u64) << 32;
    }
    U256::from_limbs(limbs)
}

fn fe_mul(a: U256, b: U256) -> U256 {
    reduce_wide(a.widening_mul(b))
}

/// Multiplies two field elements modulo the P-256 prime using the fast
/// Solinas reduction (the hot path of every point operation). Exposed so
/// external property tests can pin it against the slow binary-division
/// reduction in [`crate::bigint`].
pub fn field_mul(a: U256, b: U256) -> U256 {
    let p = field_prime();
    fe_mul(a.rem_short(p), b.rem_short(p))
}

fn fe_sq(a: U256) -> U256 {
    fe_mul(a, a)
}

fn fe_add(a: U256, b: U256) -> U256 {
    a.add_mod(b, field_prime())
}

fn fe_sub(a: U256, b: U256) -> U256 {
    a.sub_mod(b, field_prime())
}

fn fe_double(a: U256) -> U256 {
    fe_add(a, a)
}

/// Field inversion by Fermat's little theorem, using the fast multiplier.
fn fe_inv(a: U256) -> Option<U256> {
    if a.is_zero() {
        return None;
    }
    let p = field_prime();
    let exp = p.overflowing_sub(U256::from_u64(2)).0;
    let mut result = U256::ONE;
    let mut base = a;
    for i in 0..exp.bits() {
        if exp.bit(i) {
            result = fe_mul(result, base);
        }
        base = fe_sq(base);
    }
    Some(result)
}

// --- group arithmetic ------------------------------------------------------

/// A scalar modulo the group order — a P-256 private key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Scalar(U256);

impl Scalar {
    /// Creates a scalar from a small integer (useful in tests/doctests).
    pub fn from_u64(v: u64) -> Self {
        Scalar(U256::from_u64(v))
    }

    /// Creates a scalar from 32 big-endian bytes, reducing modulo `n`.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        Scalar(U256::from_be_bytes(bytes).rem_short(group_order()))
    }

    /// Creates a scalar directly from a (reduced) [`U256`].
    pub fn from_u256(v: U256) -> Self {
        Scalar(v.rem_short(group_order()))
    }

    /// The reduced scalar value.
    pub fn value(&self) -> U256 {
        self.0
    }

    /// Whether the scalar is zero (an invalid private key).
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Private-key material: show a fingerprint only.
        let b = self.0.to_be_bytes();
        write!(f, "Scalar({:02x}{:02x}..)", b[0], b[1])
    }
}

/// A point on the curve in affine form (or the point at infinity).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Point {
    /// The identity element.
    Infinity,
    /// An affine point.
    Affine {
        /// x coordinate.
        x: U256,
        /// y coordinate.
        y: U256,
    },
}

/// Jacobian-coordinate point used internally: `(X, Y, Z)` with
/// `x = X/Z²`, `y = Y/Z³`; infinity encoded as `Z = 0`.
#[derive(Clone, Copy, Debug)]
struct Jacobian {
    x: U256,
    y: U256,
    z: U256,
}

impl Jacobian {
    const INFINITY: Jacobian = Jacobian {
        x: U256::ONE,
        y: U256::ONE,
        z: U256::ZERO,
    };

    fn from_affine(p: &Point) -> Jacobian {
        match p {
            Point::Infinity => Jacobian::INFINITY,
            Point::Affine { x, y } => Jacobian {
                x: *x,
                y: *y,
                z: U256::ONE,
            },
        }
    }

    fn to_affine(self) -> Point {
        if self.z.is_zero() {
            return Point::Infinity;
        }
        let z_inv = fe_inv(self.z).expect("nonzero z");
        let z_inv2 = fe_sq(z_inv);
        let z_inv3 = fe_mul(z_inv2, z_inv);
        Point::Affine {
            x: fe_mul(self.x, z_inv2),
            y: fe_mul(self.y, z_inv3),
        }
    }

    /// Point doubling (dbl-2001-b style, a = -3).
    fn double(&self) -> Jacobian {
        if self.z.is_zero() || self.y.is_zero() {
            return Jacobian::INFINITY;
        }
        let delta = fe_sq(self.z);
        let gamma = fe_sq(self.y);
        let beta = fe_mul(self.x, gamma);
        let alpha = {
            let t1 = fe_sub(self.x, delta);
            let t2 = fe_add(self.x, delta);
            fe_mul(fe_add(fe_double(t1), t1), t2) // 3*(x-δ) * (x+δ)
        };
        let beta4 = fe_double(fe_double(beta));
        let beta8 = fe_double(beta4);
        let x3 = fe_sub(fe_sq(alpha), beta8);
        let z3 = {
            let t = fe_add(self.y, self.z);
            fe_sub(fe_sub(fe_sq(t), gamma), delta)
        };
        let gamma2_8 = fe_double(fe_double(fe_double(fe_sq(gamma))));
        let y3 = fe_sub(fe_mul(alpha, fe_sub(beta4, x3)), gamma2_8);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General point addition (add-2007-bl).
    fn add(&self, other: &Jacobian) -> Jacobian {
        if self.z.is_zero() {
            return *other;
        }
        if other.z.is_zero() {
            return *self;
        }
        let z1z1 = fe_sq(self.z);
        let z2z2 = fe_sq(other.z);
        let u1 = fe_mul(self.x, z2z2);
        let u2 = fe_mul(other.x, z1z1);
        let s1 = fe_mul(fe_mul(self.y, other.z), z2z2);
        let s2 = fe_mul(fe_mul(other.y, self.z), z1z1);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Jacobian::INFINITY;
        }
        let h = fe_sub(u2, u1);
        let i = fe_sq(fe_double(h));
        let j = fe_mul(h, i);
        let r = fe_double(fe_sub(s2, s1));
        let v = fe_mul(u1, i);
        let x3 = fe_sub(fe_sub(fe_sq(r), j), fe_double(v));
        let y3 = fe_sub(fe_mul(r, fe_sub(v, x3)), fe_double(fe_mul(s1, j)));
        let z3 = {
            let t = fe_sq(fe_add(self.z, other.z));
            fe_mul(fe_sub(fe_sub(t, z1z1), z2z2), h)
        };
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

impl Point {
    /// The affine x-coordinate, if not the point at infinity.
    pub fn x(&self) -> Option<U256> {
        match self {
            Point::Infinity => None,
            Point::Affine { x, .. } => Some(*x),
        }
    }

    /// The affine y-coordinate, if not the point at infinity.
    pub fn y(&self) -> Option<U256> {
        match self {
            Point::Infinity => None,
            Point::Affine { y, .. } => Some(*y),
        }
    }

    /// Validates that the point satisfies `y² = x³ - 3x + b (mod p)` with
    /// both coordinates in range.
    ///
    /// Skipping this check is exactly the "fixed coordinate invalid curve
    /// attack" (Biham & Neumann) referenced in the paper's related work; the
    /// simulated controller always validates remote public keys.
    pub fn is_on_curve(&self) -> bool {
        match self {
            Point::Infinity => true,
            Point::Affine { x, y } => {
                let p = field_prime();
                if *x >= p || *y >= p {
                    return false;
                }
                let y2 = fe_sq(*y);
                let x3 = fe_mul(fe_sq(*x), *x);
                let three_x = fe_add(fe_double(*x), *x);
                let rhs = fe_add(fe_sub(x3, three_x), curve_b());
                y2 == rhs
            }
        }
    }

    /// Point addition.
    pub fn add(&self, other: &Point) -> Point {
        Jacobian::from_affine(self)
            .add(&Jacobian::from_affine(other))
            .to_affine()
    }

    /// Scalar multiplication (double-and-add, most-significant bit first).
    pub fn mul(&self, k: &Scalar) -> Point {
        let base = Jacobian::from_affine(self);
        let mut acc = Jacobian::INFINITY;
        let bits = k.0.bits();
        for i in (0..bits).rev() {
            acc = acc.double();
            if k.0.bit(i) {
                acc = acc.add(&base);
            }
        }
        acc.to_affine()
    }
}

/// Errors from key-pair construction and ECDH.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcdhError {
    /// The private scalar was zero (or reduced to zero).
    InvalidSecret,
    /// The remote public key failed curve validation.
    InvalidPublicKey,
    /// The shared point was the point at infinity.
    DegenerateSharedSecret,
}

impl fmt::Display for EcdhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcdhError::InvalidSecret => f.write_str("private scalar is zero"),
            EcdhError::InvalidPublicKey => f.write_str("remote public key is not on the curve"),
            EcdhError::DegenerateSharedSecret => {
                f.write_str("shared secret degenerated to the point at infinity")
            }
        }
    }
}

impl std::error::Error for EcdhError {}

/// A P-256 key pair.
///
/// # Examples
///
/// ```
/// use blap_crypto::p256::{KeyPair, Scalar};
///
/// let alice = KeyPair::from_secret(Scalar::from_u64(7))?;
/// let bob = KeyPair::from_secret(Scalar::from_u64(11))?;
/// assert_eq!(
///     alice.diffie_hellman(&bob.public())?,
///     bob.diffie_hellman(&alice.public())?,
/// );
/// # Ok::<(), blap_crypto::p256::EcdhError>(())
/// ```
#[derive(Clone, Debug)]
pub struct KeyPair {
    secret: Scalar,
    public: Point,
}

impl KeyPair {
    /// Builds a key pair from a private scalar.
    ///
    /// # Errors
    ///
    /// Returns [`EcdhError::InvalidSecret`] when the scalar is zero.
    pub fn from_secret(secret: Scalar) -> Result<Self, EcdhError> {
        if secret.is_zero() {
            return Err(EcdhError::InvalidSecret);
        }
        let public = generator().mul(&secret);
        Ok(KeyPair { secret, public })
    }

    /// Builds a key pair from 32 bytes of RNG output (reduced mod `n`).
    ///
    /// # Errors
    ///
    /// Returns [`EcdhError::InvalidSecret`] in the (cryptographically
    /// negligible) case the bytes reduce to zero.
    pub fn from_rng_bytes(bytes: [u8; 32]) -> Result<Self, EcdhError> {
        KeyPair::from_secret(Scalar::from_be_bytes(bytes))
    }

    /// The public point.
    pub fn public(&self) -> Point {
        self.public
    }

    /// Computes the ECDH shared secret: the big-endian x-coordinate of
    /// `secret · remote_public`, the `DHKey` of the SSP protocol.
    ///
    /// # Errors
    ///
    /// Returns [`EcdhError::InvalidPublicKey`] when the remote point fails
    /// curve validation, and [`EcdhError::DegenerateSharedSecret`] when the
    /// multiplication lands on the point at infinity.
    pub fn diffie_hellman(&self, remote_public: &Point) -> Result<[u8; 32], EcdhError> {
        if !remote_public.is_on_curve() || *remote_public == Point::Infinity {
            return Err(EcdhError::InvalidPublicKey);
        }
        let shared = remote_public.mul(&self.secret);
        match shared.x() {
            Some(x) => Ok(x.to_be_bytes()),
            None => Err(EcdhError::DegenerateSharedSecret),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_reduction_matches_binary_division() {
        // Pin the Solinas term table against the audited-slow path.
        let p = field_prime();
        let samples = [
            U256::from_u64(0),
            U256::from_u64(1),
            U256::from_hex("deadbeefcafebabe0123456789abcdef0fedcba9876543211122334455667788"),
            p.overflowing_sub(U256::ONE).0,
            U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"),
            U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
        ];
        for a in samples {
            for b in samples {
                let wide = a.widening_mul(b);
                assert_eq!(reduce_wide(wide), wide.rem(p), "mismatch for {a} * {b}");
            }
        }
    }

    #[test]
    fn generator_is_on_curve() {
        assert!(generator().is_on_curve());
    }

    #[test]
    fn infinity_is_identity() {
        let g = generator();
        assert_eq!(g.add(&Point::Infinity), g);
        assert_eq!(Point::Infinity.add(&g), g);
        assert!(Point::Infinity.is_on_curve());
    }

    #[test]
    fn group_order_annihilates_generator() {
        let n = Scalar(group_order());
        assert_eq!(generator().mul(&n), Point::Infinity);
    }

    #[test]
    fn doubling_matches_addition() {
        let g = generator();
        let two_g = g.mul(&Scalar::from_u64(2));
        assert_eq!(two_g, g.add(&g));
        assert!(two_g.is_on_curve());
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = generator();
        let five = g.mul(&Scalar::from_u64(5));
        let two_plus_three = g
            .mul(&Scalar::from_u64(2))
            .add(&g.mul(&Scalar::from_u64(3)));
        assert_eq!(five, two_plus_three);
        assert!(five.is_on_curve());
    }

    #[test]
    fn negation_gives_infinity() {
        let g = generator();
        if let Point::Affine { x, y } = g {
            let neg = Point::Affine {
                x,
                y: field_prime().overflowing_sub(y).0,
            };
            assert!(neg.is_on_curve());
            assert_eq!(g.add(&neg), Point::Infinity);
        } else {
            panic!("generator must be affine");
        }
    }

    #[test]
    fn ecdh_agreement() {
        let a = KeyPair::from_secret(Scalar::from_be_bytes([0x42; 32])).unwrap();
        let b = KeyPair::from_secret(Scalar::from_be_bytes([0x17; 32])).unwrap();
        let s1 = a.diffie_hellman(&b.public()).unwrap();
        let s2 = b.diffie_hellman(&a.public()).unwrap();
        assert_eq!(s1, s2);
        assert_ne!(s1, [0u8; 32]);
    }

    #[test]
    fn invalid_public_key_rejected() {
        let a = KeyPair::from_secret(Scalar::from_u64(99)).unwrap();
        let bogus = Point::Affine {
            x: U256::from_u64(1),
            y: U256::from_u64(1),
        };
        assert_eq!(a.diffie_hellman(&bogus), Err(EcdhError::InvalidPublicKey));
        assert_eq!(
            a.diffie_hellman(&Point::Infinity),
            Err(EcdhError::InvalidPublicKey)
        );
    }

    #[test]
    fn zero_secret_rejected() {
        assert_eq!(
            KeyPair::from_secret(Scalar::from_u64(0)).unwrap_err(),
            EcdhError::InvalidSecret
        );
    }

    #[test]
    fn scalar_reduces_mod_order() {
        // n + 5 reduces to 5.
        let (n_plus_5, carry) = group_order().overflowing_add(U256::from_u64(5));
        assert!(!carry);
        let s = Scalar::from_be_bytes(n_plus_5.to_be_bytes());
        assert_eq!(s.value(), U256::from_u64(5));
    }

    #[test]
    fn public_points_lie_on_curve() {
        for seed in 1..6u64 {
            let kp = KeyPair::from_secret(Scalar::from_u64(seed * 7919)).unwrap();
            assert!(kp.public().is_on_curve(), "seed {seed}");
        }
    }

    #[test]
    fn field_inversion() {
        let a = U256::from_hex("123456789abcdef000000000000000000000000000000000fedcba9876543210");
        let inv = fe_inv(a).unwrap();
        assert_eq!(fe_mul(a, inv), U256::ONE);
        assert_eq!(fe_inv(U256::ZERO), None);
    }
}
