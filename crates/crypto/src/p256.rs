//! NIST P-256 (secp256r1) elliptic-curve Diffie-Hellman.
//!
//! Secure Simple Pairing's Authentication Stage 1 exchanges P-256 public
//! keys (P-192 for pre-4.1 devices); the shared secret `DHKey` feeds the
//! `f2` link-key derivation. This module implements the curve from its
//! domain parameters on top of [`crate::bigint`]: fast Solinas reduction in
//! the field, Jacobian-coordinate group arithmetic, windowed-NAF scalar
//! multiplication (with a precomputed fixed-base table for the generator),
//! and public-key validation (the check whose absence enabled the
//! Biham–Neumann invalid-curve attack cited by the paper).
//!
//! Correctness is established structurally: the fast field reduction is
//! property-tested against the slow binary long division in
//! [`crate::bigint`], the wNAF and fixed-base multipliers against the
//! retained [`Point::mul_double_and_add`] reference, the generator
//! satisfies the curve equation, `n·G = ∞`, scalar multiplication
//! distributes over scalar addition, and ECDH agreement holds for
//! arbitrary key pairs.

use std::fmt;
use std::sync::OnceLock;

use crate::bigint::{U256, U512};

// Domain parameters as limb constants: the previous accessors re-parsed
// hex strings, which put a heap-allocating `format!` inside every field
// operation of every point double — by far the dominant cost of a pairing.
const P: U256 = U256::from_limbs([
    0xffff_ffff_ffff_ffff,
    0x0000_0000_ffff_ffff,
    0x0000_0000_0000_0000,
    0xffff_ffff_0000_0001,
]);
/// `2^256 - p` (the additive fold constant for carries past 2^256).
const P_COMP: U256 = U256::from_limbs([
    0x0000_0000_0000_0001,
    0xffff_ffff_0000_0000,
    0xffff_ffff_ffff_ffff,
    0x0000_0000_ffff_fffe,
]);
const N: U256 = U256::from_limbs([
    0xf3b9_cac2_fc63_2551,
    0xbce6_faad_a717_9e84,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_0000_0000,
]);
const B: U256 = U256::from_limbs([
    0x3bce_3c3e_27d2_604b,
    0x651d_06b0_cc53_b0f6,
    0xb3eb_bd55_7698_86bc,
    0x5ac6_35d8_aa3a_93e7,
]);
const GX: U256 = U256::from_limbs([
    0xf4a1_3945_d898_c296,
    0x7703_7d81_2deb_33a0,
    0xf8bc_e6e5_63a4_40f2,
    0x6b17_d1f2_e12c_4247,
]);
const GY: U256 = U256::from_limbs([
    0xcbb6_4068_37bf_51f5,
    0x2bce_3357_6b31_5ece,
    0x8ee7_eb4a_7c0f_9e16,
    0x4fe3_42e2_fe1a_7f9b,
]);

/// The field prime `p = 2^256 - 2^224 + 2^192 + 2^96 - 1`.
pub fn field_prime() -> U256 {
    P
}

/// The group order `n`.
pub fn group_order() -> U256 {
    N
}

fn curve_b() -> U256 {
    B
}

/// The base point `G`.
pub fn generator() -> Point {
    Point::Affine { x: GX, y: GY }
}

// --- fast field arithmetic -------------------------------------------------

/// Reduces a 512-bit product modulo the P-256 prime using the NIST/Solinas
/// term decomposition over 32-bit words.
pub(crate) fn reduce_wide(value: U512) -> U256 {
    // Split into sixteen little-endian 32-bit words c0..c15.
    let limbs = {
        let mut l = [0u64; 8];
        // U512 has no public limb accessor; round-trip through U256 halves.
        // (Cheap: just byte plumbing.)
        let bytes = u512_to_le_words(value);
        l.copy_from_slice(&bytes);
        l
    };
    let mut c = [0u32; 16];
    for i in 0..8 {
        c[2 * i] = limbs[i] as u32;
        c[2 * i + 1] = (limbs[i] >> 32) as u32;
    }

    // Terms from FIPS 186 fast reduction for p256, given as big-endian word
    // tuples (w7..w0); indices into c. `None` means zero.
    const fn w(i: usize) -> Option<usize> {
        Some(i)
    }
    let z: Option<usize> = None;
    // Each row is (w7, w6, w5, w4, w3, w2, w1, w0).
    let terms: [([Option<usize>; 8], i64); 9] = [
        ([w(7), w(6), w(5), w(4), w(3), w(2), w(1), w(0)], 1), // s1
        ([w(15), w(14), w(13), w(12), w(11), z, z, z], 2),     // s2
        ([z, w(15), w(14), w(13), w(12), z, z, z], 2),         // s3
        ([w(15), w(14), z, z, z, w(10), w(9), w(8)], 1),       // s4
        ([w(8), w(13), w(15), w(14), w(13), w(11), w(10), w(9)], 1), // s5
        ([w(10), w(8), z, z, z, w(13), w(12), w(11)], -1),     // s6
        ([w(11), w(9), z, z, w(15), w(14), w(13), w(12)], -1), // s7
        ([w(12), z, w(10), w(9), w(8), w(15), w(14), w(13)], -1), // s8
        ([w(13), z, w(11), w(10), w(9), z, w(15), w(14)], -1), // s9
    ];

    // Accumulate word-wise with a signed accumulator.
    let mut acc = [0i64; 8];
    for (words, sign) in terms {
        for (be_idx, src) in words.iter().enumerate() {
            if let Some(ci) = src {
                let le_idx = 7 - be_idx;
                acc[le_idx] += sign * c[*ci] as i64;
            }
        }
    }

    // Carry-propagate into 32-bit words; `carry` may go negative.
    let mut words = [0u32; 8];
    let mut carry: i64 = 0;
    for i in 0..8 {
        let v = acc[i] + carry;
        words[i] = (v & 0xffff_ffff) as u32;
        carry = v >> 32; // arithmetic shift keeps the sign
    }

    let mut r = u256_from_le_words(words);
    let p = P;
    // r_actual = r + carry * 2^256; fold the carry in using
    // 2^256 ≡ 2^256 - p (mod p).
    let fold = P_COMP;
    while carry > 0 {
        let (sum, overflow) = r.overflowing_add(fold);
        r = sum;
        carry -= 1;
        if overflow {
            carry += 1;
        }
        if r >= p {
            r = r.overflowing_sub(p).0;
        }
    }
    while carry < 0 {
        let (diff, borrow) = r.overflowing_sub(fold);
        r = diff;
        carry += 1;
        if borrow {
            carry -= 1;
        }
    }
    while r >= p {
        r = r.overflowing_sub(p).0;
    }
    r
}

fn u512_to_le_words(value: U512) -> [u64; 8] {
    value.limbs_le()
}

fn u256_from_le_words(words: [u32; 8]) -> U256 {
    let mut limbs = [0u64; 4];
    for i in 0..4 {
        limbs[i] = words[2 * i] as u64 | (words[2 * i + 1] as u64) << 32;
    }
    U256::from_limbs(limbs)
}

fn fe_mul(a: U256, b: U256) -> U256 {
    reduce_wide(a.widening_mul(b))
}

/// Multiplies two field elements modulo the P-256 prime using the fast
/// Solinas reduction (the hot path of every point operation). Exposed so
/// external property tests can pin it against the slow binary-division
/// reduction in [`crate::bigint`].
pub fn field_mul(a: U256, b: U256) -> U256 {
    fe_mul(a.rem_short(P), b.rem_short(P))
}

fn fe_sq(a: U256) -> U256 {
    reduce_wide(a.widening_sq())
}

fn fe_add(a: U256, b: U256) -> U256 {
    a.add_mod(b, P)
}

fn fe_sub(a: U256, b: U256) -> U256 {
    a.sub_mod(b, P)
}

fn fe_double(a: U256) -> U256 {
    fe_add(a, a)
}

fn fe_neg(a: U256) -> U256 {
    if a.is_zero() {
        a
    } else {
        P.overflowing_sub(a).0
    }
}

/// Field inversion by Fermat's little theorem, using the fast multiplier.
fn fe_inv(a: U256) -> Option<U256> {
    if a.is_zero() {
        return None;
    }
    let exp = P.overflowing_sub(U256::from_u64(2)).0;
    let mut result = U256::ONE;
    let mut base = a;
    for i in 0..exp.bits() {
        if exp.bit(i) {
            result = fe_mul(result, base);
        }
        base = fe_sq(base);
    }
    Some(result)
}

// --- group arithmetic ------------------------------------------------------

/// A scalar modulo the group order — a P-256 private key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Scalar(U256);

impl Scalar {
    /// Creates a scalar from a small integer (useful in tests/doctests).
    pub fn from_u64(v: u64) -> Self {
        Scalar(U256::from_u64(v))
    }

    /// Creates a scalar from 32 big-endian bytes, reducing modulo `n`.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        Scalar(U256::from_be_bytes(bytes).rem_short(group_order()))
    }

    /// Creates a scalar directly from a (reduced) [`U256`].
    pub fn from_u256(v: U256) -> Self {
        Scalar(v.rem_short(group_order()))
    }

    /// The reduced scalar value.
    pub fn value(&self) -> U256 {
        self.0
    }

    /// Whether the scalar is zero (an invalid private key).
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Private-key material: show a fingerprint only.
        let b = self.0.to_be_bytes();
        write!(f, "Scalar({:02x}{:02x}..)", b[0], b[1])
    }
}

/// A point on the curve in affine form (or the point at infinity).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Point {
    /// The identity element.
    Infinity,
    /// An affine point.
    Affine {
        /// x coordinate.
        x: U256,
        /// y coordinate.
        y: U256,
    },
}

/// Jacobian-coordinate point used internally: `(X, Y, Z)` with
/// `x = X/Z²`, `y = Y/Z³`; infinity encoded as `Z = 0`.
#[derive(Clone, Copy, Debug)]
struct Jacobian {
    x: U256,
    y: U256,
    z: U256,
}

impl Jacobian {
    const INFINITY: Jacobian = Jacobian {
        x: U256::ONE,
        y: U256::ONE,
        z: U256::ZERO,
    };

    fn from_affine(p: &Point) -> Jacobian {
        match p {
            Point::Infinity => Jacobian::INFINITY,
            Point::Affine { x, y } => Jacobian {
                x: *x,
                y: *y,
                z: U256::ONE,
            },
        }
    }

    fn to_affine(self) -> Point {
        if self.z.is_zero() {
            return Point::Infinity;
        }
        let z_inv = fe_inv(self.z).expect("nonzero z");
        let z_inv2 = fe_sq(z_inv);
        let z_inv3 = fe_mul(z_inv2, z_inv);
        Point::Affine {
            x: fe_mul(self.x, z_inv2),
            y: fe_mul(self.y, z_inv3),
        }
    }

    /// Point doubling (dbl-2001-b style, a = -3).
    fn double(&self) -> Jacobian {
        if self.z.is_zero() || self.y.is_zero() {
            return Jacobian::INFINITY;
        }
        let delta = fe_sq(self.z);
        let gamma = fe_sq(self.y);
        let beta = fe_mul(self.x, gamma);
        let alpha = {
            let t1 = fe_sub(self.x, delta);
            let t2 = fe_add(self.x, delta);
            fe_mul(fe_add(fe_double(t1), t1), t2) // 3*(x-δ) * (x+δ)
        };
        let beta4 = fe_double(fe_double(beta));
        let beta8 = fe_double(beta4);
        let x3 = fe_sub(fe_sq(alpha), beta8);
        let z3 = {
            let t = fe_add(self.y, self.z);
            fe_sub(fe_sub(fe_sq(t), gamma), delta)
        };
        let gamma2_8 = fe_double(fe_double(fe_double(fe_sq(gamma))));
        let y3 = fe_sub(fe_mul(alpha, fe_sub(beta4, x3)), gamma2_8);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General point addition (add-2007-bl).
    fn add(&self, other: &Jacobian) -> Jacobian {
        if self.z.is_zero() {
            return *other;
        }
        if other.z.is_zero() {
            return *self;
        }
        let z1z1 = fe_sq(self.z);
        let z2z2 = fe_sq(other.z);
        let u1 = fe_mul(self.x, z2z2);
        let u2 = fe_mul(other.x, z1z1);
        let s1 = fe_mul(fe_mul(self.y, other.z), z2z2);
        let s2 = fe_mul(fe_mul(other.y, self.z), z1z1);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Jacobian::INFINITY;
        }
        let h = fe_sub(u2, u1);
        let i = fe_sq(fe_double(h));
        let j = fe_mul(h, i);
        let r = fe_double(fe_sub(s2, s1));
        let v = fe_mul(u1, i);
        let x3 = fe_sub(fe_sub(fe_sq(r), j), fe_double(v));
        let y3 = fe_sub(fe_mul(r, fe_sub(v, x3)), fe_double(fe_mul(s1, j)));
        let z3 = {
            let t = fe_sq(fe_add(self.z, other.z));
            fe_mul(fe_sub(fe_sub(t, z1z1), z2z2), h)
        };
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (madd-2007-bl, Z2 = 1): saves
    /// 4M + 1S over the general [`Self::add`], which is why both scalar
    /// multipliers normalize their tables to affine first.
    fn madd(&self, x2: U256, y2: U256) -> Jacobian {
        if self.z.is_zero() {
            return Jacobian {
                x: x2,
                y: y2,
                z: U256::ONE,
            };
        }
        let z1z1 = fe_sq(self.z);
        let u2 = fe_mul(x2, z1z1);
        let s2 = fe_mul(y2, fe_mul(self.z, z1z1));
        if u2 == self.x {
            if s2 == self.y {
                return self.double();
            }
            return Jacobian::INFINITY;
        }
        let h = fe_sub(u2, self.x);
        let hh = fe_sq(h);
        let i = fe_double(fe_double(hh));
        let j = fe_mul(h, i);
        let r = fe_double(fe_sub(s2, self.y));
        let v = fe_mul(self.x, i);
        let x3 = fe_sub(fe_sub(fe_sq(r), j), fe_double(v));
        let y3 = fe_sub(fe_mul(r, fe_sub(v, x3)), fe_double(fe_mul(self.y, j)));
        let z3 = fe_sub(fe_sub(fe_sq(fe_add(self.z, h)), z1z1), hh);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

/// Normalizes a batch of non-infinity Jacobian points to affine `(x, y)`
/// with a single field inversion (Montgomery's trick): prefix-multiply the
/// Z coordinates, invert the product once, then walk back unwinding each
/// individual inverse.
fn batch_to_affine(points: &[Jacobian]) -> Vec<(U256, U256)> {
    let mut prefix = Vec::with_capacity(points.len());
    let mut acc = U256::ONE;
    for point in points {
        acc = fe_mul(acc, point.z);
        prefix.push(acc);
    }
    let mut inv = fe_inv(acc).expect("batch contains no infinity");
    let mut out = vec![(U256::ZERO, U256::ZERO); points.len()];
    for i in (0..points.len()).rev() {
        let z_inv = if i == 0 {
            inv
        } else {
            fe_mul(inv, prefix[i - 1])
        };
        inv = fe_mul(inv, points[i].z);
        let z_inv2 = fe_sq(z_inv);
        out[i] = (
            fe_mul(points[i].x, z_inv2),
            fe_mul(points[i].y, fe_mul(z_inv2, z_inv)),
        );
    }
    out
}

// --- scalar multiplication -------------------------------------------------

/// Window width for the arbitrary-point multiplier: digits in
/// `{±1, ±3, …, ±15}`, an 8-entry odd-multiples table.
const WNAF_WIDTH: u32 = 5;

/// Width-5 NAF recoding, least-significant digit first. At most one of
/// any five consecutive digits is nonzero, so a 256-bit scalar costs
/// ~256 doubles but only ~43 additions (vs ~128 for double-and-add).
fn wnaf_digits(k: &U256) -> Vec<i8> {
    let mut limbs = k.limbs();
    let mut digits = Vec::with_capacity(257);
    while limbs != [0u64; 4] {
        let digit = if limbs[0] & 1 == 1 {
            let mut d = (limbs[0] & ((1 << WNAF_WIDTH) - 1)) as i32;
            if d >= 1 << (WNAF_WIDTH - 1) {
                d -= 1 << WNAF_WIDTH;
            }
            // Subtract the signed digit so the low WNAF_WIDTH bits clear.
            if d >= 0 {
                limbs_sub_small(&mut limbs, d as u64);
            } else {
                limbs_add_small(&mut limbs, (-d) as u64);
            }
            d as i8
        } else {
            0
        };
        digits.push(digit);
        limbs_shr1(&mut limbs);
    }
    digits
}

fn limbs_sub_small(limbs: &mut [u64; 4], v: u64) {
    let (r, mut borrow) = limbs[0].overflowing_sub(v);
    limbs[0] = r;
    for limb in limbs.iter_mut().skip(1) {
        if !borrow {
            break;
        }
        let (r, b) = limb.overflowing_sub(1);
        *limb = r;
        borrow = b;
    }
}

fn limbs_add_small(limbs: &mut [u64; 4], v: u64) {
    let (r, mut carry) = limbs[0].overflowing_add(v);
    limbs[0] = r;
    for limb in limbs.iter_mut().skip(1) {
        if !carry {
            break;
        }
        let (r, c) = limb.overflowing_add(1);
        *limb = r;
        carry = c;
    }
}

fn limbs_shr1(limbs: &mut [u64; 4]) {
    for i in 0..4 {
        limbs[i] = (limbs[i] >> 1) | if i < 3 { limbs[i + 1] << 63 } else { 0 };
    }
}

/// Windowed-NAF scalar multiplication for an arbitrary base point.
fn mul_wnaf(base: &Point, k: &U256) -> Point {
    let (bx, by) = match base {
        Point::Infinity => return Point::Infinity,
        Point::Affine { x, y } => (*x, *y),
    };
    if k.is_zero() {
        return Point::Infinity;
    }
    let base_jac = Jacobian {
        x: bx,
        y: by,
        z: U256::ONE,
    };
    let twice = base_jac.double();
    if twice.z.is_zero() {
        // y = 0: a 2-torsion input (impossible on P-256 itself, but `mul`
        // accepts arbitrary coordinates). Fall back to the reference.
        return base.mul_double_and_add(&Scalar(*k));
    }
    // Odd multiples 1·B, 3·B, …, 15·B, normalized to affine for madd.
    let mut odd = Vec::with_capacity(1 << (WNAF_WIDTH - 2));
    odd.push(base_jac);
    for i in 1..1 << (WNAF_WIDTH - 2) {
        let prev: &Jacobian = &odd[i - 1];
        odd.push(prev.add(&twice));
    }
    let table = batch_to_affine(&odd);
    let mut acc = Jacobian::INFINITY;
    for &digit in wnaf_digits(k).iter().rev() {
        acc = acc.double();
        if digit > 0 {
            let (x, y) = table[(digit as usize - 1) / 2];
            acc = acc.madd(x, y);
        } else if digit < 0 {
            let (x, y) = table[((-digit) as usize - 1) / 2];
            acc = acc.madd(x, fe_neg(y));
        }
    }
    acc.to_affine()
}

/// Fixed-base window width: 4-bit digits, 64 windows, 15 odd+even entries
/// per window (`j · 16^w · G` for `j` in 1..=15).
const FB_WINDOWS: usize = 64;
const FB_TABLE_PER_WINDOW: usize = 15;

static GEN_TABLE: OnceLock<Vec<(U256, U256)>> = OnceLock::new();

/// The precomputed generator table. Built once per process (~1k group
/// additions + one batched inversion), it turns every subsequent `k·G`
/// into at most 64 mixed additions with no doubles at all — keygen is the
/// hot path of every simulated pairing, one per device per trial.
fn gen_table() -> &'static [(U256, U256)] {
    GEN_TABLE.get_or_init(|| {
        let mut points = Vec::with_capacity(FB_WINDOWS * FB_TABLE_PER_WINDOW);
        let mut window_base = Jacobian {
            x: GX,
            y: GY,
            z: U256::ONE,
        };
        for _ in 0..FB_WINDOWS {
            // multiple walks j·(16^w·G) for j = 1..=15; one more addition
            // yields 16·(16^w·G), the next window's base.
            let mut multiple = window_base;
            for _ in 0..FB_TABLE_PER_WINDOW {
                points.push(multiple);
                multiple = multiple.add(&window_base);
            }
            window_base = multiple;
        }
        batch_to_affine(&points)
    })
}

/// Fixed-base scalar multiplication `k·G` via the precomputed table.
fn mul_generator(k: &U256) -> Point {
    let table = gen_table();
    let limbs = k.limbs();
    let mut acc = Jacobian::INFINITY;
    for window in 0..FB_WINDOWS {
        let digit = ((limbs[window / 16] >> (4 * (window % 16))) & 0xf) as usize;
        if digit != 0 {
            let (x, y) = table[window * FB_TABLE_PER_WINDOW + digit - 1];
            acc = acc.madd(x, y);
        }
    }
    acc.to_affine()
}

impl Point {
    /// The affine x-coordinate, if not the point at infinity.
    pub fn x(&self) -> Option<U256> {
        match self {
            Point::Infinity => None,
            Point::Affine { x, .. } => Some(*x),
        }
    }

    /// The affine y-coordinate, if not the point at infinity.
    pub fn y(&self) -> Option<U256> {
        match self {
            Point::Infinity => None,
            Point::Affine { y, .. } => Some(*y),
        }
    }

    /// Validates that the point satisfies `y² = x³ - 3x + b (mod p)` with
    /// both coordinates in range.
    ///
    /// Skipping this check is exactly the "fixed coordinate invalid curve
    /// attack" (Biham & Neumann) referenced in the paper's related work; the
    /// simulated controller always validates remote public keys.
    pub fn is_on_curve(&self) -> bool {
        match self {
            Point::Infinity => true,
            Point::Affine { x, y } => {
                let p = field_prime();
                if *x >= p || *y >= p {
                    return false;
                }
                let y2 = fe_sq(*y);
                let x3 = fe_mul(fe_sq(*x), *x);
                let three_x = fe_add(fe_double(*x), *x);
                let rhs = fe_add(fe_sub(x3, three_x), curve_b());
                y2 == rhs
            }
        }
    }

    /// Point addition.
    pub fn add(&self, other: &Point) -> Point {
        Jacobian::from_affine(self)
            .add(&Jacobian::from_affine(other))
            .to_affine()
    }

    /// Scalar multiplication.
    ///
    /// Dispatches to the precomputed fixed-base table when `self` is the
    /// curve generator (the keygen hot path) and to width-5 windowed-NAF
    /// otherwise (the ECDH hot path). Both are pinned property-test-equal
    /// to [`Self::mul_double_and_add`].
    pub fn mul(&self, k: &Scalar) -> Point {
        let _prof = blap_obs::prof::scope("crypto.p256");
        if let Point::Affine { x, y } = self {
            if *x == GX && *y == GY {
                return mul_generator(&k.0);
            }
        }
        mul_wnaf(self, &k.0)
    }

    /// Scalar multiplication by textbook double-and-add, most-significant
    /// bit first. Retained as the independently-auditable reference that
    /// `tests/parallel_determinism.rs` pins [`Self::mul`] against.
    pub fn mul_double_and_add(&self, k: &Scalar) -> Point {
        let base = Jacobian::from_affine(self);
        let mut acc = Jacobian::INFINITY;
        let bits = k.0.bits();
        for i in (0..bits).rev() {
            acc = acc.double();
            if k.0.bit(i) {
                acc = acc.add(&base);
            }
        }
        acc.to_affine()
    }
}

/// Errors from key-pair construction and ECDH.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcdhError {
    /// The private scalar was zero (or reduced to zero).
    InvalidSecret,
    /// The remote public key failed curve validation.
    InvalidPublicKey,
    /// The shared point was the point at infinity.
    DegenerateSharedSecret,
}

impl fmt::Display for EcdhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcdhError::InvalidSecret => f.write_str("private scalar is zero"),
            EcdhError::InvalidPublicKey => f.write_str("remote public key is not on the curve"),
            EcdhError::DegenerateSharedSecret => {
                f.write_str("shared secret degenerated to the point at infinity")
            }
        }
    }
}

impl std::error::Error for EcdhError {}

/// A P-256 key pair.
///
/// # Examples
///
/// ```
/// use blap_crypto::p256::{KeyPair, Scalar};
///
/// let alice = KeyPair::from_secret(Scalar::from_u64(7))?;
/// let bob = KeyPair::from_secret(Scalar::from_u64(11))?;
/// assert_eq!(
///     alice.diffie_hellman(&bob.public())?,
///     bob.diffie_hellman(&alice.public())?,
/// );
/// # Ok::<(), blap_crypto::p256::EcdhError>(())
/// ```
#[derive(Clone, Debug)]
pub struct KeyPair {
    secret: Scalar,
    public: Point,
}

impl KeyPair {
    /// Builds a key pair from a private scalar.
    ///
    /// # Errors
    ///
    /// Returns [`EcdhError::InvalidSecret`] when the scalar is zero.
    pub fn from_secret(secret: Scalar) -> Result<Self, EcdhError> {
        if secret.is_zero() {
            return Err(EcdhError::InvalidSecret);
        }
        let public = generator().mul(&secret);
        Ok(KeyPair { secret, public })
    }

    /// Builds a key pair from 32 bytes of RNG output (reduced mod `n`).
    ///
    /// # Errors
    ///
    /// Returns [`EcdhError::InvalidSecret`] in the (cryptographically
    /// negligible) case the bytes reduce to zero.
    pub fn from_rng_bytes(bytes: [u8; 32]) -> Result<Self, EcdhError> {
        KeyPair::from_secret(Scalar::from_be_bytes(bytes))
    }

    /// The public point.
    pub fn public(&self) -> Point {
        self.public
    }

    /// Computes the ECDH shared secret: the big-endian x-coordinate of
    /// `secret · remote_public`, the `DHKey` of the SSP protocol.
    ///
    /// # Errors
    ///
    /// Returns [`EcdhError::InvalidPublicKey`] when the remote point fails
    /// curve validation, and [`EcdhError::DegenerateSharedSecret`] when the
    /// multiplication lands on the point at infinity.
    pub fn diffie_hellman(&self, remote_public: &Point) -> Result<[u8; 32], EcdhError> {
        if !remote_public.is_on_curve() || *remote_public == Point::Infinity {
            return Err(EcdhError::InvalidPublicKey);
        }
        let shared = remote_public.mul(&self.secret);
        match shared.x() {
            Some(x) => Ok(x.to_be_bytes()),
            None => Err(EcdhError::DegenerateSharedSecret),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_reduction_matches_binary_division() {
        // Pin the Solinas term table against the audited-slow path.
        let p = field_prime();
        let samples = [
            U256::from_u64(0),
            U256::from_u64(1),
            U256::from_hex("deadbeefcafebabe0123456789abcdef0fedcba9876543211122334455667788"),
            p.overflowing_sub(U256::ONE).0,
            U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"),
            U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
        ];
        for a in samples {
            for b in samples {
                let wide = a.widening_mul(b);
                assert_eq!(reduce_wide(wide), wide.rem(p), "mismatch for {a} * {b}");
            }
        }
    }

    #[test]
    fn generator_is_on_curve() {
        assert!(generator().is_on_curve());
    }

    #[test]
    fn infinity_is_identity() {
        let g = generator();
        assert_eq!(g.add(&Point::Infinity), g);
        assert_eq!(Point::Infinity.add(&g), g);
        assert!(Point::Infinity.is_on_curve());
    }

    #[test]
    fn group_order_annihilates_generator() {
        let n = Scalar(group_order());
        assert_eq!(generator().mul(&n), Point::Infinity);
    }

    #[test]
    fn doubling_matches_addition() {
        let g = generator();
        let two_g = g.mul(&Scalar::from_u64(2));
        assert_eq!(two_g, g.add(&g));
        assert!(two_g.is_on_curve());
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = generator();
        let five = g.mul(&Scalar::from_u64(5));
        let two_plus_three = g
            .mul(&Scalar::from_u64(2))
            .add(&g.mul(&Scalar::from_u64(3)));
        assert_eq!(five, two_plus_three);
        assert!(five.is_on_curve());
    }

    #[test]
    fn negation_gives_infinity() {
        let g = generator();
        if let Point::Affine { x, y } = g {
            let neg = Point::Affine {
                x,
                y: field_prime().overflowing_sub(y).0,
            };
            assert!(neg.is_on_curve());
            assert_eq!(g.add(&neg), Point::Infinity);
        } else {
            panic!("generator must be affine");
        }
    }

    #[test]
    fn ecdh_agreement() {
        let a = KeyPair::from_secret(Scalar::from_be_bytes([0x42; 32])).unwrap();
        let b = KeyPair::from_secret(Scalar::from_be_bytes([0x17; 32])).unwrap();
        let s1 = a.diffie_hellman(&b.public()).unwrap();
        let s2 = b.diffie_hellman(&a.public()).unwrap();
        assert_eq!(s1, s2);
        assert_ne!(s1, [0u8; 32]);
    }

    #[test]
    fn invalid_public_key_rejected() {
        let a = KeyPair::from_secret(Scalar::from_u64(99)).unwrap();
        let bogus = Point::Affine {
            x: U256::from_u64(1),
            y: U256::from_u64(1),
        };
        assert_eq!(a.diffie_hellman(&bogus), Err(EcdhError::InvalidPublicKey));
        assert_eq!(
            a.diffie_hellman(&Point::Infinity),
            Err(EcdhError::InvalidPublicKey)
        );
    }

    #[test]
    fn zero_secret_rejected() {
        assert_eq!(
            KeyPair::from_secret(Scalar::from_u64(0)).unwrap_err(),
            EcdhError::InvalidSecret
        );
    }

    #[test]
    fn scalar_reduces_mod_order() {
        // n + 5 reduces to 5.
        let (n_plus_5, carry) = group_order().overflowing_add(U256::from_u64(5));
        assert!(!carry);
        let s = Scalar::from_be_bytes(n_plus_5.to_be_bytes());
        assert_eq!(s.value(), U256::from_u64(5));
    }

    #[test]
    fn public_points_lie_on_curve() {
        for seed in 1..6u64 {
            let kp = KeyPair::from_secret(Scalar::from_u64(seed * 7919)).unwrap();
            assert!(kp.public().is_on_curve(), "seed {seed}");
        }
    }

    #[test]
    fn field_inversion() {
        let a = U256::from_hex("123456789abcdef000000000000000000000000000000000fedcba9876543210");
        let inv = fe_inv(a).unwrap();
        assert_eq!(fe_mul(a, inv), U256::ONE);
        assert_eq!(fe_inv(U256::ZERO), None);
    }
}
