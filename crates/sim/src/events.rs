//! Scheduled simulation events.

use blap_controller::lmp::LmpPdu;
use blap_controller::ControllerTimer;
use blap_hci::AclData;
use blap_host::HostTimer;
use blap_types::{BdAddr, ClassOfDevice, Instant};

use crate::device::DeviceId;

/// A timer key, unifying controller and host timers for the generation
/// bookkeeping in the world.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimTimer {
    /// A controller timer.
    Controller(ControllerTimer),
    /// A host timer.
    Host(HostTimer),
}

/// What happens when a scheduled event fires.
pub enum EventKind {
    /// Deliver an LMP PDU over link `link_id`.
    LmpDeliver {
        /// Link the PDU travels on.
        link_id: u64,
        /// Receiving device.
        to: DeviceId,
        /// Address the receiver believes the sender has.
        from_addr: BdAddr,
        /// The PDU.
        pdu: LmpPdu,
    },
    /// Deliver ACL data over link `link_id`.
    AclDeliver {
        /// Link the data travels on.
        link_id: u64,
        /// Receiving device.
        to: DeviceId,
        /// Address the receiver believes the sender has.
        from_addr: BdAddr,
        /// The payload.
        data: AclData,
    },
    /// Resolve a page request (run the response race).
    PageResolve {
        /// Paging device.
        pager: DeviceId,
        /// Paged address.
        target: BdAddr,
    },
    /// The winning responder receives the page.
    PageDeliver {
        /// Paging device.
        pager: DeviceId,
        /// Winning responder.
        responder: DeviceId,
        /// The address that was paged (the responder's claimed address).
        target: BdAddr,
    },
    /// The page found no responder.
    PageTimeout {
        /// Paging device.
        pager: DeviceId,
        /// Paged address.
        target: BdAddr,
    },
    /// One inquiry response arrives at the inquirer.
    InquiryResponse {
        /// Inquiring device.
        inquirer: DeviceId,
        /// Responder's claimed address.
        bd_addr: BdAddr,
        /// Responder's class of device.
        cod: ClassOfDevice,
    },
    /// The inquiry window closed.
    InquiryComplete {
        /// Inquiring device.
        inquirer: DeviceId,
    },
    /// A timer fires (if its generation is still current).
    TimerFire {
        /// Device owning the timer.
        device: DeviceId,
        /// Which timer.
        timer: SimTimer,
        /// Generation at scheduling time.
        generation: u64,
    },
    /// Check one link's supervision timeout.
    SupervisionCheck {
        /// Link to check.
        link_id: u64,
    },
    /// Run an arbitrary script against the world (user actions).
    Script {
        /// The scripted action.
        action: Box<dyn FnOnce(&mut crate::world::World) + Send>,
    },
}

impl EventKind {
    /// The kind's name, for [`blap_obs::TraceEvent::SchedulerDispatch`]
    /// stamps.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::LmpDeliver { .. } => "LmpDeliver",
            EventKind::AclDeliver { .. } => "AclDeliver",
            EventKind::PageResolve { .. } => "PageResolve",
            EventKind::PageDeliver { .. } => "PageDeliver",
            EventKind::PageTimeout { .. } => "PageTimeout",
            EventKind::InquiryResponse { .. } => "InquiryResponse",
            EventKind::InquiryComplete { .. } => "InquiryComplete",
            EventKind::TimerFire { .. } => "TimerFire",
            EventKind::SupervisionCheck { .. } => "SupervisionCheck",
            EventKind::Script { .. } => "Script",
        }
    }

    /// The wall-time profiling scope this dispatch is attributed to.
    ///
    /// The deterministic span layer tracks page/LMP/pairing causally
    /// *across* scheduler callbacks; wall-clock scopes must instead be
    /// stack-shaped, so dispatch cost is grouped by event family here and
    /// the handler-level scopes (`lmp_auth`, `hci_cmd`, …) nest beneath.
    pub fn prof_scope(&self) -> &'static str {
        match self {
            EventKind::LmpDeliver { .. } => "lmp_deliver",
            EventKind::AclDeliver { .. } => "acl_deliver",
            EventKind::PageResolve { .. }
            | EventKind::PageDeliver { .. }
            | EventKind::PageTimeout { .. } => "page",
            EventKind::InquiryResponse { .. } | EventKind::InquiryComplete { .. } => "inquiry",
            EventKind::TimerFire { .. } => "timer",
            EventKind::SupervisionCheck { .. } => "supervision",
            EventKind::Script { .. } => "script",
        }
    }
}

/// An event queued for a point in virtual time. Ordered by `(time, seq)` so
/// ties resolve deterministically in scheduling order.
pub struct ScheduledEvent {
    /// When the event fires.
    pub time: Instant,
    /// Scheduling sequence number (tiebreaker).
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl std::fmt::Debug for ScheduledEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScheduledEvent(t={}, seq={})", self.time, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(time_us: u64, seq: u64) -> ScheduledEvent {
        ScheduledEvent {
            time: Instant::from_micros(time_us),
            seq,
            kind: EventKind::SupervisionCheck { link_id: 0 },
        }
    }

    #[test]
    fn heap_pops_earliest_first_with_seq_tiebreak() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(100, 2));
        heap.push(ev(50, 3));
        heap.push(ev(100, 1));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.time.as_micros(), e.seq))
            .collect();
        assert_eq!(order, vec![(50, 3), (100, 1), (100, 2)]);
    }
}
