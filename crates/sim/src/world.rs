//! The discrete-event world.

use std::collections::{BTreeMap, BinaryHeap, HashMap};

use blap_baseband::inquiry::{run_inquiry, InquiryTarget};
use blap_baseband::paging::{resolve_page, PageListener, PageResult};
use blap_baseband::race::{PageRaceModel, RaceTally, RaceWinner};
use blap_baseband::timing;
use blap_controller::lmp::LmpPdu;
use blap_controller::{ControllerOutput, PageOutcome};
use blap_hci::{HciPacket, PacketDirection};
use blap_host::HostOutput;
use blap_obs::{prof, Histogram, Metrics, SpanId, TraceEvent, Tracer};
use blap_types::{BdAddr, Duration, Instant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::device::{Device, DeviceId, DeviceSpec};
use crate::events::{EventKind, ScheduledEvent, SimTimer};

/// Latency of an LMP exchange between linked controllers: two slots.
const LMP_LATENCY: Duration = Duration::from_micros(1250);
/// Latency of an ACL round: two slots.
const ACL_LATENCY: Duration = Duration::from_micros(1250);

/// One established baseband link between two devices.
#[derive(Debug)]
struct LinkState {
    a: DeviceId,
    b: DeviceId,
    /// The address `a` believes `b` has.
    a_sees: BdAddr,
    /// The address `b` believes `a` has.
    b_sees: BdAddr,
    last_activity: Instant,
    alive: bool,
}

/// One frame captured by the world's passive air sniffer.
///
/// LMP control traffic is cleartext on a BR/EDR link until encryption
/// starts; ACL payload frames are captured as the *over-the-air* bytes —
/// AES-CCM ciphertext once the link is encrypted. This is the capture the
/// paper's §IV remark about decrypting "past and future communications of
/// M captured by air-sniffers" refers to.
#[derive(Clone, Debug)]
pub enum SniffedFrame {
    /// A cleartext LMP PDU (by name — LMP bit layouts are not modelled).
    Lmp {
        /// Capture time.
        time: Instant,
        /// Sender's claimed address.
        from: BdAddr,
        /// Receiver's claimed address.
        to: BdAddr,
        /// PDU name.
        name: &'static str,
        /// The verifier's AU_RAND, when this PDU carries one (the value an
        /// eavesdropper needs to re-derive the encryption key).
        au_rand: Option<[u8; 16]>,
    },
    /// An ACL payload frame as it crossed the air.
    Acl {
        /// Capture time.
        time: Instant,
        /// Sender's claimed address.
        from: BdAddr,
        /// Receiver's claimed address.
        to: BdAddr,
        /// Over-the-air bytes (ciphertext when the link was encrypted).
        /// Shared with the scheduler's in-flight packet when cleartext, so
        /// the capture costs no copy.
        data: std::sync::Arc<[u8]>,
        /// Whether the link was encrypted when captured.
        encrypted: bool,
        /// The CCM packet counter used (an eavesdropper reconstructs this
        /// from frame order; carried here so tests can cross-check).
        packet_counter: u64,
    },
}

/// The simulation world. See the crate docs for the overall model.
pub struct World {
    devices: Vec<Device>,
    queue: BinaryHeap<ScheduledEvent>,
    now: Instant,
    seq: u64,
    rng: StdRng,
    race_model: PageRaceModel,
    /// Live links by id. A `BTreeMap`, not a `HashMap`, on purpose:
    /// [`World::route`] scans it when two links are live to the *same*
    /// claimed address (the attacker's spoofed link next to the honest
    /// one), and the winner must be the same on every run — hash-order
    /// iteration made that pick depend on the process's random hash seed.
    links: BTreeMap<u64, LinkState>,
    next_link_id: u64,
    timer_generations: HashMap<(DeviceId, SimTimer), u64>,
    processed_events: u64,
    sniffer: Vec<SniffedFrame>,
    link_packet_counters: HashMap<u64, u64>,
    /// Per-link CCM context cache: the session key changes at most a few
    /// times per link, so the AES key schedule is expanded on key change
    /// rather than per sniffed frame.
    link_ccm: HashMap<u64, ([u8; 16], blap_crypto::ccm::Ccm)>,
    tracer: Tracer,
    counters: WorldCounters,
    /// Open `page` spans keyed by (pager, paged address); populated only
    /// while a tracer is attached.
    page_spans: HashMap<(DeviceId, BdAddr), SpanId>,
}

/// Always-on world counters: plain integer fields so the hot dispatch path
/// pays no map lookups, exported via [`World::metrics`].
#[derive(Clone, Debug, Default)]
struct WorldCounters {
    pages_started: u64,
    pages_connected: u64,
    pages_timed_out: u64,
    links_dropped: u64,
    race_tally: RaceTally,
    page_latency_us: Histogram,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("devices", &self.devices.len())
            .field("queued", &self.queue.len())
            .field("links", &self.links.len())
            .finish()
    }
}

impl World {
    /// Creates an empty world with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        World {
            devices: Vec::new(),
            // A pairing run keeps tens of events in flight (LMP round trips,
            // timers, supervision checks); start past the growth doublings
            // every trial would otherwise repeat.
            queue: BinaryHeap::with_capacity(256),
            now: Instant::EPOCH,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            race_model: PageRaceModel::default(),
            links: BTreeMap::new(),
            next_link_id: 0,
            timer_generations: HashMap::new(),
            processed_events: 0,
            sniffer: Vec::new(),
            link_packet_counters: HashMap::new(),
            link_ccm: HashMap::new(),
            tracer: Tracer::disabled(),
            counters: WorldCounters::default(),
            page_spans: HashMap::new(),
        }
    }

    /// Routes this world's trace events to `tracer`: scheduler dispatches
    /// and page/race activity from the world itself, plus device-scoped
    /// clones handed to every device's host, controller and HCI tap.
    /// Devices added later inherit it automatically.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        for idx in 0..self.devices.len() {
            self.scope_device_tracer(idx);
        }
    }

    fn scope_device_tracer(&mut self, idx: usize) {
        let scoped = self.tracer.scoped(idx);
        let device = &mut self.devices[idx];
        device.controller.set_tracer(scoped.clone());
        device.host.set_tracer(scoped.clone());
        device.tracer = scoped;
    }

    /// Everything the passive air sniffer captured so far.
    pub fn sniffed_frames(&self) -> &[SniffedFrame] {
        &self.sniffer
    }

    /// Replaces the page-race model (Table II calibration knob).
    pub fn set_race_model(&mut self, model: PageRaceModel) {
        self.race_model = model;
    }

    /// Adds a device; returns its identity.
    pub fn add_device(&mut self, spec: DeviceSpec) -> DeviceId {
        let id = DeviceId(self.devices.len());
        let secret = self.rng.gen();
        let mut device = Device::new(id, spec, secret);
        // Devices boot connectable (page scan on), matching real defaults.
        let _ = device.controller.drain_outputs();
        self.devices.push(device);
        if self.tracer.enabled() {
            self.scope_device_tracer(id.0);
        }
        id
    }

    /// Immutable device access.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this world.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// Mutable device access. After mutating the host or controller
    /// directly, the next [`World::run_for`] call pumps the effects.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this world.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0]
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Total processed events (sanity metric for benches).
    pub fn processed_events(&self) -> u64 {
        self.processed_events
    }

    /// Tally of every decided page race so far.
    pub fn race_tally(&self) -> RaceTally {
        self.counters.race_tally
    }

    /// A metrics snapshot of this world: scheduler and paging counters,
    /// the race tally, the page-latency histogram, and per-device LMP and
    /// keystore counters (`dev<i>.` prefix). Everything is derived from
    /// virtual time and event counts, so snapshots are deterministic and
    /// merge commutatively across worlds.
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        m.add("events_dispatched", self.processed_events);
        m.add("virtual_us", self.now.as_micros());
        m.add("slots_simulated", self.now.as_micros() / 625);
        m.add("pages_started", self.counters.pages_started);
        m.add("pages_connected", self.counters.pages_connected);
        m.add("pages_timed_out", self.counters.pages_timed_out);
        m.add("links_dropped", self.counters.links_dropped);
        m.add("race.attacker_wins", self.counters.race_tally.attacker_wins);
        m.add(
            "race.legitimate_wins",
            self.counters.race_tally.legitimate_wins,
        );
        m.add("sniffed_frames", self.sniffer.len() as u64);
        m.gauge_max("devices", self.devices.len() as u64);
        m.merge_histogram("page_latency_us", &self.counters.page_latency_us);
        for (i, device) in self.devices.iter().enumerate() {
            let stats = device.controller.stats();
            m.add(&format!("dev{i}.lmp_sent"), stats.lmp_sent);
            m.add(&format!("dev{i}.lmp_received"), stats.lmp_received);
            m.add(
                &format!("dev{i}.lmp_response_timeouts"),
                stats.lmp_response_timeouts,
            );
            m.add(
                &format!("dev{i}.bonds"),
                device.host.keystore().len() as u64,
            );
            m.add(&format!("dev{i}.snoop_packets"), device.snoop_len() as u64);
        }
        m
    }

    /// Whether a live baseband link exists between two devices.
    pub fn linked(&self, a: DeviceId, b: DeviceId) -> bool {
        self.links
            .values()
            .any(|l| l.alive && ((l.a == a && l.b == b) || (l.a == b && l.b == a)))
    }

    /// Schedules a scripted action at an absolute time.
    pub fn schedule_at<F>(&mut self, time: Instant, action: F)
    where
        F: FnOnce(&mut World) + Send + 'static,
    {
        self.push(
            time,
            EventKind::Script {
                action: Box::new(action),
            },
        );
    }

    /// Schedules a scripted action after a delay.
    pub fn schedule_in<F>(&mut self, delay: Duration, action: F)
    where
        F: FnOnce(&mut World) + Send + 'static,
    {
        let time = self.now + delay;
        self.schedule_at(time, action);
    }

    fn push(&mut self, time: Instant, kind: EventKind) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.seq += 1;
        self.queue.push(ScheduledEvent {
            time,
            seq: self.seq,
            kind,
        });
    }

    /// Runs the world until `deadline` (inclusive), then sets the clock to
    /// the deadline. Events scheduled past the deadline stay queued.
    pub fn run_until(&mut self, deadline: Instant) {
        // First flush anything the devices already queued via direct calls.
        for id in 0..self.devices.len() {
            self.pump(DeviceId(id));
        }
        while let Some(head) = self.queue.peek() {
            if head.time > deadline {
                break;
            }
            let event = self.queue.pop().expect("peeked event");
            self.now = event.time;
            self.processed_events += 1;
            if self.tracer.enabled() {
                self.tracer.emit(TraceEvent::SchedulerDispatch {
                    time: event.time,
                    seq: event.seq,
                    kind: event.kind.name(),
                });
            }
            let _dispatch = prof::scope(event.kind.prof_scope());
            self.dispatch(event.kind);
        }
        self.now = deadline;
    }

    /// Runs the world for a span of virtual time.
    pub fn run_for(&mut self, span: Duration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    // --- event dispatch -----------------------------------------------------

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::LmpDeliver {
                link_id,
                to,
                from_addr,
                pdu,
            } => {
                let alive = self.links.get(&link_id).map(|l| l.alive).unwrap_or(false);
                if !alive {
                    return;
                }
                self.touch_link(link_id);
                let is_detach = matches!(pdu, LmpPdu::Detach { .. });
                let now = self.now;
                if let Some(link) = self.links.get(&link_id) {
                    let (from_claimed, to_claimed) = if link.b == to {
                        (link.b_sees, link.a_sees)
                    } else {
                        (link.a_sees, link.b_sees)
                    };
                    let au_rand = match &pdu {
                        LmpPdu::AuthChallenge { rand } => Some(*rand),
                        _ => None,
                    };
                    self.sniffer.push(SniffedFrame::Lmp {
                        time: now,
                        from: from_claimed,
                        to: to_claimed,
                        name: pdu.name(),
                        au_rand,
                    });
                }
                self.devices[to.0].controller.on_lmp(now, from_addr, pdu);
                if is_detach {
                    if let Some(link) = self.links.get_mut(&link_id) {
                        link.alive = false;
                    }
                    self.counters.links_dropped += 1;
                    if self.tracer.enabled() {
                        self.tracer.emit(TraceEvent::LinkDropped {
                            time: now,
                            reason: "detach",
                        });
                    }
                }
                self.pump(to);
            }
            EventKind::AclDeliver {
                link_id,
                to,
                from_addr,
                data,
            } => {
                let alive = self.links.get(&link_id).map(|l| l.alive).unwrap_or(false);
                if !alive {
                    return;
                }
                self.touch_link(link_id);
                let now = self.now;
                self.sniff_acl(link_id, to, &data);
                // ACL data crosses the receiving device's HCI seam too.
                // Wrap/unwrap instead of cloning the payload: the packet is
                // only borrowed for recording.
                let packet = HciPacket::AclData(data);
                self.devices[to.0].record_hci(now, PacketDirection::Received, &packet);
                let HciPacket::AclData(data) = packet else {
                    unreachable!()
                };
                self.devices[to.0].host.on_acl(now, from_addr, &data);
                self.pump(to);
            }
            EventKind::PageResolve { pager, target } => self.resolve_page_event(pager, target),
            EventKind::PageDeliver {
                pager,
                responder,
                target,
            } => {
                if let Some(span) = self.page_spans.remove(&(pager, target)) {
                    self.devices[pager.0]
                        .tracer
                        .close_span(self.now, span, "connected");
                }
                // Register the link before the responder reacts so the
                // subsequent LMP (ConnectionAccepted) routes.
                let pager_claimed = self.devices[pager.0].bd_addr();
                let link_id = self.next_link_id;
                self.next_link_id += 1;
                self.links.insert(
                    link_id,
                    LinkState {
                        a: pager,
                        b: responder,
                        a_sees: target,
                        b_sees: pager_claimed,
                        last_activity: self.now,
                        alive: true,
                    },
                );
                self.push(
                    self.now + timing::LINK_SUPERVISION_TIMEOUT,
                    EventKind::SupervisionCheck { link_id },
                );
                let cod = self.devices[pager.0].controller.cod();
                let now = self.now;
                self.devices[responder.0]
                    .controller
                    .on_incoming_page(now, pager_claimed, cod);
                self.pump(responder);
            }
            EventKind::PageTimeout { pager, target } => {
                if let Some(span) = self.page_spans.remove(&(pager, target)) {
                    self.devices[pager.0]
                        .tracer
                        .close_span(self.now, span, "timeout");
                }
                let now = self.now;
                self.devices[pager.0]
                    .controller
                    .on_page_result(now, target, PageOutcome::TimedOut);
                self.pump(pager);
            }
            EventKind::InquiryResponse {
                inquirer,
                bd_addr,
                cod,
            } => {
                let now = self.now;
                self.devices[inquirer.0]
                    .controller
                    .on_inquiry_response(now, bd_addr, cod);
                self.pump(inquirer);
            }
            EventKind::InquiryComplete { inquirer } => {
                let now = self.now;
                self.devices[inquirer.0].controller.on_inquiry_complete(now);
                self.pump(inquirer);
            }
            EventKind::TimerFire {
                device,
                timer,
                generation,
            } => {
                let current = self
                    .timer_generations
                    .get(&(device, timer))
                    .copied()
                    .unwrap_or(0);
                if current != generation {
                    return; // cancelled or re-armed
                }
                let now = self.now;
                match timer {
                    SimTimer::Controller(t) => self.devices[device.0].controller.on_timer(now, t),
                    SimTimer::Host(t) => self.devices[device.0].host.on_timer(now, t),
                }
                self.pump(device);
            }
            EventKind::SupervisionCheck { link_id } => self.check_supervision(link_id),
            EventKind::Script { action } => {
                // Scripted actions call GAP entry points directly; sync the
                // hosts' clocks first so those calls stamp trace spans at
                // the action's true time.
                let now = self.now;
                for device in &mut self.devices {
                    device.host.sync_time(now);
                }
                action(self);
                for id in 0..self.devices.len() {
                    self.pump(DeviceId(id));
                }
            }
        }
    }

    fn touch_link(&mut self, link_id: u64) {
        if let Some(link) = self.links.get_mut(&link_id) {
            link.last_activity = self.now;
        }
    }

    fn check_supervision(&mut self, link_id: u64) {
        let Some(link) = self.links.get(&link_id) else {
            return;
        };
        if !link.alive {
            return;
        }
        let expiry = link.last_activity + timing::LINK_SUPERVISION_TIMEOUT;
        if expiry > self.now {
            // Activity happened; re-arm for the new expiry.
            self.push(expiry, EventKind::SupervisionCheck { link_id });
            return;
        }
        // Supervision timeout: both controllers observe the link vanish.
        let (a, b, a_sees, b_sees) = (link.a, link.b, link.a_sees, link.b_sees);
        self.links.get_mut(&link_id).expect("link exists").alive = false;
        let now = self.now;
        self.counters.links_dropped += 1;
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::LinkDropped {
                time: now,
                reason: "supervision_timeout",
            });
        }
        self.devices[a.0].controller.on_lmp(
            now,
            a_sees,
            LmpPdu::Detach {
                reason: blap_hci::StatusCode::ConnectionTimeout,
            },
        );
        self.devices[b.0].controller.on_lmp(
            now,
            b_sees,
            LmpPdu::Detach {
                reason: blap_hci::StatusCode::ConnectionTimeout,
            },
        );
        self.pump(a);
        self.pump(b);
    }

    /// Captures an ACL frame as it crosses the air, applying the sender's
    /// link encryption so the sniffer sees genuine ciphertext.
    fn sniff_acl(&mut self, link_id: u64, to: DeviceId, data: &blap_hci::AclData) {
        let Some(link) = self.links.get(&link_id) else {
            return;
        };
        let (sender, from_claimed, to_claimed, sender_peer_view) = if link.b == to {
            (link.a, link.b_sees, link.a_sees, link.a_sees)
        } else {
            (link.b, link.a_sees, link.b_sees, link.b_sees)
        };
        let enc_key = self.devices[sender.0]
            .controller
            .encryption_key(sender_peer_view);
        let counter = self
            .link_packet_counters
            .entry(link_id)
            .and_modify(|c| *c += 1)
            .or_insert(1);
        let counter = *counter;
        let frame = match enc_key {
            Some(key) => {
                // Central = the connection initiator's claimed address,
                // which is what the responder (`b`) sees as its peer.
                let central = self.links[&link_id].b_sees;
                let nonce = blap_crypto::ccm::acl_nonce(counter, central);
                let ccm = match self.link_ccm.entry(link_id) {
                    std::collections::hash_map::Entry::Occupied(e) if e.get().0 == key => {
                        &e.into_mut().1
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let slot = e.into_mut();
                        *slot = (key, blap_crypto::ccm::Ccm::new(&key));
                        &slot.1
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        &e.insert((key, blap_crypto::ccm::Ccm::new(&key))).1
                    }
                };
                let ciphertext = ccm
                    .seal(&nonce, &data.handle.raw().to_le_bytes(), &data.payload)
                    .expect("ACL payloads are far below the CCM limit");
                SniffedFrame::Acl {
                    time: self.now,
                    from: from_claimed,
                    to: to_claimed,
                    data: ciphertext.into(),
                    encrypted: true,
                    packet_counter: counter,
                }
            }
            None => SniffedFrame::Acl {
                time: self.now,
                from: from_claimed,
                to: to_claimed,
                // The payload is shared immutably: this clone is a
                // reference-count bump, not a copy of the bytes.
                data: data.payload.clone(),
                encrypted: false,
                packet_counter: counter,
            },
        };
        self.sniffer.push(frame);
    }

    fn resolve_page_event(&mut self, pager: DeviceId, target: BdAddr) {
        let listeners: Vec<PageListener<DeviceId>> = self
            .devices
            .iter()
            .filter(|d| d.id != pager)
            .filter(|d| d.controller.scan_state().page_scan)
            .map(|d| PageListener {
                id: d.id,
                claimed_addr: d.bd_addr(),
                is_spoofer: d.is_attacker,
            })
            .collect();
        let raced = listeners
            .iter()
            .filter(|l| l.claimed_addr == target)
            .count()
            == 2;
        match resolve_page(target, &listeners, &self.race_model, &mut self.rng) {
            PageResult::Connected { responder, latency } => {
                self.counters.pages_connected += 1;
                self.counters.page_latency_us.observe(latency.as_micros());
                if raced {
                    let attacker_won = self.devices[responder.0].is_attacker;
                    self.counters.race_tally.record(if attacker_won {
                        RaceWinner::Attacker
                    } else {
                        RaceWinner::Legitimate
                    });
                    let tracer = &self.devices[pager.0].tracer;
                    if tracer.enabled() {
                        tracer.emit(TraceEvent::RaceOutcome {
                            time: self.now,
                            target,
                            attacker_won,
                        });
                    }
                }
                let tracer = &self.devices[pager.0].tracer;
                if tracer.enabled() {
                    tracer.emit(TraceEvent::PageConnected {
                        time: self.now,
                        target,
                        responder: responder.0 as u32,
                        latency_us: latency.as_micros(),
                        raced,
                    });
                }
                let time = self.now + latency;
                self.push(
                    time,
                    EventKind::PageDeliver {
                        pager,
                        responder,
                        target,
                    },
                );
            }
            PageResult::Timeout => {
                self.counters.pages_timed_out += 1;
                let tracer = &self.devices[pager.0].tracer;
                if tracer.enabled() {
                    tracer.emit(TraceEvent::PageTimeout {
                        time: self.now,
                        target,
                    });
                }
                let time = self.now + timing::PAGE_TIMEOUT;
                self.push(time, EventKind::PageTimeout { pager, target });
            }
        }
    }

    /// Finds the live link on which `device` talks to claimed address
    /// `peer_addr`, returning `(link_id, other_device, other's view)`.
    ///
    /// When two live links claim the same address (spoofing attacker next
    /// to the honest device), the earliest-established link wins — the map
    /// iterates in link-id order, so this tie-break is deterministic.
    fn route(&self, device: DeviceId, peer_addr: BdAddr) -> Option<(u64, DeviceId, BdAddr)> {
        self.links.iter().find_map(|(id, l)| {
            if !l.alive {
                return None;
            }
            if l.a == device && l.a_sees == peer_addr {
                Some((*id, l.b, l.b_sees))
            } else if l.b == device && l.b_sees == peer_addr {
                Some((*id, l.a, l.a_sees))
            } else {
                None
            }
        })
    }

    // --- device pumping -----------------------------------------------------

    /// Drains a device's host and controller output queues, routing effects.
    fn pump(&mut self, id: DeviceId) {
        for _ in 0..10_000 {
            let ctrl_outs = self.devices[id.0].controller.drain_outputs();
            let host_outs = self.devices[id.0].host.drain_outputs();
            if ctrl_outs.is_empty() && host_outs.is_empty() {
                return;
            }
            for out in ctrl_outs {
                self.handle_controller_output(id, out);
            }
            for out in host_outs {
                self.handle_host_output(id, out);
            }
        }
        panic!("device {id} output loop did not converge");
    }

    fn handle_controller_output(&mut self, id: DeviceId, out: ControllerOutput) {
        match out {
            ControllerOutput::Event(event) => {
                let now = self.now;
                let packet = HciPacket::Event(event);
                self.devices[id.0].record_hci(now, PacketDirection::Received, &packet);
                let HciPacket::Event(event) = packet else {
                    unreachable!()
                };
                self.devices[id.0].host.on_event(now, event);
            }
            ControllerOutput::Lmp { peer, pdu } => {
                if let Some((link_id, other, other_view)) = self.route(id, peer) {
                    let time = self.now + LMP_LATENCY;
                    self.push(
                        time,
                        EventKind::LmpDeliver {
                            link_id,
                            to: other,
                            from_addr: other_view,
                            pdu,
                        },
                    );
                }
                // No live link: the PDU is lost, like RF into the void.
            }
            ControllerOutput::StartPage { target } => {
                self.counters.pages_started += 1;
                let tracer = &self.devices[id.0].tracer;
                if tracer.enabled() {
                    tracer.emit(TraceEvent::PageStarted {
                        time: self.now,
                        target,
                    });
                    let span = tracer.open_span(self.now, "page", &target.to_string());
                    self.page_spans.insert((id, target), span);
                }
                let now = self.now;
                self.push(now, EventKind::PageResolve { pager: id, target });
            }
            ControllerOutput::StartInquiry { length } => {
                // Filter to discoverable devices *before* building targets:
                // hidden devices never answer, so cloning their names
                // (heap strings) into the target list was pure waste. The
                // remaining per-target name clone happens once per inquiry,
                // not per event.
                let targets: Vec<InquiryTarget<DeviceId>> = self
                    .devices
                    .iter()
                    .filter(|d| d.id != id && d.controller.scan_state().inquiry_scan)
                    .map(|d| InquiryTarget {
                        id: d.id,
                        bd_addr: d.bd_addr(),
                        cod: d.controller.cod(),
                        name: d.controller.name().clone(),
                        discoverable: true,
                    })
                    .collect();
                let responses = run_inquiry(&targets, length, &mut self.rng);
                for resp in responses {
                    let time = self.now + resp.latency;
                    self.push(
                        time,
                        EventKind::InquiryResponse {
                            inquirer: id,
                            bd_addr: resp.bd_addr,
                            cod: resp.cod,
                        },
                    );
                }
                let window = timing::INQUIRY_LENGTH_UNIT.mul(length.max(1) as u64);
                let time = self.now + window;
                self.push(time, EventKind::InquiryComplete { inquirer: id });
            }
            ControllerOutput::StartTimer { timer, after } => {
                self.arm_timer(id, SimTimer::Controller(timer), after);
            }
            ControllerOutput::CancelTimer { timer } => {
                self.cancel_timer(id, SimTimer::Controller(timer));
            }
        }
    }

    fn handle_host_output(&mut self, id: DeviceId, out: HostOutput) {
        match out {
            HostOutput::Command(command) => {
                let now = self.now;
                let packet = HciPacket::Command(command);
                self.devices[id.0].record_hci(now, PacketDirection::Sent, &packet);
                let HciPacket::Command(command) = packet else {
                    unreachable!()
                };
                self.devices[id.0].controller.on_command(now, command);
            }
            HostOutput::Acl(data) => {
                let now = self.now;
                let packet = HciPacket::AclData(data);
                self.devices[id.0].record_hci(now, PacketDirection::Sent, &packet);
                let HciPacket::AclData(data) = packet else {
                    unreachable!()
                };
                // Route by handle: find the link whose local handle matches.
                let peer_addr = self.devices[id.0]
                    .controller
                    .links()
                    .find(|l| l.handle == data.handle)
                    .map(|l| l.peer);
                if let Some(peer_addr) = peer_addr {
                    if let Some((link_id, other, other_view)) = self.route(id, peer_addr) {
                        let time = self.now + ACL_LATENCY;
                        self.push(
                            time,
                            EventKind::AclDeliver {
                                link_id,
                                to: other,
                                from_addr: other_view,
                                data,
                            },
                        );
                    }
                }
            }
            HostOutput::Ui(notification) => {
                let now = self.now;
                self.devices[id.0].handle_ui(now, notification);
            }
            HostOutput::StartTimer { timer, after } => {
                self.arm_timer(id, SimTimer::Host(timer), after);
            }
        }
    }

    fn arm_timer(&mut self, id: DeviceId, timer: SimTimer, after: Duration) {
        let generation = self
            .timer_generations
            .entry((id, timer))
            .and_modify(|g| *g += 1)
            .or_insert(1);
        let generation = *generation;
        let time = self.now + after;
        self.push(
            time,
            EventKind::TimerFire {
                device: id,
                timer,
                generation,
            },
        );
    }

    fn cancel_timer(&mut self, id: DeviceId, timer: SimTimer) {
        self.timer_generations
            .entry((id, timer))
            .and_modify(|g| *g += 1)
            .or_insert(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use blap_host::UiNotification;
    use blap_types::ServiceUuid;

    fn addr(s: &str) -> BdAddr {
        s.parse().unwrap()
    }

    #[test]
    fn two_devices_pair_end_to_end() {
        let mut world = World::new(1);
        let phone = world.add_device(profiles::lg_velvet().victim_phone("11:11:11:11:11:11"));
        let kit = world.add_device(profiles::car_kit("cc:cc:cc:cc:cc:cc"));
        world
            .device_mut(phone)
            .host
            .pair_with(addr("cc:cc:cc:cc:cc:cc"));
        // Check within the ACL idle window: pairing finishes in well under
        // five seconds and the link has had no reason to drop yet.
        world.run_for(Duration::from_secs(5));

        assert!(world
            .device(phone)
            .host
            .is_connected(addr("cc:cc:cc:cc:cc:cc")));
        assert!(world.linked(phone, kit));
        let phone_key = world
            .device(phone)
            .host
            .keystore()
            .get(addr("cc:cc:cc:cc:cc:cc"))
            .map(|e| e.link_key);
        let kit_key = world
            .device(kit)
            .host
            .keystore()
            .get(addr("11:11:11:11:11:11"))
            .map(|e| e.link_key);
        assert!(phone_key.is_some());
        assert_eq!(phone_key, kit_key, "both ends store the same link key");
    }

    #[test]
    fn bonded_reconnect_authenticates_without_pairing() {
        let mut world = World::new(2);
        let phone = world.add_device(profiles::lg_velvet().victim_phone("11:11:11:11:11:11"));
        let kit = world.add_device(profiles::car_kit("cc:cc:cc:cc:cc:cc"));
        world
            .device_mut(phone)
            .host
            .pair_with(addr("cc:cc:cc:cc:cc:cc"));
        world.run_for(Duration::from_secs(5));
        // Tear the link down, then reconnect a profile.
        world
            .device_mut(phone)
            .host
            .disconnect(addr("cc:cc:cc:cc:cc:cc"));
        world.run_for(Duration::from_secs(5));
        assert!(!world.linked(phone, kit));

        let popups_before = world.device(phone).user.log.len();
        world
            .device_mut(phone)
            .host
            .connect_profile(addr("cc:cc:cc:cc:cc:cc"), ServiceUuid::HANDS_FREE);
        world.run_for(Duration::from_secs(5));
        assert!(world.linked(phone, kit));
        let profile_ok = world.device(phone).user.log[popups_before..]
            .iter()
            .any(|(_, n)| matches!(n, UiNotification::ProfileConnected { .. }));
        assert!(profile_ok, "profile must connect using the stored bond");
        // No new pairing popup appeared on either side.
        assert!(!world.device(phone).user.log[popups_before..]
            .iter()
            .any(|(_, n)| matches!(n, UiNotification::PairingConfirmation { .. })));
    }

    #[test]
    fn page_to_absent_device_times_out() {
        let mut world = World::new(3);
        let phone = world.add_device(profiles::lg_velvet().victim_phone("11:11:11:11:11:11"));
        world
            .device_mut(phone)
            .host
            .pair_with(addr("de:ad:be:ef:00:01"));
        world.run_for(Duration::from_secs(10));
        let failed = world
            .device(phone)
            .user
            .find(|n| matches!(n, UiNotification::ConnectFailed { .. }));
        assert!(failed.is_some(), "page timeout must surface to the UI");
    }

    #[test]
    fn determinism_same_seed_same_snoop() {
        let run = || {
            let mut world = World::new(42);
            let phone = world
                .add_device(profiles::lg_velvet().victim_phone_with_snoop("11:11:11:11:11:11"));
            let kit = world.add_device(profiles::car_kit("cc:cc:cc:cc:cc:cc"));
            let _ = kit;
            world
                .device_mut(phone)
                .host
                .pair_with(addr("cc:cc:cc:cc:cc:cc"));
            world.run_for(Duration::from_secs(30));
            world.device(phone).bug_report().expect("snoop enabled")
        };
        assert_eq!(run(), run(), "same seed must give identical snoop bytes");
    }

    #[test]
    fn legacy_pin_pairing_derives_combination_key() {
        let mut world = World::new(7);
        // Two pre-2.1 devices with matching PINs.
        let mut phone_spec = profiles::nexus_5x_a8().victim_phone("11:11:11:11:11:11");
        phone_spec.host.ssp = false;
        phone_spec.host.pin = Some(b"1234".to_vec());
        let phone = world.add_device(phone_spec);
        let mut kit_spec = profiles::car_kit("cc:cc:cc:cc:cc:cc");
        kit_spec.host.ssp = false;
        kit_spec.host.pin = Some(b"1234".to_vec());
        let kit = world.add_device(kit_spec);

        world
            .device_mut(phone)
            .host
            .pair_with(addr("cc:cc:cc:cc:cc:cc"));
        world.run_for(Duration::from_secs(5));

        let phone_bond = world
            .device(phone)
            .host
            .keystore()
            .get(addr("cc:cc:cc:cc:cc:cc"))
            .cloned()
            .expect("phone bonded via legacy PIN pairing");
        let kit_bond = world
            .device(kit)
            .host
            .keystore()
            .get(addr("11:11:11:11:11:11"))
            .cloned()
            .expect("kit bonded via legacy PIN pairing");
        assert_eq!(phone_bond.link_key, kit_bond.link_key);
        assert_eq!(
            phone_bond.key_type,
            blap_types::LinkKeyType::Combination,
            "legacy pairing produces a combination key"
        );
    }

    #[test]
    fn legacy_pin_mismatch_fails_authentication() {
        let mut world = World::new(8);
        let mut phone_spec = profiles::nexus_5x_a8().victim_phone("11:11:11:11:11:11");
        phone_spec.host.ssp = false;
        phone_spec.host.pin = Some(b"1234".to_vec());
        let phone = world.add_device(phone_spec);
        let mut kit_spec = profiles::car_kit("cc:cc:cc:cc:cc:cc");
        kit_spec.host.ssp = false;
        kit_spec.host.pin = Some(b"9999".to_vec()); // wrong PIN
        let _kit = world.add_device(kit_spec);

        world
            .device_mut(phone)
            .host
            .pair_with(addr("cc:cc:cc:cc:cc:cc"));
        world.run_for(Duration::from_secs(5));

        // The mutual authentication that follows key derivation must fail,
        // and the failure wipes the (mismatched) bond.
        let outcome = world.device(phone).user.find(|n| {
            matches!(
                n,
                UiNotification::AuthenticationOutcome {
                    status: blap_hci::StatusCode::AuthenticationFailure,
                    ..
                }
            )
        });
        assert!(outcome.is_some(), "PIN mismatch must fail authentication");
        assert!(
            world
                .device(phone)
                .host
                .keystore()
                .get(addr("cc:cc:cc:cc:cc:cc"))
                .is_none(),
            "mismatched bond must be wiped"
        );
    }

    #[test]
    fn supervision_drops_idle_links() {
        let mut world = World::new(4);
        let phone = world.add_device(profiles::lg_velvet().victim_phone("11:11:11:11:11:11"));
        let kit = world.add_device(profiles::car_kit("cc:cc:cc:cc:cc:cc"));
        // Raw connection with no traffic at all.
        world
            .device_mut(phone)
            .host
            .connect_only(addr("cc:cc:cc:cc:cc:cc"));
        world.run_for(Duration::from_secs(5));
        assert!(world.linked(phone, kit));
        // Idle past the supervision timeout.
        world.run_for(timing::LINK_SUPERVISION_TIMEOUT + Duration::from_secs(5));
        assert!(!world.linked(phone, kit), "idle link must expire");
    }
}
