//! One simulated device: host + controller + observation taps + user.

use blap_controller::{Controller, ControllerConfig};
use blap_hci::{HciPacket, PacketDirection};
use blap_host::{HciTransportKind, Host, HostConfig, UiNotification};
use blap_obs::{prof, SpanId, TraceEvent, Tracer};
use blap_snoop::btsnoop::SnoopRecord;
use blap_snoop::log::HciTrace;
use blap_snoop::usb::UsbCapture;
use blap_snoop::{btsnoop, redact};
use blap_types::{BdAddr, Instant};

/// Index of a device within its world.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device#{}", self.0)
    }
}

/// Transport-level protections (§VII-A mitigations), applied at the
/// capture seam.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportSecurity {
    /// Mitigation 1: the dump module redacts link keys before logging.
    pub filter_link_keys: bool,
    /// Mitigation 2: link-key payloads cross HCI encrypted, so *any* tap
    /// (snoop or hardware) records ciphertext.
    pub encrypt_link_key_payloads: bool,
}

/// Everything needed to add a device to a world.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Human-readable label (e.g. "Galaxy S8").
    pub label: String,
    /// Host configuration.
    pub host: HostConfig,
    /// Controller configuration.
    pub controller: ControllerConfig,
    /// Whether this device plays the attacker in page races (drives the
    /// race latency model split).
    pub is_attacker: bool,
    /// Transport protections.
    pub security: TransportSecurity,
    /// Whether the device boots discoverable (inquiry scan on) — true for
    /// accessories waiting in pairing mode.
    pub discoverable: bool,
    /// The scripted user.
    pub user: crate::user::UserAgent,
}

/// One device in the world.
#[derive(Debug)]
pub struct Device {
    /// World-assigned identity.
    pub id: DeviceId,
    /// Human-readable label.
    pub label: String,
    /// The host stack.
    pub host: Host,
    /// The controller.
    pub controller: Controller,
    /// The scripted user.
    pub user: crate::user::UserAgent,
    /// Whether this device plays the attacker in page races.
    pub is_attacker: bool,
    /// Transport protections.
    pub security: TransportSecurity,
    /// The btsnoop capture (packets recorded only while the host config's
    /// `snoop_enabled` is true and the stack supports a dump).
    snoop: Vec<SnoopRecord>,
    /// The USB analyzer, when the transport is USB.
    usb: Option<UsbCapture>,
    /// Per-device session secret for mitigation 2.
    session_secret: u64,
    /// Reusable scratch buffer for encoding packets at the HCI seam:
    /// steady-state recording performs zero allocations beyond what a tap
    /// must keep.
    encode_buf: Vec<u8>,
    /// Device-scoped observability handle (disabled by default; the world
    /// propagates an enabled one via [`crate::world::World::set_tracer`]).
    pub(crate) tracer: Tracer,
    /// Open `hci_cmd` spans awaiting their status/complete event, in issue
    /// order. The controller answers every command synchronously and in
    /// order (each `on_command` arm queues exactly one `CommandStatus` or
    /// `CommandComplete` first), so FIFO matching is exact.
    pending_hci_spans: std::collections::VecDeque<SpanId>,
}

impl Device {
    pub(crate) fn new(id: DeviceId, spec: DeviceSpec, session_secret: u64) -> Self {
        let usb = match spec.host.transport {
            HciTransportKind::Usb => Some(UsbCapture::new()),
            HciTransportKind::H4Uart => None,
        };
        let mut controller = Controller::new(spec.controller, session_secret);
        if !spec.host.ssp {
            controller.on_command(
                Instant::EPOCH,
                blap_hci::Command::WriteSimplePairingMode { enabled: false },
            );
            let _ = controller.drain_outputs();
        }
        if spec.discoverable {
            controller.on_command(
                Instant::EPOCH,
                blap_hci::Command::WriteScanEnable {
                    inquiry_scan: true,
                    page_scan: true,
                },
            );
            let _ = controller.drain_outputs();
        }
        Device {
            id,
            label: spec.label,
            host: Host::new(spec.host.clone()),
            controller,
            user: spec.user,
            is_attacker: spec.is_attacker,
            security: spec.security,
            snoop: Vec::new(),
            usb,
            session_secret,
            encode_buf: Vec::with_capacity(64),
            tracer: Tracer::disabled(),
            pending_hci_spans: std::collections::VecDeque::new(),
        }
    }

    /// The device's current claimed address.
    pub fn bd_addr(&self) -> BdAddr {
        self.controller.bd_addr()
    }

    /// Records one packet crossing the HCI seam, into every enabled tap,
    /// with mitigations applied first.
    pub(crate) fn record_hci(
        &mut self,
        now: Instant,
        direction: PacketDirection,
        packet: &HciPacket,
    ) {
        let _prof = prof::scope("hci_cmd");
        if self.tracer.enabled() {
            let (kind, name) = match packet {
                HciPacket::Command(c) => ("command", c.name()),
                HciPacket::Event(e) => ("event", e.name()),
                HciPacket::AclData(_) => ("acl", "acl"),
            };
            let dir = match direction {
                PacketDirection::Sent => "sent",
                PacketDirection::Received => "received",
            };
            self.tracer.emit(TraceEvent::HciSeam {
                time: now,
                direction: dir,
                kind,
                name,
            });
            // Span one command/response exchange across the seam.
            match (direction, packet) {
                (PacketDirection::Sent, HciPacket::Command(_)) => {
                    let span = self.tracer.open_span(now, "hci_cmd", name);
                    self.pending_hci_spans.push_back(span);
                }
                (PacketDirection::Received, HciPacket::Event(_))
                    if name == "HCI_Command_Status" || name == "HCI_Command_Complete" =>
                {
                    if let Some(span) = self.pending_hci_spans.pop_front() {
                        let status = if name == "HCI_Command_Status" {
                            "status"
                        } else {
                            "complete"
                        };
                        self.tracer.close_span(now, span, status);
                    }
                }
                _ => {}
            }
        }
        // Software HCI dump: only when supported and enabled.
        let snoop_wants =
            self.host.config().snoop_enabled && self.host.config().stack.supports_hci_dump();
        if self.usb.is_none() && !snoop_wants {
            // No tap consumes the bytes — skip encoding entirely.
            return;
        }

        // Encode once into the reusable per-device scratch buffer; nothing
        // below allocates except the copies a tap must retain.
        self.encode_buf.clear();
        packet.encode_into(&mut self.encode_buf);
        let modified = self.security.encrypt_link_key_payloads
            && redact::encrypt_sensitive_payload(&mut self.encode_buf, self.session_secret);

        // USB analyzer taps the physical transport: it sees the (possibly
        // payload-encrypted) bytes regardless of any software dump filter.
        if let Some(usb) = &mut self.usb {
            if !modified || HciPacket::decode(&self.encode_buf).is_ok() {
                usb.observe_encoded(now, direction, &self.encode_buf);
            } else {
                // Encrypted payload no longer decodes; feed the raw bytes
                // through as an opaque transfer so the analyzer still logs
                // *something*, like real hardware would.
                usb.observe_raw(now, direction, self.encode_buf.clone());
            }
        }

        if snoop_wants {
            if self.security.filter_link_keys {
                redact::redact_link_keys(&mut self.encode_buf);
            }
            self.snoop.push(SnoopRecord {
                timestamp: now,
                direction,
                data: self.encode_buf.clone(),
            });
        }
    }

    /// Dispatches a UI notification to the scripted user, applying its
    /// policy (this is where popups get tapped).
    pub(crate) fn handle_ui(&mut self, now: Instant, notification: UiNotification) {
        if let UiNotification::PairingConfirmation { peer, .. } = &notification {
            let accept = self.user.accept_pairing;
            let peer = *peer;
            self.user.observe(now, notification);
            self.host.confirm_pairing(peer, accept);
            return;
        }
        self.user.observe(now, notification);
    }

    /// The "Android bug report" extraction path: returns the btsnoop file
    /// bytes, or `None` when the stack has no dump or the developer option
    /// is off.
    pub fn bug_report(&self) -> Option<Vec<u8>> {
        if self.host.config().stack.supports_hci_dump() && self.host.config().snoop_enabled {
            Some(btsnoop::write_file(&self.snoop))
        } else {
            None
        }
    }

    /// The decoded snoop trace (what a Frontline-style viewer shows).
    pub fn snoop_trace(&self) -> HciTrace {
        self.bug_report()
            .and_then(|bytes| HciTrace::from_btsnoop_bytes(&bytes).ok())
            .unwrap_or_default()
    }

    /// The raw USB capture stream, when the transport is USB.
    pub fn usb_capture(&self) -> Option<Vec<u8>> {
        self.usb.as_ref().map(|u| u.raw_stream())
    }

    /// Number of packets in the snoop buffer.
    pub fn snoop_len(&self) -> usize {
        self.snoop.len()
    }
}
