//! The discrete-event Bluetooth world.
//!
//! A [`World`] owns a set of [`Device`]s (host + controller + observation
//! taps + scripted user), a virtual clock, and one seeded RNG. It routes
//! HCI traffic across each device's host↔controller seam (recording it into
//! the device's snoop log / USB capture exactly where the paper's leak
//! channels sit), resolves paging races through `blap-baseband`, delivers
//! LMP PDUs and ACL data between linked devices, enforces link supervision
//! timeouts, and fires the controller/host timers.
//!
//! Determinism: same seed ⇒ same event order ⇒ byte-identical snoop logs.
//!
//! # Examples
//!
//! ```
//! use blap_sim::{World, profiles};
//!
//! let mut world = World::new(7);
//! let phone = world.add_device(profiles::lg_velvet().victim_phone("11:11:11:11:11:11"));
//! let kit = world.add_device(profiles::car_kit("cc:cc:cc:cc:cc:cc"));
//! // Pair the phone with the car-kit.
//! world.device_mut(phone).host.pair_with("cc:cc:cc:cc:cc:cc".parse().unwrap());
//! world.run_for(blap_types::Duration::from_secs(5));
//! assert!(world.device(phone).host.is_connected("cc:cc:cc:cc:cc:cc".parse().unwrap()));
//! assert_eq!(world.device(phone).host.keystore().len(), 1);
//! assert_eq!(world.device(kit).host.keystore().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod events;
pub mod profiles;
mod user;
mod world;

pub use device::{Device, DeviceId, DeviceSpec, TransportSecurity};
pub use profiles::DeviceProfile;
pub use user::{UserAgent, UserBehaviorMix};
pub use world::{SniffedFrame, World};
