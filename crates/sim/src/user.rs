//! The scripted user sitting in front of each simulated device.

use blap_host::UiNotification;
use blap_types::Instant;

/// A scripted user agent: decides what to do with pairing popups and keeps
/// a log of everything the device showed.
///
/// The paper's §V-B2 argument is that the victim accepts the popup because
/// it appears immediately after an intended pairing; `accept_pairing: true`
/// models that user. Mitigation tests flip it to model a suspicious user.
#[derive(Clone, Debug)]
pub struct UserAgent {
    /// Whether the user taps "yes" on pairing confirmations.
    pub accept_pairing: bool,
    /// Everything the UI showed, with timestamps.
    pub log: Vec<(Instant, UiNotification)>,
}

impl Default for UserAgent {
    fn default() -> Self {
        UserAgent {
            accept_pairing: true,
            log: Vec::new(),
        }
    }
}

impl UserAgent {
    /// A user who accepts popups (the paper's realistic victim).
    pub fn accepting() -> Self {
        UserAgent::default()
    }

    /// A user who declines every pairing popup.
    pub fn declining() -> Self {
        UserAgent {
            accept_pairing: false,
            log: Vec::new(),
        }
    }

    /// The behavior a [`UserBehaviorMix`] roll selected.
    pub fn with_acceptance(accept_pairing: bool) -> Self {
        if accept_pairing {
            UserAgent::accepting()
        } else {
            UserAgent::declining()
        }
    }

    /// Records a notification.
    pub fn observe(&mut self, now: Instant, notification: UiNotification) {
        self.log.push((now, notification));
    }

    /// Whether any popup (with or without a number) was ever shown.
    pub fn saw_pairing_popup(&self) -> bool {
        self.log
            .iter()
            .any(|(_, n)| matches!(n, UiNotification::PairingConfirmation { .. }))
    }

    /// Whether any shown popup included a comparable numeric value.
    pub fn saw_numeric_value(&self) -> bool {
        self.log.iter().any(|(_, n)| {
            matches!(
                n,
                UiNotification::PairingConfirmation {
                    numeric: Some(_),
                    ..
                }
            )
        })
    }

    /// Finds the first notification matching a predicate.
    pub fn find<F: Fn(&UiNotification) -> bool>(&self, pred: F) -> Option<&UiNotification> {
        self.log.iter().map(|(_, n)| n).find(|n| pred(n))
    }
}

/// A seeded distribution over user behaviors, for campaign populations:
/// what fraction of sampled victims accept the pairing popup.
///
/// Sampling is a pure function of the caller-supplied roll (derive it from
/// the trial seed), so a population's user mix is reproducible at any
/// parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UserBehaviorMix {
    /// Percent of users (0–100) who tap "yes" on pairing confirmations.
    pub accept_percent: u8,
}

impl UserBehaviorMix {
    /// Every sampled user accepts — the paper's §V-B2 victim.
    pub fn always_accepting() -> Self {
        UserBehaviorMix {
            accept_percent: 100,
        }
    }

    /// Whether the user drawn for `roll` accepts pairing popups.
    pub fn accepts(&self, roll: u64) -> bool {
        (roll % 100) < u64::from(self.accept_percent.min(100))
    }

    /// Builds the [`UserAgent`] the roll selected.
    pub fn sample(&self, roll: u64) -> UserAgent {
        UserAgent::with_acceptance(self.accepts(roll))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_types::BdAddr;

    #[test]
    fn log_and_queries() {
        let mut agent = UserAgent::accepting();
        assert!(!agent.saw_pairing_popup());
        agent.observe(
            Instant::EPOCH,
            UiNotification::PairingConfirmation {
                peer: BdAddr::ZERO,
                numeric: None,
            },
        );
        assert!(agent.saw_pairing_popup());
        assert!(!agent.saw_numeric_value());
        agent.observe(
            Instant::EPOCH,
            UiNotification::PairingConfirmation {
                peer: BdAddr::ZERO,
                numeric: Some(123456),
            },
        );
        assert!(agent.saw_numeric_value());
        assert!(agent
            .find(|n| matches!(n, UiNotification::PairingConfirmation { .. }))
            .is_some());
    }

    #[test]
    fn presets() {
        assert!(UserAgent::accepting().accept_pairing);
        assert!(!UserAgent::declining().accept_pairing);
    }

    #[test]
    fn behavior_mix_is_pure_and_proportional() {
        let mix = UserBehaviorMix { accept_percent: 30 };
        // Pure: the same roll always draws the same behavior.
        assert_eq!(mix.accepts(17), mix.accepts(17));
        // Exactly 30 of 100 consecutive residues accept.
        let accepted = (0u64..100).filter(|&r| mix.accepts(r)).count();
        assert_eq!(accepted, 30);
        assert!(
            UserBehaviorMix::always_accepting()
                .sample(99)
                .accept_pairing
        );
        let mix = UserBehaviorMix { accept_percent: 0 };
        assert!(!mix.sample(0).accept_pairing);
    }
}
