//! The device catalog of the paper's evaluation (§VI).
//!
//! Every row of Table I (link key extraction testbed) and Table II (page
//! blocking testbed) is a [`DeviceProfile`] here, carrying the properties
//! the attacks depend on: host stack, spec version (popup policy), HCI
//! transport (which capture channel exists), privilege requirements, and —
//! for Table II — the measured baseline MITM success rate the simulator's
//! race model is calibrated against.

use blap_controller::ControllerConfig;
use blap_host::{HciTransportKind, HostConfig, HostStackKind};
use blap_types::{BdAddr, BtVersion, ClassOfDevice, IoCapability};

use crate::device::{DeviceSpec, TransportSecurity};
use crate::user::UserAgent;

/// One tested device model from the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Device name as printed in the tables.
    pub name: &'static str,
    /// Operating system / version string.
    pub os: &'static str,
    /// Host stack.
    pub stack: HostStackKind,
    /// Core spec version implemented.
    pub version: BtVersion,
    /// HCI transport.
    pub transport: HciTransportKind,
    /// Table II baseline MITM success rate, when the paper measured one.
    pub baseline_mitm_rate: Option<f64>,
    /// Whether key extraction on this platform needs superuser privilege
    /// (Table I, rightmost column).
    pub su_required: bool,
}

impl DeviceProfile {
    fn host_config(&self) -> HostConfig {
        HostConfig {
            stack: self.stack,
            version: self.version,
            transport: self.transport,
            ..HostConfig::phone(self.version)
        }
    }

    /// Builds this profile as a victim phone `M`: DisplayYesNo, snoop off,
    /// accepting user.
    pub fn victim_phone(&self, addr: &str) -> DeviceSpec {
        let addr: BdAddr = addr.parse().expect("valid address literal");
        DeviceSpec {
            label: self.name.to_owned(),
            host: self.host_config(),
            controller: ControllerConfig::new(addr, ClassOfDevice::SMARTPHONE, self.name),
            is_attacker: false,
            security: TransportSecurity::default(),
            discoverable: false,
            user: UserAgent::accepting(),
        }
    }

    /// Like [`DeviceProfile::victim_phone`] but with the "Bluetooth HCI
    /// snoop log" developer option already on.
    pub fn victim_phone_with_snoop(&self, addr: &str) -> DeviceSpec {
        let mut spec = self.victim_phone(addr);
        spec.host.snoop_enabled = true;
        spec
    }

    /// Builds this profile as the soft target `C` of the extraction attack:
    /// the attacker has already flipped the snoop option on (step 1 of
    /// Fig 5). On USB-transport profiles the tap is the USB analyzer
    /// instead, which needs no option at all.
    pub fn soft_target(&self, addr: &str) -> DeviceSpec {
        let mut spec = self.victim_phone(addr);
        spec.host.snoop_enabled = self.stack.supports_hci_dump();
        spec
    }
}

/// Nexus 5x running Android 8 (Table I row 1; Table II row 2 at 52%).
pub fn nexus_5x_a8() -> DeviceProfile {
    DeviceProfile {
        name: "Nexus 5x",
        os: "Android 8",
        stack: HostStackKind::Bluedroid,
        version: BtVersion::V4_2,
        transport: HciTransportKind::H4Uart,
        baseline_mitm_rate: Some(0.52),
        su_required: false,
    }
}

/// LG V50 running Android 9 (57%).
pub fn lg_v50() -> DeviceProfile {
    DeviceProfile {
        name: "LG V50",
        os: "Android 9",
        stack: HostStackKind::Bluedroid,
        version: BtVersion::V5_0,
        transport: HciTransportKind::H4Uart,
        baseline_mitm_rate: Some(0.57),
        su_required: false,
    }
}

/// Samsung Galaxy S8 running Android 9 (42%).
pub fn galaxy_s8() -> DeviceProfile {
    DeviceProfile {
        name: "Galaxy S8",
        os: "Android 9",
        stack: HostStackKind::Bluedroid,
        version: BtVersion::V5_0,
        transport: HciTransportKind::H4Uart,
        baseline_mitm_rate: Some(0.42),
        su_required: false,
    }
}

/// Google Pixel 2 XL running Android 11 (60%).
pub fn pixel_2_xl() -> DeviceProfile {
    DeviceProfile {
        name: "Pixel 2 XL",
        os: "Android 11",
        stack: HostStackKind::Bluedroid,
        version: BtVersion::V5_0,
        transport: HciTransportKind::H4Uart,
        baseline_mitm_rate: Some(0.60),
        su_required: false,
    }
}

/// LG VELVET running Android 11 (60%) — also the hard target `M` of the
/// paper's extraction experiments.
pub fn lg_velvet() -> DeviceProfile {
    DeviceProfile {
        name: "LG VELVET",
        os: "Android 11",
        stack: HostStackKind::Bluedroid,
        version: BtVersion::V5_1,
        transport: HciTransportKind::H4Uart,
        baseline_mitm_rate: Some(0.60),
        su_required: false,
    }
}

/// Samsung Galaxy S21 running Android 11 (51%).
pub fn galaxy_s21() -> DeviceProfile {
    DeviceProfile {
        name: "Galaxy s21",
        os: "Android 11",
        stack: HostStackKind::Bluedroid,
        version: BtVersion::V5_2,
        transport: HciTransportKind::H4Uart,
        baseline_mitm_rate: Some(0.51),
        su_required: false,
    }
}

/// Apple iPhone Xs running iOS 14.4.2 (52%; Table II only — iOS exposes no
/// HCI dump, so the paper analyzed the attacker-side log instead).
pub fn iphone_xs() -> DeviceProfile {
    DeviceProfile {
        name: "iPhone Xs",
        os: "iOS 14.4.2",
        stack: HostStackKind::IosBluetooth,
        version: BtVersion::V5_0,
        transport: HciTransportKind::H4Uart,
        baseline_mitm_rate: Some(0.52),
        su_required: false,
    }
}

/// Windows 10 PC with the Microsoft Bluetooth Driver stack and a QSENN CSR
/// V4.0 USB dongle (Table I).
pub fn windows_ms_driver() -> DeviceProfile {
    DeviceProfile {
        name: "QSENN CSR V4.0",
        os: "Windows 10",
        stack: HostStackKind::MicrosoftBluetoothDriver,
        version: BtVersion::V4_0,
        transport: HciTransportKind::Usb,
        baseline_mitm_rate: None,
        su_required: false,
    }
}

/// Windows 10 PC with the CSR Harmony stack and the same dongle (Table I).
pub fn windows_csr_harmony() -> DeviceProfile {
    DeviceProfile {
        name: "QSENN CSR V4.0",
        os: "Windows 10",
        stack: HostStackKind::CsrHarmony,
        version: BtVersion::V4_0,
        transport: HciTransportKind::Usb,
        baseline_mitm_rate: None,
        su_required: false,
    }
}

/// Ubuntu 20.04 PC with BlueZ and the same dongle (Table I; the one row
/// whose extraction channel needs superuser privilege).
pub fn ubuntu_bluez() -> DeviceProfile {
    DeviceProfile {
        name: "QSENN CSR V4.0",
        os: "Ubuntu 20.04",
        stack: HostStackKind::BlueZ,
        version: BtVersion::V5_0,
        transport: HciTransportKind::Usb,
        baseline_mitm_rate: None,
        su_required: true,
    }
}

/// All nine Table I rows, in the paper's order.
pub fn table1_profiles() -> Vec<DeviceProfile> {
    vec![
        nexus_5x_a8(),
        lg_v50(),
        galaxy_s8(),
        pixel_2_xl(),
        lg_velvet(),
        galaxy_s21(),
        windows_ms_driver(),
        windows_csr_harmony(),
        ubuntu_bluez(),
    ]
}

/// All seven Table II rows, in the paper's order.
pub fn table2_profiles() -> Vec<DeviceProfile> {
    vec![
        iphone_xs(),
        nexus_5x_a8(),
        lg_v50(),
        galaxy_s8(),
        pixel_2_xl(),
        lg_velvet(),
        galaxy_s21(),
    ]
}

/// The device pool campaign populations sample victims from: every Table
/// II profile (each carries the measured baseline MITM rate the
/// simulator's race model is calibrated against) with a relative
/// popularity weight. The weights are a plausible fleet mix — recent
/// flagships common, the aging Nexus 5x rare — not a paper measurement;
/// they only shape how often each stack/version combination is exercised.
pub fn campaign_pool() -> Vec<(DeviceProfile, u32)> {
    vec![
        (iphone_xs(), 30),
        (galaxy_s21(), 25),
        (pixel_2_xl(), 15),
        (lg_velvet(), 10),
        (galaxy_s8(), 10),
        (lg_v50(), 7),
        (nexus_5x_a8(), 3),
    ]
}

/// A benign car-kit / headset accessory (`C` in the page blocking attack):
/// NoInputNoOutput, discoverable, hands-free class of device.
pub fn car_kit(addr: &str) -> DeviceSpec {
    let addr: BdAddr = addr.parse().expect("valid address literal");
    let mut host = HostConfig::accessory(BtVersion::V4_2);
    host.io_capability = IoCapability::NoInputNoOutput;
    DeviceSpec {
        label: "car-kit".to_owned(),
        host,
        controller: ControllerConfig::new(addr, ClassOfDevice::HANDS_FREE, "CAR-KIT"),
        is_attacker: false,
        security: TransportSecurity::default(),
        discoverable: true,
        user: UserAgent::accepting(),
    }
}

/// The paper's attacker device: a rooted Nexus 5x (Android 6) with the
/// modified Bluedroid — `NoInputNoOutput`, Fig 9 link-key-request drop,
/// Fig 13 PLOC hold, keep-alive traffic, spoofable address and CoD.
pub fn attacker_nexus_5x(addr: &str) -> DeviceSpec {
    let addr: BdAddr = addr.parse().expect("valid address literal");
    let mut host = HostConfig::attacker();
    // The attacker naturally logs its own HCI — the paper reads this dump
    // when the victim (iPhone) exposes none.
    host.snoop_enabled = true;
    DeviceSpec {
        label: "attacker Nexus 5x (Android 6)".to_owned(),
        host,
        controller: ControllerConfig::new(addr, ClassOfDevice::SMARTPHONE, "Nexus 5x"),
        is_attacker: true,
        security: TransportSecurity::default(),
        discoverable: false,
        user: UserAgent::accepting(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rates_match_paper() {
        let rates: Vec<f64> = table2_profiles()
            .iter()
            .map(|p| p.baseline_mitm_rate.expect("table 2 rows have rates"))
            .collect();
        assert_eq!(rates, vec![0.52, 0.52, 0.57, 0.42, 0.60, 0.60, 0.51]);
    }

    #[test]
    fn table1_has_nine_rows_one_with_su() {
        let profiles = table1_profiles();
        assert_eq!(profiles.len(), 9);
        let su_rows: Vec<&DeviceProfile> = profiles.iter().filter(|p| p.su_required).collect();
        assert_eq!(su_rows.len(), 1);
        assert_eq!(su_rows[0].os, "Ubuntu 20.04");
    }

    #[test]
    fn android_soft_targets_have_snoop_pcs_have_usb() {
        for profile in table1_profiles() {
            let spec = profile.soft_target("aa:aa:aa:aa:aa:01");
            match profile.transport {
                HciTransportKind::H4Uart => {
                    assert!(spec.host.snoop_enabled, "{}: snoop expected", profile.os)
                }
                HciTransportKind::Usb => {
                    assert!(
                        !spec.host.snoop_enabled || profile.stack.supports_hci_dump(),
                        "{}: USB profiles rely on the analyzer",
                        profile.os
                    );
                }
            }
        }
    }

    #[test]
    fn campaign_pool_covers_table2_with_positive_weights() {
        let pool = campaign_pool();
        assert_eq!(pool.len(), table2_profiles().len());
        for (profile, weight) in &pool {
            assert!(*weight > 0, "{}: zero weight never samples", profile.name);
            assert!(
                profile.baseline_mitm_rate.is_some(),
                "{}: campaign victims need a calibrated race model",
                profile.name
            );
        }
    }

    #[test]
    fn attacker_spec_has_all_hooks() {
        let spec = attacker_nexus_5x("aa:aa:aa:aa:aa:aa");
        assert!(spec.is_attacker);
        assert!(spec.host.attacker.ignore_link_key_request);
        assert!(spec.host.attacker.ploc_delay.is_some());
        assert!(spec.host.attacker.ploc_keepalive);
        assert_eq!(spec.host.io_capability, IoCapability::NoInputNoOutput);
    }

    #[test]
    fn car_kit_is_noio_hands_free() {
        let spec = car_kit("cc:cc:cc:cc:cc:cc");
        assert_eq!(spec.host.io_capability, IoCapability::NoInputNoOutput);
        assert_eq!(spec.controller.cod, ClassOfDevice::HANDS_FREE);
        assert!(!spec.is_attacker);
    }
}
