//! The inquiry (device discovery) procedure.
//!
//! An inquirer broadcasts the General Inquiry Access Code; every
//! inquiry-scanning device eventually responds with its address, class of
//! device and name. In the page blocking attack the victim `M` still runs a
//! perfectly normal inquiry (Fig 6b steps 4–5) — discovery is untouched; it
//! is the *connection* step that the pre-established PLOC link short-circuits.

use blap_types::{BdAddr, ClassOfDevice, DeviceName, Duration};
use rand::Rng;

use crate::scan::ScanConfig;
use crate::timing;

/// A device visible to inquiry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InquiryTarget<Id> {
    /// Opaque device identity.
    pub id: Id,
    /// Advertised BDADDR.
    pub bd_addr: BdAddr,
    /// Advertised class of device.
    pub cod: ClassOfDevice,
    /// Device name (returned by remote name request).
    pub name: DeviceName,
    /// Whether inquiry scan is enabled.
    pub discoverable: bool,
}

/// One inquiry response with its arrival latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InquiryResponse<Id> {
    /// Responding device.
    pub id: Id,
    /// Advertised BDADDR.
    pub bd_addr: BdAddr,
    /// Advertised class of device.
    pub cod: ClassOfDevice,
    /// Device name.
    pub name: DeviceName,
    /// When the response arrived, relative to inquiry start.
    pub latency: Duration,
}

/// Runs one inquiry of length `inquiry_length` units (1.28 s each) against
/// the given targets, sampling response latencies from each target's
/// inquiry-scan alignment. Responses landing after the inquiry window are
/// dropped — short inquiries can genuinely miss devices.
///
/// Results are sorted by latency (the order the inquirer would see them).
pub fn run_inquiry<Id: Copy, R: Rng + ?Sized>(
    targets: &[InquiryTarget<Id>],
    inquiry_length: u8,
    rng: &mut R,
) -> Vec<InquiryResponse<Id>> {
    let window = timing::INQUIRY_LENGTH_UNIT.mul(inquiry_length.max(1) as u64);
    let scan = ScanConfig::inquiry_default();
    let mut responses: Vec<InquiryResponse<Id>> = targets
        .iter()
        .filter(|t| t.discoverable)
        .filter_map(|t| {
            // First scan-window alignment plus a sub-window offset.
            let phase = rng.gen_range(0..scan.interval.as_micros());
            let jitter = rng.gen_range(0..scan.window.as_micros());
            let latency = Duration::from_micros(phase + jitter);
            (latency < window).then(|| InquiryResponse {
                id: t.id,
                bd_addr: t.bd_addr,
                cod: t.cod,
                name: t.name.clone(),
                latency,
            })
        })
        .collect();
    responses.sort_by_key(|r| r.latency);
    responses
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn target(id: u32, addr: &str, discoverable: bool) -> InquiryTarget<u32> {
        InquiryTarget {
            id,
            bd_addr: addr.parse().unwrap(),
            cod: ClassOfDevice::HANDS_FREE,
            name: DeviceName::new(format!("dev-{id}")),
            discoverable,
        }
    }

    #[test]
    fn discoverable_devices_answer_long_inquiries() {
        let targets = vec![
            target(1, "aa:aa:aa:aa:aa:01", true),
            target(2, "aa:aa:aa:aa:aa:02", true),
        ];
        let mut rng = StdRng::seed_from_u64(5);
        // 8 × 1.28 s comfortably exceeds the scan interval.
        let responses = run_inquiry(&targets, 8, &mut rng);
        assert_eq!(responses.len(), 2);
        assert!(responses[0].latency <= responses[1].latency);
    }

    #[test]
    fn hidden_devices_never_answer() {
        let targets = vec![target(1, "aa:aa:aa:aa:aa:01", false)];
        let mut rng = StdRng::seed_from_u64(5);
        assert!(run_inquiry(&targets, 8, &mut rng).is_empty());
    }

    #[test]
    fn short_inquiries_can_miss() {
        let targets: Vec<InquiryTarget<u32>> = (0..100)
            .map(|i| target(i, "aa:aa:aa:aa:aa:aa", true))
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        // Window of 1 unit (1.28 s) equals the scan interval, so phase +
        // jitter pushes some responses out of the window.
        let responses = run_inquiry(&targets, 1, &mut rng);
        assert!(
            responses.len() < 100,
            "a 1-unit inquiry should miss some of 100 devices"
        );
        assert!(!responses.is_empty(), "but should not miss all of them");
    }

    #[test]
    fn zero_length_clamps_to_one_unit() {
        let targets = vec![target(1, "aa:aa:aa:aa:aa:01", true)];
        let mut rng = StdRng::seed_from_u64(3);
        // Must not panic; semantics match inquiry_length = 1.
        let _ = run_inquiry(&targets, 0, &mut rng);
    }

    #[test]
    fn responses_carry_identity_fields() {
        let targets = vec![target(9, "ab:cd:ef:01:02:03", true)];
        let mut rng = StdRng::seed_from_u64(17);
        let responses = run_inquiry(&targets, 8, &mut rng);
        assert_eq!(responses[0].id, 9);
        assert_eq!(responses[0].bd_addr, "ab:cd:ef:01:02:03".parse().unwrap());
        assert_eq!(responses[0].name.as_str(), "dev-9");
    }
}
