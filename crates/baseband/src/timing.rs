//! Baseband timing constants.
//!
//! Values follow the Core Specification defaults where the simulation needs
//! a concrete number; each constant documents what depends on it.

use blap_types::Duration;

/// Default page-scan interval (`T_page_scan`, R1 mode): 1.28 s.
pub const PAGE_SCAN_INTERVAL: Duration = Duration::from_micros(1_280_000);

/// Default page-scan window: 11.25 ms.
pub const PAGE_SCAN_WINDOW: Duration = Duration::from_micros(11_250);

/// Default inquiry-scan interval: 1.28 s.
pub const INQUIRY_SCAN_INTERVAL: Duration = Duration::from_micros(1_280_000);

/// Default inquiry-scan window: 11.25 ms.
pub const INQUIRY_SCAN_WINDOW: Duration = Duration::from_micros(11_250);

/// Page timeout (`pageTO`): 5.12 s. A page with no response within this
/// window completes with `Page Timeout`.
pub const PAGE_TIMEOUT: Duration = Duration::from_micros(5_120_000);

/// Link supervision timeout default: 20 s of silence drops the link.
///
/// The page blocking attack must keep its PLOC link alive longer than the
/// victim takes to start pairing; the paper mentions exchanging dummy SDP
/// traffic for exactly this reason.
pub const LINK_SUPERVISION_TIMEOUT: Duration = Duration::from_secs(20);

/// LMP response timeout (`LMP_RSP_TIMEOUT`): 30 s. When the attacker's host
/// silently drops `HCI_Link_Key_Request` (Fig 9), this is the timer whose
/// expiry tears the link down *without* an authentication failure.
pub const LMP_RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// Baseband connection-establishment overhead once a page response arrives
/// (FHS exchange, POLL/NULL handshake): a few slots.
pub const CONNECTION_SETUP_OVERHEAD: Duration = Duration::from_slots(8);

/// Inquiry length unit: 1.28 s per unit of the `Inquiry_Length` parameter.
pub const INQUIRY_LENGTH_UNIT: Duration = Duration::from_micros(1_280_000);

#[cfg(test)]
mod tests {
    use super::*;
    use blap_types::SLOT;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PAGE_SCAN_INTERVAL.as_millis(), 1280);
        assert_eq!(PAGE_SCAN_WINDOW.as_micros(), 11_250);
        assert!(PAGE_SCAN_WINDOW < PAGE_SCAN_INTERVAL);
        assert!(PAGE_TIMEOUT > PAGE_SCAN_INTERVAL);
        assert_eq!(CONNECTION_SETUP_OVERHEAD.as_micros(), 8 * SLOT.as_micros());
    }

    #[test]
    fn lmp_timeout_shorter_than_bond_lifetime_but_long() {
        // The attack's disconnect-by-timeout path relies on this timer
        // existing and being finite.
        assert_eq!(LMP_RESPONSE_TIMEOUT.as_micros(), 30_000_000);
        assert!(LINK_SUPERVISION_TIMEOUT < LMP_RESPONSE_TIMEOUT);
    }
}
