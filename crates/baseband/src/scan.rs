//! Scan-state bookkeeping: whether a device answers inquiries and pages.

use blap_types::Duration;

use crate::timing;

/// Timing configuration for one scan activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanConfig {
    /// How often the scan window opens.
    pub interval: Duration,
    /// How long the scan window stays open.
    pub window: Duration,
}

impl ScanConfig {
    /// Default page-scan timing (R1).
    pub fn page_default() -> Self {
        ScanConfig {
            interval: timing::PAGE_SCAN_INTERVAL,
            window: timing::PAGE_SCAN_WINDOW,
        }
    }

    /// Default inquiry-scan timing.
    pub fn inquiry_default() -> Self {
        ScanConfig {
            interval: timing::INQUIRY_SCAN_INTERVAL,
            window: timing::INQUIRY_SCAN_WINDOW,
        }
    }

    /// Fraction of time the scan window is open (duty cycle in 0..=1).
    pub fn duty_cycle(&self) -> f64 {
        self.window.as_micros() as f64 / self.interval.as_micros() as f64
    }
}

/// The radio-visible state of one device.
///
/// Maps onto `HCI_Write_Scan_Enable`: bit 0 enables inquiry scan
/// (discoverable), bit 1 enables page scan (connectable). The paper's §II-B
/// notes a responder may disable page scan to refuse connections — the
/// "non-connectable mode" countermeasure — so both bits are modelled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanState {
    /// Answers inquiries (discoverable) when true.
    pub inquiry_scan: bool,
    /// Answers pages (connectable) when true.
    pub page_scan: bool,
    /// Inquiry-scan timing.
    pub inquiry_config: ScanConfig,
    /// Page-scan timing.
    pub page_config: ScanConfig,
}

impl Default for ScanState {
    fn default() -> Self {
        ScanState {
            inquiry_scan: false,
            page_scan: true,
            inquiry_config: ScanConfig::inquiry_default(),
            page_config: ScanConfig::page_default(),
        }
    }
}

impl ScanState {
    /// Fully discoverable and connectable — how accessories wait to pair.
    pub fn discoverable() -> Self {
        ScanState {
            inquiry_scan: true,
            page_scan: true,
            ..ScanState::default()
        }
    }

    /// Neither discoverable nor connectable (radio effectively silent).
    pub fn silent() -> Self {
        ScanState {
            inquiry_scan: false,
            page_scan: false,
            ..ScanState::default()
        }
    }

    /// Connectable but hidden — typical for already-bonded phones.
    pub fn connectable_only() -> Self {
        ScanState::default()
    }

    /// Applies an `HCI_Write_Scan_Enable` payload.
    pub fn apply_scan_enable(&mut self, inquiry_scan: bool, page_scan: bool) {
        self.inquiry_scan = inquiry_scan;
        self.page_scan = page_scan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_connectable_not_discoverable() {
        let s = ScanState::default();
        assert!(s.page_scan);
        assert!(!s.inquiry_scan);
    }

    #[test]
    fn presets() {
        assert!(ScanState::discoverable().inquiry_scan);
        assert!(ScanState::discoverable().page_scan);
        assert!(!ScanState::silent().page_scan);
        assert!(!ScanState::silent().inquiry_scan);
        assert!(ScanState::connectable_only().page_scan);
    }

    #[test]
    fn scan_enable_applies_bits() {
        let mut s = ScanState::silent();
        s.apply_scan_enable(true, false);
        assert!(s.inquiry_scan);
        assert!(!s.page_scan);
    }

    #[test]
    fn duty_cycle_is_small() {
        let cfg = ScanConfig::page_default();
        let duty = cfg.duty_cycle();
        assert!(duty > 0.0 && duty < 0.02, "duty cycle {duty}");
    }
}
