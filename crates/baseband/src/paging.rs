//! The paging procedure: connection establishment at the baseband.
//!
//! A pager broadcasts the target's device access code (derived from the
//! BDADDR's LAP); any device page-scanning *as that address* may respond.
//! That "any" is the crux of the paper's §V: with a spoofed BDADDR there are
//! two candidate responders and the pager cannot tell them apart — the
//! baseband connects to whichever answers first.

use blap_types::{BdAddr, Duration};
use rand::Rng;

use crate::race::{PageRaceModel, RaceWinner};
use crate::timing;

/// One device listening for pages, as seen by the paging arbiter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageListener<Id> {
    /// Opaque device identity used by the caller to route the result.
    pub id: Id,
    /// The BDADDR the device is page-scanning as (its *claimed* address).
    pub claimed_addr: BdAddr,
    /// Whether this listener is the attacker's clone (drives the latency
    /// model split).
    pub is_spoofer: bool,
}

/// The result of a page attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageResult<Id> {
    /// A responder answered; the link forms after `latency`.
    Connected {
        /// Which listener won.
        responder: Id,
        /// Page latency plus baseband setup overhead.
        latency: Duration,
    },
    /// Nobody page-scanning as the target address: `Page Timeout` after
    /// [`timing::PAGE_TIMEOUT`].
    Timeout,
}

/// Resolves one page attempt against the set of current listeners.
///
/// * No listener claiming `target` ⇒ [`PageResult::Timeout`].
/// * One listener ⇒ it wins with a sampled scan-alignment latency.
/// * Two listeners (the spoofing scenario) ⇒ the race model decides.
///
/// More than two same-address listeners would be a modelling error for this
/// paper's scenarios and panics loudly rather than guessing.
///
/// # Panics
///
/// Panics when more than two listeners claim the target address, or when two
/// listeners claim it but neither (or both) is marked as the spoofer.
pub fn resolve_page<Id: Copy, R: Rng + ?Sized>(
    target: BdAddr,
    listeners: &[PageListener<Id>],
    race_model: &PageRaceModel,
    rng: &mut R,
) -> PageResult<Id> {
    let candidates: Vec<&PageListener<Id>> = listeners
        .iter()
        .filter(|l| l.claimed_addr == target)
        .collect();
    match candidates.len() {
        0 => PageResult::Timeout,
        1 => {
            let listener = candidates[0];
            let latency = if listener.is_spoofer {
                race_model.sample_attacker_latency(rng)
            } else {
                race_model.sample_legitimate_latency(rng)
            };
            PageResult::Connected {
                responder: listener.id,
                latency: latency + timing::CONNECTION_SETUP_OVERHEAD,
            }
        }
        2 => {
            let spoofers = candidates.iter().filter(|l| l.is_spoofer).count();
            assert_eq!(
                spoofers, 1,
                "page race requires exactly one spoofer among two listeners"
            );
            let outcome = race_model.sample_race(rng);
            let winner = match outcome.winner {
                RaceWinner::Attacker => candidates.iter().find(|l| l.is_spoofer).unwrap(),
                RaceWinner::Legitimate => candidates.iter().find(|l| !l.is_spoofer).unwrap(),
            };
            PageResult::Connected {
                responder: winner.id,
                latency: outcome.latency + timing::CONNECTION_SETUP_OVERHEAD,
            }
        }
        n => panic!("unsupported page collision: {n} listeners share {target}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn addr_c() -> BdAddr {
        "cc:cc:cc:cc:cc:cc".parse().unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn no_listener_times_out() {
        let result: PageResult<u32> =
            resolve_page(addr_c(), &[], &PageRaceModel::default(), &mut rng());
        assert_eq!(result, PageResult::Timeout);
    }

    #[test]
    fn wrong_address_times_out() {
        let listeners = [PageListener {
            id: 1u32,
            claimed_addr: "aa:aa:aa:aa:aa:aa".parse().unwrap(),
            is_spoofer: false,
        }];
        let result = resolve_page(addr_c(), &listeners, &PageRaceModel::default(), &mut rng());
        assert_eq!(result, PageResult::Timeout);
    }

    #[test]
    fn single_listener_always_connects() {
        let listeners = [PageListener {
            id: 7u32,
            claimed_addr: addr_c(),
            is_spoofer: false,
        }];
        match resolve_page(addr_c(), &listeners, &PageRaceModel::default(), &mut rng()) {
            PageResult::Connected { responder, latency } => {
                assert_eq!(responder, 7);
                assert!(latency >= timing::CONNECTION_SETUP_OVERHEAD);
            }
            PageResult::Timeout => panic!("single listener must connect"),
        }
    }

    #[test]
    fn race_distributes_between_two_listeners() {
        let listeners = [
            PageListener {
                id: 1u32, // legitimate C
                claimed_addr: addr_c(),
                is_spoofer: false,
            },
            PageListener {
                id: 2u32, // attacker A with spoofed address
                claimed_addr: addr_c(),
                is_spoofer: true,
            },
        ];
        let model = PageRaceModel::from_attacker_win_rate(0.6);
        let mut rng = rng();
        let mut attacker_wins = 0;
        const TRIALS: usize = 10_000;
        for _ in 0..TRIALS {
            match resolve_page(addr_c(), &listeners, &model, &mut rng) {
                PageResult::Connected { responder: 2, .. } => attacker_wins += 1,
                PageResult::Connected { .. } => {}
                PageResult::Timeout => panic!("two listeners must connect"),
            }
        }
        let rate = attacker_wins as f64 / TRIALS as f64;
        assert!((rate - 0.6).abs() < 0.03, "empirical attacker rate {rate}");
    }

    #[test]
    #[should_panic(expected = "exactly one spoofer")]
    fn two_legitimate_listeners_rejected() {
        let listeners = [
            PageListener {
                id: 1u32,
                claimed_addr: addr_c(),
                is_spoofer: false,
            },
            PageListener {
                id: 2u32,
                claimed_addr: addr_c(),
                is_spoofer: false,
            },
        ];
        let _ = resolve_page(addr_c(), &listeners, &PageRaceModel::default(), &mut rng());
    }
}
