//! Simulated BR/EDR baseband: slot timing, scan states, the inquiry and
//! paging procedures, and — the heart of the paper's Table II — the *page
//! response race* between two devices sharing one spoofed BDADDR.
//!
//! The radio itself is not modelled RF-accurately; what matters for the BLAP
//! attacks is *who answers a page first* and *when links drop*. Those are
//! modelled explicitly:
//!
//! * [`scan`] — inquiry-scan / page-scan enablement and timing,
//! * [`inquiry`] — device discovery with sampled response latencies,
//! * [`paging`] — connection establishment, including the multi-listener
//!   race that makes naive MITM only 42–60% reliable,
//! * [`race`] — the calibrated latency model behind that race,
//! * [`link`] — baseband ACL link records with supervision timeouts.
//!
//! # Calibration note (Table II)
//!
//! The paper measures per-victim baseline MITM success between 42% and 60%.
//! Those rates are an empirical property of each phone's page-train timing
//! against the two responders' scan phases; this simulation reproduces them
//! with a single per-profile parameter (the attacker's latency scale, see
//! [`race::PageRaceModel`]). The page blocking result (100%) is *not*
//! calibrated — it falls out structurally because the attacker initiates the
//! connection and no race ever happens.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inquiry;
pub mod link;
pub mod paging;
pub mod race;
pub mod scan;
pub mod timing;
