//! The page-response race model behind Table II's baseline column.
//!
//! When the attacker `A` clones accessory `C`'s BDADDR and both sit in page
//! scan, a page from the victim `M` reaches whichever device's scan window
//! aligns with the page train first. Each responder's latency is therefore
//! (approximately) uniform over its page-scan interval; the faster sample
//! wins.
//!
//! The paper measures the attacker winning 42–60% of such races depending on
//! the victim device. We reproduce those per-device rates with one knob: the
//! *attacker latency scale* `s`, making the attacker's latency uniform over
//! `s · T` while the legitimate accessory stays uniform over `T`. Closed
//! form:
//!
//! * `s ≤ 1`: `P(A wins) = 1 - s/2`
//! * `s ≥ 1`: `P(A wins) = 1/(2s)`
//!
//! which [`PageRaceModel::from_attacker_win_rate`] inverts. The calibration
//! affects *only* the baseline; the page blocking attack never enters this
//! module.

use blap_types::Duration;
use rand::Rng;

use crate::timing;

/// Who won a page race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceWinner {
    /// The attacker's spoofed device answered first.
    Attacker,
    /// The legitimate accessory answered first.
    Legitimate,
}

/// Outcome of one sampled race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RaceOutcome {
    /// Which responder won.
    pub winner: RaceWinner,
    /// The winning response latency.
    pub latency: Duration,
}

/// Running tally of page-race outcomes — the observability counterpart of
/// [`PageRaceModel`]. The simulation records every decided race here so a
/// Table II trial that lands outside the 42–60% band can be diagnosed from
/// the actual win/loss sequence instead of re-run blind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RaceTally {
    /// Races the spoofing attacker won.
    pub attacker_wins: u64,
    /// Races the legitimate accessory won.
    pub legitimate_wins: u64,
}

impl RaceTally {
    /// An empty tally.
    pub fn new() -> RaceTally {
        RaceTally::default()
    }

    /// Records one decided race.
    pub fn record(&mut self, winner: RaceWinner) {
        match winner {
            RaceWinner::Attacker => self.attacker_wins += 1,
            RaceWinner::Legitimate => self.legitimate_wins += 1,
        }
    }

    /// Total races recorded.
    pub fn total(&self) -> u64 {
        self.attacker_wins + self.legitimate_wins
    }

    /// Empirical attacker win rate, when any race was recorded.
    pub fn attacker_rate(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| self.attacker_wins as f64 / total as f64)
    }

    /// Folds another tally in (commutative, for cross-world merges).
    pub fn merge(&mut self, other: &RaceTally) {
        self.attacker_wins += other.attacker_wins;
        self.legitimate_wins += other.legitimate_wins;
    }
}

/// Latency model for the two-responder page race.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRaceModel {
    /// Scan interval both responders are nominally configured with.
    base_interval: Duration,
    /// Attacker latency scale `s` (1.0 = perfectly matched hardware).
    attacker_scale: f64,
}

impl Default for PageRaceModel {
    fn default() -> Self {
        PageRaceModel::new(1.0)
    }
}

impl PageRaceModel {
    /// Creates a model with the given attacker latency scale.
    ///
    /// # Panics
    ///
    /// Panics when `attacker_scale` is not strictly positive and finite.
    pub fn new(attacker_scale: f64) -> Self {
        assert!(
            attacker_scale.is_finite() && attacker_scale > 0.0,
            "attacker_scale must be positive and finite, got {attacker_scale}"
        );
        PageRaceModel {
            base_interval: timing::PAGE_SCAN_INTERVAL,
            attacker_scale,
        }
    }

    /// Calibrates the model so the attacker wins with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn from_attacker_win_rate(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "win rate must be in (0, 1), got {p}");
        let scale = if p >= 0.5 {
            2.0 * (1.0 - p)
        } else {
            1.0 / (2.0 * p)
        };
        PageRaceModel::new(scale)
    }

    /// The analytic attacker win probability of this model.
    pub fn expected_attacker_win_rate(&self) -> f64 {
        let s = self.attacker_scale;
        if s <= 1.0 {
            1.0 - s / 2.0
        } else {
            1.0 / (2.0 * s)
        }
    }

    /// The attacker latency scale.
    pub fn attacker_scale(&self) -> f64 {
        self.attacker_scale
    }

    /// Samples the attacker's page-response latency.
    pub fn sample_attacker_latency<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let max = self.base_interval.as_micros() as f64 * self.attacker_scale;
        Duration::from_micros(rng.gen_range(0.0..max) as u64)
    }

    /// Samples the legitimate accessory's page-response latency.
    pub fn sample_legitimate_latency<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let max = self.base_interval.as_micros();
        Duration::from_micros(rng.gen_range(0..max))
    }

    /// Samples one full race.
    pub fn sample_race<R: Rng + ?Sized>(&self, rng: &mut R) -> RaceOutcome {
        let attacker = self.sample_attacker_latency(rng);
        let legitimate = self.sample_legitimate_latency(rng);
        if attacker <= legitimate {
            RaceOutcome {
                winner: RaceWinner::Attacker,
                latency: attacker,
            }
        } else {
            RaceOutcome {
                winner: RaceWinner::Legitimate,
                latency: legitimate,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_rate(model: &PageRaceModel, trials: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let wins = (0..trials)
            .filter(|_| model.sample_race(&mut rng).winner == RaceWinner::Attacker)
            .count();
        wins as f64 / trials as f64
    }

    #[test]
    fn matched_hardware_is_a_coin_flip() {
        let model = PageRaceModel::default();
        assert!((model.expected_attacker_win_rate() - 0.5).abs() < 1e-9);
        let rate = empirical_rate(&model, 20_000, 1);
        assert!((rate - 0.5).abs() < 0.02, "empirical {rate}");
    }

    #[test]
    fn calibration_inverts_for_paper_rates() {
        // Every Table II baseline rate must be reproducible.
        for p in [0.42, 0.51, 0.52, 0.57, 0.60] {
            let model = PageRaceModel::from_attacker_win_rate(p);
            assert!(
                (model.expected_attacker_win_rate() - p).abs() < 1e-9,
                "analytic inversion failed for {p}"
            );
            let rate = empirical_rate(&model, 20_000, (p * 100.0) as u64);
            assert!((rate - p).abs() < 0.02, "empirical {rate} for target {p}");
        }
    }

    #[test]
    fn extreme_scales() {
        // Very slow attacker rarely wins; very fast attacker nearly always.
        let slow = PageRaceModel::new(10.0);
        assert!(slow.expected_attacker_win_rate() < 0.06);
        let fast = PageRaceModel::new(0.05);
        assert!(fast.expected_attacker_win_rate() > 0.97);
    }

    #[test]
    fn latencies_are_bounded_by_interval() {
        let model = PageRaceModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let outcome = model.sample_race(&mut rng);
            assert!(outcome.latency < timing::PAGE_SCAN_INTERVAL);
        }
    }

    #[test]
    fn tally_records_and_merges() {
        let model = PageRaceModel::from_attacker_win_rate(0.57);
        let mut rng = StdRng::seed_from_u64(9);
        let mut a = RaceTally::new();
        let mut b = RaceTally::new();
        for i in 0..10_000 {
            let outcome = model.sample_race(&mut rng);
            if i % 2 == 0 { &mut a } else { &mut b }.record(outcome.winner);
        }
        assert_eq!(a.total() + b.total(), 10_000);
        a.merge(&b);
        assert_eq!(a.total(), 10_000);
        let rate = a.attacker_rate().expect("races recorded");
        assert!((rate - 0.57).abs() < 0.02, "empirical {rate}");
        assert_eq!(RaceTally::new().attacker_rate(), None);
    }

    #[test]
    #[should_panic(expected = "win rate")]
    fn rejects_invalid_rate() {
        let _ = PageRaceModel::from_attacker_win_rate(1.0);
    }

    #[test]
    #[should_panic(expected = "attacker_scale")]
    fn rejects_invalid_scale() {
        let _ = PageRaceModel::new(0.0);
    }
}
