//! Baseband ACL link records.

use blap_types::{BdAddr, ConnectionHandle, Duration, Instant, LtAddr, Role};

use crate::timing;

/// One established baseband ACL link, as tracked by a controller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AclLink {
    /// The HCI handle the controller allocated.
    pub handle: ConnectionHandle,
    /// The peer's (claimed) BDADDR.
    pub peer: BdAddr,
    /// Local role: the connection initiator becomes the piconet central and
    /// assigns the LT_ADDR.
    pub role: Role,
    /// Logical transport address of the peripheral.
    pub lt_addr: LtAddr,
    /// When the link formed.
    pub established_at: Instant,
    /// Last time any traffic crossed the link (drives supervision timeout).
    pub last_activity: Instant,
    /// Supervision timeout in force.
    pub supervision_timeout: Duration,
}

impl AclLink {
    /// Creates a link record with the default supervision timeout.
    pub fn new(
        handle: ConnectionHandle,
        peer: BdAddr,
        role: Role,
        lt_addr: LtAddr,
        established_at: Instant,
    ) -> Self {
        AclLink {
            handle,
            peer,
            role,
            lt_addr,
            established_at,
            last_activity: established_at,
            supervision_timeout: timing::LINK_SUPERVISION_TIMEOUT,
        }
    }

    /// Records link activity (any frame, including the dummy SDP traffic the
    /// paper suggests for keeping a PLOC link alive).
    pub fn touch(&mut self, now: Instant) {
        debug_assert!(now >= self.last_activity);
        self.last_activity = now;
    }

    /// Whether the supervision timeout has expired at `now`.
    pub fn is_expired(&self, now: Instant) -> bool {
        now.duration_since(self.last_activity) >= self.supervision_timeout
    }

    /// Time remaining before supervision expiry (zero once expired).
    pub fn time_to_expiry(&self, now: Instant) -> Duration {
        self.supervision_timeout
            .saturating_sub(now.duration_since(self.last_activity))
    }
}

/// Allocates connection handles the way small controllers do: sequentially,
/// skipping values still in use.
#[derive(Clone, Debug, Default)]
pub struct HandleAllocator {
    next: u16,
}

impl HandleAllocator {
    /// Creates an allocator starting at handle 1.
    pub fn new() -> Self {
        HandleAllocator { next: 0 }
    }

    /// Allocates the next free handle, avoiding the provided in-use set.
    pub fn allocate(&mut self, in_use: &[ConnectionHandle]) -> ConnectionHandle {
        loop {
            self.next = if self.next >= ConnectionHandle::MAX {
                1
            } else {
                self.next + 1
            };
            let candidate = ConnectionHandle::new(self.next);
            if !in_use.contains(&candidate) {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_at(t: Instant) -> AclLink {
        AclLink::new(
            ConnectionHandle::new(3),
            "cc:cc:cc:cc:cc:cc".parse().unwrap(),
            Role::Initiator,
            LtAddr::new(1),
            t,
        )
    }

    #[test]
    fn supervision_expiry() {
        let t0 = Instant::EPOCH;
        let link = link_at(t0);
        assert!(!link.is_expired(t0));
        let just_before = t0 + (timing::LINK_SUPERVISION_TIMEOUT - Duration::from_micros(1));
        assert!(!link.is_expired(just_before));
        let at_timeout = t0 + timing::LINK_SUPERVISION_TIMEOUT;
        assert!(link.is_expired(at_timeout));
    }

    #[test]
    fn touch_extends_lifetime() {
        let t0 = Instant::EPOCH;
        let mut link = link_at(t0);
        let later = t0 + Duration::from_secs(15);
        link.touch(later);
        // Without the touch this would be expired.
        let t_check = t0 + Duration::from_secs(25);
        assert!(!link.is_expired(t_check));
        assert_eq!(
            link.time_to_expiry(t_check),
            timing::LINK_SUPERVISION_TIMEOUT - Duration::from_secs(10)
        );
    }

    #[test]
    fn expiry_clamps_to_zero() {
        let link = link_at(Instant::EPOCH);
        let way_later = Instant::EPOCH + Duration::from_secs(100);
        assert_eq!(link.time_to_expiry(way_later), Duration::ZERO);
    }

    #[test]
    fn handle_allocation_skips_in_use() {
        let mut alloc = HandleAllocator::new();
        let h1 = alloc.allocate(&[]);
        assert_eq!(h1.raw(), 1);
        let h2 = alloc.allocate(&[h1]);
        assert_eq!(h2.raw(), 2);
        // Force a wrap with handle 3 occupied.
        let mut alloc = HandleAllocator {
            next: ConnectionHandle::MAX,
        };
        let h = alloc.allocate(&[ConnectionHandle::new(1)]);
        assert_eq!(h.raw(), 2);
    }
}
