//! Property tests for the baseband models: race calibration, paging
//! resolution, link supervision.

use blap_baseband::link::AclLink;
use blap_baseband::paging::{resolve_page, PageListener, PageResult};
use blap_baseband::race::{PageRaceModel, RaceWinner};
use blap_baseband::timing;
use blap_types::{BdAddr, ConnectionHandle, Duration, Instant, LtAddr, Role};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn calibration_inverts_any_rate(p in 0.05f64..0.95) {
        let model = PageRaceModel::from_attacker_win_rate(p);
        prop_assert!((model.expected_attacker_win_rate() - p).abs() < 1e-9);
    }

    #[test]
    fn empirical_rate_tracks_analytic(p in 0.1f64..0.9, seed in any::<u64>()) {
        let model = PageRaceModel::from_attacker_win_rate(p);
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 4000;
        let wins = (0..trials)
            .filter(|_| model.sample_race(&mut rng).winner == RaceWinner::Attacker)
            .count();
        let rate = wins as f64 / trials as f64;
        prop_assert!((rate - p).abs() < 0.05, "rate {rate} vs target {p}");
    }

    #[test]
    fn race_latency_always_positive_and_bounded(p in 0.1f64..0.9, seed in any::<u64>()) {
        let model = PageRaceModel::from_attacker_win_rate(p);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let outcome = model.sample_race(&mut rng);
            prop_assert!(outcome.latency < timing::PAGE_SCAN_INTERVAL.mul(2));
        }
    }

    #[test]
    fn paging_connects_iff_a_listener_claims_target(target in any::<[u8; 6]>(),
                                                    other in any::<[u8; 6]>(),
                                                    seed in any::<u64>()) {
        prop_assume!(target != other);
        let target = BdAddr::new(target);
        let other = BdAddr::new(other);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = PageRaceModel::default();

        let hit = resolve_page(
            target,
            &[PageListener { id: 1u32, claimed_addr: target, is_spoofer: false }],
            &model,
            &mut rng,
        );
        let connected_to_listener =
            matches!(hit, PageResult::Connected { responder: 1, .. });
        prop_assert!(connected_to_listener);

        let miss = resolve_page(
            target,
            &[PageListener { id: 1u32, claimed_addr: other, is_spoofer: false }],
            &model,
            &mut rng,
        );
        prop_assert_eq!(miss, PageResult::Timeout);
    }

    #[test]
    fn supervision_timeout_is_exact(idle_us in 0u64..40_000_000) {
        let t0 = Instant::EPOCH;
        let link = AclLink::new(
            ConnectionHandle::new(1),
            BdAddr::ZERO,
            Role::Initiator,
            LtAddr::new(1),
            t0,
        );
        let t = t0 + Duration::from_micros(idle_us);
        let expired = link.is_expired(t);
        prop_assert_eq!(
            expired,
            idle_us >= timing::LINK_SUPERVISION_TIMEOUT.as_micros()
        );
        if !expired {
            prop_assert_eq!(
                link.time_to_expiry(t),
                timing::LINK_SUPERVISION_TIMEOUT - Duration::from_micros(idle_us)
            );
        }
    }
}
