//! Per-link state tracked by the Link Manager.

use blap_crypto::p256::KeyPair;
use blap_types::{BdAddr, ConnectionHandle, IoCapability, LinkKey, Role};

/// Progress of a Secure Simple Pairing exchange on one link.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum SspPhase {
    /// No pairing in progress.
    #[default]
    Idle,
    /// Initiator: waiting for the peer's `LMP_io_capability_res`.
    AwaitIoCapResponse,
    /// Waiting for the host's `HCI_IO_Capability_Request_Reply`.
    AwaitHostIoCap,
    /// Waiting for the peer's public key.
    AwaitPublicKey,
    /// Initiator: waiting for the responder's commitment.
    AwaitCommitment,
    /// Waiting for the peer's nonce.
    AwaitNonce,
    /// Waiting for local-host and/or peer numeric confirmation.
    AwaitConfirmation,
    /// Waiting for the peer's DHKey check.
    AwaitDhkeyCheck,
    /// Pairing finished (key delivered).
    Complete,
}

/// Progress of a bonded-device LMP authentication on one link.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum AuthPhase {
    /// No authentication in progress.
    #[default]
    Idle,
    /// Waiting for the local host to answer `HCI_Link_Key_Request`.
    AwaitHostKey {
        /// True on the side that sent `HCI_Authentication_Requested`.
        verifier: bool,
    },
    /// Verifier: challenge sent, waiting for `LMP_sres`.
    AwaitResponse {
        /// The outstanding challenge.
        rand: [u8; 16],
        /// Expected response, precomputed from the local key.
        expected_sres: [u8; 4],
    },
    /// Prover: waiting for the host key to answer a received challenge.
    AwaitHostKeyForChallenge {
        /// The challenge to answer once the key arrives.
        rand: [u8; 16],
    },
    /// Authentication finished successfully.
    Complete,
}

/// Legacy (pre-SSP) PIN pairing state on one link.
#[derive(Clone, Debug, Default)]
pub struct LegacyState {
    /// True once a legacy pairing is in progress.
    pub active: bool,
    /// True on the side that started the pairing.
    pub initiator: bool,
    /// The initiator's IN_RAND (shared in the clear).
    pub in_rand: Option<[u8; 16]>,
    /// `E22(IN_RAND, PIN, claimant)` once the host supplied the PIN.
    pub k_init: Option<LinkKey>,
    /// Our combination-key random contribution.
    pub own_lk_rand: Option<[u8; 16]>,
    /// The peer's masked contribution, once received.
    pub peer_comb: Option<[u8; 16]>,
}

/// Secure Simple Pairing working state.
#[derive(Clone, Debug, Default)]
pub struct SspState {
    /// Where the exchange currently stands.
    pub phase: SspPhase,
    /// True on the side that initiated pairing.
    pub initiator: bool,
    /// Local ECDH key pair (generated lazily at pairing start).
    pub keypair: Option<KeyPair>,
    /// Peer public key x-coordinate (big-endian), once received.
    pub peer_pk_x: Option<[u8; 32]>,
    /// Peer public key y-coordinate (big-endian), once received.
    pub peer_pk_y: Option<[u8; 32]>,
    /// Local nonce.
    pub own_nonce: Option<[u8; 16]>,
    /// Peer nonce.
    pub peer_nonce: Option<[u8; 16]>,
    /// Commitment received from the responder (initiator side only).
    pub peer_commitment: Option<[u8; 16]>,
    /// ECDH shared secret once both keys are known.
    pub dhkey: Option<[u8; 32]>,
    /// Local IO capability (from the host's reply).
    pub own_io: Option<IoCapability>,
    /// Local authentication requirements octet.
    pub own_auth_req: u8,
    /// Peer IO capability (from the LMP exchange).
    pub peer_io: Option<IoCapability>,
    /// Peer authentication requirements octet.
    pub peer_auth_req: u8,
    /// Local user/host confirmed the numeric value.
    pub local_confirmed: bool,
    /// Peer signalled `NumericAccepted`.
    pub peer_confirmed: bool,
    /// Local DHKey check sent.
    pub check_sent: bool,
}

/// One ACL link as the Link Manager sees it.
#[derive(Clone, Debug)]
pub struct LinkEntry {
    /// HCI handle allocated locally for this link.
    pub handle: ConnectionHandle,
    /// Peer's (claimed) BDADDR.
    pub peer: BdAddr,
    /// Local role in connection establishment.
    pub role: Role,
    /// Bonded-authentication progress.
    pub auth: AuthPhase,
    /// Pairing progress.
    pub ssp: SspState,
    /// Legacy PIN pairing progress.
    pub legacy: LegacyState,
    /// Link key in active use on this link (cached for the session only —
    /// persistent storage lives in the host, as in real chipsets).
    pub session_key: Option<LinkKey>,
    /// Authenticated Ciphering Offset from the last LMP authentication;
    /// feeds the `h3` encryption-key derivation.
    pub aco: Option<[u8; 8]>,
    /// Session encryption key derived by `h3` when encryption turned on.
    pub encryption_key: Option<[u8; 16]>,
    /// Whether link-level encryption is on.
    pub encrypted: bool,
    /// True while connection establishment is still waiting for the peer
    /// host to accept.
    pub awaiting_accept: bool,
}

impl LinkEntry {
    /// Creates a link record in the not-yet-accepted state.
    pub fn new(handle: ConnectionHandle, peer: BdAddr, role: Role) -> Self {
        LinkEntry {
            handle,
            peer,
            role,
            auth: AuthPhase::Idle,
            ssp: SspState::default(),
            legacy: LegacyState::default(),
            session_key: None,
            aco: None,
            encryption_key: None,
            encrypted: false,
            awaiting_accept: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_link_defaults() {
        let link = LinkEntry::new(
            ConnectionHandle::new(1),
            "aa:bb:cc:dd:ee:ff".parse().unwrap(),
            Role::Initiator,
        );
        assert!(link.awaiting_accept);
        assert!(!link.encrypted);
        assert_eq!(link.auth, AuthPhase::Idle);
        assert_eq!(link.ssp.phase, SspPhase::Idle);
        assert!(link.session_key.is_none());
    }
}
