//! Controller configuration.

use blap_types::{BdAddr, ClassOfDevice, DeviceName};

/// Static configuration of a simulated controller.
///
/// Everything here corresponds to something the paper's attacker tampers
/// with on the Nexus 5x testbed: the BDADDR (`/persist/bdaddr.txt`), the
/// class of device (`bt_target.h`, Fig 8), and the advertised name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControllerConfig {
    /// The controller's (claimed) Bluetooth device address.
    pub bd_addr: BdAddr,
    /// Advertised class of device.
    pub cod: ClassOfDevice,
    /// Advertised device name.
    pub name: DeviceName,
}

impl ControllerConfig {
    /// Creates a configuration.
    pub fn new(bd_addr: BdAddr, cod: ClassOfDevice, name: impl Into<DeviceName>) -> Self {
        ControllerConfig {
            bd_addr,
            cod,
            name: name.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let cfg = ControllerConfig::new(
            "aa:bb:cc:dd:ee:ff".parse().unwrap(),
            ClassOfDevice::SMARTPHONE,
            "VELVET",
        );
        assert_eq!(cfg.name.as_str(), "VELVET");
        assert_eq!(cfg.cod, ClassOfDevice::SMARTPHONE);
    }
}
