//! Link Manager Protocol PDUs exchanged between peer controllers.
//!
//! These model the *semantics* of the LMP procedures the BLAP attacks ride
//! on, not the exact bit layout (LMP never crosses HCI, so no capture
//! fidelity is lost — the HCI dump records events, not LMP frames).

use blap_hci::StatusCode;
use blap_types::IoCapability;

/// An LMP protocol data unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LmpPdu {
    /// Baseband connection accepted by the paged device's host; completes
    /// connection establishment on the initiator.
    ConnectionAccepted,
    /// Connection rejected by the paged device's host.
    ConnectionRejected {
        /// Why the page was refused.
        reason: StatusCode,
    },
    /// `LMP_au_rand` — authentication challenge from the verifier.
    AuthChallenge {
        /// The 128-bit random challenge.
        rand: [u8; 16],
    },
    /// `LMP_sres` — the prover's signed response.
    AuthResponse {
        /// 32-bit signed response.
        sres: [u8; 4],
    },
    /// `LMP_not_accepted` for an authentication step.
    AuthReject {
        /// Why authentication cannot proceed (typically key missing).
        reason: StatusCode,
    },
    /// `LMP_io_capability_req` — pairing initiator's capabilities.
    IoCapRequest {
        /// Initiator IO capability.
        io_capability: IoCapability,
        /// Initiator authentication requirements octet.
        auth_requirements: u8,
    },
    /// `LMP_io_capability_res` — responder's capabilities.
    IoCapResponse {
        /// Responder IO capability.
        io_capability: IoCapability,
        /// Responder authentication requirements octet.
        auth_requirements: u8,
    },
    /// `LMP_encapsulated_payload` carrying a P-256 public key.
    PublicKey {
        /// Affine x-coordinate, big-endian.
        x: [u8; 32],
        /// Affine y-coordinate, big-endian.
        y: [u8; 32],
    },
    /// SSP commitment (`f1` output) from the responder.
    Commitment {
        /// The 128-bit commitment value.
        value: [u8; 16],
    },
    /// SSP nonce disclosure.
    Nonce {
        /// The 128-bit nonce.
        value: [u8; 16],
    },
    /// The local user (or automatic policy) accepted the numeric value.
    NumericAccepted,
    /// The local user rejected the numeric value.
    NumericRejected,
    /// DHKey check value (`f3` output).
    DhkeyCheck {
        /// The 128-bit check value.
        value: [u8; 16],
    },
    /// `LMP_in_rand` — legacy pairing: the initiator's random input to the
    /// `E22` initialization-key derivation (sent in the clear, which is why
    /// short PINs are crackable — the paper's refs 14 and 15).
    LegacyInRand {
        /// 128-bit IN_RAND.
        rand: [u8; 16],
    },
    /// `LMP_comb_key` — legacy pairing: one side's combination-key
    /// contribution, `LK_RAND XOR K_init`.
    LegacyCombKey {
        /// The masked contribution.
        value: [u8; 16],
    },
    /// `LMP_encryption_mode_req` — peer requests link encryption on/off;
    /// both controllers derive the session key from the link key and ACO.
    EncryptionMode {
        /// Whether encryption turns on.
        enable: bool,
    },
    /// `LMP_detach` — link teardown with a reason.
    Detach {
        /// Teardown reason (drives the peer's `Disconnection_Complete`).
        reason: StatusCode,
    },
    /// Link keep-alive traffic (models the dummy SDP exchange the paper
    /// uses to hold a PLOC link open).
    KeepAlive,
}

impl LmpPdu {
    /// Short human-readable name for logging.
    pub fn name(&self) -> &'static str {
        match self {
            LmpPdu::ConnectionAccepted => "LMP_connection_accepted",
            LmpPdu::ConnectionRejected { .. } => "LMP_connection_rejected",
            LmpPdu::AuthChallenge { .. } => "LMP_au_rand",
            LmpPdu::AuthResponse { .. } => "LMP_sres",
            LmpPdu::AuthReject { .. } => "LMP_not_accepted(auth)",
            LmpPdu::IoCapRequest { .. } => "LMP_io_capability_req",
            LmpPdu::IoCapResponse { .. } => "LMP_io_capability_res",
            LmpPdu::PublicKey { .. } => "LMP_encapsulated_payload(public key)",
            LmpPdu::Commitment { .. } => "LMP_simple_pairing_confirm",
            LmpPdu::Nonce { .. } => "LMP_simple_pairing_number",
            LmpPdu::NumericAccepted => "LMP_numeric_comparison_accepted",
            LmpPdu::NumericRejected => "LMP_numeric_comparison_failed",
            LmpPdu::DhkeyCheck { .. } => "LMP_dhkey_check",
            LmpPdu::LegacyInRand { .. } => "LMP_in_rand",
            LmpPdu::LegacyCombKey { .. } => "LMP_comb_key",
            LmpPdu::EncryptionMode { .. } => "LMP_encryption_mode_req",
            LmpPdu::Detach { .. } => "LMP_detach",
            LmpPdu::KeepAlive => "LMP_keepalive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(
            LmpPdu::AuthChallenge { rand: [0; 16] }.name(),
            "LMP_au_rand"
        );
        assert_eq!(
            LmpPdu::Detach {
                reason: StatusCode::LmpResponseTimeout
            }
            .name(),
            "LMP_detach"
        );
    }
}
