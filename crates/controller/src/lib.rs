//! Simulated Bluetooth BR/EDR controller: link controller plus Link Manager.
//!
//! The controller is implemented as a deterministic state machine with an
//! explicit output queue, which makes it directly unit-testable and lets the
//! simulation world drive many controllers from one event loop:
//!
//! * inputs — HCI [`blap_hci::Command`]s from the host, [`lmp::LmpPdu`]s
//!   from peer controllers, page/inquiry results from the baseband, timer
//!   expirations;
//! * outputs ([`ControllerOutput`]) — HCI [`blap_hci::Event`]s to the host,
//!   LMP PDUs to peers, page/inquiry requests for the baseband, timer
//!   requests.
//!
//! Security procedures implemented from the Core Specification's message
//! flows:
//!
//! * **LMP authentication** (bonded devices, Fig 2b of the paper):
//!   challenge/response over the shared link key using the
//!   Secure-Connections `h4`/`h5` functions. A peer that never answers —
//!   the paper's Fig 9 attacker — trips the LMP response timeout, which
//!   tears the link down *without* an authentication failure, leaving the
//!   victim's stored key intact.
//! * **Secure Simple Pairing** (non-bonded devices, Fig 2a): IO capability
//!   exchange, P-256 ECDH, commitment/nonce exchange, numeric value `g`,
//!   user confirmation (auto or via the host), DHKey checks (`f3`), link key
//!   derivation (`f2`) and `HCI_Link_Key_Notification` — the event that
//!   writes the key into the HCI dump.
//!
//! The controller never stores link keys; exactly like real hardware it
//! requests them from the host (`HCI_Link_Key_Request`) and hands fresh ones
//! back (`HCI_Link_Key_Notification`) — the two plaintext crossings the BLAP
//! extraction attack captures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod links;
pub mod lmp;

pub use config::ControllerConfig;
pub use engine::{Controller, ControllerOutput, ControllerStats, ControllerTimer, PageOutcome};
pub use links::{LinkEntry, SspPhase};
