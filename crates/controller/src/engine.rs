//! The controller state machine.

use std::collections::HashMap;
use std::collections::VecDeque;

use blap_baseband::link::HandleAllocator;
use blap_baseband::scan::ScanState;
use blap_baseband::timing;
use blap_crypto::p256::{KeyPair, Point};
use blap_crypto::{bigint::U256, e1, ssp};
use blap_hci::{Command, Event, Opcode, StatusCode};
use blap_obs::{prof, SpanId, TraceEvent, Tracer};
use blap_types::{
    AssociationModel, BdAddr, ConnectionHandle, Duration, Instant, IoCapability, LinkKey,
    LinkKeyType, Role,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::ControllerConfig;
use crate::links::{AuthPhase, LinkEntry, SspPhase};
use crate::lmp::LmpPdu;

/// Something the controller wants the outside world to do.
#[derive(Clone, Debug, PartialEq)]
pub enum ControllerOutput {
    /// Deliver an HCI event to the local host.
    Event(Event),
    /// Deliver an LMP PDU to the peer on the link whose claimed address is
    /// `peer` (the simulation routes by link, not by address, so spoofed
    /// addresses resolve to the actually-connected device).
    Lmp {
        /// Claimed address of the link peer.
        peer: BdAddr,
        /// The PDU.
        pdu: LmpPdu,
    },
    /// Begin paging `target` (the simulation resolves the race).
    StartPage {
        /// Address being paged.
        target: BdAddr,
    },
    /// Begin an inquiry of `length` 1.28 s units.
    StartInquiry {
        /// Inquiry length parameter.
        length: u8,
    },
    /// Arm a timer.
    StartTimer {
        /// Which timer.
        timer: ControllerTimer,
        /// Relative expiry.
        after: Duration,
    },
    /// Disarm a timer.
    CancelTimer {
        /// Which timer.
        timer: ControllerTimer,
    },
}

/// Timers the controller arms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControllerTimer {
    /// LMP response timeout for procedures with `peer` — the timer whose
    /// expiry gives the extraction attack its "disconnect without
    /// authentication failure".
    LmpResponse {
        /// Peer the procedure runs with.
        peer: BdAddr,
    },
}

/// Always-on LMP counters, cheap enough to keep unconditionally (plain
/// `u64` increments) and snapshotted into experiment metrics by the world.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// LMP PDUs this controller queued for peers.
    pub lmp_sent: u64,
    /// LMP PDUs this controller received.
    pub lmp_received: u64,
    /// Procedures torn down by LMP response timeout (the extraction
    /// attack's "disconnect without authentication failure" event).
    pub lmp_response_timeouts: u64,
}

/// Result of a page attempt, reported back by the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageOutcome {
    /// Nobody answered within the page timeout.
    TimedOut,
}

/// A simulated Bluetooth controller (link controller + Link Manager).
///
/// See the crate docs for the interaction model. All methods are
/// non-blocking; effects appear in [`Controller::drain_outputs`].
#[derive(Debug)]
pub struct Controller {
    config: ControllerConfig,
    scan: ScanState,
    links: HashMap<BdAddr, LinkEntry>,
    alloc: HandleAllocator,
    outputs: VecDeque<ControllerOutput>,
    rng: StdRng,
    ssp_enabled: bool,
    tracer: Tracer,
    stats: ControllerStats,
    /// Virtual time of the entry point currently executing; stamps trace
    /// events emitted from helpers that have no `now` parameter.
    now: Instant,
    /// Open `lmp_auth` spans per peer: one per authentication/pairing
    /// procedure, from the initiating PDU or host command to the
    /// success/failure/timeout edge. Populated only while tracing.
    auth_spans: HashMap<BdAddr, SpanId>,
}

impl Controller {
    /// Creates a controller with the given configuration and RNG seed.
    pub fn new(config: ControllerConfig, seed: u64) -> Self {
        Controller {
            config,
            scan: ScanState::default(),
            links: HashMap::new(),
            alloc: HandleAllocator::new(),
            outputs: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
            ssp_enabled: true,
            tracer: Tracer::disabled(),
            stats: ControllerStats::default(),
            now: Instant::EPOCH,
            auth_spans: HashMap::new(),
        }
    }

    /// Opens the peer's `lmp_auth` span if one is not already running
    /// (authentication can escalate into pairing without a new span).
    fn open_auth_span(&mut self, peer: BdAddr) {
        if self.tracer.enabled() && !self.auth_spans.contains_key(&peer) {
            let span = self
                .tracer
                .open_span(self.now, "lmp_auth", &peer.to_string());
            self.auth_spans.insert(peer, span);
        }
    }

    /// Closes the peer's `lmp_auth` span with an outcome, if one is open.
    fn close_auth_span(&mut self, peer: BdAddr, status: &'static str) {
        if let Some(span) = self.auth_spans.remove(&peer) {
            self.tracer.close_span(self.now, span, status);
        }
    }

    /// Routes this controller's trace events (LMP send/recv, scan
    /// transitions, LMP timeouts) to the given tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Snapshot of the always-on LMP counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// The controller's current (claimed) address.
    pub fn bd_addr(&self) -> BdAddr {
        self.config.bd_addr
    }

    /// Overwrites the claimed address — the spoofing primitive
    /// (`/persist/bdaddr.txt` on the paper's testbed).
    pub fn set_bd_addr(&mut self, addr: BdAddr) {
        self.config.bd_addr = addr;
    }

    /// The advertised class of device.
    pub fn cod(&self) -> blap_types::ClassOfDevice {
        self.config.cod
    }

    /// The advertised device name.
    pub fn name(&self) -> &blap_types::DeviceName {
        &self.config.name
    }

    /// Current scan state (read by the simulation to build listener lists).
    pub fn scan_state(&self) -> &ScanState {
        &self.scan
    }

    /// Established (accepted) links, keyed by peer claimed address.
    pub fn links(&self) -> impl Iterator<Item = &LinkEntry> {
        self.links.values()
    }

    /// Looks up a link by peer address.
    pub fn link_to(&self, peer: BdAddr) -> Option<&LinkEntry> {
        self.links.get(&peer)
    }

    /// Drains everything the controller produced since the last call.
    pub fn drain_outputs(&mut self) -> Vec<ControllerOutput> {
        self.outputs.drain(..).collect()
    }

    fn emit(&mut self, output: ControllerOutput) {
        self.outputs.push_back(output);
    }

    fn emit_event(&mut self, event: Event) {
        self.emit(ControllerOutput::Event(event));
    }

    fn send_lmp(&mut self, peer: BdAddr, pdu: LmpPdu) {
        self.stats.lmp_sent += 1;
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::LmpSend {
                time: self.now,
                peer,
                pdu: pdu.name(),
            });
        }
        self.emit(ControllerOutput::Lmp { peer, pdu });
    }

    fn command_status(&mut self, status: StatusCode, opcode: Opcode) {
        self.emit_event(Event::CommandStatus {
            status,
            num_packets: 1,
            opcode,
        });
    }

    fn command_complete(&mut self, opcode: Opcode, status: StatusCode) {
        self.emit_event(Event::CommandComplete {
            num_packets: 1,
            opcode,
            return_params: vec![status as u8],
        });
    }

    fn start_lmp_timer(&mut self, peer: BdAddr) {
        self.emit(ControllerOutput::StartTimer {
            timer: ControllerTimer::LmpResponse { peer },
            after: timing::LMP_RESPONSE_TIMEOUT,
        });
    }

    fn cancel_lmp_timer(&mut self, peer: BdAddr) {
        self.emit(ControllerOutput::CancelTimer {
            timer: ControllerTimer::LmpResponse { peer },
        });
    }

    fn peer_by_handle(&self, handle: ConnectionHandle) -> Option<BdAddr> {
        self.links
            .values()
            .find(|l| l.handle == handle)
            .map(|l| l.peer)
    }

    // --- HCI command processing ---------------------------------------

    /// Processes one HCI command from the host.
    pub fn on_command(&mut self, now: Instant, cmd: Command) {
        self.now = now;
        match cmd {
            Command::Inquiry { inquiry_length, .. } => {
                self.command_status(StatusCode::Success, Opcode::INQUIRY);
                self.emit(ControllerOutput::StartInquiry {
                    length: inquiry_length,
                });
            }
            Command::InquiryCancel => {
                self.command_complete(Opcode::INQUIRY_CANCEL, StatusCode::Success);
            }
            Command::CreateConnection { bd_addr, .. } => {
                if self.links.contains_key(&bd_addr) {
                    self.command_status(
                        StatusCode::ConnectionAlreadyExists,
                        Opcode::CREATE_CONNECTION,
                    );
                    return;
                }
                self.command_status(StatusCode::Success, Opcode::CREATE_CONNECTION);
                let handle = self.allocate_handle();
                self.links
                    .insert(bd_addr, LinkEntry::new(handle, bd_addr, Role::Initiator));
                self.emit(ControllerOutput::StartPage { target: bd_addr });
            }
            Command::Disconnect { handle, reason } => {
                self.command_status(StatusCode::Success, Opcode::DISCONNECT);
                if let Some(peer) = self.peer_by_handle(handle) {
                    self.links.remove(&peer);
                    self.send_lmp(peer, LmpPdu::Detach { reason });
                    self.emit_event(Event::DisconnectionComplete {
                        status: StatusCode::Success,
                        handle,
                        reason,
                    });
                } else {
                    self.emit_event(Event::DisconnectionComplete {
                        status: StatusCode::UnknownConnection,
                        handle,
                        reason,
                    });
                }
            }
            Command::AcceptConnectionRequest { bd_addr, .. } => {
                self.command_status(StatusCode::Success, Opcode::ACCEPT_CONNECTION_REQUEST);
                if let Some(link) = self.links.get_mut(&bd_addr) {
                    link.awaiting_accept = false;
                    let handle = link.handle;
                    self.send_lmp(bd_addr, LmpPdu::ConnectionAccepted);
                    self.emit_event(Event::ConnectionComplete {
                        status: StatusCode::Success,
                        handle,
                        bd_addr,
                        encryption_enabled: false,
                    });
                }
            }
            Command::RejectConnectionRequest { bd_addr, reason } => {
                self.command_status(StatusCode::Success, Opcode::REJECT_CONNECTION_REQUEST);
                if self.links.remove(&bd_addr).is_some() {
                    self.send_lmp(bd_addr, LmpPdu::ConnectionRejected { reason });
                }
            }
            Command::LinkKeyRequestReply { bd_addr, link_key } => {
                self.command_complete(Opcode::LINK_KEY_REQUEST_REPLY, StatusCode::Success);
                self.on_host_key(bd_addr, Some(link_key));
            }
            Command::LinkKeyRequestNegativeReply { bd_addr } => {
                self.command_complete(Opcode::LINK_KEY_REQUEST_NEGATIVE_REPLY, StatusCode::Success);
                self.on_host_key(bd_addr, None);
            }
            Command::PinCodeRequestReply { bd_addr, pin } => {
                self.command_complete(Opcode::PIN_CODE_REQUEST_REPLY, StatusCode::Success);
                self.on_host_pin(bd_addr, &pin);
            }
            Command::PinCodeRequestNegativeReply { bd_addr } => {
                self.command_complete(Opcode::PIN_CODE_REQUEST_NEGATIVE_REPLY, StatusCode::Success);
                if let Some(link) = self.links.get_mut(&bd_addr) {
                    link.legacy = Default::default();
                }
                self.close_auth_span(bd_addr, "rejected");
                self.send_lmp(
                    bd_addr,
                    LmpPdu::AuthReject {
                        reason: StatusCode::PairingNotAllowed,
                    },
                );
            }
            Command::AuthenticationRequested { handle } => match self.peer_by_handle(handle) {
                Some(peer) => {
                    self.command_status(StatusCode::Success, Opcode::AUTHENTICATION_REQUESTED);
                    self.open_auth_span(peer);
                    if let Some(link) = self.links.get_mut(&peer) {
                        link.auth = AuthPhase::AwaitHostKey { verifier: true };
                    }
                    self.start_lmp_timer(peer);
                    self.emit_event(Event::LinkKeyRequest { bd_addr: peer });
                }
                None => {
                    self.command_status(
                        StatusCode::UnknownConnection,
                        Opcode::AUTHENTICATION_REQUESTED,
                    );
                }
            },
            Command::SetConnectionEncryption { handle, enable } => {
                self.command_status(StatusCode::Success, Opcode::SET_CONNECTION_ENCRYPTION);
                if let Some(peer) = self.peer_by_handle(handle) {
                    self.apply_encryption(peer, enable);
                    self.send_lmp(peer, LmpPdu::EncryptionMode { enable });
                    self.emit_event(Event::EncryptionChange {
                        status: StatusCode::Success,
                        handle,
                        enabled: enable,
                    });
                } else {
                    self.emit_event(Event::EncryptionChange {
                        status: StatusCode::UnknownConnection,
                        handle,
                        enabled: false,
                    });
                }
            }
            Command::IoCapabilityRequestReply {
                bd_addr,
                io_capability,
                auth_requirements,
                ..
            } => {
                self.command_complete(Opcode::IO_CAPABILITY_REQUEST_REPLY, StatusCode::Success);
                self.on_host_io_cap(bd_addr, io_capability, auth_requirements);
            }
            Command::UserConfirmationRequestReply { bd_addr } => {
                self.command_complete(Opcode::USER_CONFIRMATION_REQUEST_REPLY, StatusCode::Success);
                if let Some(link) = self.links.get_mut(&bd_addr) {
                    link.ssp.local_confirmed = true;
                }
                self.send_lmp(bd_addr, LmpPdu::NumericAccepted);
                self.maybe_send_dhkey_check(bd_addr);
            }
            Command::UserConfirmationRequestNegativeReply { bd_addr } => {
                self.command_complete(
                    Opcode::USER_CONFIRMATION_REQUEST_NEGATIVE_REPLY,
                    StatusCode::Success,
                );
                self.send_lmp(bd_addr, LmpPdu::NumericRejected);
                self.abort_pairing(bd_addr, StatusCode::AuthenticationFailure);
            }
            Command::Reset => {
                self.links.clear();
                self.scan = ScanState::default();
                self.command_complete(Opcode::RESET, StatusCode::Success);
            }
            Command::WriteLocalName { name } => {
                self.config.name = name;
                self.command_complete(Opcode::WRITE_LOCAL_NAME, StatusCode::Success);
            }
            Command::WriteScanEnable {
                inquiry_scan,
                page_scan,
            } => {
                self.scan.apply_scan_enable(inquiry_scan, page_scan);
                if self.tracer.enabled() {
                    self.tracer.emit(TraceEvent::ScanTransition {
                        time: self.now,
                        page_scan: self.scan.page_scan,
                        inquiry_scan: self.scan.inquiry_scan,
                    });
                }
                self.command_complete(Opcode::WRITE_SCAN_ENABLE, StatusCode::Success);
            }
            Command::WriteClassOfDevice { cod } => {
                self.config.cod = cod;
                self.command_complete(Opcode::WRITE_CLASS_OF_DEVICE, StatusCode::Success);
            }
            Command::WriteSimplePairingMode { enabled } => {
                self.ssp_enabled = enabled;
                self.command_complete(Opcode::WRITE_SIMPLE_PAIRING_MODE, StatusCode::Success);
            }
        }
    }

    fn allocate_handle(&mut self) -> ConnectionHandle {
        let in_use: Vec<ConnectionHandle> = self.links.values().map(|l| l.handle).collect();
        self.alloc.allocate(&in_use)
    }

    // --- baseband callbacks --------------------------------------------

    /// A page addressed to our claimed BDADDR arrived and we won the
    /// response race (the simulation already arbitrated).
    pub fn on_incoming_page(&mut self, now: Instant, from: BdAddr, cod: blap_types::ClassOfDevice) {
        self.now = now;
        if !self.scan.page_scan {
            return; // not connectable: the page should never have reached us
        }
        let handle = self.allocate_handle();
        self.links
            .insert(from, LinkEntry::new(handle, from, Role::Responder));
        self.emit_event(Event::ConnectionRequest {
            bd_addr: from,
            cod,
            link_type: 0x01,
        });
    }

    /// The page we initiated concluded without any responder.
    pub fn on_page_result(&mut self, now: Instant, target: BdAddr, outcome: PageOutcome) {
        self.now = now;
        match outcome {
            PageOutcome::TimedOut => {
                self.links.remove(&target);
                self.emit_event(Event::ConnectionComplete {
                    status: StatusCode::PageTimeout,
                    handle: ConnectionHandle::new(0),
                    bd_addr: target,
                    encryption_enabled: false,
                });
            }
        }
    }

    /// One inquiry response arrived.
    pub fn on_inquiry_response(
        &mut self,
        _now: Instant,
        bd_addr: BdAddr,
        cod: blap_types::ClassOfDevice,
    ) {
        self.emit_event(Event::InquiryResult { bd_addr, cod });
    }

    /// The inquiry window closed.
    pub fn on_inquiry_complete(&mut self, _now: Instant) {
        self.emit_event(Event::InquiryComplete {
            status: StatusCode::Success,
        });
    }

    /// A timer armed earlier fired.
    pub fn on_timer(&mut self, now: Instant, timer: ControllerTimer) {
        self.now = now;
        match timer {
            ControllerTimer::LmpResponse { peer } => {
                let Some(link) = self.links.get(&peer) else {
                    return; // link already gone
                };
                let pending_auth = !matches!(link.auth, AuthPhase::Idle | AuthPhase::Complete);
                let pending_ssp = !matches!(link.ssp.phase, SspPhase::Idle | SspPhase::Complete);
                if !(pending_auth || pending_ssp) {
                    return; // procedure finished before the timer fired
                }
                self.stats.lmp_response_timeouts += 1;
                if self.tracer.enabled() {
                    self.tracer.emit(TraceEvent::LmpTimeout { time: now, peer });
                }
                let handle = link.handle;
                let was_verifier = matches!(
                    link.auth,
                    AuthPhase::AwaitHostKey { verifier: true } | AuthPhase::AwaitResponse { .. }
                );
                self.close_auth_span(peer, "timeout");
                self.links.remove(&peer);
                self.send_lmp(
                    peer,
                    LmpPdu::Detach {
                        reason: StatusCode::LmpResponseTimeout,
                    },
                );
                if was_verifier {
                    // The host learns the procedure ended, but crucially the
                    // status is a timeout, not an authentication failure —
                    // so no key deletion (§IV-C of the paper).
                    self.emit_event(Event::AuthenticationComplete {
                        status: StatusCode::LmpResponseTimeout,
                        handle,
                    });
                }
                self.emit_event(Event::DisconnectionComplete {
                    status: StatusCode::Success,
                    handle,
                    reason: StatusCode::LmpResponseTimeout,
                });
            }
        }
    }

    // --- host key / io-cap plumbing --------------------------------------

    fn on_host_key(&mut self, peer: BdAddr, key: Option<LinkKey>) {
        let Some(link) = self.links.get_mut(&peer) else {
            return;
        };
        match (&link.auth.clone(), key) {
            (AuthPhase::AwaitHostKey { verifier: true }, Some(key))
            | (AuthPhase::Idle, Some(key)) => {
                // Verifier has the key: challenge the prover.
                link.session_key = Some(key);
                let mut rand = [0u8; 16];
                self.rng.fill(&mut rand);
                let zero = [0u8; 16];
                let (expected_sres, aco) = ssp::secure_authentication_response(
                    &key,
                    self.config.bd_addr,
                    peer,
                    &rand,
                    &zero,
                );
                let link = self.links.get_mut(&peer).expect("link present");
                link.auth = AuthPhase::AwaitResponse {
                    rand,
                    expected_sres,
                };
                link.aco = Some(aco);
                self.start_lmp_timer(peer);
                self.send_lmp(peer, LmpPdu::AuthChallenge { rand });
            }
            (AuthPhase::AwaitHostKey { verifier: true }, None) => {
                link.auth = AuthPhase::Idle;
                if self.ssp_enabled {
                    // Not bonded: fall into Secure Simple Pairing as
                    // initiator.
                    link.ssp.initiator = true;
                    link.ssp.phase = SspPhase::AwaitHostIoCap;
                    self.emit_event(Event::IoCapabilityRequest { bd_addr: peer });
                } else {
                    // Pre-2.1 stack: legacy PIN pairing (E22/E21).
                    let mut in_rand = [0u8; 16];
                    self.rng.fill(&mut in_rand);
                    let link = self.links.get_mut(&peer).expect("link present");
                    link.legacy.active = true;
                    link.legacy.initiator = true;
                    link.legacy.in_rand = Some(in_rand);
                    self.start_lmp_timer(peer);
                    self.send_lmp(peer, LmpPdu::LegacyInRand { rand: in_rand });
                    self.emit_event(Event::PinCodeRequest { bd_addr: peer });
                }
            }
            (AuthPhase::AwaitHostKeyForChallenge { rand }, Some(key)) => {
                // Prover answers the outstanding challenge.
                link.session_key = Some(key);
                let rand = *rand;
                let zero = [0u8; 16];
                let (sres, aco) = ssp::secure_authentication_response(
                    &key,
                    peer, // verifier's address first
                    self.config.bd_addr,
                    &rand,
                    &zero,
                );
                let link = self.links.get_mut(&peer).expect("link present");
                link.auth = AuthPhase::Complete;
                link.aco = Some(aco);
                self.send_lmp(peer, LmpPdu::AuthResponse { sres });
                self.close_auth_span(peer, "ok");
            }
            (AuthPhase::AwaitHostKeyForChallenge { .. }, None) => {
                link.auth = AuthPhase::Idle;
                self.close_auth_span(peer, "rejected");
                self.send_lmp(
                    peer,
                    LmpPdu::AuthReject {
                        reason: StatusCode::PinOrKeyMissing,
                    },
                );
            }
            _ => {}
        }
    }

    fn on_host_io_cap(&mut self, peer: BdAddr, io: IoCapability, auth_req: u8) {
        let Some(link) = self.links.get_mut(&peer) else {
            return;
        };
        if link.ssp.phase != SspPhase::AwaitHostIoCap {
            return;
        }
        link.ssp.own_io = Some(io);
        link.ssp.own_auth_req = auth_req;
        if link.ssp.initiator {
            link.ssp.phase = SspPhase::AwaitIoCapResponse;
            self.start_lmp_timer(peer);
            self.send_lmp(
                peer,
                LmpPdu::IoCapRequest {
                    io_capability: io,
                    auth_requirements: auth_req,
                },
            );
        } else {
            // Responder: reveal the initiator's caps to the host, answer the
            // LMP request, then wait for the initiator's public key.
            let peer_io = link.ssp.peer_io.expect("responder knows peer io");
            let peer_auth_req = link.ssp.peer_auth_req;
            link.ssp.phase = SspPhase::AwaitPublicKey;
            self.emit_event(Event::IoCapabilityResponse {
                bd_addr: peer,
                io_capability: peer_io,
                oob_data_present: false,
                auth_requirements: peer_auth_req,
            });
            self.start_lmp_timer(peer);
            self.send_lmp(
                peer,
                LmpPdu::IoCapResponse {
                    io_capability: io,
                    auth_requirements: auth_req,
                },
            );
        }
    }

    // --- LMP processing ---------------------------------------------------

    /// Processes one LMP PDU from the peer on the link claiming `from`.
    pub fn on_lmp(&mut self, now: Instant, from: BdAddr, pdu: LmpPdu) {
        self.now = now;
        self.stats.lmp_received += 1;
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::LmpRecv {
                time: now,
                peer: from,
                pdu: pdu.name(),
            });
        }
        // Wall-clock attribution: the deterministic lmp_auth *span* runs
        // across many scheduler callbacks, so the stack-shaped profiling
        // scope instead covers each auth/pairing PDU's processing.
        let _prof = match &pdu {
            LmpPdu::ConnectionAccepted
            | LmpPdu::ConnectionRejected { .. }
            | LmpPdu::Detach { .. }
            | LmpPdu::KeepAlive => None,
            _ => Some(prof::scope("lmp_auth")),
        };
        match pdu {
            LmpPdu::ConnectionAccepted => {
                if let Some(link) = self.links.get_mut(&from) {
                    link.awaiting_accept = false;
                    let handle = link.handle;
                    self.emit_event(Event::ConnectionComplete {
                        status: StatusCode::Success,
                        handle,
                        bd_addr: from,
                        encryption_enabled: false,
                    });
                }
            }
            LmpPdu::ConnectionRejected { reason } => {
                if self.links.remove(&from).is_some() {
                    self.emit_event(Event::ConnectionComplete {
                        status: reason,
                        handle: ConnectionHandle::new(0),
                        bd_addr: from,
                        encryption_enabled: false,
                    });
                }
            }
            LmpPdu::AuthChallenge { rand } => {
                let Some(link) = self.links.get_mut(&from) else {
                    return;
                };
                if let Some(key) = link.session_key {
                    let zero = [0u8; 16];
                    let (sres, aco) = ssp::secure_authentication_response(
                        &key,
                        from,
                        self.config.bd_addr,
                        &rand,
                        &zero,
                    );
                    link.auth = AuthPhase::Complete;
                    link.aco = Some(aco);
                    self.send_lmp(from, LmpPdu::AuthResponse { sres });
                } else {
                    link.auth = AuthPhase::AwaitHostKeyForChallenge { rand };
                    self.open_auth_span(from);
                    self.emit_event(Event::LinkKeyRequest { bd_addr: from });
                }
            }
            LmpPdu::AuthResponse { sres } => {
                let Some(link) = self.links.get_mut(&from) else {
                    return;
                };
                if let AuthPhase::AwaitResponse { expected_sres, .. } = &link.auth {
                    let handle = link.handle;
                    if sres == *expected_sres {
                        link.auth = AuthPhase::Complete;
                        self.cancel_lmp_timer(from);
                        self.close_auth_span(from, "ok");
                        self.emit_event(Event::AuthenticationComplete {
                            status: StatusCode::Success,
                            handle,
                        });
                    } else {
                        self.links.remove(&from);
                        self.cancel_lmp_timer(from);
                        self.close_auth_span(from, "failed");
                        self.send_lmp(
                            from,
                            LmpPdu::Detach {
                                reason: StatusCode::AuthenticationFailure,
                            },
                        );
                        self.emit_event(Event::AuthenticationComplete {
                            status: StatusCode::AuthenticationFailure,
                            handle,
                        });
                        self.emit_event(Event::DisconnectionComplete {
                            status: StatusCode::Success,
                            handle,
                            reason: StatusCode::AuthenticationFailure,
                        });
                    }
                }
            }
            LmpPdu::AuthReject { reason } => {
                let Some(link) = self.links.get_mut(&from) else {
                    return;
                };
                let handle = link.handle;
                link.auth = AuthPhase::Idle;
                self.cancel_lmp_timer(from);
                self.close_auth_span(from, "rejected");
                self.emit_event(Event::AuthenticationComplete {
                    status: reason,
                    handle,
                });
            }
            LmpPdu::IoCapRequest {
                io_capability,
                auth_requirements,
            } => {
                let Some(link) = self.links.get_mut(&from) else {
                    return;
                };
                link.ssp.initiator = false;
                link.ssp.peer_io = Some(io_capability);
                link.ssp.peer_auth_req = auth_requirements;
                link.ssp.phase = SspPhase::AwaitHostIoCap;
                self.open_auth_span(from);
                self.emit_event(Event::IoCapabilityRequest { bd_addr: from });
            }
            LmpPdu::IoCapResponse {
                io_capability,
                auth_requirements,
            } => {
                let Some(link) = self.links.get_mut(&from) else {
                    return;
                };
                if link.ssp.phase != SspPhase::AwaitIoCapResponse {
                    return;
                }
                link.ssp.peer_io = Some(io_capability);
                link.ssp.peer_auth_req = auth_requirements;
                link.ssp.phase = SspPhase::AwaitPublicKey;
                self.emit_event(Event::IoCapabilityResponse {
                    bd_addr: from,
                    io_capability,
                    oob_data_present: false,
                    auth_requirements,
                });
                // Generate and send our public key.
                let keypair = self.generate_keypair();
                let (x, y) = public_key_bytes(&keypair);
                if let Some(link) = self.links.get_mut(&from) {
                    link.ssp.keypair = Some(keypair);
                }
                self.start_lmp_timer(from);
                self.send_lmp(from, LmpPdu::PublicKey { x, y });
            }
            LmpPdu::PublicKey { x, y } => self.on_peer_public_key(now, from, x, y),
            LmpPdu::Commitment { value } => {
                let Some(link) = self.links.get_mut(&from) else {
                    return;
                };
                if link.ssp.phase != SspPhase::AwaitCommitment {
                    return;
                }
                link.ssp.peer_commitment = Some(value);
                // Initiator now discloses its nonce.
                let nonce = self.generate_nonce();
                if let Some(link) = self.links.get_mut(&from) {
                    link.ssp.own_nonce = Some(nonce);
                    link.ssp.phase = SspPhase::AwaitNonce;
                }
                self.send_lmp(from, LmpPdu::Nonce { value: nonce });
            }
            LmpPdu::Nonce { value } => self.on_peer_nonce(from, value),
            LmpPdu::NumericAccepted => {
                if let Some(link) = self.links.get_mut(&from) {
                    link.ssp.peer_confirmed = true;
                }
                self.maybe_send_dhkey_check(from);
            }
            LmpPdu::NumericRejected => {
                self.abort_pairing(from, StatusCode::AuthenticationFailure);
            }
            LmpPdu::DhkeyCheck { value } => self.on_dhkey_check(from, value),
            LmpPdu::LegacyInRand { rand } => {
                let Some(link) = self.links.get_mut(&from) else {
                    return;
                };
                link.legacy.active = true;
                link.legacy.initiator = false;
                link.legacy.in_rand = Some(rand);
                self.open_auth_span(from);
                self.emit_event(Event::PinCodeRequest { bd_addr: from });
            }
            LmpPdu::LegacyCombKey { value } => {
                let Some(link) = self.links.get_mut(&from) else {
                    return;
                };
                if !link.legacy.active {
                    return;
                }
                link.legacy.peer_comb = Some(value);
                self.maybe_finish_legacy(from);
            }
            LmpPdu::EncryptionMode { enable } => {
                if let Some(link) = self.links.get(&from) {
                    let handle = link.handle;
                    self.apply_encryption(from, enable);
                    self.emit_event(Event::EncryptionChange {
                        status: StatusCode::Success,
                        handle,
                        enabled: enable,
                    });
                }
            }
            LmpPdu::Detach { reason } => {
                if let Some(link) = self.links.remove(&from) {
                    self.cancel_lmp_timer(from);
                    self.close_auth_span(from, "detached");
                    self.emit_event(Event::DisconnectionComplete {
                        status: StatusCode::Success,
                        handle: link.handle,
                        reason,
                    });
                }
            }
            LmpPdu::KeepAlive => {
                // Activity bookkeeping happens in the simulation layer.
            }
        }
    }

    /// The host supplied a PIN for a legacy pairing: derive the
    /// initialization key and send our masked combination-key contribution.
    fn on_host_pin(&mut self, peer: BdAddr, pin: &[u8]) {
        let own_addr = self.config.bd_addr;
        let Some(link) = self.links.get_mut(&peer) else {
            return;
        };
        if !link.legacy.active || pin.is_empty() || pin.len() > 16 {
            return;
        }
        let Some(in_rand) = link.legacy.in_rand else {
            return;
        };
        // The claimant of E22 is the pairing responder's address.
        let claimant = if link.legacy.initiator {
            peer
        } else {
            own_addr
        };
        let k_init = e1::e22(&in_rand, pin, claimant);
        let mut lk_rand = [0u8; 16];
        self.rng.fill(&mut lk_rand);
        let masked = xor16(&lk_rand, &k_init.to_bytes());
        let link = self.links.get_mut(&peer).expect("link present");
        link.legacy.k_init = Some(k_init);
        link.legacy.own_lk_rand = Some(lk_rand);
        self.send_lmp(peer, LmpPdu::LegacyCombKey { value: masked });
        self.maybe_finish_legacy(peer);
    }

    /// Completes a legacy pairing once both contributions are in: the
    /// combination key is `E21(LK_RAND_a, addr_a) XOR E21(LK_RAND_b,
    /// addr_b)` with initiator-first ordering.
    fn maybe_finish_legacy(&mut self, peer: BdAddr) {
        let own_addr = self.config.bd_addr;
        let Some(link) = self.links.get_mut(&peer) else {
            return;
        };
        let (Some(k_init), Some(own_lk_rand), Some(peer_comb)) = (
            link.legacy.k_init,
            link.legacy.own_lk_rand,
            link.legacy.peer_comb,
        ) else {
            return;
        };
        let peer_lk_rand = xor16(&peer_comb, &k_init.to_bytes());
        let initiator = link.legacy.initiator;
        let (init_rand, init_addr, resp_rand, resp_addr) = if initiator {
            (own_lk_rand, own_addr, peer_lk_rand, peer)
        } else {
            (peer_lk_rand, peer, own_lk_rand, own_addr)
        };
        let ka = e1::e21(&init_rand, init_addr);
        let kb = e1::e21(&resp_rand, resp_addr);
        let key = LinkKey::new(xor16(&ka.to_bytes(), &kb.to_bytes()));
        link.session_key = Some(key);
        link.legacy = Default::default();
        self.emit_event(Event::LinkKeyNotification {
            bd_addr: peer,
            link_key: key,
            key_type: LinkKeyType::Combination,
        });
        // Mutual authentication follows: the initiator challenges with the
        // brand-new key, which doubles as a derivation cross-check (a PIN
        // mismatch surfaces as an authentication failure here).
        if initiator {
            self.on_host_key(peer, Some(key));
        } else {
            self.close_auth_span(peer, "ok");
        }
    }

    /// Derives (or clears) the session encryption key for a link via `h3`
    /// over the link key, the central/peripheral addresses and the ACO of
    /// the last authentication (zeros when pairing completed without a
    /// separate authentication round).
    fn apply_encryption(&mut self, peer: BdAddr, enable: bool) {
        let own_addr = self.config.bd_addr;
        let Some(link) = self.links.get_mut(&peer) else {
            return;
        };
        link.encrypted = enable;
        if !enable {
            link.encryption_key = None;
            return;
        }
        let Some(key) = link.session_key else {
            return; // encryption without a key: nothing to derive
        };
        let (central, peripheral) = match link.role {
            Role::Initiator => (own_addr, peer),
            Role::Responder => (peer, own_addr),
        };
        let mut aco_ext = [0u8; 8];
        if let Some(aco) = link.aco {
            aco_ext.copy_from_slice(&aco);
        }
        link.encryption_key = Some(ssp::h3(&key, central, peripheral, &aco_ext));
    }

    /// The session encryption key in force on the link to `peer`, if
    /// encryption is enabled. Read by the simulation's air-sniffer tap to
    /// produce genuine over-the-air ciphertext.
    pub fn encryption_key(&self, peer: BdAddr) -> Option<[u8; 16]> {
        self.links
            .get(&peer)
            .filter(|l| l.encrypted)
            .and_then(|l| l.encryption_key)
    }

    fn generate_keypair(&mut self) -> KeyPair {
        loop {
            let mut bytes = [0u8; 32];
            self.rng.fill(&mut bytes);
            if let Ok(kp) = KeyPair::from_rng_bytes(bytes) {
                return kp;
            }
        }
    }

    fn generate_nonce(&mut self) -> [u8; 16] {
        let mut nonce = [0u8; 16];
        self.rng.fill(&mut nonce);
        nonce
    }

    fn on_peer_public_key(&mut self, _now: Instant, from: BdAddr, x: [u8; 32], y: [u8; 32]) {
        let Some(link) = self.links.get_mut(&from) else {
            return;
        };
        if link.ssp.phase != SspPhase::AwaitPublicKey {
            return;
        }
        // Invalid-curve defence: validate before using.
        let point = Point::Affine {
            x: U256::from_be_bytes(x),
            y: U256::from_be_bytes(y),
        };
        if !point.is_on_curve() {
            self.abort_pairing(from, StatusCode::AuthenticationFailure);
            return;
        }
        link.ssp.peer_pk_x = Some(x);
        link.ssp.peer_pk_y = Some(y);
        let initiator = link.ssp.initiator;

        if initiator {
            // We already sent ours; compute DHKey and wait for commitment.
            let keypair = link.ssp.keypair.clone().expect("initiator has keypair");
            let dhkey = keypair
                .diffie_hellman(&point)
                .expect("validated public key");
            let link = self.links.get_mut(&from).expect("link present");
            link.ssp.dhkey = Some(dhkey);
            link.ssp.phase = SspPhase::AwaitCommitment;
        } else {
            // Responder: send our key, then commit to a fresh nonce.
            let keypair = self.generate_keypair();
            let dhkey = keypair
                .diffie_hellman(&point)
                .expect("validated public key");
            let (own_x, own_y) = public_key_bytes(&keypair);
            let nonce = self.generate_nonce();
            // Cb = f1(PKbx, PKax, Nb, 0) — responder key first, per spec.
            let commitment = ssp::f1(&own_x, &x, &nonce, 0);
            let link = self.links.get_mut(&from).expect("link present");
            link.ssp.keypair = Some(keypair);
            link.ssp.dhkey = Some(dhkey);
            link.ssp.own_nonce = Some(nonce);
            link.ssp.phase = SspPhase::AwaitNonce;
            self.send_lmp(from, LmpPdu::PublicKey { x: own_x, y: own_y });
            self.send_lmp(from, LmpPdu::Commitment { value: commitment });
        }
    }

    fn on_peer_nonce(&mut self, from: BdAddr, value: [u8; 16]) {
        let Some(link) = self.links.get_mut(&from) else {
            return;
        };
        if link.ssp.phase != SspPhase::AwaitNonce {
            return;
        }
        link.ssp.peer_nonce = Some(value);
        let initiator = link.ssp.initiator;

        if initiator {
            // Verify the responder's commitment now that Nb is known.
            let own_x = {
                let kp = link.ssp.keypair.as_ref().expect("keypair");
                public_key_bytes(kp).0
            };
            let peer_x = link.ssp.peer_pk_x.expect("peer pk");
            let expected = ssp::f1(&peer_x, &own_x, &value, 0);
            if link.ssp.peer_commitment != Some(expected) {
                self.abort_pairing(from, StatusCode::AuthenticationFailure);
                return;
            }
            self.enter_confirmation(from);
        } else {
            // Responder received Na; reply with Nb, then confirm.
            let own_nonce = link.ssp.own_nonce.expect("responder nonce");
            self.send_lmp(from, LmpPdu::Nonce { value: own_nonce });
            self.enter_confirmation(from);
        }
    }

    /// Computes the numeric value and asks the host for confirmation.
    ///
    /// The controller *always* raises `HCI_User_Confirmation_Request`; the
    /// host decides (per Fig 7 policy and spec generation) whether a human
    /// sees anything. That mirrors real stacks, where Just Works popups are
    /// host policy.
    fn enter_confirmation(&mut self, peer: BdAddr) {
        let Some(link) = self.links.get_mut(&peer) else {
            return;
        };
        link.ssp.phase = SspPhase::AwaitConfirmation;
        let own_x = public_key_bytes(link.ssp.keypair.as_ref().expect("keypair")).0;
        let peer_x = link.ssp.peer_pk_x.expect("peer pk");
        let own_nonce = link.ssp.own_nonce.expect("nonce");
        let peer_nonce = link.ssp.peer_nonce.expect("peer nonce");
        // g(PKax, PKbx, Na, Nb) with initiator-first ordering on both sides.
        let numeric = if link.ssp.initiator {
            ssp::g(&own_x, &peer_x, &own_nonce, &peer_nonce)
        } else {
            ssp::g(&peer_x, &own_x, &peer_nonce, &own_nonce)
        };
        self.start_lmp_timer(peer);
        self.emit_event(Event::UserConfirmationRequest {
            bd_addr: peer,
            numeric_value: numeric,
        });
    }

    fn maybe_send_dhkey_check(&mut self, peer: BdAddr) {
        let Some(link) = self.links.get_mut(&peer) else {
            return;
        };
        if link.ssp.phase != SspPhase::AwaitConfirmation {
            return;
        }
        if !(link.ssp.local_confirmed && link.ssp.peer_confirmed) {
            return;
        }
        link.ssp.phase = SspPhase::AwaitDhkeyCheck;
        if link.ssp.initiator {
            let check = self.compute_own_dhkey_check(peer);
            if let Some(link) = self.links.get_mut(&peer) {
                link.ssp.check_sent = true;
            }
            self.send_lmp(peer, LmpPdu::DhkeyCheck { value: check });
        }
        // The responder waits for the initiator's check first.
    }

    fn compute_own_dhkey_check(&mut self, peer: BdAddr) -> [u8; 16] {
        let link = self.links.get(&peer).expect("link present");
        let dhkey = link.ssp.dhkey.expect("dhkey");
        let own_nonce = link.ssp.own_nonce.expect("nonce");
        let peer_nonce = link.ssp.peer_nonce.expect("peer nonce");
        let io = link.ssp.own_io.expect("own io");
        let io_cap = [io as u8, 0, link.ssp.own_auth_req];
        let zero = [0u8; 16];
        ssp::f3(
            &dhkey,
            &own_nonce,
            &peer_nonce,
            &zero,
            io_cap,
            self.config.bd_addr,
            peer,
        )
    }

    fn expected_peer_dhkey_check(&self, peer: BdAddr) -> [u8; 16] {
        let link = self.links.get(&peer).expect("link present");
        let dhkey = link.ssp.dhkey.expect("dhkey");
        let own_nonce = link.ssp.own_nonce.expect("nonce");
        let peer_nonce = link.ssp.peer_nonce.expect("peer nonce");
        let io = link.ssp.peer_io.expect("peer io");
        let io_cap = [io as u8, 0, link.ssp.peer_auth_req];
        let zero = [0u8; 16];
        ssp::f3(
            &dhkey,
            &peer_nonce,
            &own_nonce,
            &zero,
            io_cap,
            peer,
            self.config.bd_addr,
        )
    }

    fn on_dhkey_check(&mut self, from: BdAddr, value: [u8; 16]) {
        let Some(link) = self.links.get(&from) else {
            return;
        };
        if link.ssp.phase != SspPhase::AwaitDhkeyCheck {
            return;
        }
        if value != self.expected_peer_dhkey_check(from) {
            self.abort_pairing(from, StatusCode::AuthenticationFailure);
            return;
        }
        let link = self.links.get(&from).expect("link present");
        let initiator = link.ssp.initiator;
        if !initiator && !link.ssp.check_sent {
            // Responder verified the initiator's check; send our own back.
            let check = self.compute_own_dhkey_check(from);
            if let Some(link) = self.links.get_mut(&from) {
                link.ssp.check_sent = true;
            }
            self.send_lmp(from, LmpPdu::DhkeyCheck { value: check });
        }
        self.finish_pairing(from);
    }

    fn finish_pairing(&mut self, peer: BdAddr) {
        let Some(link) = self.links.get_mut(&peer) else {
            return;
        };
        let dhkey = link.ssp.dhkey.expect("dhkey");
        let own_nonce = link.ssp.own_nonce.expect("nonce");
        let peer_nonce = link.ssp.peer_nonce.expect("peer nonce");
        let initiator = link.ssp.initiator;
        let handle = link.handle;
        let own_io = link.ssp.own_io.expect("own io");
        let peer_io = link.ssp.peer_io.expect("peer io");

        // f2 over initiator-ordered transcript so both sides agree.
        let key = if initiator {
            ssp::f2(&dhkey, &own_nonce, &peer_nonce, self.config.bd_addr, peer)
        } else {
            ssp::f2(&dhkey, &peer_nonce, &own_nonce, peer, self.config.bd_addr)
        };
        let (init_io, resp_io) = if initiator {
            (own_io, peer_io)
        } else {
            (peer_io, own_io)
        };
        let model = AssociationModel::select(init_io, resp_io);
        let key_type = if model.resists_mitm() {
            LinkKeyType::AuthenticatedP256
        } else {
            LinkKeyType::UnauthenticatedP256
        };

        link.session_key = Some(key);
        link.ssp.phase = SspPhase::Complete;
        link.auth = AuthPhase::Complete;
        self.cancel_lmp_timer(peer);
        self.close_auth_span(peer, "ok");
        self.emit_event(Event::SimplePairingComplete {
            status: StatusCode::Success,
            bd_addr: peer,
        });
        self.emit_event(Event::LinkKeyNotification {
            bd_addr: peer,
            link_key: key,
            key_type,
        });
        if initiator {
            self.emit_event(Event::AuthenticationComplete {
                status: StatusCode::Success,
                handle,
            });
        }
    }

    fn abort_pairing(&mut self, peer: BdAddr, reason: StatusCode) {
        let Some(link) = self.links.get_mut(&peer) else {
            return;
        };
        let handle = link.handle;
        let initiator = link.ssp.initiator;
        let was_pairing = link.ssp.phase != SspPhase::Idle;
        link.ssp = Default::default();
        link.auth = AuthPhase::Idle;
        self.cancel_lmp_timer(peer);
        self.close_auth_span(peer, "failed");
        if was_pairing {
            self.emit_event(Event::SimplePairingComplete {
                status: reason,
                bd_addr: peer,
            });
            if initiator {
                self.emit_event(Event::AuthenticationComplete {
                    status: reason,
                    handle,
                });
            }
        }
    }
}

fn xor16(a: &[u8; 16], b: &[u8; 16]) -> [u8; 16] {
    core::array::from_fn(|i| a[i] ^ b[i])
}

fn public_key_bytes(keypair: &KeyPair) -> ([u8; 32], [u8; 32]) {
    match keypair.public() {
        Point::Affine { x, y } => (x.to_be_bytes(), y.to_be_bytes()),
        Point::Infinity => unreachable!("valid keypair public key is affine"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_types::ClassOfDevice;

    fn addr(tag: u8) -> BdAddr {
        BdAddr::new([0x10, 0x20, 0x30, 0x40, 0x50, tag])
    }

    fn controller(tag: u8) -> Controller {
        Controller::new(
            ControllerConfig::new(addr(tag), ClassOfDevice::SMARTPHONE, format!("dev-{tag}")),
            tag as u64,
        )
    }

    fn now() -> Instant {
        Instant::EPOCH
    }

    /// Routes outputs between two controllers and auto-answers host events
    /// with scripted replies, until both output queues drain.
    struct Pump {
        a: Controller,
        b: Controller,
        /// Host events seen per side.
        a_events: Vec<Event>,
        b_events: Vec<Event>,
        /// Scripted host behaviour.
        a_host: HostScript,
        b_host: HostScript,
    }

    #[derive(Clone)]
    struct HostScript {
        link_key: Option<LinkKey>,
        io_capability: IoCapability,
        accept_connections: bool,
        confirm_pairing: bool,
        /// The Fig 9 hook: silently drop HCI_Link_Key_Request.
        ignore_link_key_request: bool,
    }

    impl Default for HostScript {
        fn default() -> Self {
            HostScript {
                link_key: None,
                io_capability: IoCapability::DisplayYesNo,
                accept_connections: true,
                confirm_pairing: true,
                ignore_link_key_request: false,
            }
        }
    }

    impl Pump {
        fn new(a: Controller, b: Controller, a_host: HostScript, b_host: HostScript) -> Self {
            Pump {
                a,
                b,
                a_events: Vec::new(),
                b_events: Vec::new(),
                a_host,
                b_host,
            }
        }

        /// Establish a baseband link a→b, as the simulation would.
        fn connect(&mut self) {
            let target = self.b.bd_addr();
            self.a.on_command(
                now(),
                Command::CreateConnection {
                    bd_addr: target,
                    allow_role_switch: true,
                },
            );
            // Simulate the page reaching b.
            let from = self.a.bd_addr();
            let cod = self.a.cod();
            self.b.on_incoming_page(now(), from, cod);
            self.run();
        }

        fn run(&mut self) {
            for _ in 0..200 {
                let mut progressed = false;
                for side in [true, false] {
                    let outputs = if side {
                        self.a.drain_outputs()
                    } else {
                        self.b.drain_outputs()
                    };
                    for output in outputs {
                        progressed = true;
                        match output {
                            ControllerOutput::Event(ev) => {
                                if side {
                                    Self::host_react(&mut self.a, &self.a_host, &ev);
                                    self.a_events.push(ev);
                                } else {
                                    Self::host_react(&mut self.b, &self.b_host, &ev);
                                    self.b_events.push(ev);
                                }
                            }
                            ControllerOutput::Lmp { pdu, .. } => {
                                // Route to the other side; "from" is the
                                // sender's claimed address.
                                if side {
                                    let from = self.a.bd_addr();
                                    self.b.on_lmp(now(), from, pdu);
                                } else {
                                    let from = self.b.bd_addr();
                                    self.a.on_lmp(now(), from, pdu);
                                }
                            }
                            _ => {}
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
        }

        fn host_react(ctrl: &mut Controller, script: &HostScript, ev: &Event) {
            match ev {
                Event::ConnectionRequest { bd_addr, .. } if script.accept_connections => {
                    ctrl.on_command(
                        now(),
                        Command::AcceptConnectionRequest {
                            bd_addr: *bd_addr,
                            role_switch: false,
                        },
                    );
                }
                Event::LinkKeyRequest { bd_addr } => {
                    if script.ignore_link_key_request {
                        return;
                    }
                    match script.link_key {
                        Some(key) => ctrl.on_command(
                            now(),
                            Command::LinkKeyRequestReply {
                                bd_addr: *bd_addr,
                                link_key: key,
                            },
                        ),
                        None => ctrl.on_command(
                            now(),
                            Command::LinkKeyRequestNegativeReply { bd_addr: *bd_addr },
                        ),
                    }
                }
                Event::IoCapabilityRequest { bd_addr } => {
                    ctrl.on_command(
                        now(),
                        Command::IoCapabilityRequestReply {
                            bd_addr: *bd_addr,
                            io_capability: script.io_capability,
                            oob_data_present: false,
                            auth_requirements: 0x03,
                        },
                    );
                }
                Event::UserConfirmationRequest { bd_addr, .. } => {
                    if script.confirm_pairing {
                        ctrl.on_command(
                            now(),
                            Command::UserConfirmationRequestReply { bd_addr: *bd_addr },
                        );
                    } else {
                        ctrl.on_command(
                            now(),
                            Command::UserConfirmationRequestNegativeReply { bd_addr: *bd_addr },
                        );
                    }
                }
                _ => {}
            }
        }

        fn keys_delivered(&self) -> (Option<LinkKey>, Option<LinkKey>) {
            let find = |events: &[Event]| {
                events.iter().find_map(|e| match e {
                    Event::LinkKeyNotification { link_key, .. } => Some(*link_key),
                    _ => None,
                })
            };
            (find(&self.a_events), find(&self.b_events))
        }
    }

    #[test]
    fn scan_enable_round_trip() {
        let mut c = controller(1);
        c.on_command(
            now(),
            Command::WriteScanEnable {
                inquiry_scan: true,
                page_scan: false,
            },
        );
        assert!(c.scan_state().inquiry_scan);
        assert!(!c.scan_state().page_scan);
        let outs = c.drain_outputs();
        assert!(outs
            .iter()
            .any(|o| matches!(o, ControllerOutput::Event(Event::CommandComplete { .. }))));
    }

    #[test]
    fn create_connection_emits_status_and_page() {
        let mut c = controller(1);
        c.on_command(
            now(),
            Command::CreateConnection {
                bd_addr: addr(2),
                allow_role_switch: true,
            },
        );
        let outs = c.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            ControllerOutput::Event(Event::CommandStatus {
                status: StatusCode::Success,
                ..
            })
        )));
        assert!(outs
            .iter()
            .any(|o| matches!(o, ControllerOutput::StartPage { target } if *target == addr(2))));
    }

    #[test]
    fn duplicate_connection_rejected() {
        let mut c = controller(1);
        for _ in 0..2 {
            c.on_command(
                now(),
                Command::CreateConnection {
                    bd_addr: addr(2),
                    allow_role_switch: true,
                },
            );
        }
        let outs = c.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            ControllerOutput::Event(Event::CommandStatus {
                status: StatusCode::ConnectionAlreadyExists,
                ..
            })
        )));
    }

    #[test]
    fn page_timeout_reports_connection_complete_failure() {
        let mut c = controller(1);
        c.on_command(
            now(),
            Command::CreateConnection {
                bd_addr: addr(2),
                allow_role_switch: true,
            },
        );
        c.drain_outputs();
        c.on_page_result(now(), addr(2), PageOutcome::TimedOut);
        let outs = c.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            ControllerOutput::Event(Event::ConnectionComplete {
                status: StatusCode::PageTimeout,
                ..
            })
        )));
        assert_eq!(c.links().count(), 0);
    }

    #[test]
    fn full_ssp_pairing_derives_matching_keys() {
        let mut pump = Pump::new(
            controller(1),
            controller(2),
            HostScript::default(),
            HostScript::default(),
        );
        pump.connect();
        // Initiate pairing from a.
        let handle = pump.a.link_to(addr(2)).expect("link").handle;
        pump.a
            .on_command(now(), Command::AuthenticationRequested { handle });
        pump.run();

        let (key_a, key_b) = pump.keys_delivered();
        let key_a = key_a.expect("initiator derived a key");
        let key_b = key_b.expect("responder derived a key");
        assert_eq!(key_a, key_b, "both ends must agree on the link key");

        // Initiator saw Authentication_Complete(Success).
        assert!(pump.a_events.iter().any(|e| matches!(
            e,
            Event::AuthenticationComplete {
                status: StatusCode::Success,
                ..
            }
        )));
        // Both sides saw Simple_Pairing_Complete(Success).
        for events in [&pump.a_events, &pump.b_events] {
            assert!(events.iter().any(|e| matches!(
                e,
                Event::SimplePairingComplete {
                    status: StatusCode::Success,
                    ..
                }
            )));
        }
    }

    #[test]
    fn just_works_key_is_unauthenticated() {
        let b_host = HostScript {
            io_capability: IoCapability::NoInputNoOutput,
            ..Default::default()
        };
        let mut pump = Pump::new(controller(1), controller(2), HostScript::default(), b_host);
        pump.connect();
        let handle = pump.a.link_to(addr(2)).expect("link").handle;
        pump.a
            .on_command(now(), Command::AuthenticationRequested { handle });
        pump.run();

        let key_type = pump.a_events.iter().find_map(|e| match e {
            Event::LinkKeyNotification { key_type, .. } => Some(*key_type),
            _ => None,
        });
        assert_eq!(key_type, Some(LinkKeyType::UnauthenticatedP256));
    }

    #[test]
    fn bonded_authentication_succeeds_with_shared_key() {
        let shared: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse().unwrap();
        let a_host = HostScript {
            link_key: Some(shared),
            ..Default::default()
        };
        let b_host = HostScript {
            link_key: Some(shared),
            ..Default::default()
        };
        let mut pump = Pump::new(controller(1), controller(2), a_host, b_host);
        pump.connect();
        let handle = pump.a.link_to(addr(2)).expect("link").handle;
        pump.a
            .on_command(now(), Command::AuthenticationRequested { handle });
        pump.run();

        assert!(pump.a_events.iter().any(|e| matches!(
            e,
            Event::AuthenticationComplete {
                status: StatusCode::Success,
                ..
            }
        )));
        // No pairing happened: no key notifications.
        assert_eq!(pump.keys_delivered(), (None, None));
    }

    #[test]
    fn bonded_authentication_fails_with_mismatched_keys() {
        let a_host = HostScript {
            link_key: Some("11111111111111111111111111111111".parse().unwrap()),
            ..Default::default()
        };
        let b_host = HostScript {
            link_key: Some("22222222222222222222222222222222".parse().unwrap()),
            ..Default::default()
        };
        let mut pump = Pump::new(controller(1), controller(2), a_host, b_host);
        pump.connect();
        let handle = pump.a.link_to(addr(2)).expect("link").handle;
        pump.a
            .on_command(now(), Command::AuthenticationRequested { handle });
        pump.run();

        assert!(pump.a_events.iter().any(|e| matches!(
            e,
            Event::AuthenticationComplete {
                status: StatusCode::AuthenticationFailure,
                ..
            }
        )));
    }

    #[test]
    fn prover_ignoring_key_request_stalls_until_timeout() {
        // The Fig 9 attack: b (spoofing a bonded peer) never answers its
        // HCI_Link_Key_Request. The verifier's LMP timer then fires, ending
        // with a timeout — not an authentication failure.
        let shared: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse().unwrap();
        let a_host = HostScript {
            link_key: Some(shared),
            ..Default::default()
        };
        let b_host = HostScript {
            ignore_link_key_request: true,
            ..Default::default()
        };
        let mut pump = Pump::new(controller(1), controller(2), a_host, b_host);
        pump.connect();
        let handle = pump.a.link_to(addr(2)).expect("link").handle;
        pump.a
            .on_command(now(), Command::AuthenticationRequested { handle });
        pump.run();

        // Nothing completed yet — b is stalling.
        assert!(!pump
            .a_events
            .iter()
            .any(|e| matches!(e, Event::AuthenticationComplete { .. })));

        // Fire a's LMP response timer.
        pump.a.on_timer(
            now() + timing::LMP_RESPONSE_TIMEOUT,
            ControllerTimer::LmpResponse { peer: addr(2) },
        );
        pump.run();

        let status = pump.a_events.iter().find_map(|e| match e {
            Event::AuthenticationComplete { status, .. } => Some(*status),
            _ => None,
        });
        assert_eq!(status, Some(StatusCode::LmpResponseTimeout));
        assert!(
            !status.unwrap().invalidates_link_key(),
            "timeout must not wipe the victim's stored key"
        );
        // Link torn down on both sides.
        assert_eq!(pump.a.links().count(), 0);
        assert_eq!(pump.b.links().count(), 0);
    }

    #[test]
    fn user_rejection_aborts_pairing() {
        let b_host = HostScript {
            confirm_pairing: false,
            ..Default::default()
        };
        let mut pump = Pump::new(controller(1), controller(2), HostScript::default(), b_host);
        pump.connect();
        let handle = pump.a.link_to(addr(2)).expect("link").handle;
        pump.a
            .on_command(now(), Command::AuthenticationRequested { handle });
        pump.run();

        assert_eq!(pump.keys_delivered(), (None, None));
        assert!(pump.a_events.iter().any(|e| matches!(
            e,
            Event::SimplePairingComplete {
                status: StatusCode::AuthenticationFailure,
                ..
            }
        )));
    }

    #[test]
    fn non_connectable_device_ignores_pages() {
        let mut c = controller(1);
        c.on_command(
            now(),
            Command::WriteScanEnable {
                inquiry_scan: false,
                page_scan: false,
            },
        );
        c.drain_outputs();
        c.on_incoming_page(now(), addr(2), ClassOfDevice::SMARTPHONE);
        let outs = c.drain_outputs();
        assert!(outs.is_empty(), "silent device must not emit events");
        assert_eq!(c.links().count(), 0);
    }

    #[test]
    fn spoofed_address_is_reported() {
        let mut c = controller(1);
        assert_eq!(c.bd_addr(), addr(1));
        c.set_bd_addr(addr(9));
        assert_eq!(c.bd_addr(), addr(9));
    }

    #[test]
    fn inquiry_emits_results_and_complete() {
        let mut c = controller(1);
        c.on_command(
            now(),
            Command::Inquiry {
                inquiry_length: 8,
                num_responses: 0,
            },
        );
        c.on_inquiry_response(now(), addr(5), ClassOfDevice::HANDS_FREE);
        c.on_inquiry_complete(now());
        let outs = c.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            ControllerOutput::Event(Event::InquiryResult { bd_addr, .. }) if *bd_addr == addr(5)
        )));
        assert!(outs
            .iter()
            .any(|o| matches!(o, ControllerOutput::Event(Event::InquiryComplete { .. }))));
    }
}
