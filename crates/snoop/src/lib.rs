//! HCI observation channels: the btsnoop "HCI dump" log and the USB
//! hardware capture — the two leak paths the BLAP link key extraction
//! attack reads from.
//!
//! * [`btsnoop`] — the RFC 1761-derived btsnoop file format Android's
//!   "Bluetooth HCI snoop log" and `bluez-hcidump` write,
//! * [`log`] — an in-memory HCI trace with encode/decode to btsnoop bytes,
//! * [`pretty`] — renders traces the way the paper's figures do (the
//!   frame table of Fig 12, the field tree of Fig 3/11),
//! * [`usb`] — HCI-over-USB capture producing the raw binary stream a
//!   hardware USB analyzer would record, NULL traffic included,
//! * [`hexconv`] — the binary→ASCII-hex converter the authors wrote to
//!   search captures for the `0b 04 16` opcode pattern.
//!
//! # Examples
//!
//! ```
//! use blap_snoop::log::HciTrace;
//! use blap_hci::{Command, HciPacket, PacketDirection};
//! use blap_types::Instant;
//!
//! let mut trace = HciTrace::new();
//! trace.record(Instant::EPOCH, PacketDirection::Sent,
//!              HciPacket::Command(Command::Reset));
//! let bytes = trace.to_btsnoop_bytes();
//! let parsed = HciTrace::from_btsnoop_bytes(&bytes)?;
//! assert_eq!(parsed.len(), 1);
//! # Ok::<(), blap_snoop::btsnoop::SnoopError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btsnoop;
pub mod hexconv;
pub mod log;
pub mod pretty;
pub mod redact;
pub mod usb;
