//! §VII-A mitigations, applied at the capture seam.
//!
//! The paper proposes two defences against the link key extraction attack:
//!
//! 1. **Dump filtering** — the HCI dump module watches packet headers and,
//!    for link-key-bearing packets, logs only the header (or replaces the
//!    key with a constant). Implemented by [`redact_link_keys`].
//! 2. **Payload encryption** — the host and controller share a session key
//!    and encrypt the payload of link-key-related HCI packets, so even a
//!    hardware tap (UART probe / USB analyzer) sees ciphertext.
//!    Implemented (demonstratively, with an XOR keystream) by
//!    [`encrypt_sensitive_payload`].
//!
//! Both operate on raw H4 packet bytes so they sit exactly where the real
//! mitigations would: between packet serialization and the observable
//! channel.

/// Byte offset of the link key inside an H4-framed
/// `HCI_Link_Key_Request_Reply`: indicator(1) + opcode(2) + len(1) + addr(6).
const CMD_KEY_OFFSET: usize = 10;
/// Same for an H4-framed `HCI_Link_Key_Notification`:
/// indicator(1) + event(1) + len(1) + addr(6).
const EVT_KEY_OFFSET: usize = 9;

/// Whether an H4 packet carries a plaintext link key.
pub fn carries_link_key(h4: &[u8]) -> bool {
    link_key_span(h4).is_some()
}

/// The `(offset, len)` of the link key field, if this packet has one.
fn link_key_span(h4: &[u8]) -> Option<(usize, usize)> {
    match h4 {
        // H4 command indicator, LE opcode 0x040B, length 22.
        [0x01, 0x0b, 0x04, 0x16, ..] if h4.len() >= CMD_KEY_OFFSET + 16 => {
            Some((CMD_KEY_OFFSET, 16))
        }
        // H4 event indicator, event code 0x18, length 23.
        [0x04, 0x18, 0x17, ..] if h4.len() >= EVT_KEY_OFFSET + 16 => Some((EVT_KEY_OFFSET, 16)),
        _ => None,
    }
}

/// Mitigation 1: zeroes the link key field of link-key-bearing packets.
///
/// Returns `true` when something was redacted. Non-key packets pass
/// through untouched, so the dump stays useful for debugging — the paper's
/// stated goal.
pub fn redact_link_keys(h4: &mut [u8]) -> bool {
    match link_key_span(h4) {
        Some((offset, len)) => {
            h4[offset..offset + len].fill(0);
            true
        }
        None => false,
    }
}

/// Mitigation 2: encrypts the link key field with a keystream derived from
/// the host↔controller session secret.
///
/// The keystream here is a toy (xorshift over the seed) — the point being
/// demonstrated is architectural: with *any* secret shared by host and
/// controller but not the tap, the captured bytes stop being the key.
/// Returns `true` when a key field was encrypted.
pub fn encrypt_sensitive_payload(h4: &mut [u8], session_seed: u64) -> bool {
    match link_key_span(h4) {
        Some((offset, len)) => {
            let mut state = session_seed | 1;
            for byte in &mut h4[offset..offset + len] {
                // xorshift64
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *byte ^= (state & 0xff) as u8;
            }
            let _ = len;
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_hci::{Command, Event, HciPacket};
    use blap_types::{BdAddr, LinkKey, LinkKeyType};

    fn addr() -> BdAddr {
        "00:1b:7d:da:71:0a".parse().unwrap()
    }

    fn key() -> LinkKey {
        "c4f16e949f04ee9c0fd6b1023389c324".parse().unwrap()
    }

    fn reply_bytes() -> Vec<u8> {
        HciPacket::Command(Command::LinkKeyRequestReply {
            bd_addr: addr(),
            link_key: key(),
        })
        .encode()
    }

    fn notification_bytes() -> Vec<u8> {
        HciPacket::Event(Event::LinkKeyNotification {
            bd_addr: addr(),
            link_key: key(),
            key_type: LinkKeyType::UnauthenticatedP256,
        })
        .encode()
    }

    #[test]
    fn detects_key_bearing_packets() {
        assert!(carries_link_key(&reply_bytes()));
        assert!(carries_link_key(&notification_bytes()));
        let reset = HciPacket::Command(Command::Reset).encode();
        assert!(!carries_link_key(&reset));
    }

    #[test]
    fn redaction_zeroes_only_the_key() {
        let mut bytes = reply_bytes();
        let original = bytes.clone();
        assert!(redact_link_keys(&mut bytes));
        // Header and address untouched.
        assert_eq!(&bytes[..CMD_KEY_OFFSET], &original[..CMD_KEY_OFFSET]);
        // Key zeroed.
        assert!(bytes[CMD_KEY_OFFSET..CMD_KEY_OFFSET + 16]
            .iter()
            .all(|b| *b == 0));
        // Packet still decodes (now with a zero key).
        let decoded = HciPacket::decode(&bytes).unwrap();
        match decoded {
            HciPacket::Command(Command::LinkKeyRequestReply { link_key, .. }) => {
                assert_eq!(link_key, LinkKey::new([0; 16]));
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn redaction_handles_notifications() {
        let mut bytes = notification_bytes();
        assert!(redact_link_keys(&mut bytes));
        let decoded = HciPacket::decode(&bytes).unwrap();
        match decoded {
            HciPacket::Event(Event::LinkKeyNotification { link_key, .. }) => {
                assert_eq!(link_key, LinkKey::new([0; 16]));
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn redaction_ignores_other_packets() {
        let mut bytes = HciPacket::Command(Command::Reset).encode();
        let original = bytes.clone();
        assert!(!redact_link_keys(&mut bytes));
        assert_eq!(bytes, original);
    }

    #[test]
    fn encryption_changes_key_and_is_keystream_stable() {
        let mut a = reply_bytes();
        let mut b = reply_bytes();
        assert!(encrypt_sensitive_payload(&mut a, 0xDEAD_BEEF));
        assert!(encrypt_sensitive_payload(&mut b, 0xDEAD_BEEF));
        assert_eq!(a, b, "same session key gives same ciphertext");
        assert_ne!(a, reply_bytes(), "ciphertext differs from plaintext");
        // Different session secret, different ciphertext.
        let mut c = reply_bytes();
        assert!(encrypt_sensitive_payload(&mut c, 0x1234));
        assert_ne!(a, c);
        // Double application restores (XOR keystream).
        let mut d = a.clone();
        assert!(encrypt_sensitive_payload(&mut d, 0xDEAD_BEEF));
        assert_eq!(d, reply_bytes());
    }

    #[test]
    fn encrypted_capture_defeats_pattern_extraction() {
        // The USB search still finds the header (it is metadata), but the
        // key it reads out is ciphertext, not the real key.
        let mut bytes = reply_bytes();
        encrypt_sensitive_payload(&mut bytes, 99);
        let matches = crate::hexconv::scan_link_key_replies(&bytes[1..]);
        assert_eq!(matches.len(), 1);
        assert_ne!(
            LinkKey::from_le_bytes(matches[0].key_le),
            key(),
            "extracted bytes must not be the real key"
        );
    }
}
