//! The btsnoop capture file format (derived from RFC 1761 "snoop").
//!
//! This is the on-disk format of Android's "Bluetooth HCI snoop log", of
//! `bluez-hcidump` output, and of the log files the paper pulls out of
//! victim accessories via the Android bug report. Header: the 8-byte
//! identification pattern `b"btsnoop\0"`, a big-endian version (1), and a
//! big-endian datalink type (1002 = HCI UART / H4). Each record carries
//! original/included lengths, a flags word (direction in bit 0), cumulative
//! drops, a 64-bit timestamp and the raw H4 packet bytes.

use std::error::Error;
use std::fmt;

use blap_hci::PacketDirection;
use blap_types::Instant;

/// The 8-byte identification pattern at the start of every btsnoop file.
pub const MAGIC: [u8; 8] = *b"btsnoop\0";

/// Format version written by this implementation.
pub const VERSION: u32 = 1;

/// Datalink type for H4 (HCI UART) captures.
pub const DATALINK_H4: u32 = 1002;

/// Offset between the simulation epoch and the btsnoop timestamp epoch
/// (btsnoop counts microseconds from year 0; this constant is the value
/// real implementations use for the Unix epoch).
pub const TIMESTAMP_EPOCH_OFFSET: u64 = 0x00E0_3AB4_4A67_6000;

/// One captured record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnoopRecord {
    /// Capture timestamp (simulation time).
    pub timestamp: Instant,
    /// Direction across the HCI transport.
    pub direction: PacketDirection,
    /// Raw H4 packet bytes (indicator byte included).
    pub data: Vec<u8>,
}

/// Errors from parsing btsnoop bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnoopError {
    /// The identification pattern did not match.
    BadMagic,
    /// Unsupported version or datalink type.
    UnsupportedFormat {
        /// Version field value.
        version: u32,
        /// Datalink field value.
        datalink: u32,
    },
    /// The file ended inside a header or record.
    Truncated {
        /// Byte offset at which truncation was detected.
        offset: usize,
    },
    /// A record claimed more included bytes than its original length — a
    /// physical impossibility, so the record (and the stream after it) is
    /// corrupt.
    InvalidRecord {
        /// Byte offset of the record header.
        offset: usize,
        /// The original-length field.
        original: u32,
        /// The included-length field.
        included: u32,
    },
    /// A record timestamp predates the btsnoop epoch — corrupt rather
    /// than merely old, since the epoch is year 0.
    PreEpochTimestamp {
        /// Byte offset of the record header.
        offset: usize,
        /// The raw 64-bit timestamp field.
        raw: u64,
    },
}

impl fmt::Display for SnoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnoopError::BadMagic => f.write_str("not a btsnoop file (bad identification pattern)"),
            SnoopError::UnsupportedFormat { version, datalink } => write!(
                f,
                "unsupported btsnoop format: version {version}, datalink {datalink}"
            ),
            SnoopError::Truncated { offset } => {
                write!(f, "truncated btsnoop file at offset {offset}")
            }
            SnoopError::InvalidRecord {
                offset,
                original,
                included,
            } => write!(
                f,
                "invalid btsnoop record at offset {offset}: \
                 included length {included} exceeds original length {original}"
            ),
            SnoopError::PreEpochTimestamp { offset, raw } => write!(
                f,
                "btsnoop record at offset {offset} has pre-epoch timestamp {raw}"
            ),
        }
    }
}

impl Error for SnoopError {}

/// Serializes records into a complete btsnoop file.
pub fn write_file(records: &[SnoopRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + records.iter().map(|r| 24 + r.data.len()).sum::<usize>());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&DATALINK_H4.to_be_bytes());
    for record in records {
        let len = record.data.len() as u32;
        out.extend_from_slice(&len.to_be_bytes()); // original length
        out.extend_from_slice(&len.to_be_bytes()); // included length
        let mut flags: u32 = match record.direction {
            PacketDirection::Sent => 0,
            PacketDirection::Received => 1,
        };
        // Bit 1: set for command/event (vs data) packets, per the format.
        if matches!(record.data.first(), Some(0x01) | Some(0x04)) {
            flags |= 0b10;
        }
        out.extend_from_slice(&flags.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes()); // cumulative drops
        let ts = TIMESTAMP_EPOCH_OFFSET + record.timestamp.as_micros();
        out.extend_from_slice(&ts.to_be_bytes());
        out.extend_from_slice(&record.data);
    }
    out
}

/// Parses a complete btsnoop file.
///
/// # Errors
///
/// Returns [`SnoopError`] on a bad magic, an unsupported version/datalink,
/// or truncation.
pub fn read_file(bytes: &[u8]) -> Result<Vec<SnoopRecord>, SnoopError> {
    if bytes.len() < 16 {
        return Err(if bytes.len() >= 8 && bytes[..8] != MAGIC {
            SnoopError::BadMagic
        } else if bytes.len() >= 8 {
            SnoopError::Truncated {
                offset: bytes.len(),
            }
        } else {
            SnoopError::BadMagic
        });
    }
    if bytes[..8] != MAGIC {
        return Err(SnoopError::BadMagic);
    }
    let version = u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let datalink = u32::from_be_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if version != VERSION || datalink != DATALINK_H4 {
        return Err(SnoopError::UnsupportedFormat { version, datalink });
    }

    let mut records = Vec::new();
    let mut offset = 16;
    while offset < bytes.len() {
        if bytes.len() - offset < 24 {
            return Err(SnoopError::Truncated { offset });
        }
        let be_u32 =
            |o: usize| u32::from_be_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        let original = be_u32(offset);
        let included = be_u32(offset + 4);
        if included > original {
            return Err(SnoopError::InvalidRecord {
                offset,
                original,
                included,
            });
        }
        let included = included as usize;
        let flags = be_u32(offset + 8);
        let ts = u64::from_be_bytes([
            bytes[offset + 16],
            bytes[offset + 17],
            bytes[offset + 18],
            bytes[offset + 19],
            bytes[offset + 20],
            bytes[offset + 21],
            bytes[offset + 22],
            bytes[offset + 23],
        ]);
        let data_start = offset + 24;
        if bytes.len() - data_start < included {
            return Err(SnoopError::Truncated { offset: data_start });
        }
        let Some(micros) = ts.checked_sub(TIMESTAMP_EPOCH_OFFSET) else {
            return Err(SnoopError::PreEpochTimestamp { offset, raw: ts });
        };
        records.push(SnoopRecord {
            timestamp: Instant::from_micros(micros),
            direction: if flags & 1 == 0 {
                PacketDirection::Sent
            } else {
                PacketDirection::Received
            },
            data: bytes[data_start..data_start + included].to_vec(),
        });
        offset = data_start + included;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<SnoopRecord> {
        vec![
            SnoopRecord {
                timestamp: Instant::from_micros(1_000),
                direction: PacketDirection::Sent,
                data: vec![0x01, 0x03, 0x0c, 0x00], // HCI_Reset command
            },
            SnoopRecord {
                timestamp: Instant::from_micros(2_500),
                direction: PacketDirection::Received,
                data: vec![0x04, 0x0e, 0x04, 0x01, 0x03, 0x0c, 0x00], // Command_Complete
            },
        ]
    }

    #[test]
    fn round_trip() {
        let records = sample_records();
        let bytes = write_file(&records);
        assert_eq!(read_file(&bytes).unwrap(), records);
    }

    #[test]
    fn header_layout() {
        let bytes = write_file(&[]);
        assert_eq!(&bytes[..8], b"btsnoop\0");
        assert_eq!(&bytes[8..12], &1u32.to_be_bytes());
        assert_eq!(&bytes[12..16], &1002u32.to_be_bytes());
        assert_eq!(bytes.len(), 16);
    }

    #[test]
    fn direction_flag_bit0() {
        let bytes = write_file(&sample_records());
        // First record flags at offset 16+8.
        let flags1 = u32::from_be_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]);
        assert_eq!(flags1 & 1, 0, "sent packet must have bit0 clear");
        // Command packet sets the command/event bit.
        assert_eq!(flags1 & 2, 2);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write_file(&sample_records());
        bytes[0] = b'X';
        assert_eq!(read_file(&bytes), Err(SnoopError::BadMagic));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = write_file(&[]);
        bytes[11] = 9;
        assert!(matches!(
            read_file(&bytes),
            Err(SnoopError::UnsupportedFormat { version: 9, .. })
        ));
    }

    #[test]
    fn truncated_record_rejected() {
        let bytes = write_file(&sample_records());
        for cut in [17, 30, bytes.len() - 1] {
            assert!(
                matches!(read_file(&bytes[..cut]), Err(SnoopError::Truncated { .. })),
                "cut at {cut} should be truncated"
            );
        }
    }

    #[test]
    fn included_exceeding_original_rejected() {
        // Regression: the reader ignored the original-length field, so a
        // corrupt record claiming included > original parsed fine and the
        // stream stayed misaligned for every later record.
        let mut bytes = write_file(&sample_records());
        bytes[16..20].copy_from_slice(&1u32.to_be_bytes()); // original := 1
        assert!(matches!(
            read_file(&bytes),
            Err(SnoopError::InvalidRecord {
                offset: 16,
                original: 1,
                included: 4,
            })
        ));
    }

    #[test]
    fn pre_epoch_timestamp_rejected() {
        // Regression: timestamps before the btsnoop epoch offset were
        // silently clamped to simulation time zero instead of flagging the
        // record as corrupt.
        let mut bytes = write_file(&sample_records());
        bytes[32..40].copy_from_slice(&7u64.to_be_bytes()); // record 1 ts
        assert!(matches!(
            read_file(&bytes),
            Err(SnoopError::PreEpochTimestamp { offset: 16, raw: 7 })
        ));
    }

    #[test]
    fn timestamps_survive_round_trip() {
        let records = sample_records();
        let parsed = read_file(&write_file(&records)).unwrap();
        assert_eq!(parsed[0].timestamp, Instant::from_micros(1_000));
        assert_eq!(parsed[1].timestamp, Instant::from_micros(2_500));
    }
}
