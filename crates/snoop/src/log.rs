//! In-memory HCI traces.
//!
//! A [`HciTrace`] is the decoded form of an HCI dump: an ordered list of
//! `(timestamp, direction, packet)` entries. The simulated host's snoop tap
//! appends to one of these; the attack code serializes it to btsnoop bytes
//! (the artifact the Android bug report hands over) and parses it back.

use blap_hci::{Command, Event, HciPacket, PacketDirection};
use blap_types::{BdAddr, Instant, LinkKey};

use crate::btsnoop::{self, SnoopError, SnoopRecord};

/// One entry of a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Capture time.
    pub timestamp: Instant,
    /// Direction across the HCI transport.
    pub direction: PacketDirection,
    /// The packet (kept decoded; raw bytes are regenerated on demand).
    pub packet: HciPacket,
}

/// A decoded HCI dump log.
///
/// # Examples
///
/// ```
/// use blap_snoop::log::HciTrace;
/// use blap_hci::{Command, HciPacket, PacketDirection};
/// use blap_types::Instant;
///
/// let mut trace = HciTrace::new();
/// trace.record(Instant::EPOCH, PacketDirection::Sent,
///              HciPacket::Command(Command::Reset));
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HciTrace {
    entries: Vec<TraceEntry>,
}

impl HciTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        HciTrace::default()
    }

    /// Appends a packet.
    pub fn record(&mut self, timestamp: Instant, direction: PacketDirection, packet: HciPacket) {
        self.entries.push(TraceEntry {
            timestamp,
            direction,
            packet,
        });
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries in capture order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEntry> {
        self.entries.iter()
    }

    /// The entries as a slice.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Serializes to btsnoop file bytes — what `Enable Bluetooth HCI snoop
    /// log` leaves on disk.
    pub fn to_btsnoop_bytes(&self) -> Vec<u8> {
        let records: Vec<SnoopRecord> = self
            .entries
            .iter()
            .map(|e| SnoopRecord {
                timestamp: e.timestamp,
                direction: e.direction,
                data: e.packet.encode(),
            })
            .collect();
        btsnoop::write_file(&records)
    }

    /// Parses btsnoop file bytes back into a trace.
    ///
    /// Records whose payload does not decode as a known HCI packet are
    /// skipped (real dumps contain vendor packets this model doesn't know).
    ///
    /// # Errors
    ///
    /// Returns [`SnoopError`] when the container itself is malformed.
    pub fn from_btsnoop_bytes(bytes: &[u8]) -> Result<Self, SnoopError> {
        let records = btsnoop::read_file(bytes)?;
        let mut trace = HciTrace::new();
        for record in records {
            if let Ok(packet) = HciPacket::decode(&record.data) {
                trace.record(record.timestamp, record.direction, packet);
            }
        }
        Ok(trace)
    }

    /// Extracts every `(peer, link key)` pair visible in the trace — the
    /// core of the paper's link key extraction attack. Keys appear in
    /// `HCI_Link_Key_Request_Reply` commands (host handing a stored key to
    /// the controller) and `HCI_Link_Key_Notification` events (controller
    /// delivering a fresh key for storage).
    pub fn extract_link_keys(&self) -> Vec<(BdAddr, LinkKey)> {
        let mut keys = Vec::new();
        for entry in &self.entries {
            match &entry.packet {
                HciPacket::Command(Command::LinkKeyRequestReply { bd_addr, link_key }) => {
                    keys.push((*bd_addr, *link_key));
                }
                HciPacket::Event(Event::LinkKeyNotification {
                    bd_addr, link_key, ..
                }) => {
                    keys.push((*bd_addr, *link_key));
                }
                _ => {}
            }
        }
        keys
    }

    /// Finds the link key for a specific peer, if the trace leaked one.
    pub fn link_key_for(&self, peer: BdAddr) -> Option<LinkKey> {
        self.extract_link_keys()
            .into_iter()
            .find(|(addr, _)| *addr == peer)
            .map(|(_, key)| key)
    }

    /// The attacker-side complement of
    /// [`HciTrace::has_page_blocking_signature`], used when the victim has
    /// no HCI dump at all (the paper's iPhone Xs case: "we analyzed dump
    /// log from A instead of M"). The attacker's trace shows it *initiated*
    /// the connection to `peer` (`HCI_Create_Connection`) and later
    /// received pairing traffic (`HCI_IO_Capability_Request`) without ever
    /// sending `HCI_Authentication_Requested` itself — i.e. the peer
    /// initiated pairing over the attacker-initiated link.
    pub fn has_attacker_side_page_blocking_signature(&self, peer: BdAddr) -> bool {
        let mut initiated_connection = false;
        let mut sent_auth_request = false;
        for entry in &self.entries {
            match &entry.packet {
                HciPacket::Command(Command::CreateConnection { bd_addr, .. })
                    if *bd_addr == peer =>
                {
                    initiated_connection = true;
                }
                HciPacket::Command(Command::AuthenticationRequested { .. }) => {
                    sent_auth_request = true;
                }
                HciPacket::Event(Event::IoCapabilityRequest { bd_addr })
                    if *bd_addr == peer && initiated_connection && !sent_auth_request =>
                {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// True when the trace shows the Fig 12b page-blocking signature: this
    /// device accepted an inbound connection (`HCI_Connection_Request`
    /// event) from `peer` and *then* initiated pairing itself
    /// (`HCI_Authentication_Requested` command) — connection responder and
    /// pairing initiator simultaneously.
    pub fn has_page_blocking_signature(&self, peer: BdAddr) -> bool {
        let mut saw_inbound_connection = false;
        for entry in &self.entries {
            match &entry.packet {
                HciPacket::Event(Event::ConnectionRequest { bd_addr, .. }) if *bd_addr == peer => {
                    saw_inbound_connection = true;
                }
                HciPacket::Command(Command::CreateConnection { bd_addr, .. })
                    if *bd_addr == peer =>
                {
                    // An outbound page to the same peer resets the signature:
                    // the later pairing would be an ordinary Fig 12a flow.
                    saw_inbound_connection = false;
                }
                HciPacket::Command(Command::AuthenticationRequested { .. })
                    if saw_inbound_connection =>
                {
                    return true;
                }
                _ => {}
            }
        }
        false
    }
}

impl FromIterator<TraceEntry> for HciTrace {
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> Self {
        HciTrace {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEntry> for HciTrace {
    fn extend<I: IntoIterator<Item = TraceEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

impl<'a> IntoIterator for &'a HciTrace {
    type Item = &'a TraceEntry;
    type IntoIter = std::slice::Iter<'a, TraceEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_hci::StatusCode;
    use blap_types::{ClassOfDevice, ConnectionHandle};

    fn addr() -> BdAddr {
        "48:90:12:34:56:78".parse().unwrap()
    }

    fn key() -> LinkKey {
        "71a70981f30d6af9e20adee8aafe3264".parse().unwrap()
    }

    fn at(us: u64) -> Instant {
        Instant::from_micros(us)
    }

    #[test]
    fn btsnoop_round_trip_preserves_packets() {
        let mut trace = HciTrace::new();
        trace.record(
            at(10),
            PacketDirection::Sent,
            HciPacket::Command(Command::CreateConnection {
                bd_addr: addr(),
                allow_role_switch: true,
            }),
        );
        trace.record(
            at(20),
            PacketDirection::Received,
            HciPacket::Event(Event::LinkKeyRequest { bd_addr: addr() }),
        );
        let parsed = HciTrace::from_btsnoop_bytes(&trace.to_btsnoop_bytes()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn extracts_key_from_request_reply() {
        let mut trace = HciTrace::new();
        trace.record(
            at(0),
            PacketDirection::Sent,
            HciPacket::Command(Command::LinkKeyRequestReply {
                bd_addr: addr(),
                link_key: key(),
            }),
        );
        assert_eq!(trace.extract_link_keys(), vec![(addr(), key())]);
        assert_eq!(trace.link_key_for(addr()), Some(key()));
        let other: BdAddr = "00:00:00:00:00:01".parse().unwrap();
        assert_eq!(trace.link_key_for(other), None);
    }

    #[test]
    fn extracts_key_from_notification() {
        let mut trace = HciTrace::new();
        trace.record(
            at(0),
            PacketDirection::Received,
            HciPacket::Event(Event::LinkKeyNotification {
                bd_addr: addr(),
                link_key: key(),
                key_type: blap_types::LinkKeyType::UnauthenticatedP256,
            }),
        );
        assert_eq!(trace.link_key_for(addr()), Some(key()));
    }

    #[test]
    fn page_blocking_signature_detection() {
        // Fig 12b order: Connection_Request event, then
        // Authentication_Requested command.
        let mut attacked = HciTrace::new();
        attacked.record(
            at(0),
            PacketDirection::Received,
            HciPacket::Event(Event::ConnectionRequest {
                bd_addr: addr(),
                cod: ClassOfDevice::HANDS_FREE,
                link_type: 1,
            }),
        );
        attacked.record(
            at(5),
            PacketDirection::Sent,
            HciPacket::Command(Command::AuthenticationRequested {
                handle: ConnectionHandle::new(3),
            }),
        );
        assert!(attacked.has_page_blocking_signature(addr()));

        // Fig 12a order: Create_Connection command first — normal pairing.
        let mut normal = HciTrace::new();
        normal.record(
            at(0),
            PacketDirection::Sent,
            HciPacket::Command(Command::CreateConnection {
                bd_addr: addr(),
                allow_role_switch: true,
            }),
        );
        normal.record(
            at(5),
            PacketDirection::Sent,
            HciPacket::Command(Command::AuthenticationRequested {
                handle: ConnectionHandle::new(6),
            }),
        );
        assert!(!normal.has_page_blocking_signature(addr()));
    }

    #[test]
    fn outbound_page_resets_signature() {
        let mut trace = HciTrace::new();
        trace.record(
            at(0),
            PacketDirection::Received,
            HciPacket::Event(Event::ConnectionRequest {
                bd_addr: addr(),
                cod: ClassOfDevice::default(),
                link_type: 1,
            }),
        );
        // Link dropped; device later pages the peer itself.
        trace.record(
            at(10),
            PacketDirection::Sent,
            HciPacket::Command(Command::CreateConnection {
                bd_addr: addr(),
                allow_role_switch: true,
            }),
        );
        trace.record(
            at(20),
            PacketDirection::Sent,
            HciPacket::Command(Command::AuthenticationRequested {
                handle: ConnectionHandle::new(6),
            }),
        );
        assert!(!trace.has_page_blocking_signature(addr()));
    }

    #[test]
    fn unknown_packets_are_skipped_on_parse() {
        let mut records = vec![SnoopRecord {
            timestamp: at(1),
            direction: PacketDirection::Sent,
            data: vec![0x01, 0x03, 0x0c, 0x00],
        }];
        // A vendor-specific command this model does not know.
        records.push(SnoopRecord {
            timestamp: at(2),
            direction: PacketDirection::Sent,
            data: vec![0x01, 0x00, 0xfc, 0x00],
        });
        let bytes = crate::btsnoop::write_file(&records);
        let trace = HciTrace::from_btsnoop_bytes(&bytes).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let entries = vec![TraceEntry {
            timestamp: at(0),
            direction: PacketDirection::Sent,
            packet: HciPacket::Command(Command::Reset),
        }];
        let trace: HciTrace = entries.clone().into_iter().collect();
        assert_eq!(trace.len(), 1);
        let mut extended = HciTrace::new();
        extended.extend(entries);
        assert_eq!(extended.len(), 1);
    }

    #[test]
    fn disconnect_reason_does_not_affect_extraction() {
        let mut trace = HciTrace::new();
        trace.record(
            at(0),
            PacketDirection::Sent,
            HciPacket::Command(Command::LinkKeyRequestReply {
                bd_addr: addr(),
                link_key: key(),
            }),
        );
        trace.record(
            at(1),
            PacketDirection::Received,
            HciPacket::Event(Event::DisconnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(1),
                reason: StatusCode::ConnectionTimeout,
            }),
        );
        assert_eq!(trace.extract_link_keys().len(), 1);
    }
}
