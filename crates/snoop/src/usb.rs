//! HCI-over-USB capture simulation.
//!
//! Dongle-based PC stacks (the paper's QSENN CSR V4.0 setups on Windows 10)
//! carry HCI over USB instead of a UART: commands travel on the control
//! endpoint, events on the interrupt endpoint, ACL data on bulk endpoints.
//! A hardware USB analyzer (FTS4USB, "Free USB Analyzer") records the raw
//! transfer stream — including plenty of NULL/keep-alive traffic, which is
//! why the paper needed the hex converter and a pattern search rather than a
//! structured parser.
//!
//! [`UsbCapture`] is the analyzer: it taps the same packet flow the snoop
//! logger would see, wraps each packet in a little URB-like record, injects
//! NULL traffic, and exposes the concatenated raw byte stream.

use blap_hci::{HciPacket, PacketDirection};
use blap_types::Instant;

/// USB endpoint a transfer used.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UsbEndpoint {
    /// Control endpoint 0 — HCI commands.
    Control,
    /// Interrupt IN endpoint — HCI events.
    Interrupt,
    /// Bulk endpoints — ACL data.
    Bulk,
}

impl UsbEndpoint {
    fn code(self) -> u8 {
        match self {
            UsbEndpoint::Control => 0x00,
            UsbEndpoint::Interrupt => 0x81,
            UsbEndpoint::Bulk => 0x02,
        }
    }
}

/// One captured USB transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsbTransfer {
    /// Capture time.
    pub timestamp: Instant,
    /// Endpoint the transfer used.
    pub endpoint: UsbEndpoint,
    /// Host-to-device or device-to-host.
    pub direction: PacketDirection,
    /// Transfer payload. For HCI transfers this is the packet *without* the
    /// H4 indicator (USB conveys the type via the endpoint), matching real
    /// HCI-USB framing — the `0b 04 16` header bytes are therefore adjacent
    /// in the raw stream exactly as in the paper's Fig 11a.
    pub payload: Vec<u8>,
}

/// A simulated USB protocol analyzer attached to the HCI transport of one
/// device.
///
/// # Examples
///
/// ```
/// use blap_snoop::usb::UsbCapture;
/// use blap_hci::{Command, HciPacket, PacketDirection};
/// use blap_types::Instant;
///
/// let mut analyzer = UsbCapture::new();
/// analyzer.observe(Instant::EPOCH, PacketDirection::Sent,
///                  &HciPacket::Command(Command::Reset));
/// let raw = analyzer.raw_stream();
/// assert!(!raw.is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct UsbCapture {
    transfers: Vec<UsbTransfer>,
    /// Insert a NULL transfer every `null_interval` packets (0 = never).
    null_interval: usize,
    observed: usize,
}

impl UsbCapture {
    /// Creates an analyzer with the default NULL-traffic cadence (one NULL
    /// transfer per captured packet, mimicking a chatty real bus).
    pub fn new() -> Self {
        UsbCapture {
            transfers: Vec::new(),
            null_interval: 1,
            observed: 0,
        }
    }

    /// Creates an analyzer with a custom NULL-traffic cadence.
    pub fn with_null_interval(null_interval: usize) -> Self {
        UsbCapture {
            transfers: Vec::new(),
            null_interval,
            observed: 0,
        }
    }

    /// Records one HCI packet crossing the USB transport.
    pub fn observe(&mut self, timestamp: Instant, direction: PacketDirection, packet: &HciPacket) {
        // Strip the H4 indicator: USB transports type via endpoint.
        let h4 = packet.encode();
        self.observe_encoded(timestamp, direction, &h4);
    }

    /// Records one already-encoded H4 frame crossing the USB transport —
    /// the hot-path variant: the caller's scratch buffer is borrowed, not
    /// re-encoded. `h4` must start with a valid H4 indicator byte.
    pub fn observe_encoded(&mut self, timestamp: Instant, direction: PacketDirection, h4: &[u8]) {
        let endpoint = match h4.first() {
            Some(0x01) => UsbEndpoint::Control,
            Some(0x04) => UsbEndpoint::Interrupt,
            _ => UsbEndpoint::Bulk,
        };
        self.transfers.push(UsbTransfer {
            timestamp,
            endpoint,
            direction,
            payload: h4[1..].to_vec(),
        });
        self.observed += 1;
        if self.null_interval > 0 && self.observed.is_multiple_of(self.null_interval) {
            self.transfers.push(UsbTransfer {
                timestamp,
                endpoint: UsbEndpoint::Interrupt,
                direction: PacketDirection::Received,
                payload: vec![0x00; 8], // NULL keep-alive transfer
            });
        }
    }

    /// Records an opaque byte blob crossing the transport (e.g. a payload
    /// the analyzer cannot parse because mitigation 2 encrypted it). The H4
    /// indicator, if present, is stripped like in [`UsbCapture::observe`].
    pub fn observe_raw(&mut self, timestamp: Instant, direction: PacketDirection, bytes: Vec<u8>) {
        let payload = if bytes.first().map(|b| matches!(b, 1..=4)).unwrap_or(false) {
            bytes[1..].to_vec()
        } else {
            bytes
        };
        self.transfers.push(UsbTransfer {
            timestamp,
            endpoint: UsbEndpoint::Bulk,
            direction,
            payload,
        });
        self.observed += 1;
    }

    /// The captured transfers.
    pub fn transfers(&self) -> &[UsbTransfer] {
        &self.transfers
    }

    /// Serializes the capture to the raw binary stream a hardware analyzer
    /// dumps: per transfer an 8-byte record header (marker, endpoint,
    /// direction, length) followed by the payload.
    ///
    /// The header marker `0xD0` is arbitrary but fixed; the paper's attack
    /// does not parse these headers — it hex-converts the whole stream and
    /// pattern-searches, which [`crate::hexconv::scan_link_key_replies`]
    /// reproduces.
    pub fn raw_stream(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for t in &self.transfers {
            out.push(0xD0);
            out.push(t.endpoint.code());
            out.push(match t.direction {
                PacketDirection::Sent => 0x00,
                PacketDirection::Received => 0x80,
            });
            out.push(0x00); // reserved
            out.extend_from_slice(&(t.payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&t.payload);
        }
        out
    }

    /// Number of captured transfers (NULL traffic included).
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hexconv;
    use blap_hci::Command;
    use blap_types::{BdAddr, LinkKey};

    fn addr() -> BdAddr {
        "00:1b:7d:da:71:0a".parse().unwrap()
    }

    fn key() -> LinkKey {
        "c4f16e949f04ee9c0fd6b1023389c324".parse().unwrap()
    }

    #[test]
    fn commands_ride_the_control_endpoint() {
        let mut cap = UsbCapture::with_null_interval(0);
        cap.observe(
            Instant::EPOCH,
            PacketDirection::Sent,
            &HciPacket::Command(Command::Reset),
        );
        assert_eq!(cap.len(), 1);
        assert_eq!(cap.transfers()[0].endpoint, UsbEndpoint::Control);
        // No H4 indicator on USB.
        assert_eq!(cap.transfers()[0].payload, vec![0x03, 0x0c, 0x00]);
    }

    #[test]
    fn null_traffic_is_injected() {
        let mut cap = UsbCapture::new();
        cap.observe(
            Instant::EPOCH,
            PacketDirection::Sent,
            &HciPacket::Command(Command::Reset),
        );
        assert_eq!(cap.len(), 2, "one HCI transfer plus one NULL transfer");
        assert!(cap.transfers()[1].payload.iter().all(|b| *b == 0));
    }

    #[test]
    fn link_key_extractable_from_raw_stream() {
        // The end-to-end §VI-B1 flow: capture the reply on USB, hex-convert,
        // search for 0b 04 16, read out address and key.
        let mut cap = UsbCapture::new();
        cap.observe(
            Instant::EPOCH,
            PacketDirection::Sent,
            &HciPacket::Command(Command::LinkKeyRequestReply {
                bd_addr: addr(),
                link_key: key(),
            }),
        );
        let raw = cap.raw_stream();
        // The converter output is searchable text.
        let hex = hexconv::to_hex_string(&raw);
        assert!(hex.contains("0b 04 16"));

        let matches = hexconv::scan_link_key_replies(&raw);
        assert_eq!(matches.len(), 1);
        let m = &matches[0];
        assert_eq!(
            BdAddr::from_le_bytes(m.addr_le),
            addr(),
            "address decodes from wire order"
        );
        assert_eq!(LinkKey::from_le_bytes(m.key_le), key());
    }

    #[test]
    fn raw_stream_survives_noise() {
        let mut cap = UsbCapture::with_null_interval(1);
        for _ in 0..5 {
            cap.observe(
                Instant::EPOCH,
                PacketDirection::Received,
                &HciPacket::Event(blap_hci::Event::LinkKeyRequest { bd_addr: addr() }),
            );
        }
        cap.observe(
            Instant::EPOCH,
            PacketDirection::Sent,
            &HciPacket::Command(Command::LinkKeyRequestReply {
                bd_addr: addr(),
                link_key: key(),
            }),
        );
        let matches = hexconv::scan_link_key_replies(&cap.raw_stream());
        assert_eq!(matches.len(), 1);
        assert_eq!(LinkKey::from_le_bytes(matches[0].key_le), key());
    }
}
