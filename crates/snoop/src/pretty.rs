//! Human-readable rendering of HCI traces, in the style of the paper's
//! figures: a frame table (Fig 12) and a per-packet field tree (Fig 3 /
//! Fig 11a).

use blap_hci::{Command, Event, HciPacket};

use crate::log::{HciTrace, TraceEntry};

/// Renders a trace as the frame table of the paper's Fig 12:
/// `Fra | Type | Opcode Command | Event | Handle | Status` columns.
///
/// # Examples
///
/// ```
/// use blap_snoop::{log::HciTrace, pretty};
/// use blap_hci::{Command, HciPacket, PacketDirection};
/// use blap_types::Instant;
///
/// let mut trace = HciTrace::new();
/// trace.record(Instant::EPOCH, PacketDirection::Sent,
///              HciPacket::Command(Command::Reset));
/// let table = pretty::frame_table(&trace);
/// assert!(table.contains("HCI_Reset"));
/// ```
pub fn frame_table(trace: &HciTrace) -> String {
    let mut rows: Vec<[String; 6]> = Vec::with_capacity(trace.len() + 1);
    rows.push([
        "Fra".into(),
        "Type".into(),
        "Opcode Command".into(),
        "Event".into(),
        "Handle".into(),
        "Status".into(),
    ]);
    for (i, entry) in trace.iter().enumerate() {
        rows.push(frame_row(i + 1, entry));
    }
    render_columns(&rows)
}

fn frame_row(frame: usize, entry: &TraceEntry) -> [String; 6] {
    match &entry.packet {
        HciPacket::Command(cmd) => [
            frame.to_string(),
            "Command".into(),
            cmd.name().to_owned(),
            String::new(),
            command_handle(cmd),
            String::new(),
        ],
        HciPacket::Event(ev) => {
            let (related, handle, status) = event_columns(ev);
            [
                frame.to_string(),
                "Event".into(),
                related,
                ev.name().to_owned(),
                handle,
                status,
            ]
        }
        HciPacket::AclData(acl) => [
            frame.to_string(),
            "Data".into(),
            String::new(),
            String::new(),
            format!("{}", acl.handle),
            String::new(),
        ],
    }
}

fn command_handle(cmd: &Command) -> String {
    match cmd {
        Command::AuthenticationRequested { handle }
        | Command::Disconnect { handle, .. }
        | Command::SetConnectionEncryption { handle, .. } => format!("{handle}"),
        _ => String::new(),
    }
}

/// For an event row: (related command column, handle column, status column).
fn event_columns(ev: &Event) -> (String, String, String) {
    match ev {
        Event::CommandStatus { status, opcode, .. } => {
            (opcode.name().to_owned(), String::new(), status.to_string())
        }
        Event::CommandComplete {
            opcode,
            return_params,
            ..
        } => {
            let status = return_params
                .first()
                .and_then(|b| blap_hci::StatusCode::from_u8(*b))
                .map(|s| s.to_string())
                .unwrap_or_default();
            (opcode.name().to_owned(), String::new(), status)
        }
        Event::ConnectionComplete { status, handle, .. }
        | Event::AuthenticationComplete { status, handle }
        | Event::DisconnectionComplete { status, handle, .. }
        | Event::EncryptionChange { status, handle, .. } => {
            (String::new(), format!("{handle}"), status.to_string())
        }
        Event::SimplePairingComplete { status, .. } => {
            (String::new(), String::new(), status.to_string())
        }
        _ => (String::new(), String::new(), String::new()),
    }
}

fn render_columns(rows: &[[String; 6]]) -> String {
    let mut widths = [0usize; 6];
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in rows {
        let mut line = String::new();
        for (w, cell) in widths.iter().zip(row) {
            line.push_str(&format!("{cell:<width$}  ", width = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Renders the field tree for a single packet, in the style of the paper's
/// Fig 3 / Fig 11a detail panes (opcode, command name, length, BD_ADDR with
/// LAP/UAP/NAP breakdown, link key).
pub fn packet_detail(packet: &HciPacket) -> String {
    let mut out = String::new();
    match packet {
        HciPacket::Command(cmd) => {
            let opcode = cmd.opcode();
            out.push_str(&format!("Opcode: 0x{:04x}\n", opcode.raw()));
            out.push_str(&format!(
                "  Opcode Group: 0x{:02x} (Link Control command)\n",
                opcode.ogf()
            ));
            out.push_str(&format!("  Command: {}\n", cmd.name()));
            let encoded = cmd.encode();
            out.push_str(&format!("  Total Length: {}\n", encoded[2]));
            match cmd {
                Command::LinkKeyRequestReply { bd_addr, link_key } => {
                    out.push_str(&format!("  BD_ADDR: {bd_addr}\n"));
                    out.push_str(&format!("    LAP: 0x{:06x}\n", bd_addr.lap()));
                    out.push_str(&format!("    UAP: 0x{:02x}\n", bd_addr.uap()));
                    out.push_str(&format!("    NAP: 0x{:04x}\n", bd_addr.nap()));
                    let key_bytes = link_key.to_bytes();
                    let spaced: Vec<String> =
                        key_bytes.iter().map(|b| format!("{b:02x}")).collect();
                    out.push_str(&format!("  Link_Key: 0x{}\n", spaced.join(" ")));
                }
                Command::LinkKeyRequestNegativeReply { bd_addr } => {
                    out.push_str(&format!("  BD_ADDR: {bd_addr}\n"));
                }
                Command::CreateConnection { bd_addr, .. } => {
                    out.push_str(&format!("  BD_ADDR: {bd_addr}\n"));
                }
                _ => {}
            }
        }
        HciPacket::Event(ev) => {
            out.push_str(&format!("Event: {}\n", ev.name()));
            if let Event::LinkKeyNotification {
                bd_addr,
                link_key,
                key_type,
            } = ev
            {
                out.push_str(&format!("  BD_ADDR: {bd_addr}\n"));
                out.push_str(&format!("  Link_Key: 0x{}\n", link_key.to_hex()));
                out.push_str(&format!("  Key_Type: {key_type}\n"));
            }
        }
        HciPacket::AclData(acl) => {
            out.push_str(&format!(
                "ACL Data: handle {}, {} bytes\n",
                acl.handle,
                acl.payload.len()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_hci::{PacketDirection, StatusCode};
    use blap_types::{BdAddr, ConnectionHandle, Instant, LinkKey};

    fn addr() -> BdAddr {
        "00:1b:7d:da:71:0a".parse().unwrap()
    }

    #[test]
    fn frame_table_shows_fig12_columns() {
        let mut trace = HciTrace::new();
        trace.record(
            Instant::EPOCH,
            PacketDirection::Sent,
            HciPacket::Command(Command::CreateConnection {
                bd_addr: addr(),
                allow_role_switch: true,
            }),
        );
        trace.record(
            Instant::from_micros(10),
            PacketDirection::Received,
            HciPacket::Event(Event::CommandStatus {
                status: StatusCode::Success,
                num_packets: 1,
                opcode: blap_hci::Opcode::CREATE_CONNECTION,
            }),
        );
        trace.record(
            Instant::from_micros(20),
            PacketDirection::Received,
            HciPacket::Event(Event::ConnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(0x0006),
                bd_addr: addr(),
                encryption_enabled: false,
            }),
        );
        let table = frame_table(&trace);
        assert!(table.contains("HCI_Create_Connection"));
        assert!(table.contains("HCI_Command_Status"));
        assert!(table.contains("HCI_Connection_Complete"));
        assert!(table.contains("0x0006"));
        assert!(table.contains("Success"));
        assert!(table.starts_with("Fra"));
    }

    #[test]
    fn detail_pane_shows_link_key_fields() {
        let key: LinkKey = "c4f16e949f04ee9c0fd6b1023389c324".parse().unwrap();
        let detail = packet_detail(&HciPacket::Command(Command::LinkKeyRequestReply {
            bd_addr: addr(),
            link_key: key,
        }));
        // Fig 11a fields.
        assert!(detail.contains("Opcode: 0x040b"));
        assert!(detail.contains("HCI_Link_Key_Request_Reply"));
        assert!(detail.contains("Total Length: 22"));
        assert!(detail.contains("LAP: 0xda710a"));
        assert!(detail.contains("UAP: 0x7d"));
        assert!(detail.contains("NAP: 0x001b"));
        assert!(detail.contains("Link_Key: 0xc4 f1 6e 94"));
    }

    #[test]
    fn detail_pane_for_notification_and_acl() {
        let key: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse().unwrap();
        let detail = packet_detail(&HciPacket::Event(Event::LinkKeyNotification {
            bd_addr: addr(),
            link_key: key,
            key_type: blap_types::LinkKeyType::UnauthenticatedP256,
        }));
        assert!(detail.contains("HCI_Link_Key_Notification"));
        assert!(detail.contains(&key.to_hex()));

        let acl = packet_detail(&HciPacket::AclData(blap_hci::AclData::new(
            ConnectionHandle::new(3),
            vec![1, 2, 3],
        )));
        assert!(acl.contains("3 bytes"));
    }

    #[test]
    fn empty_trace_renders_header_only() {
        let table = frame_table(&HciTrace::new());
        assert_eq!(table.lines().count(), 1);
    }
}
