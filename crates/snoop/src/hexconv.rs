//! Binary → ASCII-hex conversion and pattern search.
//!
//! The paper's authors wrote a small C converter ("BinaryToHex") to turn a
//! raw USB capture into a searchable ASCII hex string, then located link
//! keys by searching for `0b 04 16` — the little-endian opcode of
//! `HCI_Link_Key_Request_Reply` followed by its 22-byte parameter length.
//! This module is that tool.

/// Converts a binary stream to the space-separated lower-case hex form the
/// paper's converter produces (e.g. `0b 04 16 0a 71 ...`).
///
/// # Examples
///
/// ```
/// assert_eq!(blap_snoop::hexconv::to_hex_string(&[0x0b, 0x04, 0x16]), "0b 04 16");
/// ```
pub fn to_hex_string(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 3);
    for (i, byte) in data.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// Parses the space-separated hex form back into bytes.
///
/// Whitespace (spaces, newlines) is ignored between byte groups; each group
/// must be exactly two hex digits.
pub fn from_hex_string(text: &str) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for token in text.split_whitespace() {
        // `u8::from_str_radix` accepts a sign prefix ("+f" parses as 15),
        // which a hex dump never contains — require two actual hex digits.
        if token.len() != 2 || !token.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        out.push(u8::from_str_radix(token, 16).ok()?);
    }
    Some(out)
}

/// Finds every occurrence of `needle` in `haystack`, returning byte offsets.
///
/// This is the search primitive behind the paper's `0b 04 16` scan; it works
/// on the raw bytes rather than the hex text so offsets stay meaningful.
pub fn find_all(haystack: &[u8], needle: &[u8]) -> Vec<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return Vec::new();
    }
    // Skip-scan: let the byte-wise `position` search find the first pattern
    // byte (an autovectorized memchr-style loop) and only compare the full
    // needle at those candidates. On a capture where `0b` is rare — i.e.
    // any real snoop stream — this touches a fraction of the offsets the
    // old windows() comparison did.
    let first = needle[0];
    let mut offsets = Vec::new();
    let mut base = 0usize;
    let last_start = haystack.len() - needle.len();
    while base <= last_start {
        match haystack[base..].iter().position(|&b| b == first) {
            Some(rel) => {
                let i = base + rel;
                if i > last_start {
                    break;
                }
                if haystack[i + 1..i + needle.len()] == needle[1..] {
                    offsets.push(i);
                }
                base = i + 1;
            }
            None => break,
        }
    }
    offsets
}

/// A match of the `HCI_Link_Key_Request_Reply` wire pattern inside a raw
/// capture: the offset of the opcode, the peer address bytes (wire order)
/// and the key bytes (wire order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkKeyReplyMatch {
    /// Offset of the `0b 04 16` pattern.
    pub offset: usize,
    /// The six little-endian address bytes following the header.
    pub addr_le: [u8; 6],
    /// The sixteen little-endian key bytes following the address.
    pub key_le: [u8; 16],
}

/// Scans a raw byte stream for `HCI_Link_Key_Request_Reply` commands, the
/// way §VI-B1 of the paper does: find `0b 04 16`, skip the six address
/// bytes, take the sixteen key bytes.
pub fn scan_link_key_replies(data: &[u8]) -> Vec<LinkKeyReplyMatch> {
    const PATTERN: [u8; 3] = [0x0b, 0x04, 0x16];
    let mut matches = Vec::new();
    for offset in find_all(data, &PATTERN) {
        let body_start = offset + 3;
        if data.len() < body_start + 22 {
            continue; // truncated candidate
        }
        let mut addr_le = [0u8; 6];
        addr_le.copy_from_slice(&data[body_start..body_start + 6]);
        let mut key_le = [0u8; 16];
        key_le.copy_from_slice(&data[body_start + 6..body_start + 22]);
        matches.push(LinkKeyReplyMatch {
            offset,
            addr_le,
            key_le,
        });
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data = [0x00u8, 0x0b, 0x04, 0x16, 0xff];
        let text = to_hex_string(&data);
        assert_eq!(text, "00 0b 04 16 ff");
        assert_eq!(from_hex_string(&text).unwrap(), data);
    }

    #[test]
    fn from_hex_rejects_garbage() {
        assert!(from_hex_string("zz").is_none());
        assert!(from_hex_string("0").is_none());
        assert!(from_hex_string("000").is_none());
        assert_eq!(from_hex_string("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn from_hex_rejects_sign_prefixed_tokens() {
        // Regression: `u8::from_str_radix` accepts a sign prefix, so "+f"
        // (two bytes, passes the length check) silently parsed as 0x0f.
        // No hex dump contains signs — such tokens mean corrupt input.
        assert!(from_hex_string("+f").is_none());
        assert!(from_hex_string("-1").is_none());
        assert!(from_hex_string("0b +4 16").is_none());
        assert!(from_hex_string("0x").is_none());
    }

    #[test]
    fn find_all_offsets() {
        let data = [1u8, 2, 3, 1, 2, 3, 1, 2];
        assert_eq!(find_all(&data, &[1, 2, 3]), vec![0, 3]);
        assert_eq!(find_all(&data, &[9]), Vec::<usize>::new());
        assert_eq!(find_all(&data, &[]), Vec::<usize>::new());
        assert_eq!(find_all(&[1], &[1, 2]), Vec::<usize>::new());
    }

    #[test]
    fn scans_paper_example_bytes() {
        // Reconstruct the Fig 11a byte stream: "0b 04 16" + LE address
        // 0a 71 da 7d 1b 00 + LE key ending c4.
        let mut stream = vec![0x00, 0x00, 0x01]; // leading noise + H4 byte
        stream.extend_from_slice(&[0x0b, 0x04, 0x16]);
        stream.extend_from_slice(&[0x0a, 0x71, 0xda, 0x7d, 0x1b, 0x00]);
        let key_le: Vec<u8> = (0u8..16).rev().collect();
        stream.extend_from_slice(&key_le);
        stream.extend_from_slice(&[0xde, 0xad]); // trailing noise

        let matches = scan_link_key_replies(&stream);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].offset, 3);
        assert_eq!(matches[0].addr_le, [0x0a, 0x71, 0xda, 0x7d, 0x1b, 0x00]);
        assert_eq!(matches[0].key_le.to_vec(), key_le);
    }

    #[test]
    fn truncated_candidate_skipped() {
        let mut stream = vec![0x0b, 0x04, 0x16];
        stream.extend_from_slice(&[0u8; 10]); // not enough for addr+key
        assert!(scan_link_key_replies(&stream).is_empty());
    }

    #[test]
    fn multiple_keys_found() {
        let mut stream = Vec::new();
        for n in 0..3u8 {
            stream.extend_from_slice(&[0x0b, 0x04, 0x16]);
            stream.extend_from_slice(&[n; 6]);
            stream.extend_from_slice(&[n; 16]);
            stream.extend_from_slice(&[0x00; 7]); // inter-packet noise
        }
        assert_eq!(scan_link_key_replies(&stream).len(), 3);
    }
}
