//! Property tests for the capture formats: btsnoop containers, hex
//! conversion and the USB key scan.

use blap_hci::PacketDirection;
use blap_snoop::btsnoop::{self, SnoopRecord};
use blap_snoop::{hexconv, redact};
use blap_types::Instant;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = SnoopRecord> {
    (
        0u64..1_000_000_000,
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(ts, sent, data)| SnoopRecord {
            timestamp: Instant::from_micros(ts),
            direction: if sent {
                PacketDirection::Sent
            } else {
                PacketDirection::Received
            },
            data,
        })
}

proptest! {
    #[test]
    fn btsnoop_round_trip(records in proptest::collection::vec(arb_record(), 0..32)) {
        let bytes = btsnoop::write_file(&records);
        prop_assert_eq!(btsnoop::read_file(&bytes).unwrap(), records);
    }

    #[test]
    fn btsnoop_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = btsnoop::read_file(&bytes);
    }

    #[test]
    fn truncated_files_error_cleanly(records in proptest::collection::vec(arb_record(), 1..8),
                                     cut_fraction in 0.0f64..1.0) {
        let bytes = btsnoop::write_file(&records);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            // Either parses a prefix... no: our format has no sync points,
            // so a strict parser must reject any cut inside a record.
            let result = btsnoop::read_file(&bytes[..cut]);
            if cut >= 16 {
                // Cuts on exact record boundaries are legal prefixes.
                if result.is_ok() {
                    let parsed = result.unwrap();
                    prop_assert!(parsed.len() <= records.len());
                    prop_assert_eq!(&records[..parsed.len()], &parsed[..]);
                }
            } else {
                prop_assert!(result.is_err());
            }
        }
    }

    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let text = hexconv::to_hex_string(&data);
        prop_assert_eq!(hexconv::from_hex_string(&text).unwrap(), data);
    }

    #[test]
    fn find_all_finds_planted_needles(prefix in proptest::collection::vec(any::<u8>(), 0..32),
                                      suffix in proptest::collection::vec(any::<u8>(), 0..32)) {
        let needle = [0x0b, 0x04, 0x16];
        let mut haystack = prefix.clone();
        haystack.extend_from_slice(&needle);
        haystack.extend_from_slice(&suffix);
        let offsets = hexconv::find_all(&haystack, &needle);
        prop_assert!(offsets.contains(&prefix.len()));
    }

    #[test]
    fn scan_extracts_planted_key(noise_before in proptest::collection::vec(any::<u8>(), 0..64),
                                 addr in any::<[u8; 6]>(),
                                 key in any::<[u8; 16]>()) {
        // Avoid accidental pattern collisions in the noise prefix.
        prop_assume!(hexconv::find_all(&noise_before, &[0x0b, 0x04]).is_empty());
        let mut stream = noise_before.clone();
        stream.extend_from_slice(&[0x0b, 0x04, 0x16]);
        stream.extend_from_slice(&addr);
        stream.extend_from_slice(&key);
        let matches = hexconv::scan_link_key_replies(&stream);
        prop_assert!(matches.iter().any(|m| m.addr_le == addr && m.key_le == key));
    }

    #[test]
    fn redaction_never_panics_and_preserves_length(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut copy = bytes.clone();
        let _ = redact::redact_link_keys(&mut copy);
        prop_assert_eq!(copy.len(), bytes.len());
        let mut copy2 = bytes.clone();
        let _ = redact::encrypt_sensitive_payload(&mut copy2, 42);
        prop_assert_eq!(copy2.len(), bytes.len());
    }

    #[test]
    fn payload_encryption_is_an_involution(addr in any::<[u8; 6]>(), key in any::<[u8; 16]>(),
                                           seed in any::<u64>()) {
        use blap_hci::{Command, HciPacket};
        let packet = HciPacket::Command(Command::LinkKeyRequestReply {
            bd_addr: blap_types::BdAddr::from_le_bytes(addr),
            link_key: blap_types::LinkKey::from_le_bytes(key),
        });
        let original = packet.encode();
        let mut bytes = original.clone();
        prop_assert!(redact::encrypt_sensitive_payload(&mut bytes, seed));
        prop_assert!(redact::encrypt_sensitive_payload(&mut bytes, seed));
        prop_assert_eq!(bytes, original);
    }
}
