//! Criterion bench for Table I: times the full link key extraction attack
//! (bond setup + Fig 5 procedure + impersonation validation) per soft
//! target class, and the extraction-only step on a captured dump.

use blap::link_key_extraction::ExtractionScenario;
use blap_sim::profiles;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_full_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/full_attack");
    group.sample_size(10);
    group.bench_function("android_snoop_target", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ExtractionScenario::new(profiles::nexus_5x_a8(), seed).run()
        });
    });
    group.bench_function("windows_usb_target", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ExtractionScenario::new(profiles::windows_ms_driver(), seed).run()
        });
    });
    group.finish();
}

fn bench_extraction_step(c: &mut Criterion) {
    // Prepare one attacked world, then time only the dump-parsing step the
    // attacker repeats offline.
    use blap_sim::World;
    use blap_types::Duration;
    let mut world = World::new(1);
    let phone =
        world.add_device(profiles::lg_velvet().victim_phone_with_snoop("11:11:11:11:11:11"));
    let _kit = world.add_device(profiles::car_kit("cc:cc:cc:cc:cc:cc"));
    world
        .device_mut(phone)
        .host
        .pair_with("cc:cc:cc:cc:cc:cc".parse().unwrap());
    world.run_for(Duration::from_secs(5));
    let dump = world.device(phone).bug_report().expect("snoop on");
    let peer: blap_types::BdAddr = "cc:cc:cc:cc:cc:cc".parse().unwrap();

    let mut group = c.benchmark_group("table1/extraction_step");
    group.bench_function("parse_snoop_and_find_key", |b| {
        b.iter_batched(
            || dump.clone(),
            |bytes| {
                let trace = blap_snoop::log::HciTrace::from_btsnoop_bytes(&bytes).expect("valid");
                trace.link_key_for(peer)
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_full_attack, bench_extraction_step);
criterion_main!(benches);
