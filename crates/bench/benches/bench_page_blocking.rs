//! Criterion bench for Table II: times one baseline race trial and one
//! page blocking trial (the building blocks of the 100-trial table), and
//! reports the measured success rates as a side effect.

use blap::page_blocking::PageBlockingScenario;
use blap_sim::profiles;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/trial");
    group.sample_size(10);

    group.bench_function("baseline_race_trial", |b| {
        let scenario = PageBlockingScenario::new(profiles::galaxy_s8(), 7);
        let mut trial = 0;
        b.iter(|| {
            trial += 1;
            scenario.run_baseline_trial(trial)
        });
    });

    group.bench_function("page_blocking_trial", |b| {
        let scenario = PageBlockingScenario::new(profiles::galaxy_s8(), 7);
        let mut trial = 0;
        b.iter(|| {
            trial += 1;
            scenario.run_blocking_trial(trial)
        });
    });
    group.finish();
}

fn bench_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/row");
    group.sample_size(10);
    group.bench_function("ten_trials_each_condition", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut scenario = PageBlockingScenario::new(profiles::pixel_2_xl(), seed);
            scenario.trials = 10;
            scenario.run()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_trials, bench_row);
criterion_main!(benches);
