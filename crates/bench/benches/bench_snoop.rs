//! Criterion bench for the observation channels: btsnoop serialization,
//! parsing, and the USB `0b 04 16` pattern scan over noisy captures of
//! increasing size.

use blap_hci::{Command, HciPacket, PacketDirection};
use blap_snoop::btsnoop::SnoopRecord;
use blap_snoop::{btsnoop, hexconv};
use blap_types::{BdAddr, Instant, LinkKey};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sample_records(n: usize) -> Vec<SnoopRecord> {
    let addr: BdAddr = "00:1b:7d:da:71:0a".parse().expect("valid");
    let key: LinkKey = "c4f16e949f04ee9c0fd6b1023389c324".parse().expect("valid");
    (0..n)
        .map(|i| {
            let packet = if i % 37 == 0 {
                HciPacket::Command(Command::LinkKeyRequestReply {
                    bd_addr: addr,
                    link_key: key,
                })
            } else {
                HciPacket::Command(Command::AuthenticationRequested {
                    handle: blap_types::ConnectionHandle::new((i % 7 + 1) as u16),
                })
            };
            SnoopRecord {
                timestamp: Instant::from_micros(i as u64 * 100),
                direction: PacketDirection::Sent,
                data: packet.encode(),
            }
        })
        .collect()
}

fn bench_btsnoop(c: &mut Criterion) {
    let mut group = c.benchmark_group("snoop/btsnoop");
    for n in [100usize, 1000, 10_000] {
        let records = sample_records(n);
        let bytes = btsnoop::write_file(&records);
        group.bench_with_input(BenchmarkId::new("write", n), &records, |b, r| {
            b.iter(|| btsnoop::write_file(black_box(r)))
        });
        group.bench_with_input(BenchmarkId::new("read", n), &bytes, |b, bytes| {
            b.iter(|| btsnoop::read_file(black_box(bytes)).expect("valid"))
        });
    }
    group.finish();
}

fn bench_usb_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("snoop/usb_scan");
    for kb in [16usize, 256, 1024, 4096] {
        // Noise-dominated stream with a handful of key packets inside.
        // The noise is pseudo-random rather than zeroed so the scan's
        // first-byte skip sees a realistic density of false `0b` starts
        // (~1 per 256 bytes) instead of an unrealistically clean stream.
        let mut noise_state = 0x2545_f491_4f6c_dd1du64;
        let mut stream: Vec<u8> = (0..kb * 1024)
            .map(|_| {
                noise_state = noise_state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (noise_state >> 56) as u8
            })
            .collect();
        let reply = HciPacket::Command(Command::LinkKeyRequestReply {
            bd_addr: "00:1b:7d:da:71:0a".parse().expect("valid"),
            link_key: "c4f16e949f04ee9c0fd6b1023389c324".parse().expect("valid"),
        })
        .encode();
        for slot in 0..8 {
            let offset = slot * (stream.len() / 8) + 11;
            stream[offset..offset + reply.len() - 1].copy_from_slice(&reply[1..]);
        }
        group.bench_with_input(
            BenchmarkId::new("scan_link_key_replies", format!("{kb}KiB")),
            &stream,
            |b, s| b.iter(|| hexconv::scan_link_key_replies(black_box(s)).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_btsnoop, bench_usb_scan);
criterion_main!(benches);
