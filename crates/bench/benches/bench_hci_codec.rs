//! Criterion bench for the HCI codec: encode/decode throughput of the
//! packets that dominate a capture, including the key-bearing ones the
//! extraction attack scans for.

use blap_hci::{Command, Event, HciPacket};
use blap_types::{BdAddr, ConnectionHandle, LinkKey, LinkKeyType};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn packets() -> Vec<HciPacket> {
    let addr: BdAddr = "00:1b:7d:da:71:0a".parse().expect("valid");
    let key: LinkKey = "c4f16e949f04ee9c0fd6b1023389c324".parse().expect("valid");
    vec![
        HciPacket::Command(Command::CreateConnection {
            bd_addr: addr,
            allow_role_switch: true,
        }),
        HciPacket::Command(Command::LinkKeyRequestReply {
            bd_addr: addr,
            link_key: key,
        }),
        HciPacket::Event(Event::ConnectionComplete {
            status: blap_hci::StatusCode::Success,
            handle: ConnectionHandle::new(6),
            bd_addr: addr,
            encryption_enabled: false,
        }),
        HciPacket::Event(Event::LinkKeyNotification {
            bd_addr: addr,
            link_key: key,
            key_type: LinkKeyType::UnauthenticatedP256,
        }),
    ]
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("hci/codec");
    let pkts = packets();
    group.bench_function("encode_4_packets", |b| {
        b.iter(|| {
            pkts.iter()
                .map(|p| black_box(p).encode().len())
                .sum::<usize>()
        })
    });
    group.bench_function("encode_into_4_packets", |b| {
        // The zero-alloc steady-state path: one warm scratch buffer reused
        // across every packet, as `Device::record_hci` does.
        let mut buf = Vec::with_capacity(64);
        b.iter(|| {
            let mut total = 0usize;
            for p in &pkts {
                buf.clear();
                black_box(p).encode_into(&mut buf);
                total += buf.len();
            }
            total
        })
    });
    let encoded: Vec<Vec<u8>> = pkts.iter().map(|p| p.encode()).collect();
    group.bench_function("decode_4_packets", |b| {
        b.iter(|| {
            encoded
                .iter()
                .map(|bytes| HciPacket::decode(black_box(bytes)).expect("valid"))
                .collect::<Vec<_>>()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
