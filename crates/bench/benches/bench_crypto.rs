//! Criterion bench for the crypto substrate: the primitives every simulated
//! pairing runs (P-256 ECDH, f2 key derivation, h4/h5 authentication,
//! legacy E1) — useful for sizing how much of a trial's wall time is math.

use blap_crypto::e1;
use blap_crypto::p256::{KeyPair, Scalar};
use blap_crypto::{hmac, sha256, ssp};
use blap_types::{BdAddr, LinkKey};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/hash");
    let data = vec![0xA5u8; 1024];
    group.bench_function("sha256_1k", |b| b.iter(|| sha256::digest(black_box(&data))));
    group.bench_function("hmac_sha256_1k", |b| {
        b.iter(|| hmac::hmac_sha256(black_box(b"key"), black_box(&data)))
    });
    group.finish();
}

fn bench_p256(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/p256");
    group.sample_size(10);
    group.bench_function("keygen", |b| {
        // seed[31] stays 1 so the scalar never reduces to zero, whatever
        // the wrapping counter does.
        let mut seed = [0u8; 32];
        seed[31] = 1;
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            seed[0] = i;
            KeyPair::from_rng_bytes(black_box(seed)).expect("valid")
        })
    });
    let alice = KeyPair::from_secret(Scalar::from_be_bytes([0x42; 32])).expect("valid");
    let bob = KeyPair::from_secret(Scalar::from_be_bytes([0x17; 32])).expect("valid");
    group.bench_function("diffie_hellman", |b| {
        b.iter(|| {
            alice
                .diffie_hellman(black_box(&bob.public()))
                .expect("valid")
        })
    });
    group.finish();
}

fn bench_pairing_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/ssp");
    let w = [0xAB; 32];
    let n1 = [1u8; 16];
    let n2 = [2u8; 16];
    let a1: BdAddr = "aa:aa:aa:aa:aa:aa".parse().expect("valid");
    let a2: BdAddr = "bb:bb:bb:bb:bb:bb".parse().expect("valid");
    group.bench_function("f2_link_key_derivation", |b| {
        b.iter(|| ssp::f2(black_box(&w), &n1, &n2, a1, a2))
    });
    let key: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse().expect("valid");
    group.bench_function("h4_h5_secure_authentication", |b| {
        b.iter(|| ssp::secure_authentication_response(black_box(&key), a1, a2, &n1, &n2))
    });
    group.bench_function("legacy_e1", |b| b.iter(|| e1::e1(black_box(&key), &n1, a1)));
    group.bench_function("legacy_e1_reused_schedules", |b| {
        // The E1Key context expands both SAFER+ schedules once; the gap to
        // `legacy_e1` is the per-call key-expansion cost.
        let ctx = e1::E1Key::new(&key);
        b.iter(|| black_box(&ctx).e1(&n1, a1))
    });
    group.bench_function("legacy_e22", |b| {
        b.iter(|| e1::e22(black_box(&n1), b"1234", a1))
    });
    group.finish();
}

fn bench_link_encryption(c: &mut Criterion) {
    use blap_crypto::{aes::Aes128, ccm};
    let mut group = c.benchmark_group("crypto/link_encryption");
    let key = [0x42u8; 16];
    group.bench_function("aes128_block", |b| {
        let aes = Aes128::new(&key);
        let block = [0xA5u8; 16];
        b.iter(|| aes.encrypt_block(black_box(&block)))
    });
    let nonce = [7u8; 13];
    let payload = vec![0x5Au8; 64];
    group.bench_function("ccm_encrypt_64B", |b| {
        b.iter(|| ccm::encrypt(&key, &nonce, b"hd", black_box(&payload)).expect("fits"))
    });
    let ct = ccm::encrypt(&key, &nonce, b"hd", &payload).expect("fits");
    group.bench_function("ccm_decrypt_64B", |b| {
        b.iter(|| ccm::decrypt(&key, &nonce, b"hd", black_box(&ct)).expect("valid"))
    });
    // Context-reuse variants: the session key is fixed, so the AES key
    // schedule is expanded once — the shape of the eavesdrop kernel and
    // the sniffer's per-link encryption.
    let ccm_ctx = ccm::Ccm::new(&key);
    group.bench_function("ccm_seal_64B_reused_key", |b| {
        b.iter(|| {
            black_box(&ccm_ctx)
                .seal(&nonce, b"hd", black_box(&payload))
                .expect("fits")
        })
    });
    group.bench_function("ccm_open_64B_reused_key", |b| {
        b.iter(|| {
            black_box(&ccm_ctx)
                .open(&nonce, b"hd", black_box(&ct))
                .expect("valid")
        })
    });
    group.finish();
}

fn bench_ccm_batch(c: &mut Criterion) {
    use blap_crypto::aes::{Aes128, PARALLEL_BLOCKS};
    use blap_crypto::ccm::{self, Ccm, OpenBatch, SealedFrame, FRAME_LANES, KEY_LANES};
    let mut group = c.benchmark_group("crypto/ccm_batch");
    let key = [0x42u8; 16];

    // The raw interleaved kernel: per-block cost = this / PARALLEL_BLOCKS,
    // compare against crypto/link_encryption's aes128_block.
    let aes = Aes128::new(&key);
    let blocks: [[u8; 16]; PARALLEL_BLOCKS] = core::array::from_fn(|i| [i as u8; 16]);
    group.bench_function("encrypt_blocks_x8", |b| {
        b.iter(|| aes.encrypt_blocks(black_box(&blocks)))
    });

    // The batched open over the hotpaths frame shape (4 full chunks plus a
    // ragged tail of 64-byte frames); per-frame cost = this / 35.
    let ccm_ctx = Ccm::new(&key);
    let payload = vec![0x5Au8; 64];
    let sealed: Vec<([u8; 13], Vec<u8>)> = (0..4 * FRAME_LANES + 3)
        .map(|i| {
            let mut nonce = [7u8; 13];
            nonce[0] = i as u8;
            let ct = ccm_ctx.seal(&nonce, b"hd", &payload).expect("fits");
            (nonce, ct)
        })
        .collect();
    let views: Vec<SealedFrame<'_>> = sealed
        .iter()
        .map(|(nonce, ct)| SealedFrame {
            nonce: *nonce,
            aad: b"hd",
            ciphertext_and_tag: ct,
        })
        .collect();
    let mut out = OpenBatch::new();
    group.bench_function("open_many_into_35x64B", |b| {
        b.iter(|| {
            ccm_ctx.open_many_into(black_box(&views), &mut out);
            black_box(&out);
        })
    });

    // The multi-key confirmation lane: one frame verified under KEY_LANES
    // candidate session keys at once (per-key cost = this / 8).
    let ccms: Vec<Ccm> = (0..KEY_LANES as u8).map(|i| Ccm::new(&[i; 16])).collect();
    let refs: [&Ccm; KEY_LANES] = core::array::from_fn(|i| &ccms[i]);
    let probe = ccms[3].seal(&[7u8; 13], b"hd", &payload).expect("fits");
    let mut scratch = Vec::new();
    group.bench_function("open_check_keys_x8", |b| {
        b.iter(|| {
            black_box(ccm::open_check_keys(
                refs,
                &[7u8; 13],
                b"hd",
                black_box(&probe),
                &mut scratch,
            ))
        })
    });
    group.finish();
}

fn bench_batch_kernels(c: &mut Criterion) {
    use blap_crypto::batch::{self, Batch16, E1Batch, KeyScheduleBatch};
    let mut group = c.benchmark_group("crypto/batch16");
    // Every figure here covers 16 lanes; divide by 16 to compare against
    // the scalar `crypto/ssp` numbers.
    let keys: [[u8; 16]; 16] =
        core::array::from_fn(|lane| core::array::from_fn(|i| (lane * 16 + i) as u8));
    let key_batch = Batch16::from_lanes(&keys);
    let block = Batch16::splat(&[0xA5u8; 16]);
    let addr: BdAddr = "aa:aa:aa:aa:aa:aa".parse().expect("valid");
    let addr_ext = batch::expand_addr_splat(addr);
    group.bench_function("key_schedule_x16", |b| {
        b.iter(|| KeyScheduleBatch::new(black_box(&key_batch)))
    });
    let sched = KeyScheduleBatch::new(&key_batch);
    group.bench_function("encrypt_x16", |b| {
        b.iter(|| batch::encrypt_batch(black_box(&sched), &block))
    });
    group.bench_function("encrypt_prime_x16", |b| {
        b.iter(|| batch::encrypt_prime_batch(black_box(&sched), &block))
    });
    group.bench_function("e21_x16", |b| {
        b.iter(|| batch::e21_batch(black_box(&key_batch), &addr_ext))
    });
    let e1_ctx = E1Batch::new(&key_batch);
    group.bench_function("e1_output_x16_reused_schedules", |b| {
        b.iter(|| black_box(&e1_ctx).e1_output(&block, &addr_ext))
    });
    group.finish();
}

fn bench_pin_crack(c: &mut Criterion) {
    use blap::legacy_pin::{crack_numeric_pin, LegacyPairingCapture, PinCracker};
    use blap_crypto::batch::Batch16;
    use blap_crypto::e1::AugmentedPin;
    let mut group = c.benchmark_group("crypto/pin_crack");
    group.sample_size(10);
    let capture = LegacyPairingCapture::synthesize(
        "11:11:11:11:11:11".parse().expect("valid"),
        "00:1b:7d:da:71:0a".parse().expect("valid"),
        b"982",
        [0xA1; 16],
        [0xB2; 16],
        [0xC3; 16],
        [0xD4; 16],
    );
    group.bench_function("three_digit_pin", |b| {
        b.iter(|| crack_numeric_pin(black_box(&capture), 3).expect("found"))
    });
    // A deep 4-digit search (candidate 9638 of 11 110): the case the
    // chunked parallel search and the allocation-free candidate odometer
    // are meant to speed up.
    let deep = LegacyPairingCapture::synthesize(
        "11:11:11:11:11:11".parse().expect("valid"),
        "00:1b:7d:da:71:0a".parse().expect("valid"),
        b"8527",
        [0xA1; 16],
        [0xB2; 16],
        [0xC3; 16],
        [0xD4; 16],
    );
    group.bench_function("four_digit_pin", |b| {
        b.iter(|| crack_numeric_pin(black_box(&deep), 4).expect("found"))
    });
    // One batched verdict: the full E22→E21→E1 recomputation chain for 16
    // candidates against the hoisted capture context — the inner-loop unit
    // of the sweep (per-candidate cost = this / 16).
    let cracker = PinCracker::new(&deep);
    let mut aug = AugmentedPin::new(b"0000", deep.responder);
    let e22_y = Batch16::splat(&aug.e22_input(&deep.in_rand));
    let keys: [[u8; 16]; 16] = core::array::from_fn(|lane| {
        aug.set_pin(format!("{lane:04}").as_bytes());
        aug.safer_key()
    });
    let pin_keys = Batch16::from_lanes(&keys);
    group.bench_function("check_batch_x16", |b| {
        b.iter(|| black_box(&cracker).check_batch(&e22_y, black_box(&pin_keys)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_p256,
    bench_pairing_functions,
    bench_link_encryption,
    bench_ccm_batch,
    bench_batch_kernels,
    bench_pin_crack
);
criterion_main!(benches);
