//! Criterion bench for the ablation sweeps (DESIGN.md's design-choice
//! experiments): PLOC keep-alive sweep cost and the race-model sampler.

use blap::ablation;
use blap_baseband::race::PageRaceModel;
use blap_sim::profiles;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("ploc_two_point_sweep", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            ablation::ploc_delay_sweep(profiles::galaxy_s8(), &[2, 25], 2, seed)
        })
    });
    group.bench_function("race_sampler_10k", |b| {
        let model = PageRaceModel::from_attacker_win_rate(0.42);
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            (0..10_000)
                .filter(|_| {
                    matches!(
                        model.sample_race(black_box(&mut rng)).winner,
                        blap_baseband::race::RaceWinner::Attacker
                    )
                })
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
