//! Captures the toolchain identity at build time so the hotpaths artifact
//! can carry a host fingerprint (`compare` uses it to decide whether a
//! wall-time delta is comparable or cross-machine noise).

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_owned());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=BLAP_BUILD_RUSTC={version}");
    println!(
        "cargo:rustc-env=BLAP_BUILD_TARGET={}",
        std::env::var("TARGET").unwrap_or_else(|_| "unknown".to_owned())
    );
    println!("cargo:rerun-if-changed=build.rs");
}
