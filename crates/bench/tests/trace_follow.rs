//! Tail-follow contract of `blap-trace check --follow` / `timeline
//! --follow`: a growing trace is analyzed to completion once the file
//! goes idle, and the torn final record a killed writer leaves behind
//! is a stderr warning — not a fatal parse error — in follow mode only.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use blap::runner::Jobs;

fn blap_trace() -> Command {
    Command::new(env!("CARGO_BIN_EXE_blap-trace"))
}

/// A small but real JSONL trace (clean: no invariant violations).
fn sample_trace() -> String {
    blap_bench::run_table2_observed_with(1701, 1, Jobs::serial()).trace
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blap-trace-follow-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn append(path: &PathBuf, bytes: &[u8]) {
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .expect("open for append");
    file.write_all(bytes).expect("append");
    file.flush().expect("flush");
}

#[test]
fn follow_analyzes_a_jsonl_trace_written_after_start() {
    // The follower starts on an *empty* file — the campaign has created
    // the sidecar but written nothing — so this also exercises the
    // wait-for-format-sniff path.
    let trace = sample_trace();
    let path = temp_path("grows.jsonl");
    std::fs::write(&path, "").expect("create empty");
    let child = blap_trace()
        .args([
            "check",
            path.to_str().expect("utf8"),
            "--follow",
            "--idle-ms",
            "1200",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn blap-trace");
    // Two appends with a pause between them: the follower must pick up
    // growth, not just whatever existed at open time.
    let half = trace.len() / 2;
    std::thread::sleep(Duration::from_millis(300));
    append(&path, &trace.as_bytes()[..half]);
    std::thread::sleep(Duration::from_millis(300));
    append(&path, &trace.as_bytes()[half..]);
    let output = child.wait_with_output().expect("wait");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "follow must exit 0 on a clean trace\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("OK: all invariants hold"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn follow_tolerates_a_torn_final_jsonl_line() {
    // A campaign killed mid-append (--stop-after injection) leaves a
    // half line with no newline. One-shot check treats that as the
    // corruption it cannot distinguish it from; follow mode knows the
    // writer is gone (idle timeout passed) and reports on the prefix.
    let trace = sample_trace();
    let last_line = trace.lines().last().expect("nonempty trace");
    let torn = format!("{trace}{}", &last_line[..last_line.len() / 2]);
    let path = temp_path("torn.jsonl");
    std::fs::write(&path, torn).expect("write");

    let output = blap_trace()
        .args(["check", path.to_str().expect("utf8")])
        .output()
        .expect("run");
    assert_eq!(
        output.status.code(),
        Some(2),
        "one-shot check must stay fatal on a torn tail"
    );

    let output = blap_trace()
        .args([
            "check",
            path.to_str().expect("utf8"),
            "--follow",
            "--idle-ms",
            "200",
        ])
        .output()
        .expect("run");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "follow must tolerate the torn tail\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stderr.contains("torn final line"), "{stderr}");
    assert!(stdout.contains("OK: all invariants hold"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn follow_analyzes_a_binary_trace_split_mid_frame() {
    // Convert the sample to BLAPTRC1, then feed it to a follower in two
    // chunks split at an arbitrary byte offset — almost certainly mid
    // frame — so the reader must block inside a frame until the writer
    // finishes it.
    let trace = sample_trace();
    let jsonl = temp_path("sample.jsonl");
    let binary = temp_path("sample.bin");
    std::fs::write(&jsonl, &trace).expect("write");
    let status = blap_trace()
        .args([
            "convert",
            jsonl.to_str().expect("utf8"),
            binary.to_str().expect("utf8"),
        ])
        .status()
        .expect("convert");
    assert!(status.success());
    let bytes = std::fs::read(&binary).expect("read binary");

    let path = temp_path("grows.bin");
    let half = bytes.len() / 2;
    std::fs::write(&path, &bytes[..half]).expect("write first half");
    let child = blap_trace()
        .args([
            "timeline",
            path.to_str().expect("utf8"),
            "--follow",
            "--idle-ms",
            "1200",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn blap-trace");
    std::thread::sleep(Duration::from_millis(300));
    append(&path, &bytes[half..]);
    let output = child.wait_with_output().expect("wait");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "binary follow must exit 0\nstdout: {stdout}\nstderr: {stderr}"
    );
    let lines = trace.lines().count();
    assert!(
        stdout.contains(&format!("{lines} lines")),
        "timeline must see every frame: {stdout}"
    );
    for file in [&jsonl, &binary, &path] {
        let _ = std::fs::remove_file(file);
    }
}

#[test]
fn follow_tolerates_a_torn_final_frame_but_not_interior_corruption() {
    let trace = sample_trace();
    let jsonl = temp_path("frame-sample.jsonl");
    let binary = temp_path("frame-sample.bin");
    std::fs::write(&jsonl, &trace).expect("write");
    let status = blap_trace()
        .args([
            "convert",
            jsonl.to_str().expect("utf8"),
            binary.to_str().expect("utf8"),
        ])
        .status()
        .expect("convert");
    assert!(status.success());
    let bytes = std::fs::read(&binary).expect("read binary");

    // A torn extra frame after the complete stream — a 20-byte length
    // prefix with only 17 payload bytes on disk, exactly what a writer
    // killed mid-frame leaves: fatal one-shot, warned-and-tolerated in
    // follow (where the complete prefix still checks clean).
    let path = temp_path("torn.bin");
    let mut torn = bytes.clone();
    torn.push(20);
    torn.extend_from_slice(&[0u8; 17]);
    std::fs::write(&path, &torn).expect("write torn");
    let output = blap_trace()
        .args(["check", path.to_str().expect("utf8")])
        .output()
        .expect("run");
    assert_eq!(output.status.code(), Some(2), "one-shot stays fatal");
    let output = blap_trace()
        .args([
            "check",
            path.to_str().expect("utf8"),
            "--follow",
            "--idle-ms",
            "200",
        ])
        .output()
        .expect("run");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "follow must tolerate the torn final frame\nstderr: {stderr}"
    );
    assert!(stderr.contains("torn final frame"), "{stderr}");

    // Structural corruption — here a complete length prefix claiming a
    // payload past the codec's hard limit — is NOT a torn tail and must
    // stay fatal even in follow mode.
    let mut corrupt = bytes.clone();
    corrupt.extend_from_slice(&[0x80, 0x80, 0x80, 0x01]); // varint 2^21 > MAX_PAYLOAD
    std::fs::write(&path, &corrupt).expect("write corrupt");
    let output = blap_trace()
        .args([
            "check",
            path.to_str().expect("utf8"),
            "--follow",
            "--idle-ms",
            "200",
        ])
        .output()
        .expect("run");
    assert_eq!(
        output.status.code(),
        Some(2),
        "structural corruption must stay fatal under --follow: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    for file in [&jsonl, &binary, &path] {
        let _ = std::fs::remove_file(file);
    }
}

#[test]
fn idle_ms_without_follow_is_a_usage_error() {
    let output = blap_trace()
        .args(["check", "whatever.jsonl", "--idle-ms", "5"])
        .output()
        .expect("run");
    assert_eq!(output.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("--idle-ms requires --follow"),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
