//! Exit-code contract of the `pincrack` binary's argument validation.

use std::process::Command;

fn pincrack() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pincrack"))
}

#[test]
fn out_of_range_digits_exit_two_with_a_clear_error() {
    // 0 is a degenerate empty space; 17 is past the E22 bound; 20 used to
    // overflow the u64 space computation before validation caught it.
    for digits in ["0", "17", "20", "4294967295"] {
        let output = pincrack()
            .args(["4821", "--digits", digits])
            .output()
            .expect("binary runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "--digits {digits} must be a usage error"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("between 1 and 16"),
            "--digits {digits}: error must state the valid range, got {stderr:?}"
        );
    }
}

#[test]
fn non_numeric_digits_exit_two() {
    let output = pincrack()
        .args(["4821", "--digits", "six"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--digits"));
}

#[test]
fn one_digit_sweep_succeeds() {
    // The smallest valid space (10 candidates) must still crack.
    let output = pincrack()
        .args(["7", "1", "--digits", "1"])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("cracked: PIN \"7\""), "{stdout}");
}
