//! Exit-code contract of the `blap-bench compare` gate, end to end: the
//! same invocations CI runs, against real artifacts on disk.

use std::process::Command;

fn blap_bench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_blap-bench"))
}

/// The committed baseline at the repository root.
fn committed_baseline() -> String {
    format!("{}/../../BENCH_hotpaths.json", env!("CARGO_MANIFEST_DIR"))
}

fn scratch_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("blap_compare_gate_{}_{name}", std::process::id()))
}

/// Byte range of the numeric value following `needle` in `artifact`,
/// ending at the first comma or newline so the metric may sit anywhere in
/// its section.
fn value_span(artifact: &str, needle: &str) -> (usize, usize) {
    let at = artifact.find(needle).expect("artifact has the metric") + needle.len();
    let len = artifact[at..].find([',', '\n']).expect("value terminated");
    (at, at + len)
}

#[test]
fn committed_baseline_against_itself_exits_zero() {
    let baseline = committed_baseline();
    let output = blap_bench()
        .args(["compare", &baseline, &baseline])
        .output()
        .expect("gate binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "self-comparison must pass:\n{stdout}{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("verdict: pass"), "{stdout}");
}

#[test]
fn synthetic_regression_exits_nonzero_and_appends_history() {
    let baseline = std::fs::read_to_string(committed_baseline()).expect("baseline readable");
    // Triple one kernel metric: far past the 35% ns budget. The fresh
    // artifact keeps the baseline's host block (or lack of one), so under
    // --strict the breach cannot be excused either way.
    let needle = "\"legacy_e1\": ";
    let at = baseline.find(needle).expect("baseline has legacy_e1") + needle.len();
    let end = at + baseline[at..].find(',').expect("value terminated");
    let value: f64 = baseline[at..end].trim().parse().expect("numeric value");
    let regressed = format!("{}{:.1}{}", &baseline[..at], value * 3.0, &baseline[end..]);
    let fresh_path = scratch_path("regressed.json");
    let history_path = scratch_path("history.jsonl");
    let _ = std::fs::remove_file(&history_path);
    std::fs::write(&fresh_path, regressed).expect("scratch artifact written");

    let output = blap_bench()
        .args([
            "compare",
            &committed_baseline(),
            fresh_path.to_str().expect("utf8 path"),
            "--strict",
            "--history",
            history_path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("gate binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        output.status.code(),
        Some(1),
        "a same-host regression must exit 1:\n{stdout}"
    );
    assert!(stdout.contains("verdict: regressed"), "{stdout}");
    assert!(stdout.contains("legacy_e1"), "{stdout}");

    let history = std::fs::read_to_string(&history_path).expect("history written");
    assert_eq!(history.trim_end().lines().count(), 1);
    assert!(history.contains("\"verdict\":\"regressed\""), "{history}");
    assert!(history.contains("blap-bench-history-v1"), "{history}");

    let _ = std::fs::remove_file(&fresh_path);
    let _ = std::fs::remove_file(&history_path);
}

#[test]
fn synthetic_throughput_drop_trips_the_floor() {
    let baseline = std::fs::read_to_string(committed_baseline()).expect("baseline readable");
    // Halve the sweep throughput: far below the -25% floor. Unlike the
    // latency metrics a *larger* value must never trip this gate, so the
    // companion check doubles it and expects a pass.
    let (at, end) = value_span(&baseline, "\"pincrack_candidates_per_sec\": ");
    let value: f64 = baseline[at..end].trim().parse().expect("numeric value");
    for (factor, expected_code, expected_verdict) in
        [(0.5, 1, "verdict: regressed"), (2.0, 0, "verdict: pass")]
    {
        let fresh = format!(
            "{}{:.1}{}",
            &baseline[..at],
            value * factor,
            &baseline[end..]
        );
        let fresh_path = scratch_path(&format!("throughput_{expected_code}.json"));
        std::fs::write(&fresh_path, fresh).expect("scratch artifact written");
        let output = blap_bench()
            .args([
                "compare",
                &committed_baseline(),
                fresh_path.to_str().expect("utf8 path"),
                "--strict",
            ])
            .output()
            .expect("gate binary runs");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert_eq!(
            output.status.code(),
            Some(expected_code),
            "throughput x{factor} must exit {expected_code}:\n{stdout}"
        );
        assert!(stdout.contains(expected_verdict), "{stdout}");
        let _ = std::fs::remove_file(&fresh_path);
    }
}

#[test]
fn zero_baseline_skips_lax_and_exits_two_strict() {
    let baseline = std::fs::read_to_string(committed_baseline()).expect("baseline readable");
    // Zero out the throughput metric in a baseline copy: the ratio divides
    // by it, so the gate must either skip it loudly (lax) or refuse the
    // artifact (strict) — never let inf/NaN comparisons decide.
    let (at, end) = value_span(&baseline, "\"pincrack_candidates_per_sec\": ");
    let zeroed = format!("{}0.0{}", &baseline[..at], &baseline[end..]);
    let zero_path = scratch_path("zero_baseline.json");
    std::fs::write(&zero_path, zeroed).expect("scratch artifact written");
    let zero_path = zero_path.to_str().expect("utf8 path");

    let lax = blap_bench()
        .args(["compare", zero_path, &committed_baseline()])
        .output()
        .expect("gate binary runs");
    let stdout = String::from_utf8_lossy(&lax.stdout);
    assert_eq!(
        lax.status.code(),
        Some(0),
        "lax mode skips the metric:\n{stdout}"
    );
    assert!(stdout.contains("ratio undefined"), "{stdout}");
    assert!(stdout.contains("verdict: pass"), "{stdout}");

    let strict = blap_bench()
        .args(["compare", zero_path, &committed_baseline(), "--strict"])
        .output()
        .expect("gate binary runs");
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert_eq!(
        strict.status.code(),
        Some(2),
        "strict mode must reject the artifact:\n{stderr}"
    );
    assert!(stderr.contains("ratio undefined"), "{stderr}");

    let _ = std::fs::remove_file(zero_path);
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["compare"] as &[&str],
        &["compare", "only-one.json"],
        &["frobnicate"],
        &[],
    ] {
        let output = blap_bench().args(args).output().expect("gate binary runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?} must be a usage error"
        );
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("usage:"),
            "args {args:?} must print usage"
        );
    }
}
