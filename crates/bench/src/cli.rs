//! Minimal flag parsing shared by the experiment binaries.
//!
//! Each binary historically took positional arguments only; the
//! observability flags ride alongside them:
//!
//! ```text
//! table2 [trials] [seed] [jobs] --metrics out/metrics.json --trace out/trace.jsonl
//! ```
//!
//! `--jobs N` is equivalent to the positional jobs argument; both beat the
//! `BLAP_JOBS` environment variable, which beats the hardware default.
//! Wall-clock timings are excluded from metrics exports unless
//! `BLAP_METRICS_WALL=1`, keeping the artifact byte-comparable across
//! runs and machines.

use blap::runner::{Jobs, JobsResolution, JOBS_ENV_VAR};
use blap_obs::{export_json, prof, MetaValue, Metrics};

/// Parsed command line: positionals in order, plus the shared flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// Positional arguments, in the order given.
    pub positional: Vec<String>,
    /// `--metrics <path>`: write a metrics.json artifact here.
    pub metrics_path: Option<String>,
    /// `--trace <path>`: write the JSONL trace here.
    pub trace_path: Option<String>,
    /// `--jobs <n>`: explicit worker count (same as the jobs positional).
    pub jobs: Option<String>,
    /// `--profile <prefix>`: enable wall-time profiling and write the
    /// sidecar `<prefix>.json` + `<prefix>.folded` pair.
    pub profile_prefix: Option<String>,
}

impl Args {
    /// Parses `std::env::args` (program name skipped).
    ///
    /// Exits with an error message on a flag with a missing value, a
    /// repeated flag, or an unknown `--flag`; positionals are kept verbatim
    /// for the binary to interpret.
    pub fn parse() -> Args {
        match Args::try_from_iter(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    }

    /// [`Args::parse`] without the exit: returns the parse error instead.
    ///
    /// Repeating `--metrics`, `--trace`, or `--jobs` is an error rather
    /// than last-one-wins: a duplicated artifact flag in a CI job almost
    /// always means a copy-paste mistake silently discarding one artifact.
    pub fn try_from_iter(mut iter: impl Iterator<Item = String>) -> Result<Args, String> {
        fn set(slot: &mut Option<String>, flag: &str, value: Option<String>) -> Result<(), String> {
            let value = value.ok_or_else(|| format!("{flag} requires a value"))?;
            if slot.is_some() {
                return Err(format!("{flag} given more than once"));
            }
            *slot = Some(value);
            Ok(())
        }
        let mut args = Args::default();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--metrics" => set(&mut args.metrics_path, "--metrics", iter.next())?,
                "--trace" => set(&mut args.trace_path, "--trace", iter.next())?,
                "--jobs" => set(&mut args.jobs, "--jobs", iter.next())?,
                "--profile" => set(&mut args.profile_prefix, "--profile", iter.next())?,
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                _ => args.positional.push(arg),
            }
        }
        Ok(args)
    }

    /// The `i`-th positional parsed as `T`, or `default` when absent or
    /// unparseable.
    pub fn positional_or<T: std::str::FromStr>(&self, i: usize, default: T) -> T {
        self.positional
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Enables wall-time profiling when `--profile` was given or
    /// `BLAP_PROF=1` is set. Call once, before the workload runs. The
    /// profile is sidecar-only, so flipping this can never change a
    /// `--metrics`/`--trace` byte.
    pub fn init_profiling(&self) {
        if self.profile_prefix.is_some() {
            prof::set_enabled(true);
        } else {
            prof::enable_from_env();
        }
    }

    /// Drains the profiler and writes `<prefix>.json` + `<prefix>.folded`
    /// when profiling was requested via `--profile`. Call after the
    /// workload finishes.
    pub fn write_profile(&self) {
        let Some(prefix) = &self.profile_prefix else {
            return;
        };
        let report = prof::report();
        write_artifact(&format!("{prefix}.json"), &report.to_json());
        write_artifact(&format!("{prefix}.folded"), &report.to_folded());
        eprintln!("profile sidecar: {prefix}.json, {prefix}.folded");
    }

    /// Resolves the worker count: `--jobs` / positional `i` (CLI), then
    /// `BLAP_JOBS`, then the hardware default. Prints any resolution
    /// warnings (e.g. a zero value falling back) to stderr.
    pub fn resolve_jobs(&self, positional_index: usize) -> Jobs {
        let cli = self
            .jobs
            .clone()
            .or_else(|| self.positional.get(positional_index).cloned());
        let env = std::env::var(JOBS_ENV_VAR).ok();
        let JobsResolution { jobs, warnings, .. } =
            Jobs::resolve_from(cli.as_deref(), env.as_deref());
        for warning in &warnings {
            eprintln!("warning: {warning}");
        }
        jobs
    }
}

/// Writes `contents` to `path`, exiting with a message on failure.
pub fn write_artifact(path: &str, contents: &str) {
    if let Err(err) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {path}: {err}");
        std::process::exit(1);
    }
}

/// Renders and writes a metrics.json artifact.
///
/// `meta` identifies the run (experiment name, seed, ...) and must not
/// contain schedule-dependent values — notably the worker count — because
/// the artifact is byte-compared across parallelism levels. Virtual-time
/// metrics only by default; when `BLAP_METRICS_WALL=1`, the wall-clock
/// duration of the run is appended to the metadata (intentionally opt-in:
/// it breaks byte-comparability between runs).
pub fn write_metrics(
    path: &str,
    meta: &[(&str, MetaValue)],
    metrics: &Metrics,
    wall: std::time::Duration,
) {
    let mut meta = meta.to_vec();
    if std::env::var("BLAP_METRICS_WALL").is_ok_and(|v| v == "1") {
        meta.push(("wall_ms", MetaValue::Int(wall.as_millis() as u64)));
    }
    write_artifact(path, &export_json(&meta, metrics));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        try_parse(tokens).expect("valid command line")
    }

    fn try_parse(tokens: &[&str]) -> Result<Args, String> {
        Args::try_from_iter(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_and_positionals_interleave() {
        let args = parse(&["100", "--metrics", "m.json", "7", "--trace", "t.jsonl"]);
        assert_eq!(args.positional, vec!["100", "7"]);
        assert_eq!(args.metrics_path.as_deref(), Some("m.json"));
        assert_eq!(args.trace_path.as_deref(), Some("t.jsonl"));
        assert_eq!(args.jobs, None);
    }

    #[test]
    fn positional_defaults_apply() {
        let args = parse(&["50"]);
        assert_eq!(args.positional_or(0, 100usize), 50);
        assert_eq!(args.positional_or(1, 2022u64), 2022);
    }

    #[test]
    fn jobs_flag_is_captured() {
        let args = parse(&["--jobs", "4"]);
        assert_eq!(args.jobs.as_deref(), Some("4"));
    }

    #[test]
    fn duplicate_artifact_flags_are_rejected() {
        for flag in ["--metrics", "--trace", "--jobs"] {
            let err = try_parse(&[flag, "a", flag, "b"]).expect_err("duplicate must error");
            assert_eq!(err, format!("{flag} given more than once"));
        }
    }

    #[test]
    fn flag_with_missing_value_names_the_flag() {
        let err = try_parse(&["--metrics"]).expect_err("missing value must error");
        assert_eq!(err, "--metrics requires a value");
        let err = try_parse(&["100", "--trace"]).expect_err("missing value must error");
        assert_eq!(err, "--trace requires a value");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = try_parse(&["--frobnicate"]).expect_err("unknown flag must error");
        assert_eq!(err, "unknown flag --frobnicate");
    }
}
