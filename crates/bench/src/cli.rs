//! Minimal flag parsing shared by the experiment binaries.
//!
//! Each binary historically took positional arguments only; the
//! observability flags ride alongside them:
//!
//! ```text
//! table2 [trials] [seed] [jobs] --metrics out/metrics.json --trace out/trace.jsonl
//! ```
//!
//! `--jobs N` is equivalent to the positional jobs argument; both beat the
//! `BLAP_JOBS` environment variable, which beats the hardware default.
//! Wall-clock timings are excluded from metrics exports unless
//! `BLAP_METRICS_WALL=1`, keeping the artifact byte-comparable across
//! runs and machines.

use blap::runner::{Jobs, JobsResolution, JOBS_ENV_VAR};
use blap_obs::{export_json, prof, MetaValue, Metrics};

/// Parsed command line: positionals in order, plus the shared flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// Positional arguments, in the order given.
    pub positional: Vec<String>,
    /// `--metrics <path>`: write a metrics.json artifact here.
    pub metrics_path: Option<String>,
    /// `--trace <path>`: write the JSONL trace here.
    pub trace_path: Option<String>,
    /// `--jobs <n>`: explicit worker count (same as the jobs positional).
    pub jobs: Option<String>,
    /// `--profile <prefix>`: enable wall-time profiling and write the
    /// sidecar `<prefix>.json` + `<prefix>.folded` pair.
    pub profile_prefix: Option<String>,
    /// Binary-specific valued flags that were present (flag → value), as
    /// declared to [`Args::parse_with`].
    pub extra: Vec<(String, String)>,
    /// Binary-specific boolean switches that were present, as declared to
    /// [`Args::parse_with`].
    pub switches: Vec<String>,
}

impl Args {
    /// Parses `std::env::args` (program name skipped).
    ///
    /// Exits with an error message on a flag with a missing value, a
    /// repeated flag, or an unknown `--flag`; positionals are kept verbatim
    /// for the binary to interpret.
    pub fn parse() -> Args {
        Args::parse_with(&[], &[])
    }

    /// [`Args::parse`] plus binary-specific flags: `valued` flags take one
    /// value (`--digits 6`), `switches` take none (`--reference`). Anything
    /// not in either list still errors as unknown.
    pub fn parse_with(valued: &[&str], switches: &[&str]) -> Args {
        match Args::try_from_iter_with(std::env::args().skip(1), valued, switches) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    }

    /// [`Args::parse`] without the exit: returns the parse error instead.
    pub fn try_from_iter(iter: impl Iterator<Item = String>) -> Result<Args, String> {
        Args::try_from_iter_with(iter, &[], &[])
    }

    /// [`Args::parse_with`] without the exit: returns the parse error
    /// instead.
    ///
    /// Repeating any flag is an error rather than last-one-wins: a
    /// duplicated artifact flag in a CI job almost always means a
    /// copy-paste mistake silently discarding one artifact.
    pub fn try_from_iter_with(
        mut iter: impl Iterator<Item = String>,
        valued: &[&str],
        switches: &[&str],
    ) -> Result<Args, String> {
        fn set(slot: &mut Option<String>, flag: &str, value: Option<String>) -> Result<(), String> {
            let value = value.ok_or_else(|| format!("{flag} requires a value"))?;
            if slot.is_some() {
                return Err(format!("{flag} given more than once"));
            }
            *slot = Some(value);
            Ok(())
        }
        let mut args = Args::default();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--metrics" => set(&mut args.metrics_path, "--metrics", iter.next())?,
                "--trace" => set(&mut args.trace_path, "--trace", iter.next())?,
                "--jobs" => set(&mut args.jobs, "--jobs", iter.next())?,
                "--profile" => set(&mut args.profile_prefix, "--profile", iter.next())?,
                flag if valued.contains(&flag) => {
                    let mut slot = None;
                    if args.extra.iter().any(|(f, _)| f == flag) {
                        return Err(format!("{flag} given more than once"));
                    }
                    set(&mut slot, flag, iter.next())?;
                    args.extra.push((flag.to_owned(), slot.expect("just set")));
                }
                flag if switches.contains(&flag) => {
                    if args.switches.iter().any(|f| f == flag) {
                        return Err(format!("{flag} given more than once"));
                    }
                    args.switches.push(flag.to_owned());
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                _ => args.positional.push(arg),
            }
        }
        Ok(args)
    }

    /// The value of a binary-specific valued flag parsed as `T`, or
    /// `default` when the flag is absent.
    ///
    /// A present-but-unparseable value is an error, not a silent default: a
    /// typo in `--digits` must not quietly run a different search space.
    pub fn extra_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.extra.iter().find(|(f, _)| f == flag) {
            None => Ok(default),
            Some((_, value)) => value
                .parse()
                .map_err(|_| format!("{flag} value {value:?} is not valid")),
        }
    }

    /// Whether a binary-specific boolean switch was present.
    pub fn has_switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|f| f == flag)
    }

    /// The `i`-th positional parsed as `T`, or `default` when absent or
    /// unparseable.
    pub fn positional_or<T: std::str::FromStr>(&self, i: usize, default: T) -> T {
        self.positional
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Enables wall-time profiling when `--profile` was given or
    /// `BLAP_PROF=1` is set. Call once, before the workload runs. The
    /// profile is sidecar-only, so flipping this can never change a
    /// `--metrics`/`--trace` byte.
    pub fn init_profiling(&self) {
        if self.profile_prefix.is_some() {
            prof::set_enabled(true);
        } else {
            prof::enable_from_env();
        }
    }

    /// Drains the profiler and writes `<prefix>.json` + `<prefix>.folded`
    /// when profiling was requested via `--profile`. Call after the
    /// workload finishes.
    pub fn write_profile(&self) {
        let Some(prefix) = &self.profile_prefix else {
            return;
        };
        let report = prof::report();
        write_artifact(&format!("{prefix}.json"), &report.to_json());
        write_artifact(&format!("{prefix}.folded"), &report.to_folded());
        eprintln!("profile sidecar: {prefix}.json, {prefix}.folded");
    }

    /// Resolves the worker count: `--jobs` / positional `i` (CLI), then
    /// `BLAP_JOBS`, then the hardware default. Prints any resolution
    /// warnings (e.g. a zero value falling back) to stderr.
    pub fn resolve_jobs(&self, positional_index: usize) -> Jobs {
        let cli = self
            .jobs
            .clone()
            .or_else(|| self.positional.get(positional_index).cloned());
        let env = std::env::var(JOBS_ENV_VAR).ok();
        let JobsResolution { jobs, warnings, .. } =
            Jobs::resolve_from(cli.as_deref(), env.as_deref());
        for warning in &warnings {
            eprintln!("warning: {warning}");
        }
        jobs
    }
}

/// Writes `contents` to `path`, exiting with a message on failure.
pub fn write_artifact(path: &str, contents: &str) {
    if let Err(err) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {path}: {err}");
        std::process::exit(1);
    }
}

/// Renders and writes a metrics.json artifact.
///
/// `meta` identifies the run (experiment name, seed, ...) and must not
/// contain schedule-dependent values — notably the worker count — because
/// the artifact is byte-compared across parallelism levels. Virtual-time
/// metrics only by default; when `BLAP_METRICS_WALL=1`, the wall-clock
/// duration of the run is appended to the metadata (intentionally opt-in:
/// it breaks byte-comparability between runs).
pub fn write_metrics(
    path: &str,
    meta: &[(&str, MetaValue)],
    metrics: &Metrics,
    wall: std::time::Duration,
) {
    let mut meta = meta.to_vec();
    if std::env::var("BLAP_METRICS_WALL").is_ok_and(|v| v == "1") {
        meta.push(("wall_ms", MetaValue::Int(wall.as_millis() as u64)));
    }
    write_artifact(path, &export_json(&meta, metrics));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        try_parse(tokens).expect("valid command line")
    }

    fn try_parse(tokens: &[&str]) -> Result<Args, String> {
        Args::try_from_iter(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_and_positionals_interleave() {
        let args = parse(&["100", "--metrics", "m.json", "7", "--trace", "t.jsonl"]);
        assert_eq!(args.positional, vec!["100", "7"]);
        assert_eq!(args.metrics_path.as_deref(), Some("m.json"));
        assert_eq!(args.trace_path.as_deref(), Some("t.jsonl"));
        assert_eq!(args.jobs, None);
    }

    #[test]
    fn positional_defaults_apply() {
        let args = parse(&["50"]);
        assert_eq!(args.positional_or(0, 100usize), 50);
        assert_eq!(args.positional_or(1, 2022u64), 2022);
    }

    #[test]
    fn jobs_flag_is_captured() {
        let args = parse(&["--jobs", "4"]);
        assert_eq!(args.jobs.as_deref(), Some("4"));
    }

    #[test]
    fn duplicate_artifact_flags_are_rejected() {
        for flag in ["--metrics", "--trace", "--jobs"] {
            let err = try_parse(&[flag, "a", flag, "b"]).expect_err("duplicate must error");
            assert_eq!(err, format!("{flag} given more than once"));
        }
    }

    #[test]
    fn flag_with_missing_value_names_the_flag() {
        let err = try_parse(&["--metrics"]).expect_err("missing value must error");
        assert_eq!(err, "--metrics requires a value");
        let err = try_parse(&["100", "--trace"]).expect_err("missing value must error");
        assert_eq!(err, "--trace requires a value");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = try_parse(&["--frobnicate"]).expect_err("unknown flag must error");
        assert_eq!(err, "unknown flag --frobnicate");
    }

    fn try_parse_with(tokens: &[&str], valued: &[&str], switches: &[&str]) -> Result<Args, String> {
        Args::try_from_iter_with(tokens.iter().map(|s| s.to_string()), valued, switches)
    }

    #[test]
    fn extra_flags_parse_and_default() {
        let args = try_parse_with(
            &["987654", "--digits", "6", "--reference"],
            &["--digits", "--trials"],
            &["--reference"],
        )
        .expect("valid command line");
        assert_eq!(args.positional, vec!["987654"]);
        assert_eq!(args.extra_or("--digits", 4u32), Ok(6));
        assert_eq!(args.extra_or("--trials", 1u32), Ok(1));
        assert!(args.has_switch("--reference"));
        assert!(!args.has_switch("--verify"));
    }

    #[test]
    fn extra_flags_must_be_declared() {
        let err = try_parse_with(&["--digits", "6"], &[], &[]).expect_err("undeclared flag");
        assert_eq!(err, "unknown flag --digits");
    }

    #[test]
    fn extra_flag_bad_value_is_an_error_not_a_default() {
        let args = try_parse_with(&["--digits", "six"], &["--digits"], &[]).expect("parses");
        assert_eq!(
            args.extra_or("--digits", 6u32),
            Err("--digits value \"six\" is not valid".to_owned())
        );
    }

    #[test]
    fn duplicate_extra_flags_are_rejected() {
        let err = try_parse_with(&["--digits", "4", "--digits", "6"], &["--digits"], &[])
            .expect_err("duplicate must error");
        assert_eq!(err, "--digits given more than once");
        let err = try_parse_with(&["--reference", "--reference"], &[], &["--reference"])
            .expect_err("duplicate must error");
        assert_eq!(err, "--reference given more than once");
    }
}
