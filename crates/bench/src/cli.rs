//! Minimal flag parsing shared by the experiment binaries.
//!
//! Each binary historically took positional arguments only; the
//! observability flags ride alongside them:
//!
//! ```text
//! table2 [trials] [seed] [jobs] --metrics out/metrics.json --trace out/trace.jsonl
//! ```
//!
//! `--jobs N` is equivalent to the positional jobs argument; both beat the
//! `BLAP_JOBS` environment variable, which beats the hardware default.
//! Wall-clock timings are excluded from metrics exports unless
//! `BLAP_METRICS_WALL=1`, keeping the artifact byte-comparable across
//! runs and machines.

use blap::runner::{Jobs, JobsResolution, JOBS_ENV_VAR};
use blap_obs::{export_json, MetaValue, Metrics};

/// Parsed command line: positionals in order, plus the shared flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// Positional arguments, in the order given.
    pub positional: Vec<String>,
    /// `--metrics <path>`: write a metrics.json artifact here.
    pub metrics_path: Option<String>,
    /// `--trace <path>`: write the JSONL trace here.
    pub trace_path: Option<String>,
    /// `--jobs <n>`: explicit worker count (same as the jobs positional).
    pub jobs: Option<String>,
}

impl Args {
    /// Parses `std::env::args` (program name skipped).
    ///
    /// Exits with an error message on a flag with a missing value or an
    /// unknown `--flag`; positionals are kept verbatim for the binary to
    /// interpret.
    pub fn parse() -> Args {
        Args::from_iter(std::env::args().skip(1))
    }

    fn from_iter(mut iter: impl Iterator<Item = String>) -> Args {
        fn value(iter: &mut impl Iterator<Item = String>, flag: &str) -> String {
            match iter.next() {
                Some(v) => v,
                None => {
                    eprintln!("error: {flag} requires a value");
                    std::process::exit(2);
                }
            }
        }
        let mut args = Args::default();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--metrics" => args.metrics_path = Some(value(&mut iter, "--metrics")),
                "--trace" => args.trace_path = Some(value(&mut iter, "--trace")),
                "--jobs" => args.jobs = Some(value(&mut iter, "--jobs")),
                flag if flag.starts_with("--") => {
                    eprintln!("error: unknown flag {flag}");
                    std::process::exit(2);
                }
                _ => args.positional.push(arg),
            }
        }
        args
    }

    /// The `i`-th positional parsed as `T`, or `default` when absent or
    /// unparseable.
    pub fn positional_or<T: std::str::FromStr>(&self, i: usize, default: T) -> T {
        self.positional
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    /// Resolves the worker count: `--jobs` / positional `i` (CLI), then
    /// `BLAP_JOBS`, then the hardware default. Prints any resolution
    /// warnings (e.g. a zero value falling back) to stderr.
    pub fn resolve_jobs(&self, positional_index: usize) -> Jobs {
        let cli = self
            .jobs
            .clone()
            .or_else(|| self.positional.get(positional_index).cloned());
        let env = std::env::var(JOBS_ENV_VAR).ok();
        let JobsResolution { jobs, warnings, .. } =
            Jobs::resolve_from(cli.as_deref(), env.as_deref());
        for warning in &warnings {
            eprintln!("warning: {warning}");
        }
        jobs
    }
}

/// Writes `contents` to `path`, exiting with a message on failure.
pub fn write_artifact(path: &str, contents: &str) {
    if let Err(err) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {path}: {err}");
        std::process::exit(1);
    }
}

/// Renders and writes a metrics.json artifact.
///
/// `meta` identifies the run (experiment name, seed, ...) and must not
/// contain schedule-dependent values — notably the worker count — because
/// the artifact is byte-compared across parallelism levels. Virtual-time
/// metrics only by default; when `BLAP_METRICS_WALL=1`, the wall-clock
/// duration of the run is appended to the metadata (intentionally opt-in:
/// it breaks byte-comparability between runs).
pub fn write_metrics(
    path: &str,
    meta: &[(&str, MetaValue)],
    metrics: &Metrics,
    wall: std::time::Duration,
) {
    let mut meta = meta.to_vec();
    if std::env::var("BLAP_METRICS_WALL").is_ok_and(|v| v == "1") {
        meta.push(("wall_ms", MetaValue::Int(wall.as_millis() as u64)));
    }
    write_artifact(path, &export_json(&meta, metrics));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::from_iter(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_and_positionals_interleave() {
        let args = parse(&["100", "--metrics", "m.json", "7", "--trace", "t.jsonl"]);
        assert_eq!(args.positional, vec!["100", "7"]);
        assert_eq!(args.metrics_path.as_deref(), Some("m.json"));
        assert_eq!(args.trace_path.as_deref(), Some("t.jsonl"));
        assert_eq!(args.jobs, None);
    }

    #[test]
    fn positional_defaults_apply() {
        let args = parse(&["50"]);
        assert_eq!(args.positional_or(0, 100usize), 50);
        assert_eq!(args.positional_or(1, 2022u64), 2022);
    }

    #[test]
    fn jobs_flag_is_captured() {
        let args = parse(&["--jobs", "4"]);
        assert_eq!(args.jobs.as_deref(), Some("4"));
    }
}
