//! Trace analysis CLI: invariant checking, timeline profiling, format
//! conversion, and artifact diffing for the observability artifacts the
//! experiment binaries emit with `--trace` / `--metrics`.
//!
//! ```text
//! blap-trace check    <trace> [--follow]     # exit 1 on any violation
//! blap-trace timeline <trace> [--follow]     # phase-latency profile
//! blap-trace convert  <in> <out>             # binary <-> JSONL
//! blap-trace diff     <a> <b>                # exit 1 on unexplained drift
//! ```
//!
//! `check --follow` / `timeline --follow` tail a trace a campaign is
//! still writing: a read that hits end-of-file waits for the file to
//! grow instead of finishing, and the analysis only completes once the
//! file has been idle for `--idle-ms` milliseconds (default 2000;
//! 0 follows until interrupted). Because the writer may die mid-line
//! (`--stop-after` kill injection), follow mode tolerates a torn final
//! JSONL line or binary frame at that last end-of-file — it warns on
//! stderr and reports on the complete prefix, where the one-shot modes
//! would exit 2. Corruption on an *interior* (newline-terminated or
//! fully-framed) record stays fatal in both modes.
//!
//! `check`, `timeline`, `convert`, and trace `diff` all **stream**: lines
//! (or binary frames) are fed through the constant-memory
//! [`blap_obs::StreamAnalyzer`] / [`blap_obs::TraceDiff`] as they are
//! read, so a campaign-scale artifact is analyzed without ever being
//! materialized. Trace inputs may be JSONL or the `b"BLAPTRC1"` binary
//! encoding — the format is sniffed from the first 8 bytes. `convert`
//! flips the format: a JSONL input is written as binary and vice versa,
//! and the round trip is byte-deterministic (a non-canonical JSONL line
//! is an error, not a silent rewrite).
//!
//! `diff` picks the comparison by extension: two `.json` files are
//! compared structurally as metrics documents (run-dependent `wall_ms` /
//! `*wall_us*` paths excused); anything else is compared line-by-line as a
//! trace. Exit codes: 0 clean, 1 violations/drift, 2 usage or parse error.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use blap_bench::cli::Args;
use blap_obs::binfmt::{self, Frame, FrameWriter};
use blap_obs::{diff_metrics, FrameReader, StreamAnalyzer, TraceDiff};

const USAGE: &str =
    "usage: blap-trace <check|timeline|convert|diff> <file> [file2] [--follow] [--idle-ms MS]";

/// How long a followed file must stop growing before the analysis
/// finishes (overridable with `--idle-ms`; 0 follows until killed).
const DEFAULT_IDLE_MS: u64 = 2000;

/// How often a follower re-polls a file that is not growing.
const FOLLOW_POLL_MS: u64 = 100;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some(cmd @ ("check" | "timeline")) => {
            let parsed = match Args::try_from_iter_with(
                args[1..].iter().cloned(),
                &["--idle-ms"],
                &["--follow"],
            ) {
                Ok(parsed) => parsed,
                Err(message) => {
                    eprintln!("error: {message}");
                    return ExitCode::from(2);
                }
            };
            let [path] = parsed.positional.as_slice() else {
                return usage();
            };
            let follow = match follow_policy(&parsed) {
                Ok(follow) => follow,
                Err(code) => return code,
            };
            if cmd == "check" {
                check(path, follow)
            } else {
                timeline(path, follow)
            }
        }
        Some("convert") => match args.as_slice() {
            [_, input, output] => convert(input, output),
            _ => usage(),
        },
        Some("diff") => match args.as_slice() {
            [_, a, b] => diff(a, b),
            _ => usage(),
        },
        _ => usage(),
    }
}

/// Resolves `--follow` / `--idle-ms` into a policy. `--idle-ms` without
/// `--follow` is a usage error: it would silently do nothing.
fn follow_policy(args: &Args) -> Result<Option<FollowPolicy>, ExitCode> {
    let has_idle = args.extra.iter().any(|(flag, _)| flag == "--idle-ms");
    if !args.has_switch("--follow") {
        if has_idle {
            eprintln!("error: --idle-ms requires --follow");
            return Err(ExitCode::from(2));
        }
        return Ok(None);
    }
    let idle_ms: u64 = args
        .extra_or("--idle-ms", DEFAULT_IDLE_MS)
        .map_err(|message| {
            eprintln!("error: {message}");
            ExitCode::from(2)
        })?;
    Ok(Some(FollowPolicy {
        idle: Duration::from_millis(idle_ms),
        poll: Duration::from_millis(FOLLOW_POLL_MS),
    }))
}

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// A trace input stream with its sniffed format: the first
/// `MAGIC.len()` bytes decide binary vs JSONL, and are pushed back so
/// the reader sees the stream from byte 0.
enum TraceInput {
    Jsonl(BufReader<PrefixedReader>),
    Binary(FrameReader<BufReader<PrefixedReader>>),
}

/// Tail-follow behavior for `--follow`: reads that hit end-of-file wait
/// `poll` and retry until the file has been idle for `idle` (zero idle
/// follows forever).
#[derive(Clone, Copy)]
struct FollowPolicy {
    idle: Duration,
    poll: Duration,
}

impl FollowPolicy {
    /// Whether a follower that last saw growth at `since` should give up.
    fn expired(&self, since: Instant) -> bool {
        !self.idle.is_zero() && since.elapsed() >= self.idle
    }
}

/// A file with its sniffed prefix stitched back on. With a follow
/// policy, end-of-file blocks (sleep + retry) until the idle timeout
/// declares the writer finished; the first timed-out read latches
/// `done` so every later read sees a consistent end of stream.
struct PrefixedReader {
    prefix: std::io::Cursor<Vec<u8>>,
    file: File,
    follow: Option<FollowPolicy>,
    done: bool,
}

impl Read for PrefixedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.prefix.read(buf)?;
        if n > 0 {
            return Ok(n);
        }
        let Some(policy) = self.follow else {
            return self.file.read(buf);
        };
        if self.done {
            return Ok(0);
        }
        let idle_since = Instant::now();
        loop {
            let n = self.file.read(buf)?;
            if n > 0 {
                return Ok(n);
            }
            if policy.expired(idle_since) {
                self.done = true;
                return Ok(0);
            }
            std::thread::sleep(policy.poll);
        }
    }
}

fn open_trace(path: &str, follow: Option<FollowPolicy>) -> Result<TraceInput, ExitCode> {
    let mut file = File::open(path).map_err(|err| {
        eprintln!("error: cannot read {path}: {err}");
        ExitCode::from(2)
    })?;
    let mut prefix = vec![0u8; binfmt::MAGIC.len()];
    let mut filled = 0;
    let mut last_growth = Instant::now();
    while filled < prefix.len() {
        match file.read(&mut prefix[filled..]) {
            // A followed file may not hold the magic-length prefix yet
            // (the campaign just created it); wait for enough bytes to
            // sniff the format instead of misreading an empty file.
            Ok(0) => match follow {
                Some(policy) if !policy.expired(last_growth) => std::thread::sleep(policy.poll),
                _ => break,
            },
            Ok(n) => {
                filled += n;
                last_growth = Instant::now();
            }
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => {
                eprintln!("error: cannot read {path}: {err}");
                return Err(ExitCode::from(2));
            }
        }
    }
    prefix.truncate(filled);
    let binary = binfmt::is_binary(&prefix);
    let reader = BufReader::new(PrefixedReader {
        prefix: std::io::Cursor::new(prefix),
        file,
        follow,
        done: false,
    });
    if binary {
        let frames = FrameReader::new(reader).map_err(|err| {
            eprintln!("error: {path}: {err}");
            ExitCode::from(2)
        })?;
        Ok(TraceInput::Binary(frames))
    } else {
        Ok(TraceInput::Jsonl(reader))
    }
}

/// Reads one line into `buf` (cleared first), stripping the trailing
/// `\n` / `\r\n` exactly as `str::lines` does. `Ok(None)` at EOF;
/// otherwise `Ok(Some(terminated))`, where `terminated` is false only
/// for a final line with no newline — either a legitimate last line or
/// the torn tail a killed writer left behind.
fn next_line<R: BufRead>(reader: &mut R, buf: &mut String) -> std::io::Result<Option<bool>> {
    buf.clear();
    if reader.read_line(buf)? == 0 {
        return Ok(None);
    }
    let terminated = buf.ends_with('\n');
    if terminated {
        buf.pop();
        if buf.ends_with('\r') {
            buf.pop();
        }
    }
    Ok(Some(terminated))
}

/// Streams a trace — either format — through a fresh analyzer.
///
/// With `tolerate_torn` (follow mode), a final record the writer never
/// finished — a newline-less JSONL tail that fails to parse, or a
/// truncated binary frame — ends the stream with a stderr warning
/// instead of a fatal error: by the time a follower sees end-of-file
/// the idle timeout has passed, so a torn tail means the writer was
/// killed mid-append, and the complete prefix is still worth a report.
fn analyze_stream(
    path: &str,
    input: TraceInput,
    tolerate_torn: bool,
) -> Result<blap_obs::TraceAnalysis, ExitCode> {
    let mut analyzer = StreamAnalyzer::new();
    match input {
        TraceInput::Jsonl(mut reader) => {
            let mut line = String::new();
            loop {
                match next_line(&mut reader, &mut line) {
                    Ok(None) => break,
                    Ok(Some(terminated)) => {
                        if let Err(err) = analyzer.push_line(&line) {
                            if tolerate_torn && !terminated {
                                eprintln!("warning: {path}: ignoring torn final line: {err}");
                                break;
                            }
                            eprintln!("error: {path}: {err}");
                            return Err(ExitCode::from(2));
                        }
                    }
                    Err(err) => {
                        eprintln!("error: cannot read {path}: {err}");
                        return Err(ExitCode::from(2));
                    }
                }
            }
        }
        TraceInput::Binary(mut frames) => {
            // Frames render to canonical JSONL lines and take the same
            // path as a converted file would: one analyzer, two formats.
            let mut line = String::new();
            loop {
                match frames.next_frame() {
                    Ok(Some(frame)) => {
                        line.clear();
                        frame.render_jsonl(&mut line);
                        if let Err(err) = analyzer.push_line(&line) {
                            eprintln!("error: {path}: {err}");
                            return Err(ExitCode::from(2));
                        }
                    }
                    Ok(None) => break,
                    Err(err) if tolerate_torn && err.truncated => {
                        eprintln!("warning: {path}: ignoring torn final frame: {err}");
                        break;
                    }
                    Err(err) => {
                        eprintln!("error: {path}: {err}");
                        return Err(ExitCode::from(2));
                    }
                }
            }
        }
    }
    Ok(analyzer.finish())
}

fn check(path: &str, follow: Option<FollowPolicy>) -> ExitCode {
    let input = match open_trace(path, follow) {
        Ok(input) => input,
        Err(code) => return code,
    };
    match analyze_stream(path, input, follow.is_some()) {
        Ok(analysis) => {
            print!("{}", analysis.report());
            if analysis.ok() {
                println!("OK: all invariants hold");
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(code) => code,
    }
}

fn timeline(path: &str, follow: Option<FollowPolicy>) -> ExitCode {
    let input = match open_trace(path, follow) {
        Ok(input) => input,
        Err(code) => return code,
    };
    match analyze_stream(path, input, follow.is_some()) {
        Ok(analysis) => {
            println!(
                "{} lines, {} trial segments",
                analysis.line_count, analysis.segment_count
            );
            print!("{}", analysis.profile.render());
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn convert(input_path: &str, output_path: &str) -> ExitCode {
    let input = match open_trace(input_path, None) {
        Ok(input) => input,
        Err(code) => return code,
    };
    let output = match File::create(output_path) {
        Ok(file) => BufWriter::new(file),
        Err(err) => {
            eprintln!("error: cannot create {output_path}: {err}");
            return ExitCode::from(2);
        }
    };
    let write_failed = |err: std::io::Error| {
        eprintln!("error: cannot write {output_path}: {err}");
        ExitCode::from(2)
    };
    let mut converted = 0u64;
    match input {
        // JSONL in -> binary out. Every line must be a canonical trace
        // line; anything else would not survive the round trip.
        TraceInput::Jsonl(mut reader) => {
            let mut writer = match FrameWriter::new(output) {
                Ok(writer) => writer,
                Err(err) => return write_failed(err),
            };
            let mut line = String::new();
            let mut line_no = 0u64;
            loop {
                match next_line(&mut reader, &mut line) {
                    Ok(None) => break,
                    Ok(Some(_)) => {
                        line_no += 1;
                        let frame = match Frame::from_jsonl(&line) {
                            Ok(frame) => frame,
                            Err(err) => {
                                eprintln!("error: {input_path} line {line_no}: {err}");
                                return ExitCode::from(2);
                            }
                        };
                        if let Err(err) = writer.write_frame(&frame) {
                            return write_failed(err);
                        }
                        converted += 1;
                    }
                    Err(err) => {
                        eprintln!("error: cannot read {input_path}: {err}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Err(err) = writer.finish() {
                return write_failed(err);
            }
        }
        // Binary in -> JSONL out.
        TraceInput::Binary(mut frames) => {
            let mut output = output;
            let mut line = String::new();
            loop {
                match frames.next_frame() {
                    Ok(Some(frame)) => {
                        line.clear();
                        frame.render_jsonl(&mut line);
                        line.push('\n');
                        if let Err(err) = output.write_all(line.as_bytes()) {
                            return write_failed(err);
                        }
                        converted += 1;
                    }
                    Ok(None) => break,
                    Err(err) => {
                        eprintln!("error: {input_path}: {err}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Err(err) = output.flush() {
                return write_failed(err);
            }
        }
    }
    println!("converted {converted} event(s): {input_path} -> {output_path}");
    ExitCode::SUCCESS
}

fn diff(a_path: &str, b_path: &str) -> ExitCode {
    let both_metrics = a_path.ends_with(".json") && b_path.ends_with(".json");
    let report = if both_metrics {
        // Metrics documents are small (one meta header + one metrics
        // line); structural comparison needs the parsed form anyway.
        let read = |path: &str| {
            std::fs::read_to_string(path).map_err(|err| {
                eprintln!("error: cannot read {path}: {err}");
                ExitCode::from(2)
            })
        };
        let (a, b) = match (read(a_path), read(b_path)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(code), _) | (_, Err(code)) => return code,
        };
        match diff_metrics(&a, &b) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("error: metrics parse failed: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        match diff_trace_files(a_path, b_path) {
            Ok(report) => report,
            Err(code) => return code,
        }
    };
    print!("{}", report.render(a_path, b_path));
    if report.no_drift() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Streams two trace files through the bounded-memory line differ.
fn diff_trace_files(a_path: &str, b_path: &str) -> Result<blap_obs::DiffReport, ExitCode> {
    let open = |path: &str| {
        File::open(path).map(BufReader::new).map_err(|err| {
            eprintln!("error: cannot read {path}: {err}");
            ExitCode::from(2)
        })
    };
    let (mut a, mut b) = (open(a_path)?, open(b_path)?);
    let read_failed = |path: &str, err: std::io::Error| {
        eprintln!("error: cannot read {path}: {err}");
        ExitCode::from(2)
    };
    let mut diff = TraceDiff::new();
    let (mut la, mut lb) = (String::new(), String::new());
    loop {
        let more_a = next_line(&mut a, &mut la)
            .map_err(|e| read_failed(a_path, e))?
            .is_some();
        let more_b = next_line(&mut b, &mut lb)
            .map_err(|e| read_failed(b_path, e))?
            .is_some();
        if !more_a && !more_b {
            return Ok(diff.finish());
        }
        diff.push_pair(more_a.then_some(la.as_str()), more_b.then_some(lb.as_str()));
    }
}
