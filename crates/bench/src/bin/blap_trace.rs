//! Trace analysis CLI: invariant checking, timeline profiling, format
//! conversion, and artifact diffing for the observability artifacts the
//! experiment binaries emit with `--trace` / `--metrics`.
//!
//! ```text
//! blap-trace check    <trace>                # exit 1 on any violation
//! blap-trace timeline <trace>                # phase-latency profile
//! blap-trace convert  <in> <out>             # binary <-> JSONL
//! blap-trace diff     <a> <b>                # exit 1 on unexplained drift
//! ```
//!
//! `check`, `timeline`, `convert`, and trace `diff` all **stream**: lines
//! (or binary frames) are fed through the constant-memory
//! [`blap_obs::StreamAnalyzer`] / [`blap_obs::TraceDiff`] as they are
//! read, so a campaign-scale artifact is analyzed without ever being
//! materialized. Trace inputs may be JSONL or the `b"BLAPTRC1"` binary
//! encoding — the format is sniffed from the first 8 bytes. `convert`
//! flips the format: a JSONL input is written as binary and vice versa,
//! and the round trip is byte-deterministic (a non-canonical JSONL line
//! is an error, not a silent rewrite).
//!
//! `diff` picks the comparison by extension: two `.json` files are
//! compared structurally as metrics documents (run-dependent `wall_ms` /
//! `*wall_us*` paths excused); anything else is compared line-by-line as a
//! trace. Exit codes: 0 clean, 1 violations/drift, 2 usage or parse error.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

use blap_obs::binfmt::{self, Frame, FrameWriter};
use blap_obs::{diff_metrics, FrameReader, StreamAnalyzer, TraceDiff};

const USAGE: &str = "usage: blap-trace <check|timeline|convert|diff> <file> [file2]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match args.as_slice() {
            [_, path] => check(path),
            _ => usage(),
        },
        Some("timeline") => match args.as_slice() {
            [_, path] => timeline(path),
            _ => usage(),
        },
        Some("convert") => match args.as_slice() {
            [_, input, output] => convert(input, output),
            _ => usage(),
        },
        Some("diff") => match args.as_slice() {
            [_, a, b] => diff(a, b),
            _ => usage(),
        },
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// A trace input stream with its sniffed format: the first
/// `MAGIC.len()` bytes decide binary vs JSONL, and are pushed back so
/// the reader sees the stream from byte 0.
enum TraceInput {
    Jsonl(BufReader<PrefixedReader>),
    Binary(FrameReader<BufReader<PrefixedReader>>),
}

/// A file with its sniffed prefix stitched back on.
struct PrefixedReader {
    prefix: std::io::Cursor<Vec<u8>>,
    file: File,
}

impl Read for PrefixedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.prefix.read(buf)?;
        if n > 0 {
            return Ok(n);
        }
        self.file.read(buf)
    }
}

fn open_trace(path: &str) -> Result<TraceInput, ExitCode> {
    let mut file = File::open(path).map_err(|err| {
        eprintln!("error: cannot read {path}: {err}");
        ExitCode::from(2)
    })?;
    let mut prefix = vec![0u8; binfmt::MAGIC.len()];
    let mut filled = 0;
    while filled < prefix.len() {
        match file.read(&mut prefix[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => {
                eprintln!("error: cannot read {path}: {err}");
                return Err(ExitCode::from(2));
            }
        }
    }
    prefix.truncate(filled);
    let binary = binfmt::is_binary(&prefix);
    let reader = BufReader::new(PrefixedReader {
        prefix: std::io::Cursor::new(prefix),
        file,
    });
    if binary {
        let frames = FrameReader::new(reader).map_err(|err| {
            eprintln!("error: {path}: {err}");
            ExitCode::from(2)
        })?;
        Ok(TraceInput::Binary(frames))
    } else {
        Ok(TraceInput::Jsonl(reader))
    }
}

/// Reads one line into `buf` (cleared first), stripping the trailing
/// `\n` / `\r\n` exactly as `str::lines` does. `Ok(false)` at EOF.
fn next_line<R: BufRead>(reader: &mut R, buf: &mut String) -> std::io::Result<bool> {
    buf.clear();
    if reader.read_line(buf)? == 0 {
        return Ok(false);
    }
    if buf.ends_with('\n') {
        buf.pop();
        if buf.ends_with('\r') {
            buf.pop();
        }
    }
    Ok(true)
}

/// Streams a trace — either format — through a fresh analyzer.
fn analyze_stream(path: &str, input: TraceInput) -> Result<blap_obs::TraceAnalysis, ExitCode> {
    let mut analyzer = StreamAnalyzer::new();
    match input {
        TraceInput::Jsonl(mut reader) => {
            let mut line = String::new();
            loop {
                match next_line(&mut reader, &mut line) {
                    Ok(false) => break,
                    Ok(true) => {
                        if let Err(err) = analyzer.push_line(&line) {
                            eprintln!("error: {path}: {err}");
                            return Err(ExitCode::from(2));
                        }
                    }
                    Err(err) => {
                        eprintln!("error: cannot read {path}: {err}");
                        return Err(ExitCode::from(2));
                    }
                }
            }
        }
        TraceInput::Binary(mut frames) => {
            // Frames render to canonical JSONL lines and take the same
            // path as a converted file would: one analyzer, two formats.
            let mut line = String::new();
            loop {
                match frames.next_frame() {
                    Ok(Some(frame)) => {
                        line.clear();
                        frame.render_jsonl(&mut line);
                        if let Err(err) = analyzer.push_line(&line) {
                            eprintln!("error: {path}: {err}");
                            return Err(ExitCode::from(2));
                        }
                    }
                    Ok(None) => break,
                    Err(err) => {
                        eprintln!("error: {path}: {err}");
                        return Err(ExitCode::from(2));
                    }
                }
            }
        }
    }
    Ok(analyzer.finish())
}

fn check(path: &str) -> ExitCode {
    let input = match open_trace(path) {
        Ok(input) => input,
        Err(code) => return code,
    };
    match analyze_stream(path, input) {
        Ok(analysis) => {
            print!("{}", analysis.report());
            if analysis.ok() {
                println!("OK: all invariants hold");
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(code) => code,
    }
}

fn timeline(path: &str) -> ExitCode {
    let input = match open_trace(path) {
        Ok(input) => input,
        Err(code) => return code,
    };
    match analyze_stream(path, input) {
        Ok(analysis) => {
            println!(
                "{} lines, {} trial segments",
                analysis.line_count, analysis.segment_count
            );
            print!("{}", analysis.profile.render());
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn convert(input_path: &str, output_path: &str) -> ExitCode {
    let input = match open_trace(input_path) {
        Ok(input) => input,
        Err(code) => return code,
    };
    let output = match File::create(output_path) {
        Ok(file) => BufWriter::new(file),
        Err(err) => {
            eprintln!("error: cannot create {output_path}: {err}");
            return ExitCode::from(2);
        }
    };
    let write_failed = |err: std::io::Error| {
        eprintln!("error: cannot write {output_path}: {err}");
        ExitCode::from(2)
    };
    let mut converted = 0u64;
    match input {
        // JSONL in -> binary out. Every line must be a canonical trace
        // line; anything else would not survive the round trip.
        TraceInput::Jsonl(mut reader) => {
            let mut writer = match FrameWriter::new(output) {
                Ok(writer) => writer,
                Err(err) => return write_failed(err),
            };
            let mut line = String::new();
            let mut line_no = 0u64;
            loop {
                match next_line(&mut reader, &mut line) {
                    Ok(false) => break,
                    Ok(true) => {
                        line_no += 1;
                        let frame = match Frame::from_jsonl(&line) {
                            Ok(frame) => frame,
                            Err(err) => {
                                eprintln!("error: {input_path} line {line_no}: {err}");
                                return ExitCode::from(2);
                            }
                        };
                        if let Err(err) = writer.write_frame(&frame) {
                            return write_failed(err);
                        }
                        converted += 1;
                    }
                    Err(err) => {
                        eprintln!("error: cannot read {input_path}: {err}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Err(err) = writer.finish() {
                return write_failed(err);
            }
        }
        // Binary in -> JSONL out.
        TraceInput::Binary(mut frames) => {
            let mut output = output;
            let mut line = String::new();
            loop {
                match frames.next_frame() {
                    Ok(Some(frame)) => {
                        line.clear();
                        frame.render_jsonl(&mut line);
                        line.push('\n');
                        if let Err(err) = output.write_all(line.as_bytes()) {
                            return write_failed(err);
                        }
                        converted += 1;
                    }
                    Ok(None) => break,
                    Err(err) => {
                        eprintln!("error: {input_path}: {err}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Err(err) = output.flush() {
                return write_failed(err);
            }
        }
    }
    println!("converted {converted} event(s): {input_path} -> {output_path}");
    ExitCode::SUCCESS
}

fn diff(a_path: &str, b_path: &str) -> ExitCode {
    let both_metrics = a_path.ends_with(".json") && b_path.ends_with(".json");
    let report = if both_metrics {
        // Metrics documents are small (one meta header + one metrics
        // line); structural comparison needs the parsed form anyway.
        let read = |path: &str| {
            std::fs::read_to_string(path).map_err(|err| {
                eprintln!("error: cannot read {path}: {err}");
                ExitCode::from(2)
            })
        };
        let (a, b) = match (read(a_path), read(b_path)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(code), _) | (_, Err(code)) => return code,
        };
        match diff_metrics(&a, &b) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("error: metrics parse failed: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        match diff_trace_files(a_path, b_path) {
            Ok(report) => report,
            Err(code) => return code,
        }
    };
    print!("{}", report.render(a_path, b_path));
    if report.no_drift() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Streams two trace files through the bounded-memory line differ.
fn diff_trace_files(a_path: &str, b_path: &str) -> Result<blap_obs::DiffReport, ExitCode> {
    let open = |path: &str| {
        File::open(path).map(BufReader::new).map_err(|err| {
            eprintln!("error: cannot read {path}: {err}");
            ExitCode::from(2)
        })
    };
    let (mut a, mut b) = (open(a_path)?, open(b_path)?);
    let read_failed = |path: &str, err: std::io::Error| {
        eprintln!("error: cannot read {path}: {err}");
        ExitCode::from(2)
    };
    let mut diff = TraceDiff::new();
    let (mut la, mut lb) = (String::new(), String::new());
    loop {
        let more_a = next_line(&mut a, &mut la).map_err(|e| read_failed(a_path, e))?;
        let more_b = next_line(&mut b, &mut lb).map_err(|e| read_failed(b_path, e))?;
        if !more_a && !more_b {
            return Ok(diff.finish());
        }
        diff.push_pair(more_a.then_some(la.as_str()), more_b.then_some(lb.as_str()));
    }
}
