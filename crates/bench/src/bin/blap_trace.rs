//! Trace analysis CLI: invariant checking, timeline profiling, and
//! artifact diffing for the observability artifacts the experiment
//! binaries emit with `--trace` / `--metrics`.
//!
//! ```text
//! blap-trace check    <trace.jsonl>          # exit 1 on any violation
//! blap-trace timeline <trace.jsonl>          # phase-latency profile
//! blap-trace diff     <a> <b>                # exit 1 on unexplained drift
//! ```
//!
//! `diff` picks the comparison by extension: two `.json` files are
//! compared structurally as metrics documents (run-dependent `wall_ms` /
//! `*wall_us*` paths excused); anything else is compared line-by-line as a
//! trace. Exit codes: 0 clean, 1 violations/drift, 2 usage or parse error.

use std::process::ExitCode;

use blap_obs::{analyze_trace, diff_metrics, diff_traces};

const USAGE: &str = "usage: blap-trace <check|timeline|diff> <file> [file2]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match args.as_slice() {
            [_, path] => check(path),
            _ => usage(),
        },
        Some("timeline") => match args.as_slice() {
            [_, path] => timeline(path),
            _ => usage(),
        },
        Some("diff") => match args.as_slice() {
            [_, a, b] => diff(a, b),
            _ => usage(),
        },
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|err| {
        eprintln!("error: cannot read {path}: {err}");
        ExitCode::from(2)
    })
}

fn check(path: &str) -> ExitCode {
    let text = match read(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    match analyze_trace(&text) {
        Ok(analysis) => {
            print!("{}", analysis.report());
            if analysis.ok() {
                println!("OK: all invariants hold");
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("error: {path}: {err}");
            ExitCode::from(2)
        }
    }
}

fn timeline(path: &str) -> ExitCode {
    let text = match read(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    match analyze_trace(&text) {
        Ok(analysis) => {
            println!(
                "{} lines, {} trial segments",
                analysis.line_count, analysis.segment_count
            );
            print!("{}", analysis.profile.render());
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {path}: {err}");
            ExitCode::from(2)
        }
    }
}

fn diff(a_path: &str, b_path: &str) -> ExitCode {
    let (a, b) = match (read(a_path), read(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let both_metrics = a_path.ends_with(".json") && b_path.ends_with(".json");
    let report = if both_metrics {
        match diff_metrics(&a, &b) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("error: metrics parse failed: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        diff_traces(&a, &b)
    };
    print!("{}", report.render(a_path, b_path));
    if report.no_drift() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
