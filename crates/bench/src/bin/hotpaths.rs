//! Hot-path benchmark summary: one JSON artifact (`BENCH_hotpaths.json`)
//! covering the kernels the perf work targets — HCI encode/decode, the
//! AES-CCM link cipher (scalar and batched `open_many`), the batched
//! eavesdrop decrypt pipeline, legacy `E1`, the pincrack candidate
//! loop, and the disabled-telemetry hook (pinning the zero-cost-when-off
//! contract of the live telemetry tier) — plus end-to-end wall times for
//! the table drivers and a
//! `throughput` section with the batched sweep figures
//! (`pincrack_candidates_per_sec`, `ccm_open_bytes_per_sec`; every
//! `throughput` key is floor-gated by `blap-bench compare`: only a drop
//! regresses).
//!
//! Regenerate with:
//!
//! ```text
//! BLAP_METRICS_WALL=1 cargo run --release -p blap-bench --bin hotpaths > BENCH_hotpaths.json
//! ```
//!
//! `BLAP_METRICS_WALL=1` additionally folds the per-unit wall-time
//! histograms the observed runners record into the `wall_ms` section
//! (without it those fields are `null`; the deterministic artifacts the
//! tables emit never contain wall times, which is why the flag exists).
//!
//! Numbers are medians over several timed batches — stable enough to spot
//! multi-x regressions, not a substitute for the Criterion benches
//! (`cargo bench -p blap-bench`) when microsecond precision matters.

use blap::eavesdrop::decrypt_capture_batched;
use blap::legacy_pin::{crack_numeric_pin_with, LegacyPairingCapture};
use blap::runner::Jobs;
use blap::{addrs, extract};
use blap_crypto::ccm::{OpenBatch, SealedFrame};
use blap_crypto::{aes::Aes128, ccm, e1};
use blap_hci::{Command, Event, HciPacket};
use blap_sim::{profiles, SniffedFrame, World};
use blap_types::{BdAddr, ConnectionHandle, Duration, LinkKey, LinkKeyType, ServiceUuid};
use std::hint::black_box;
use std::time::Instant;

/// Median ns/op over `SAMPLES` batches of `iters` calls each.
fn ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    const SAMPLES: usize = 9;
    // One warm-up batch so lazy tables and allocator warm-up don't skew
    // the first sample.
    for _ in 0..iters {
        op();
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let started = Instant::now();
            for _ in 0..iters {
                op();
            }
            started.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[SAMPLES / 2]
}

fn sample_packets() -> Vec<HciPacket> {
    let addr: BdAddr = "00:1b:7d:da:71:0a".parse().expect("valid");
    let key: LinkKey = "c4f16e949f04ee9c0fd6b1023389c324".parse().expect("valid");
    vec![
        HciPacket::Command(Command::CreateConnection {
            bd_addr: addr,
            allow_role_switch: true,
        }),
        HciPacket::Command(Command::LinkKeyRequestReply {
            bd_addr: addr,
            link_key: key,
        }),
        HciPacket::Event(Event::ConnectionComplete {
            status: blap_hci::StatusCode::Success,
            handle: ConnectionHandle::new(6),
            bd_addr: addr,
            encryption_enabled: false,
        }),
        HciPacket::Event(Event::LinkKeyNotification {
            bd_addr: addr,
            link_key: key,
            key_type: LinkKeyType::UnauthenticatedP256,
        }),
        HciPacket::AclData(blap_hci::AclData::new(
            ConnectionHandle::new(6),
            vec![0x5A; 48],
        )),
    ]
}

fn json_number(value: f64) -> String {
    format!("{value:.1}")
}

fn json_opt(value: Option<f64>) -> String {
    value.map(json_number).unwrap_or_else(|| "null".into())
}

fn main() {
    let jobs = Jobs::from_env();
    let wall_metrics = std::env::var("BLAP_METRICS_WALL").is_ok_and(|v| v == "1");

    // --- Kernel micro-timings -------------------------------------------
    let pkts = sample_packets();
    let mut buf = Vec::with_capacity(64);
    let hci_encode_into = ns_per_op(20_000, || {
        for p in &pkts {
            buf.clear();
            black_box(p).encode_into(&mut buf);
            black_box(buf.len());
        }
    }) / pkts.len() as f64;
    let hci_encode_alloc = ns_per_op(20_000, || {
        for p in &pkts {
            black_box(black_box(p).encode().len());
        }
    }) / pkts.len() as f64;
    let encoded: Vec<Vec<u8>> = pkts.iter().map(|p| p.encode()).collect();
    let hci_decode = ns_per_op(20_000, || {
        for bytes in &encoded {
            black_box(HciPacket::decode(black_box(bytes)).expect("valid"));
        }
    }) / encoded.len() as f64;

    let aes = Aes128::new(&[0x42; 16]);
    let block = [0xA5u8; 16];
    let aes_block = ns_per_op(100_000, || {
        black_box(aes.encrypt_block(black_box(&block)));
    });

    let ccm_key = [0x42u8; 16];
    let nonce = [7u8; 13];
    let payload = vec![0x5Au8; 64];
    let ccm_ctx = ccm::Ccm::new(&ccm_key);
    let sealed = ccm_ctx.seal(&nonce, b"hd", &payload).expect("fits");
    let ccm_seal = ns_per_op(20_000, || {
        black_box(
            black_box(&ccm_ctx)
                .seal(&nonce, b"hd", black_box(&payload))
                .expect("fits"),
        );
    });
    let ccm_open = ns_per_op(20_000, || {
        black_box(
            black_box(&ccm_ctx)
                .open(&nonce, b"hd", black_box(&sealed))
                .expect("valid"),
        );
    });

    // Batched CCM over the same 64-byte frame shape: full FRAME_LANES
    // chunks (steady state — a ragged tail pays a whole chunk's passes and
    // is covered by the criterion bench), plaintexts landing in one reused
    // arena. Per-frame ns and the derived bytes/s floor the compare gate
    // defends.
    const BATCH_FRAMES: usize = 4 * ccm::FRAME_LANES;
    let batch_sealed: Vec<([u8; 13], Vec<u8>)> = (0..BATCH_FRAMES)
        .map(|i| {
            let mut n = nonce;
            n[0] = i as u8;
            (n, ccm_ctx.seal(&n, b"hd", &payload).expect("fits"))
        })
        .collect();
    let batch_views: Vec<SealedFrame<'_>> = batch_sealed
        .iter()
        .map(|(n, ct)| SealedFrame {
            nonce: *n,
            aad: b"hd",
            ciphertext_and_tag: ct,
        })
        .collect();
    let mut batch_out = OpenBatch::new();
    let ccm_open_batched = ns_per_op(2_000, || {
        black_box(&ccm_ctx).open_many_into(black_box(&batch_views), &mut batch_out);
        black_box(&batch_out);
    }) / BATCH_FRAMES as f64;
    let ccm_open_bytes_per_sec = payload.len() as f64 * 1e9 / ccm_open_batched;

    // Eavesdrop pipeline: batched decrypt of a real sniffed capture
    // (session-key replay + handle resolution + open_many), per encrypted
    // frame. The capture is built once outside the timed region.
    let (eaves_frames, eaves_key, eaves_c, eaves_m) = eavesdrop_capture();
    let n_encrypted = eaves_frames
        .iter()
        .filter(|f| {
            matches!(
                f,
                SniffedFrame::Acl {
                    encrypted: true,
                    ..
                }
            )
        })
        .count();
    assert!(n_encrypted > 0, "capture must contain encrypted frames");
    let eavesdrop_decrypt = ns_per_op(500, || {
        black_box(decrypt_capture_batched(
            black_box(&eaves_frames),
            eaves_key,
            eaves_c,
            eaves_m,
        ));
    }) / n_encrypted as f64;

    // Zero-cost-when-off contract of the telemetry hooks: with the hub
    // disabled, every record call must collapse to one relaxed load and
    // an early return. 128 calls per timed op keep the per-call figure
    // above timer resolution; the compare gate ceilings it so a stray
    // allocation or lock on the disabled path shows up as a regression.
    blap_obs::telemetry::set_enabled(false);
    let busy = std::time::Duration::from_nanos(100);
    let telemetry_disabled = ns_per_op(20_000, || {
        for i in 0..64usize {
            blap_obs::telemetry::record_unit(black_box(i), busy);
            blap_obs::telemetry::record_trial(black_box("bench/off"), true, 42);
        }
        black_box(blap_obs::telemetry::enabled());
    }) / 128.0;

    let e1_key: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse().expect("valid");
    let e1_addr: BdAddr = "aa:aa:aa:aa:aa:aa".parse().expect("valid");
    let e1_rand = [1u8; 16];
    let legacy_e1 = ns_per_op(20_000, || {
        black_box(e1::e1(black_box(&e1_key), &e1_rand, e1_addr));
    });

    // Per-candidate pincrack cost: a full 4-digit-space scan for a PIN
    // near the end of the space, divided by the attempts it reports.
    let capture = LegacyPairingCapture::synthesize(
        "11:11:11:11:11:11".parse().expect("valid"),
        "00:1b:7d:da:71:0a".parse().expect("valid"),
        b"8527",
        [0xA1; 16],
        [0xB2; 16],
        [0xC3; 16],
        [0xD4; 16],
    );
    let serial = Jobs::serial();
    let warm = crack_numeric_pin_with(&capture, 4, serial).expect("found");
    let crack_started = Instant::now();
    const CRACK_REPS: u32 = 3;
    for _ in 0..CRACK_REPS {
        black_box(crack_numeric_pin_with(black_box(&capture), 4, serial).expect("found"));
    }
    let pincrack_wall = crack_started.elapsed().as_secs_f64() * 1e3 / f64::from(CRACK_REPS);
    let pincrack_candidate = pincrack_wall * 1e6 / warm.attempts as f64;

    // Batched sweep throughput over the full 6-digit space: a PIN near the
    // end of the space keeps the sweep long enough (~1.1M candidates) that
    // per-sweep setup is noise. Floor-gated in `compare` — the one number
    // the batching work exists to defend.
    let capture6 = LegacyPairingCapture::synthesize(
        "11:11:11:11:11:11".parse().expect("valid"),
        "00:1b:7d:da:71:0a".parse().expect("valid"),
        b"987654",
        [0xA1; 16],
        [0xB2; 16],
        [0xC3; 16],
        [0xD4; 16],
    );
    let warm6 = crack_numeric_pin_with(&capture6, 6, serial).expect("found");
    let sweep_started = Instant::now();
    const SWEEP_REPS: u32 = 2;
    for _ in 0..SWEEP_REPS {
        black_box(crack_numeric_pin_with(black_box(&capture6), 6, serial).expect("found"));
    }
    let sweep_secs = sweep_started.elapsed().as_secs_f64() / f64::from(SWEEP_REPS);
    let pincrack_candidates_per_sec = warm6.attempts as f64 / sweep_secs;

    // --- End-to-end wall times ------------------------------------------
    let t1_started = Instant::now();
    let t1 = blap_bench::run_table1_observed_with(2022, jobs);
    let table1_wall = t1_started.elapsed().as_secs_f64() * 1e3;
    let t2_started = Instant::now();
    let t2 = blap_bench::run_table2_observed_with(2022, 4, jobs);
    let table2_wall = t2_started.elapsed().as_secs_f64() * 1e3;
    assert!(!t1.rows.is_empty() && !t2.rows.is_empty());

    // With BLAP_METRICS_WALL=1 the observed runners also record per-unit
    // wall histograms; their sums measure time inside units (excluding
    // scheduling), worth having next to the end-to-end number.
    let unit_wall_ms = |metrics: &blap_obs::Metrics| {
        metrics
            .histogram("unit_wall_us")
            .map(|h| h.sum() as f64 / 1e3)
    };

    println!("{{");
    println!("  \"schema\": \"blap-bench-hotpaths-v2\",");
    println!(
        "  \"host\": {},",
        blap_bench::compare::HostFingerprint::current().render_json("  ")
    );
    println!("  \"jobs\": {},", jobs.get());
    println!("  \"metrics_wall\": {wall_metrics},");
    println!("  \"ns_per_op\": {{");
    println!(
        "    \"hci_encode_into_packet\": {},",
        json_number(hci_encode_into)
    );
    println!(
        "    \"hci_encode_alloc_packet\": {},",
        json_number(hci_encode_alloc)
    );
    println!("    \"hci_decode_packet\": {},", json_number(hci_decode));
    println!("    \"aes128_encrypt_block\": {},", json_number(aes_block));
    println!("    \"ccm_seal_64b\": {},", json_number(ccm_seal));
    println!("    \"ccm_open_64b\": {},", json_number(ccm_open));
    println!(
        "    \"ccm_open_batched_64b\": {},",
        json_number(ccm_open_batched)
    );
    println!(
        "    \"eavesdrop_decrypt_frame\": {},",
        json_number(eavesdrop_decrypt)
    );
    println!("    \"legacy_e1\": {},", json_number(legacy_e1));
    println!(
        "    \"pincrack_candidate\": {},",
        json_number(pincrack_candidate)
    );
    println!(
        "    \"telemetry_disabled\": {}",
        json_number(telemetry_disabled)
    );
    println!("  }},");
    println!("  \"wall_ms\": {{");
    println!("    \"table1\": {},", json_number(table1_wall));
    println!(
        "    \"table1_units\": {},",
        json_opt(unit_wall_ms(&t1.metrics))
    );
    println!("    \"table2_trials4\": {},", json_number(table2_wall));
    println!(
        "    \"table2_units\": {},",
        json_opt(unit_wall_ms(&t2.metrics))
    );
    println!("    \"pincrack_4digit\": {}", json_number(pincrack_wall));
    println!("  }},");
    println!("  \"throughput\": {{");
    println!(
        "    \"pincrack_candidates_per_sec\": {},",
        json_number(pincrack_candidates_per_sec)
    );
    println!(
        "    \"ccm_open_bytes_per_sec\": {}",
        json_number(ccm_open_bytes_per_sec)
    );
    println!("  }}");
    println!("}}");
}

/// An encrypted PBAP session capture plus the extracted key — the same
/// world the `eavesdrop` scenario runs, rebuilt here so the timed region
/// covers only the attacker-side decrypt.
fn eavesdrop_capture() -> (Vec<SniffedFrame>, LinkKey, BdAddr, BdAddr) {
    let m_addr: BdAddr = addrs::M.parse().expect("valid address");
    let c_addr: BdAddr = addrs::C.parse().expect("valid address");
    let mut world = World::new(404);
    let _m = world.add_device(profiles::lg_velvet().victim_phone(addrs::M));
    let c = world.add_device(profiles::galaxy_s8().soft_target(addrs::C));
    world.device_mut(c).host.pair_with(m_addr);
    world.run_for(Duration::from_secs(5));
    world.device_mut(c).host.disconnect(m_addr);
    world.run_for(Duration::from_secs(2));
    world
        .device_mut(c)
        .host
        .connect_profile(m_addr, ServiceUuid::PBAP_PSE);
    world.run_for(Duration::from_secs(5));
    for i in 0..8u8 {
        world.device_mut(c).host.send_data(m_addr, vec![i; 64]);
        world.run_for(Duration::from_millis(100));
    }
    world.run_for(Duration::from_secs(1));
    let frames = world.sniffed_frames().to_vec();
    let key = extract::from_snoop_log(world.device(c), m_addr).expect("key extracted");
    (frames, key, c_addr, m_addr)
}
