//! Demonstrates the §VII mitigations stopping both attacks, plus the
//! honest-pairing false-positive probe for the role check.
//!
//! ```text
//! cargo run --release -p blap-bench --bin mitigations
//! ```

use blap::mitigations;
use blap_sim::profiles;

fn main() {
    println!("== §VII mitigations under attack ==\n");

    let (_, v1) = mitigations::extraction_with_dump_filtering(profiles::nexus_5x_a8(), 71);
    println!(
        "[{}] attack succeeded: {}\n    evidence: {}\n",
        v1.mitigation, v1.attack_succeeded, v1.evidence
    );

    let (_, v2) =
        mitigations::extraction_with_payload_encryption(profiles::windows_csr_harmony(), 72);
    println!(
        "[{}] attack succeeded: {} (USB channel)\n    evidence: {}\n",
        v2.mitigation, v2.attack_succeeded, v2.evidence
    );

    let (_, v2b) = mitigations::extraction_with_payload_encryption(profiles::galaxy_s21(), 73);
    println!(
        "[{}] attack succeeded: {} (snoop channel)\n    evidence: {}\n",
        v2b.mitigation, v2b.attack_succeeded, v2b.evidence
    );

    let (_, v3) = mitigations::page_blocking_with_role_check(profiles::pixel_2_xl(), 74);
    println!(
        "[{}] attack succeeded: {}\n    evidence: {}\n",
        v3.mitigation, v3.attack_succeeded, v3.evidence
    );

    let honest_ok = mitigations::role_check_false_positive_probe(profiles::pixel_2_xl(), 75);
    println!("role check false-positive probe: honest car-kit pairing still works: {honest_ok}");

    let all_stopped = !v1.attack_succeeded
        && !v2.attack_succeeded
        && !v2b.attack_succeeded
        && !v3.attack_succeeded;
    println!(
        "\nverdict: {} (and honest pairing preserved: {honest_ok})",
        if all_stopped {
            "every mitigation stopped its attack"
        } else {
            "SOME MITIGATION FAILED"
        }
    );
}
