//! Offline numeric-PIN brute force against a sniffed legacy pairing — the
//! paper's cited motivation for SSP (refs 14 and 15).
//!
//! ```text
//! cargo run --release -p blap-bench --bin pincrack -- [pin] [jobs] \
//!     [--digits N] [--trials N] [--reference] \
//!     [--metrics out/metrics.json] [--jobs N]
//! ```
//!
//! `--digits` bounds the search space (default 6: the full 1,111,110
//! candidate numeric space); `--trials` repeats the sweep for steadier
//! rate numbers; `--reference` swaps the batched kernels for the serial
//! scalar reference scan. `jobs` (or the `BLAP_JOBS` environment variable)
//! sets the worker count; the recovered PIN, attempt count, and metrics
//! artifact are byte-identical at any value and any trial count.
//!
//! The metrics artifact reports the sweep duration twice: virtual time
//! (`pincrack.sweep_virtual_us`, one virtual microsecond per candidate —
//! deterministic) always, wall time and the derived
//! `pincrack.candidates_per_second` only under `BLAP_METRICS_WALL=1`,
//! which is the same opt-in the rest of the artifacts use to keep byte
//! comparability across runs and machines.

use std::time::{Duration, Instant};

use blap::legacy_pin::{
    crack_numeric_pin_reference, crack_numeric_pin_with, CrackResult, LegacyPairingCapture,
    MAX_PIN_DIGITS,
};
use blap_bench::cli::{self, Args};
use blap_obs::{MetaValue, Metrics};

fn main() {
    let args = Args::parse_with(&["--digits", "--trials"], &["--reference"]);
    let pin = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "4821".to_owned());
    let jobs = args.resolve_jobs(1);
    let digits: u32 = args.extra_or("--digits", 6).unwrap_or_else(die);
    let trials: u32 = args.extra_or("--trials", 1).unwrap_or_else(die);
    let reference = args.has_switch("--reference");
    if !(1..=MAX_PIN_DIGITS).contains(&digits) {
        die::<u32>(format!(
            "--digits must be between 1 and {MAX_PIN_DIGITS} (E22 PINs are 1-16 digits)"
        ));
    }
    if trials == 0 {
        die::<u32>("--trials must be at least 1".to_owned());
    }
    args.init_profiling();
    let engine = if reference {
        "scalar-reference"
    } else {
        "batch"
    };
    println!("== Legacy PIN cracking (E22/E21/E1 offline search) ==\n");
    println!(
        "synthesizing a sniffed legacy pairing with PIN {pin:?} \
         (search space: up to {digits} digits, engine: {engine})...\n"
    );

    let capture = LegacyPairingCapture::synthesize(
        "11:11:11:11:11:11".parse().expect("valid address"),
        "00:1b:7d:da:71:0a".parse().expect("valid address"),
        pin.as_bytes(),
        [0xA1; 16],
        [0xB2; 16],
        [0xC3; 16],
        [0xD4; 16],
    );

    let started = Instant::now();
    let mut total_wall = Duration::ZERO;
    let mut outcome: Option<Option<CrackResult>> = None;
    for trial in 0..trials {
        let sweep = Instant::now();
        let result = if reference {
            crack_numeric_pin_reference(&capture, digits)
        } else {
            crack_numeric_pin_with(&capture, digits, jobs)
        };
        let elapsed = sweep.elapsed();
        total_wall += elapsed;
        if let Some(result) = &result {
            println!(
                "trial {}/{trials}: {} candidates in {:.2?} ({:.0} candidates/s)",
                trial + 1,
                result.attempts,
                elapsed,
                result.attempts as f64 / elapsed.as_secs_f64().max(1e-9)
            );
        }
        match &outcome {
            None => outcome = Some(result),
            Some(first) => assert_eq!(first, &result, "trial {} disagrees with trial 1", trial + 1),
        }
    }

    let mut metrics = Metrics::new();
    metrics.add("pincrack.digits", digits as u64);
    metrics.add("pincrack.trials", trials as u64);
    let outcome = outcome.expect("at least one trial ran");
    match &outcome {
        Some(result) => {
            println!(
                "\ncracked: PIN {:?} after {} candidates",
                String::from_utf8_lossy(&result.pin),
                result.attempts,
            );
            println!("recovered link key: {}", result.link_key);
            let swept = result.attempts as u64 * trials as u64;
            println!(
                "aggregate rate: {:.0} candidates/s over {trials} trial(s)",
                swept as f64 / total_wall.as_secs_f64().max(1e-9)
            );
            metrics.add("pincrack.candidates", result.attempts as u64);
            metrics.inc("pincrack.cracked");
            metrics.gauge_max("pincrack.pin_len", result.pin.len() as u64);
            // Virtual sweep duration: one virtual µs per candidate, summed
            // over trials — deterministic at any parallelism or host.
            metrics.add("pincrack.sweep_virtual_us", swept);
            if wall_metrics_enabled() {
                metrics.add("pincrack.sweep_wall_ms", total_wall.as_millis() as u64);
                metrics.add(
                    "pincrack.candidates_per_second",
                    (swept as f64 / total_wall.as_secs_f64().max(1e-9)) as u64,
                );
            }
        }
        None => {
            println!("not found in the numeric search space (non-numeric PIN?)");
            metrics.inc("pincrack.exhausted");
        }
    }
    if let Some(path) = &args.metrics_path {
        cli::write_metrics(
            path,
            &[
                ("experiment", MetaValue::Str("pincrack".to_owned())),
                ("engine", MetaValue::Str(engine.to_owned())),
                ("digits", MetaValue::Int(digits as u64)),
            ],
            &metrics,
            started.elapsed(),
        );
    }
    println!(
        "\nEach candidate costs five SAFER+ key schedules and five block\n\
         encryptions (one E22 + two E21 + one E1) — even the full 6-digit\n\
         PIN space falls in about a second on one core, which is exactly\n\
         why SSP replaced PIN pairing."
    );
    args.write_profile();
}

fn wall_metrics_enabled() -> bool {
    std::env::var("BLAP_METRICS_WALL").is_ok_and(|v| v == "1")
}

fn die<T>(message: String) -> T {
    eprintln!("error: {message}");
    std::process::exit(2);
}
