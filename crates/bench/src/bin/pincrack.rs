//! Offline numeric-PIN brute force against a sniffed legacy pairing — the
//! paper's cited motivation for SSP (refs 14 and 15).
//!
//! ```text
//! cargo run --release -p blap-bench --bin pincrack -- [pin] [jobs] \
//!     [--metrics out/metrics.json] [--jobs N]
//! ```
//!
//! `jobs` (or the `BLAP_JOBS` environment variable) sets the worker count;
//! the recovered PIN, attempt count, and metrics artifact are
//! byte-identical at any value.

use std::time::Instant;

use blap::legacy_pin::{crack_numeric_pin_with, LegacyPairingCapture};
use blap_bench::cli::{self, Args};
use blap_obs::{MetaValue, Metrics};

fn main() {
    let args = Args::parse();
    let pin = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "4821".to_owned());
    let jobs = args.resolve_jobs(1);
    args.init_profiling();
    println!("== Legacy PIN cracking (E22/E21/E1 offline search) ==\n");
    println!("synthesizing a sniffed legacy pairing with PIN {pin:?}...\n");

    let capture = LegacyPairingCapture::synthesize(
        "11:11:11:11:11:11".parse().expect("valid address"),
        "00:1b:7d:da:71:0a".parse().expect("valid address"),
        pin.as_bytes(),
        [0xA1; 16],
        [0xB2; 16],
        [0xC3; 16],
        [0xD4; 16],
    );

    let mut metrics = Metrics::new();
    let start = Instant::now();
    match crack_numeric_pin_with(&capture, 6, jobs) {
        Some(result) => {
            let elapsed = start.elapsed();
            println!(
                "cracked: PIN {:?} after {} candidates in {:.2?}",
                String::from_utf8_lossy(&result.pin),
                result.attempts,
                elapsed
            );
            println!("recovered link key: {}", result.link_key);
            println!(
                "rate: {:.0} candidates/s",
                result.attempts as f64 / elapsed.as_secs_f64().max(1e-9)
            );
            metrics.add("pincrack.candidates", result.attempts as u64);
            metrics.inc("pincrack.cracked");
            metrics.gauge_max("pincrack.pin_len", result.pin.len() as u64);
        }
        None => {
            println!("not found in the numeric search space (non-numeric PIN?)");
            metrics.inc("pincrack.exhausted");
        }
    }
    if let Some(path) = &args.metrics_path {
        cli::write_metrics(
            path,
            &[("experiment", MetaValue::Str("pincrack".to_owned()))],
            &metrics,
            start.elapsed(),
        );
    }
    println!(
        "\nEach candidate costs one E22 + two E21 + one E1 (12 SAFER+ block\n\
         encryptions total) — a 4-digit PIN space is trivially searchable,\n\
         which is exactly why SSP replaced PIN pairing."
    );
    args.write_profile();
}
