//! Regenerates Fig 11: the same link key read from a USB sniff of the
//! accessory `C` and from the HCI dump of the phone `M`.
//!
//! ```text
//! cargo run --release -p blap-bench --bin fig11
//! ```

use blap_sim::{profiles, World};
use blap_snoop::hexconv;
use blap_types::{Duration, ServiceUuid};

fn main() {
    let mut world = World::new(11);
    // C: a Windows 10 / CSR-dongle PC whose HCI rides USB.
    let pc = world.add_device(profiles::windows_ms_driver().soft_target("00:1b:7d:da:71:0a"));
    // M: an Android phone with the snoop option on.
    let phone =
        world.add_device(profiles::lg_velvet().victim_phone_with_snoop("48:90:12:34:56:78"));
    let phone_addr = "48:90:12:34:56:78".parse().unwrap();
    let pc_addr = "00:1b:7d:da:71:0a".parse().unwrap();

    // Bond, disconnect, reconnect — the reconnect drives the key across
    // both observation channels at once.
    world.device_mut(pc).host.pair_with(phone_addr);
    world.run_for(Duration::from_secs(5));
    world.device_mut(pc).host.disconnect(phone_addr);
    world.run_for(Duration::from_secs(2));
    world
        .device_mut(pc)
        .host
        .connect_profile(phone_addr, ServiceUuid::HANDS_FREE);
    world.run_for(Duration::from_secs(5));

    println!("== Fig 11a: link key in the USB sniff of C (Windows PC) ==\n");
    let raw = world.device(pc).usb_capture().expect("USB transport");
    println!(
        "raw capture: {} bytes; converted head:\n  {} ...\n",
        raw.len(),
        hexconv::to_hex_string(&raw[..raw.len().min(48)])
    );
    let matches = hexconv::scan_link_key_replies(&raw);
    for m in &matches {
        let addr = blap_types::BdAddr::from_le_bytes(m.addr_le);
        let key = blap_types::LinkKey::from_le_bytes(m.key_le);
        println!(
            "match at offset {}: '0b 04 16' + BD_ADDR {} + Link_Key {}",
            m.offset, addr, key
        );
    }

    println!("\n== Fig 11b: the corresponding key in M's HCI dump ==\n");
    let trace = world.device(phone).snoop_trace();
    let phone_view = trace.link_key_for(pc_addr);
    match phone_view {
        Some(key) => println!("M logged link key {key} for peer {pc_addr}"),
        None => println!("M logged no key (unexpected)"),
    }

    let usb_key = matches
        .first()
        .map(|m| blap_types::LinkKey::from_le_bytes(m.key_le));
    match (usb_key, phone_view) {
        (Some(a), Some(b)) if a == b => {
            println!("\nkeys MATCH — USB extraction verified against the peer's dump")
        }
        _ => println!("\nkeys DIFFER — extraction failed"),
    }
}
