//! Regenerates Fig 7: the IO-capability mapping for SSP Authentication
//! Stage 1, for both specification generations, with the popup policy each
//! side applies.
//!
//! ```text
//! cargo run --release -p blap-bench --bin fig7
//! ```

use blap_host::association::{fig7_matrix, ConfirmationPolicy};
use blap_types::SpecGeneration;

fn policy_str(p: ConfirmationPolicy) -> &'static str {
    match p {
        ConfirmationPolicy::AutoConfirm => "auto-confirm",
        ConfirmationPolicy::YesNoPopup => "yes/no popup (no value)",
        ConfirmationPolicy::NumericPopup => "numeric popup",
    }
}

fn main() {
    for generation in [SpecGeneration::V42OrLower, SpecGeneration::V50OrHigher] {
        println!("== Fig 7 ({generation}) ==\n");
        println!(
            "{:<18} {:<18} {:<20} {:<24} {:<24}",
            "Initiator (A)", "Responder (B)", "Association model", "A side", "B side"
        );
        println!("{}", "-".repeat(106));
        for cell in fig7_matrix(generation) {
            println!(
                "{:<18} {:<18} {:<20} {:<24} {:<24}",
                cell.initiator_io.to_string(),
                cell.responder_io.to_string(),
                cell.model.to_string(),
                policy_str(cell.initiator_policy),
                policy_str(cell.responder_policy),
            );
        }
        println!();
    }
    println!(
        "Note the attack-relevant corner: any NoInputNoOutput participant forces\n\
         Just Works, and the only popups it produces carry no comparable value."
    );
}
