//! Regenerates Table I: devices vulnerable to the link key extraction
//! attack, with per-device channel and validation evidence.
//!
//! ```text
//! cargo run --release -p blap-bench --bin table1 [seed] [jobs]
//! ```
//!
//! `jobs` (or the `BLAP_JOBS` environment variable) sets the worker count;
//! the output is byte-identical at any value.

use blap::report;
use blap::runner::Jobs;
use blap_bench::run_table1_with;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2022);
    let jobs: Jobs = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(Jobs::from_env);

    println!("== Table I: link key extraction across the device catalog ==");
    println!("(seed {seed}; each row runs the full Fig 5 procedure plus the");
    println!(" §VI-B1 impersonation validation against a simulated LG VELVET)\n");

    let reports = run_table1_with(seed, jobs);
    print!("{}", report::table1(&reports));

    println!();
    for r in &reports {
        let key = r
            .extracted_key
            .map(|k| k.to_hex())
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "{:<12} {:<28} extracted key: {}  bond intact: {}  PAN impersonation: {}",
            r.soft_target.os,
            r.soft_target.stack.to_string(),
            key,
            r.victim_bond_intact,
            r.impersonation_validated,
        );
    }

    let vulnerable = reports.iter().filter(|r| r.vulnerable()).count();
    println!(
        "\n{} of {} device configurations vulnerable (paper: 9 of 9).",
        vulnerable,
        reports.len()
    );
}
