//! Regenerates Table I: devices vulnerable to the link key extraction
//! attack, with per-device channel and validation evidence.
//!
//! ```text
//! cargo run --release -p blap-bench --bin table1 -- [seed] [jobs] \
//!     [--metrics out/metrics.json] [--trace out/trace.jsonl] [--jobs N]
//! ```
//!
//! `jobs` (or the `BLAP_JOBS` environment variable) sets the worker count;
//! the output — table, metrics, and trace — is byte-identical at any value.

use std::time::Instant;

use blap::report;
use blap_bench::cli::{self, Args};
use blap_bench::{run_table1_observed_with, run_table1_with};
use blap_obs::MetaValue;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.positional_or(0, 2022);
    let jobs = args.resolve_jobs(1);
    args.init_profiling();
    let observe = args.metrics_path.is_some() || args.trace_path.is_some();

    println!("== Table I: link key extraction across the device catalog ==");
    println!("(seed {seed}; each row runs the full Fig 5 procedure plus the");
    println!(" §VI-B1 impersonation validation against a simulated LG VELVET)\n");

    let started = Instant::now();
    let reports = if observe {
        let observed = run_table1_observed_with(seed, jobs);
        if let Some(path) = &args.metrics_path {
            cli::write_metrics(
                path,
                &[
                    ("experiment", MetaValue::Str("table1".to_owned())),
                    ("seed", MetaValue::Int(seed)),
                ],
                &observed.metrics,
                started.elapsed(),
            );
        }
        if let Some(path) = &args.trace_path {
            cli::write_artifact(path, &observed.trace);
        }
        observed.rows
    } else {
        run_table1_with(seed, jobs)
    };
    print!("{}", report::table1(&reports));

    println!();
    for r in &reports {
        let key = r
            .extracted_key
            .map(|k| k.to_hex())
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "{:<12} {:<28} extracted key: {}  bond intact: {}  PAN impersonation: {}",
            r.soft_target.os,
            r.soft_target.stack.to_string(),
            key,
            r.victim_bond_intact,
            r.impersonation_validated,
        );
    }

    let vulnerable = reports.iter().filter(|r| r.vulnerable()).count();
    println!(
        "\n{} of {} device configurations vulnerable (paper: 9 of 9).",
        vulnerable,
        reports.len()
    );
    args.write_profile();
}
