//! Regenerates Table I: devices vulnerable to the link key extraction
//! attack, with per-device channel and validation evidence.
//!
//! ```text
//! cargo run --release -p blap-bench --bin table1
//! ```

use blap::report;
use blap_bench::run_table1;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022);

    println!("== Table I: link key extraction across the device catalog ==");
    println!("(seed {seed}; each row runs the full Fig 5 procedure plus the");
    println!(" §VI-B1 impersonation validation against a simulated LG VELVET)\n");

    let reports = run_table1(seed);
    print!("{}", report::table1(&reports));

    println!();
    for r in &reports {
        let key = r
            .extracted_key
            .map(|k| k.to_hex())
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "{:<12} {:<28} extracted key: {}  bond intact: {}  PAN impersonation: {}",
            r.soft_target.os,
            r.soft_target.stack.to_string(),
            key,
            r.victim_bond_intact,
            r.impersonation_validated,
        );
    }

    let vulnerable = reports.iter().filter(|r| r.vulnerable()).count();
    println!(
        "\n{} of {} device configurations vulnerable (paper: 9 of 9).",
        vulnerable,
        reports.len()
    );
}
