//! Regenerates Fig 3: a link key sitting in plain sight inside a parsed
//! HCI dump — the `HCI_Link_Key_Request_Reply` of a bonded reconnection.
//!
//! ```text
//! cargo run --release -p blap-bench --bin fig3
//! ```

use blap_hci::{Command, HciPacket};
use blap_sim::{profiles, World};
use blap_snoop::pretty;
use blap_types::{Duration, ServiceUuid};

fn main() {
    let mut world = World::new(3);
    let phone =
        world.add_device(profiles::lg_velvet().victim_phone_with_snoop("48:90:12:34:56:78"));
    let kit = world.add_device(profiles::car_kit("00:1b:7d:da:71:0a"));
    let kit_addr = "00:1b:7d:da:71:0a".parse().unwrap();
    let _ = kit;

    // Pair (bond), disconnect, reconnect: the reconnection makes the host
    // hand the stored key down in HCI_Link_Key_Request_Reply.
    world.device_mut(phone).host.pair_with(kit_addr);
    world.run_for(Duration::from_secs(5));
    world.device_mut(phone).host.disconnect(kit_addr);
    world.run_for(Duration::from_secs(2));
    world
        .device_mut(phone)
        .host
        .connect_profile(kit_addr, ServiceUuid::HANDS_FREE);
    world.run_for(Duration::from_secs(5));

    let trace = world.device(phone).snoop_trace();
    println!("== Fig 3: link keys in a parsed HCI dump (phone side) ==\n");
    print!("{}", pretty::frame_table(&trace));

    println!("\n-- detail panes for every key-bearing packet --\n");
    for entry in trace.iter() {
        let key_bearing = matches!(
            &entry.packet,
            HciPacket::Command(Command::LinkKeyRequestReply { .. })
                | HciPacket::Event(blap_hci::Event::LinkKeyNotification { .. })
        );
        if key_bearing {
            println!("{}", pretty::packet_detail(&entry.packet));
        }
    }

    let keys = trace.extract_link_keys();
    println!("extracted {} key(s) from the dump:", keys.len());
    for (peer, key) in keys {
        println!("  {peer} -> {key}");
    }
}
