//! `blap-campaign` — fleet-scale population sweeps over the page blocking
//! attack, with streaming aggregation and checkpoint/resume.
//!
//! ```text
//! cargo run --release -p blap-bench --bin blap-campaign -- \
//!     [--population fleet|table2|mitigated] [--trials N] [--shards N] \
//!     [--seed N] [--jobs N] [--metrics out/metrics.json] \
//!     [--checkpoint ck.json] [--checkpoint-every N] [--resume] \
//!     [--stop-after N] [--check-invariants] \
//!     [--telemetry telemetry.jsonl] [--telemetry-interval MS]
//! ```
//!
//! Trials are sharded across workers; each shard runs its own worlds and
//! folds them into one metrics bag, so memory stays bounded at any trial
//! count. The metrics artifact and the checkpoint file are byte-identical
//! at any `--jobs`/`BLAP_JOBS` value and across an interrupt/resume split
//! (merge associativity; pinned in `tests/parallel_determinism.rs`).
//!
//! `--checkpoint` writes the running aggregate (atomically, tmp+rename)
//! every `--checkpoint-every` shards (default 64); `--resume` continues
//! from it after an interrupt. `--stop-after N` exits cleanly after N
//! shards — deterministic interrupt injection for the CI resume smoke.
//!
//! `--check-invariants` streams every trial's trace through the
//! per-trial invariant checkers *while the campaign runs*: violations
//! surface live on stderr (capped per shard), and the merged
//! [`ViolationSummary`] — byte-identical at any `--jobs` value — is
//! printed with the final report, embedded in the checkpoint, and turns
//! the exit status to 1 (after all artifacts are written). Metrics bytes
//! are unchanged by the flag.
//!
//! Live progress is always on: a one-line stderr heartbeat redraws every
//! `--telemetry-interval` milliseconds (default 1000). `--telemetry
//! <path>` additionally appends each sampled
//! [`blap_obs::telemetry::TelemetrySnapshot`] as a JSONL line for
//! `blap-top` to tail-follow. Telemetry is wall-time sidecar data, like
//! `profile.json`: the metrics artifact and checkpoint stay
//! byte-identical with it on or off, at any worker count.

use std::time::{Duration, Instant};

use blap::campaign::{Campaign, Population};
use blap_bench::cli::{self, Args};
use blap_obs::{json, prof, telemetry, MetaValue, Metrics, ViolationSummary};

/// Checkpoint document schema tag.
const SCHEMA: &str = "blap-campaign-checkpoint-v1";

/// Default shard count between checkpoint writes.
const DEFAULT_CHECKPOINT_EVERY: u64 = 64;

/// Default telemetry sampling interval in milliseconds.
const DEFAULT_TELEMETRY_INTERVAL_MS: u64 = 1000;

fn main() {
    let args = Args::parse_with(
        &[
            "--population",
            "--trials",
            "--shards",
            "--seed",
            "--checkpoint",
            "--checkpoint-every",
            "--stop-after",
            "--telemetry",
            "--telemetry-interval",
        ],
        &["--resume", "--check-invariants"],
    );
    let population_name: String = args
        .extra_or("--population", "fleet".to_owned())
        .unwrap_or_else(die);
    let population = Population::by_name(&population_name).unwrap_or_else(|| {
        die(format!(
            "--population {population_name:?} is not one of {:?}",
            Population::names()
        ))
    });
    let trials: u64 = args.extra_or("--trials", 10_000).unwrap_or_else(die);
    let seed: u64 = args.extra_or("--seed", 2022).unwrap_or_else(die);
    let shards: u64 = args.extra_or("--shards", 0).unwrap_or_else(die);
    let checkpoint_every: u64 = args
        .extra_or("--checkpoint-every", DEFAULT_CHECKPOINT_EVERY)
        .unwrap_or_else(die);
    let stop_after: u64 = args.extra_or("--stop-after", u64::MAX).unwrap_or_else(die);
    let checkpoint_path: String = args
        .extra_or("--checkpoint", String::new())
        .unwrap_or_else(die);
    let checkpoint_path = (!checkpoint_path.is_empty()).then_some(checkpoint_path);
    if checkpoint_every == 0 {
        die::<u64>("--checkpoint-every must be at least 1".to_owned());
    }
    if args.has_switch("--resume") && checkpoint_path.is_none() {
        die::<u64>("--resume needs --checkpoint <path> to resume from".to_owned());
    }
    let check_invariants = args.has_switch("--check-invariants");
    let telemetry_path: String = args
        .extra_or("--telemetry", String::new())
        .unwrap_or_else(die);
    let telemetry_path = (!telemetry_path.is_empty()).then_some(telemetry_path);
    let telemetry_interval_ms: u64 = args
        .extra_or("--telemetry-interval", DEFAULT_TELEMETRY_INTERVAL_MS)
        .unwrap_or_else(die);
    if telemetry_interval_ms == 0 {
        die::<u64>("--telemetry-interval must be at least 1 (milliseconds)".to_owned());
    }

    let mut campaign = Campaign::new(population, trials, seed);
    if shards > 0 {
        campaign.shards = shards;
    }
    let total_shards = campaign.shard_count();
    let jobs = args.resolve_jobs(usize::MAX);
    args.init_profiling();
    // Worker accounting is sidecar-only (never a metrics byte), so the
    // utilization report at the end is free to always be on.
    prof::set_enabled(true);

    println!(
        "== blap-campaign: population {:?}, {trials} trials, {total_shards} shards, seed {seed} ==",
        campaign.population.name
    );

    let (mut next_shard, mut merged, mut summary) = if args.has_switch("--resume") {
        let path = checkpoint_path.as_deref().expect("checked above");
        let (next, metrics, summary) = read_checkpoint(path, &campaign, check_invariants);
        println!("resumed from {path}: {next}/{total_shards} shards already aggregated");
        (next, metrics, summary)
    } else {
        (0, Metrics::new(), ViolationSummary::new())
    };

    let stop_at = next_shard.saturating_add(stop_after).min(total_shards);
    // Live telemetry rides beside the run: the heartbeat is always on,
    // the JSONL sidecar only under --telemetry. Sidecar-only, so the
    // artifacts below never see it.
    telemetry::begin_session(telemetry::SessionTotals {
        trials_total: trials,
        shards_total: total_shards,
        trials_done: merged.counter("campaign.trials"),
        shards_done: next_shard,
    });
    let collector = telemetry::Collector::start(
        telemetry_path.clone(),
        Duration::from_millis(telemetry_interval_ms),
        true,
    )
    .unwrap_or_else(|err| {
        die(format!(
            "cannot open telemetry sidecar {}: {err}",
            telemetry_path.as_deref().unwrap_or("?")
        ))
    });
    let started = Instant::now();
    let resumed_from = next_shard;
    while next_shard < stop_at {
        let wave_end = next_shard
            .saturating_add(checkpoint_every)
            .min(stop_at)
            .max(next_shard + 1);
        if check_invariants {
            let (metrics, violations) = campaign.run_shards_checked(jobs, next_shard, wave_end);
            merged.merge(&metrics);
            summary.merge(&violations);
        } else {
            merged.merge(&campaign.run_shards(jobs, next_shard, wave_end));
        }
        next_shard = wave_end;
        if let Some(path) = &checkpoint_path {
            let invariants = check_invariants.then_some(&summary);
            write_checkpoint(path, &campaign, next_shard, &merged, invariants);
        }
    }
    let wall = started.elapsed();
    let telemetry_report = collector.stop();
    if let Some(path) = &telemetry_path {
        eprintln!(
            "telemetry sidecar: {path} ({} snapshots written, {} dropped from the ring)",
            telemetry_report.lines_written,
            telemetry_report.ring.dropped()
        );
    }

    let already_swept = if resumed_from >= total_shards {
        trials
    } else {
        campaign.shard_range(resumed_from).0
    };
    let swept = merged.counter("campaign.trials") - already_swept;
    println!(
        "ran {swept} trials across {} shards in {wall:.2?} ({:.0} trials/s, {} workers)",
        next_shard - resumed_from,
        swept as f64 / wall.as_secs_f64().max(1e-9),
        jobs.get()
    );
    print_utilization();

    if next_shard < total_shards {
        println!(
            "stopped after {} shards ({next_shard}/{total_shards} aggregated); \
             rerun with --resume to finish",
            next_shard - resumed_from
        );
        return;
    }

    print_summary(&campaign, &merged);
    if check_invariants {
        print!("\n{}", summary.render());
    }
    if let Some(path) = &args.metrics_path {
        cli::write_metrics(
            path,
            &[
                ("experiment", MetaValue::Str("campaign".to_owned())),
                (
                    "population",
                    MetaValue::Str(campaign.population.name.to_owned()),
                ),
                ("trials", MetaValue::Int(trials)),
                ("shards", MetaValue::Int(total_shards)),
                ("seed", MetaValue::Int(seed)),
            ],
            &merged,
            wall,
        );
    }
    args.write_profile();
    // Violations flip the exit status, but only after every artifact is
    // on disk — a dirty campaign is still a complete one.
    if check_invariants && !summary.is_clean() {
        std::process::exit(1);
    }
}

/// Prints the campaign verdict counters and the per-device win table.
fn print_summary(campaign: &Campaign, merged: &Metrics) {
    let total = merged.counter("campaign.trials").max(1);
    let percent = |n: u64| 100.0 * n as f64 / total as f64;
    println!(
        "\nmitm established: {}/{} ({:.1}%)  paired with attacker: {} ({:.1}%)",
        merged.counter("campaign.mitm_established"),
        total,
        percent(merged.counter("campaign.mitm_established")),
        merged.counter("campaign.paired_with_attacker"),
        percent(merged.counter("campaign.paired_with_attacker")),
    );
    println!(
        "modes: {} blocking / {} baseline   downgraded to Just Works: {}   security alerts: {}",
        merged.counter("campaign.mode.blocking"),
        merged.counter("campaign.mode.baseline"),
        merged.counter("campaign.downgraded_to_just_works"),
        merged.counter("campaign.security_alert"),
    );
    println!(
        "\n{:<24} {:>18} {:>18}",
        "device", "blocking wins", "baseline wins"
    );
    for (profile, _) in &campaign.population.pool {
        let scoped =
            |suffix: &str| merged.counter(&format!("campaign.device.{}.{suffix}", profile.name));
        let cell = |wins: u64, runs: u64| {
            if runs == 0 {
                "-".to_owned()
            } else {
                format!("{wins}/{runs} ({:.0}%)", 100.0 * wins as f64 / runs as f64)
            }
        };
        println!(
            "{:<24} {:>18} {:>18}",
            profile.name,
            cell(scoped("blocking_wins"), scoped("blocking_trials")),
            cell(scoped("baseline_wins"), scoped("baseline_trials")),
        );
    }
}

/// Prints per-worker busy time and imbalance for the shard pool.
fn print_utilization() {
    let report = prof::report();
    let Some(pool) = report.pool("parallel_map") else {
        return;
    };
    println!(
        "worker utilization: {:.1}% over {} pool runs",
        100.0 * pool.utilization(),
        pool.runs
    );
    for worker in &pool.workers {
        println!(
            "  worker {:>2}: {:>5} shards  {:>8.2?} busy  imbalance {:+.1}%",
            worker.worker,
            worker.tasks,
            std::time::Duration::from_nanos(worker.busy_ns),
            100.0 * worker.imbalance,
        );
    }
}

/// Atomically writes the checkpoint: config echo, resume cursor, the
/// invariant summary (only under `--check-invariants`), and the merged
/// metrics so far. Byte-deterministic at any worker count.
fn write_checkpoint(
    path: &str,
    campaign: &Campaign,
    next_shard: u64,
    merged: &Metrics,
    invariants: Option<&ViolationSummary>,
) {
    let invariants_section = invariants
        .map(|summary| format!("  \"invariants\": {},\n", summary.to_json()))
        .unwrap_or_default();
    let body = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"population\": \"{}\",\n  \
         \"trials\": {},\n  \"shards\": {},\n  \"seed\": {},\n  \
         \"next_shard\": {next_shard},\n{invariants_section}  \"metrics\": {}\n}}\n",
        campaign.population.name,
        campaign.trials,
        campaign.shard_count(),
        campaign.seed,
        merged.to_json().trim_end(),
    );
    let tmp = format!("{path}.tmp");
    cli::write_artifact(&tmp, &body);
    if let Err(err) = std::fs::rename(&tmp, path) {
        eprintln!("error: cannot move {tmp} into place: {err}");
        std::process::exit(1);
    }
}

/// Reads a checkpoint back, refusing a document whose configuration does
/// not match this invocation (resuming under a different population, seed,
/// or shard shape would silently corrupt the aggregate). When resuming
/// under `--check-invariants`, the checkpoint must carry an `invariants`
/// summary — one written without the flag skipped the checks for the
/// shards it covers, so the combined summary would silently under-count.
fn read_checkpoint(
    path: &str,
    campaign: &Campaign,
    check_invariants: bool,
) -> (u64, Metrics, ViolationSummary) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|err| die(format!("cannot read checkpoint {path}: {err}")));
    let value = json::parse(&text)
        .unwrap_or_else(|err| die(format!("checkpoint {path} is not valid JSON: {err}")));
    let field = |key: &str| {
        value
            .get(key)
            .unwrap_or_else(|| die(format!("checkpoint {path} is missing {key:?}")))
    };
    if field("schema").as_str() != Some(SCHEMA) {
        die::<u64>(format!("checkpoint {path} is not a {SCHEMA} document"));
    }
    let uint = |key: &str| {
        field(key)
            .as_u64()
            .unwrap_or_else(|| die(format!("checkpoint {path} field {key:?} is not an integer")))
    };
    let expect = |key: &str, want: u64| {
        let got = uint(key);
        if got != want {
            die::<u64>(format!(
                "checkpoint {path} was taken with {key} {got}, this run uses {want}"
            ));
        }
    };
    if field("population").as_str() != Some(campaign.population.name) {
        die::<u64>(format!(
            "checkpoint {path} was taken with population {:?}, this run uses {:?}",
            field("population").as_str().unwrap_or("?"),
            campaign.population.name
        ));
    }
    expect("trials", campaign.trials);
    expect("shards", campaign.shard_count());
    expect("seed", campaign.seed);
    let next_shard = uint("next_shard");
    if next_shard > campaign.shard_count() {
        die::<u64>(format!(
            "checkpoint {path} cursor {next_shard} exceeds the {} shards",
            campaign.shard_count()
        ));
    }
    let metrics = Metrics::from_value(field("metrics"))
        .unwrap_or_else(|err| die(format!("checkpoint {path} metrics are malformed: {err}")));
    let summary = if check_invariants {
        let invariants = value.get("invariants").unwrap_or_else(|| {
            die(format!(
                "checkpoint {path} has no \"invariants\" summary — it was written \
                 without --check-invariants, so the covered shards were never checked; \
                 restart the campaign from scratch to check every trial"
            ))
        });
        ViolationSummary::from_value(invariants)
            .unwrap_or_else(|err| die(format!("checkpoint {path} invariants are malformed: {err}")))
    } else {
        ViolationSummary::new()
    };
    (next_shard, metrics, summary)
}

fn die<T>(message: String) -> T {
    eprintln!("error: {message}");
    std::process::exit(2);
}
