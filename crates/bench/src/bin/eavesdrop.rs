//! Demonstrates the §IV consequence of a stolen link key: decrypting
//! air-sniffed traffic, past and future.
//!
//! ```text
//! cargo run --release -p blap-bench --bin eavesdrop
//! ```

use blap::eavesdrop::EavesdropScenario;

fn main() {
    let scenario = EavesdropScenario::new(404);
    println!("== Air-sniffer eavesdropping with an extracted link key ==\n");
    println!("setup: C (Galaxy S8, snoop on) runs an AES-CCM encrypted PBAP");
    println!("session with M (LG VELVET) while a passive sniffer records\n");

    let report = scenario.run();
    println!(
        "encrypted ACL frames captured     : {}",
        report.captured_encrypted_frames
    );
    println!(
        "secrets visible in the ciphertext : {}",
        report.ciphertext_contains_secrets
    );
    println!(
        "link key pulled from C's dump     : {}",
        report
            .stolen_key
            .map(|k| k.to_hex())
            .unwrap_or_else(|| "-".to_owned())
    );
    println!("\noffline key schedule: sniffed LMP_au_rand -> h4/h5 -> ACO -> h3");
    println!("-> session key -> per-frame CCM nonces\n");
    println!(
        "secrets recovered by decryption   : {}/{}",
        report.decrypted_secrets.len(),
        scenario.secrets.len()
    );
    for secret in &report.decrypted_secrets {
        println!("   {:?}", String::from_utf8_lossy(secret));
    }
    println!(
        "\nverdict: {}",
        if report.succeeded(scenario.secrets.len()) {
            "encryption hid nothing from a key-holding eavesdropper"
        } else {
            "UNEXPECTED: decryption failed"
        }
    );
}
