//! Demonstrates the §IV consequence of a stolen link key: decrypting
//! air-sniffed traffic, past and future.
//!
//! ```text
//! cargo run --release -p blap-bench --bin eavesdrop -- \
//!     [--frames N] [--frame-len N] [--reference] \
//!     [--metrics out/metrics.json] [--jobs N]
//! ```
//!
//! Without flags, runs the narrative scenario: an encrypted PBAP session
//! captured by a passive sniffer, then decrypted offline with the
//! extracted key. With `--frames`/`--frame-len`, additionally sweeps a
//! synthetic capture of that shape through the decrypt engine — the
//! batched `open_many` pipeline by default, the scalar per-frame
//! reference under `--reference`. The recovered plaintexts and the
//! metrics artifact are byte-identical for both engines and at any
//! `BLAP_JOBS` value; wall time and the derived
//! `eavesdrop.bytes_per_second` only appear under `BLAP_METRICS_WALL=1`,
//! the same opt-in the rest of the artifacts use.

use std::time::Instant as WallInstant;

use blap::addrs;
use blap::eavesdrop::{decrypt_capture, decrypt_capture_batched, EavesdropScenario};
use blap_bench::cli::{self, Args};
use blap_crypto::{ccm, ssp};
use blap_obs::{MetaValue, Metrics};
use blap_sim::SniffedFrame;
use blap_types::{BdAddr, Instant, LinkKey};

fn main() {
    let args = Args::parse_with(&["--frames", "--frame-len"], &["--reference"]);
    let frames: usize = args.extra_or("--frames", 0).unwrap_or_else(die);
    let frame_len: usize = args.extra_or("--frame-len", 64).unwrap_or_else(die);
    let reference = args.has_switch("--reference");
    // Decryption is a single offline pass; jobs is accepted for CLI
    // uniformity and to document that the artifact is identical at any
    // value.
    let _jobs = args.resolve_jobs(0);
    args.init_profiling();
    let started = WallInstant::now();

    let mut metrics = Metrics::new();
    if frames > 0 {
        sweep(frames, frame_len, reference, &mut metrics);
    } else {
        scenario_demo(&mut metrics);
    }

    if let Some(path) = &args.metrics_path {
        cli::write_metrics(
            path,
            &[
                ("experiment", MetaValue::Str("eavesdrop".to_owned())),
                ("frames", MetaValue::Int(frames as u64)),
                ("frame_len", MetaValue::Int(frame_len as u64)),
            ],
            &metrics,
            started.elapsed(),
        );
    }
    args.write_profile();
}

fn scenario_demo(metrics: &mut Metrics) {
    let scenario = EavesdropScenario::new(404);
    println!("== Air-sniffer eavesdropping with an extracted link key ==\n");
    println!("setup: C (Galaxy S8, snoop on) runs an AES-CCM encrypted PBAP");
    println!("session with M (LG VELVET) while a passive sniffer records\n");

    let report = scenario.run();
    println!(
        "encrypted ACL frames captured     : {}",
        report.captured_encrypted_frames
    );
    println!(
        "secrets visible in the ciphertext : {}",
        report.ciphertext_contains_secrets
    );
    println!(
        "link key pulled from C's dump     : {}",
        report
            .stolen_key
            .map(|k| k.to_hex())
            .unwrap_or_else(|| "-".to_owned())
    );
    println!("\noffline key schedule: sniffed LMP_au_rand -> h4/h5 -> ACO -> h3");
    println!("-> session key -> per-frame CCM nonces\n");
    println!(
        "secrets recovered by decryption   : {}/{}",
        report.decrypted_secrets.len(),
        scenario.secrets.len()
    );
    for secret in &report.decrypted_secrets {
        println!("   {:?}", String::from_utf8_lossy(secret));
    }
    println!(
        "\nverdict: {}",
        if report.succeeded(scenario.secrets.len()) {
            "encryption hid nothing from a key-holding eavesdropper"
        } else {
            "UNEXPECTED: decryption failed"
        }
    );
    metrics.add(
        "eavesdrop.captured_frames",
        report.captured_encrypted_frames as u64,
    );
    metrics.add(
        "eavesdrop.decrypted_secrets",
        report.decrypted_secrets.len() as u64,
    );
}

/// Times the decrypt engine over a synthetic capture: `frames` encrypted
/// ACL frames of `frame_len` bytes under one real session-key schedule.
/// The sealed bytes are produced the way the link would (CCM with the
/// per-frame counter nonce), so the attacker-side path under test is the
/// genuine one: find `LMP_au_rand`, replay the schedule, brute the
/// handle, decrypt.
fn sweep(frames: usize, frame_len: usize, reference: bool, metrics: &mut Metrics) {
    let engine = if reference {
        "scalar-reference"
    } else {
        "batched"
    };
    println!("== Eavesdrop decrypt sweep ({frames} x {frame_len}B, engine: {engine}) ==\n");

    let c_addr: BdAddr = addrs::C.parse().expect("valid address");
    let m_addr: BdAddr = addrs::M.parse().expect("valid address");
    let link_key: LinkKey = "c4f16e949f04ee9c0fd6b1023389c324".parse().expect("valid");
    let au_rand = [0x5Au8; 16];
    let (_sres, aco) =
        ssp::secure_authentication_response(&link_key, c_addr, m_addr, &au_rand, &[0u8; 16]);
    let mut aco_ext = [0u8; 8];
    aco_ext.copy_from_slice(&aco);
    let enc_key = ssp::h3(&link_key, c_addr, m_addr, &aco_ext);
    let session = ccm::Ccm::new(&enc_key);

    let mut capture = vec![SniffedFrame::Lmp {
        time: Instant::EPOCH,
        from: c_addr,
        to: m_addr,
        name: "LMP_au_rand",
        au_rand: Some(au_rand),
    }];
    let mut expected = Vec::with_capacity(frames);
    for i in 0..frames {
        let payload: Vec<u8> = (0..frame_len)
            .map(|b| (b ^ i).wrapping_mul(31) as u8)
            .collect();
        let nonce = ccm::acl_nonce(i as u64, c_addr);
        let sealed = session
            .seal(&nonce, &1u16.to_le_bytes(), &payload)
            .expect("frame fits CCM length field");
        capture.push(SniffedFrame::Acl {
            time: Instant::from_micros(1 + i as u64),
            from: c_addr,
            to: m_addr,
            data: sealed.into(),
            encrypted: true,
            packet_counter: i as u64,
        });
        expected.push(payload);
    }

    // Repetitions scale inversely with the workload so small sweeps still
    // measure something — a pure function of the flags, so the artifact
    // stays deterministic.
    let reps = (2_000_000 / (frames * frame_len.max(1)).max(1)).clamp(1, 1000) as u32;
    let decrypt = if reference {
        decrypt_capture
    } else {
        decrypt_capture_batched
    };
    let plain = decrypt(&capture, link_key, c_addr, m_addr);
    assert_eq!(plain, expected, "decrypt engine must recover every frame");
    let sweep_started = WallInstant::now();
    for _ in 0..reps {
        std::hint::black_box(decrypt(
            std::hint::black_box(&capture),
            link_key,
            c_addr,
            m_addr,
        ));
    }
    let elapsed = sweep_started.elapsed();

    let bytes = (frames * frame_len) as u64;
    println!("decrypted {frames}/{frames} frames ({bytes} payload bytes) x{reps} sweeps");
    metrics.add("eavesdrop.sweep_frames", frames as u64);
    metrics.add("eavesdrop.sweep_decrypted", plain.len() as u64);
    metrics.add("eavesdrop.sweep_bytes", bytes);
    if wall_metrics_enabled() {
        let secs = (elapsed.as_secs_f64() / f64::from(reps)).max(1e-9);
        let rate = bytes as f64 / secs;
        println!(
            "rate: {:.1} MB/s ({:.2?} per sweep over {reps} reps)",
            rate / 1e6,
            elapsed / reps
        );
        metrics.add("eavesdrop.sweep_wall_ms", elapsed.as_millis() as u64);
        metrics.add("eavesdrop.bytes_per_second", rate as u64);
    }
}

fn wall_metrics_enabled() -> bool {
    std::env::var("BLAP_METRICS_WALL").is_ok_and(|v| v == "1")
}

fn die<T>(message: String) -> T {
    eprintln!("error: {message}");
    std::process::exit(2);
}
