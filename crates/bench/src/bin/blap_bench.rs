//! `blap-bench` — perf tooling over the bench artifacts.
//!
//! ```text
//! blap-bench compare <baseline.json> <fresh.json> [--strict]
//!     [--ns-threshold F] [--wall-threshold F] [--throughput-threshold F]
//!     [--history PATH]
//! blap-bench prof <table1|table2> [positionals] [--jobs N] [--profile PREFIX]
//! ```
//!
//! `compare` diffs two `BENCH_hotpaths.json` artifacts and gates on the
//! per-metric thresholds: exit 0 on pass (or a cross-host excusal), 1 on a
//! same-host regression, 2 on usage/parse errors. `--history` appends one
//! JSONL record per run to the given file. `--strict` turns cross-host
//! excusals into failures.
//!
//! `prof` runs a table workload with wall-time profiling force-enabled and
//! prints the scope tree plus worker-utilization summary; `--profile PREFIX`
//! additionally writes the `PREFIX.json` + `PREFIX.folded` sidecar pair.

use std::time::{SystemTime, UNIX_EPOCH};

use blap_bench::cli::{write_artifact, Args};
use blap_bench::compare::{compare, history_record, CompareConfig};
use blap_obs::prof;

const USAGE: &str = "usage:\n  blap-bench compare <baseline.json> <fresh.json> [--strict] \
                     [--ns-threshold F] [--wall-threshold F] [--throughput-threshold F] \
                     [--history PATH]\n  \
                     blap-bench prof <table1|table2> [positionals] [--jobs N] [--profile PREFIX]";

fn usage_exit(message: &str) -> ! {
    eprintln!("error: {message}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("compare") => run_compare(argv),
        Some("prof") => run_prof(argv),
        Some(other) => usage_exit(&format!("unknown subcommand {other:?}")),
        None => usage_exit("missing subcommand"),
    }
}

fn run_compare(mut argv: impl Iterator<Item = String>) -> ! {
    let mut paths: Vec<String> = Vec::new();
    let mut config = CompareConfig::default();
    let mut history: Option<String> = None;
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--strict" => config.strict = true,
            "--ns-threshold" => config.ns_threshold = parse_threshold(&value("--ns-threshold")),
            "--wall-threshold" => {
                config.wall_threshold = parse_threshold(&value("--wall-threshold"))
            }
            "--throughput-threshold" => {
                config.throughput_threshold = parse_threshold(&value("--throughput-threshold"))
            }
            "--history" => history = Some(value("--history")),
            flag if flag.starts_with("--") => usage_exit(&format!("unknown flag {flag}")),
            _ => paths.push(arg),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        usage_exit("compare takes exactly two artifact paths");
    };
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|err| usage_exit(&format!("cannot read {path}: {err}")))
    };
    let comparison = match compare(&read(baseline_path), &read(fresh_path), &config) {
        Ok(comparison) => comparison,
        Err(message) => usage_exit(&message),
    };
    print!("{}", comparison.render());
    if let Some(history_path) = history {
        let unix_time = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let record = history_record(&comparison, unix_time);
        append_line(&history_path, &record);
        eprintln!("history: appended to {history_path}");
    }
    std::process::exit(match comparison.verdict {
        blap_bench::compare::Verdict::Regressed => 1,
        _ => 0,
    });
}

fn parse_threshold(text: &str) -> f64 {
    match text.parse::<f64>() {
        Ok(value) if value.is_finite() && value >= 0.0 => value,
        _ => usage_exit(&format!(
            "threshold must be a non-negative number, got {text:?}"
        )),
    }
}

fn append_line(path: &str, line: &str) {
    use std::io::Write as _;
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(err) = result {
        eprintln!("error: cannot append to {path}: {err}");
        std::process::exit(2);
    }
}

fn run_prof(argv: impl Iterator<Item = String>) -> ! {
    let args = match Args::try_from_iter(argv) {
        Ok(args) => args,
        Err(message) => usage_exit(&message),
    };
    let Some(workload) = args.positional.first().cloned() else {
        usage_exit("prof needs a workload (table1 or table2)");
    };
    prof::set_enabled(true);
    let jobs = args.resolve_jobs(usize::MAX);
    match workload.as_str() {
        "table1" => {
            let seed: u64 = args.positional_or(1, 2022);
            let observed = blap_bench::run_table1_observed_with(seed, jobs);
            eprintln!(
                "profiled table1: seed {seed}, {} rows, {} workers",
                observed.rows.len(),
                jobs.get()
            );
        }
        "table2" => {
            let trials: usize = args.positional_or(1, 4);
            let seed: u64 = args.positional_or(2, 2022);
            let observed = blap_bench::run_table2_observed_with(seed, trials, jobs);
            eprintln!(
                "profiled table2: {trials} trials, seed {seed}, {} rows, {} workers",
                observed.rows.len(),
                jobs.get()
            );
        }
        other => usage_exit(&format!("unknown workload {other:?} (table1 or table2)")),
    }
    let report = prof::report();
    print!("{}", report.render_table());
    if let Some(prefix) = &args.profile_prefix {
        write_artifact(&format!("{prefix}.json"), &report.to_json());
        write_artifact(&format!("{prefix}.folded"), &report.to_folded());
        eprintln!("profile sidecar: {prefix}.json, {prefix}.folded");
    }
    std::process::exit(0);
}
