//! Ablation sweeps: PLOC keep-alive vs user pairing delay, and race-model
//! sensitivity.
//!
//! ```text
//! cargo run --release -p blap-bench --bin ablation -- [trials] [jobs] \
//!     [--metrics out/metrics.json] [--jobs N]
//! ```
//!
//! `jobs` (or the `BLAP_JOBS` environment variable) sets the worker count;
//! both sweeps — and the metrics artifact — are byte-identical at any value.

use std::time::Instant;

use blap::ablation;
use blap_bench::cli::{self, Args};
use blap_obs::{MetaValue, Metrics};
use blap_sim::profiles;

const RACE_TRIALS: usize = 20_000;

fn main() {
    let args = Args::parse();
    let trials: usize = args.positional_or(0, 10);
    let jobs = args.resolve_jobs(1);
    let started = Instant::now();
    let mut metrics = Metrics::new();

    println!("== Ablation 1: PLOC hold vs user pairing delay ({trials} trials/point) ==\n");
    println!(
        "{:<18} {:<12} {:<14}",
        "pairing delay (s)", "keep-alive", "success rate"
    );
    println!("{}", "-".repeat(46));
    let points = ablation::ploc_delay_sweep_with(
        profiles::galaxy_s8(),
        &[2, 5, 10, 15, 25, 35],
        trials,
        81,
        jobs,
    );
    for p in &points {
        println!(
            "{:<18} {:<12} {:<14.2}",
            p.pairing_delay_s, p.keepalive, p.success_rate
        );
        metrics.add("ploc.points", 1);
        // success_rate is successes/trials, so this recovers the count.
        metrics.add(
            "ploc.successes",
            (p.success_rate * trials as f64).round() as u64,
        );
    }
    metrics.gauge_max("ploc.trials_per_point", trials as u64);
    println!(
        "\nShape: keep-alive holds 100% at any delay; the bare link dies once the\n\
         user takes longer than the 20 s supervision timeout — the reason the\n\
         paper's PoC exchanges dummy SDP traffic.\n"
    );

    println!("== Ablation 2: baseline race vs attacker latency scale ==\n");
    println!(
        "{:<12} {:<18} {:<18}",
        "scale", "analytic win rate", "measured"
    );
    println!("{}", "-".repeat(48));
    for (scale, measured) in ablation::race_scale_sweep_with(
        &[0.25, 0.5, 0.8, 0.96, 1.0, 1.19, 2.0, 4.0],
        RACE_TRIALS,
        82,
        jobs,
    ) {
        let model = blap_baseband::race::PageRaceModel::new(scale);
        println!(
            "{:<12.2} {:<18.3} {:<18.3}",
            scale,
            model.expected_attacker_win_rate(),
            measured
        );
        metrics.add("race.points", 1);
        metrics.add(
            "race.attacker_wins",
            (measured * RACE_TRIALS as f64).round() as u64,
        );
    }
    metrics.gauge_max("race.trials_per_point", RACE_TRIALS as u64);
    println!(
        "\nThe paper's 42–60% baseline band corresponds to scales 0.80–1.19;\n\
         page blocking removes this dependence entirely."
    );

    if let Some(path) = &args.metrics_path {
        cli::write_metrics(
            path,
            &[
                ("experiment", MetaValue::Str("ablation".to_owned())),
                ("trials", MetaValue::Int(trials as u64)),
            ],
            &metrics,
            started.elapsed(),
        );
    }
}
