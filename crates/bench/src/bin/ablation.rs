//! Ablation sweeps: PLOC keep-alive vs user pairing delay, and race-model
//! sensitivity.
//!
//! ```text
//! cargo run --release -p blap-bench --bin ablation [trials] [jobs]
//! ```
//!
//! `jobs` (or the `BLAP_JOBS` environment variable) sets the worker count;
//! both sweeps are byte-identical at any value.

use blap::ablation;
use blap::runner::Jobs;
use blap_sim::profiles;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let jobs: Jobs = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(Jobs::from_env);

    println!("== Ablation 1: PLOC hold vs user pairing delay ({trials} trials/point) ==\n");
    println!(
        "{:<18} {:<12} {:<14}",
        "pairing delay (s)", "keep-alive", "success rate"
    );
    println!("{}", "-".repeat(46));
    let points = ablation::ploc_delay_sweep_with(
        profiles::galaxy_s8(),
        &[2, 5, 10, 15, 25, 35],
        trials,
        81,
        jobs,
    );
    for p in &points {
        println!(
            "{:<18} {:<12} {:<14.2}",
            p.pairing_delay_s, p.keepalive, p.success_rate
        );
    }
    println!(
        "\nShape: keep-alive holds 100% at any delay; the bare link dies once the\n\
         user takes longer than the 20 s supervision timeout — the reason the\n\
         paper's PoC exchanges dummy SDP traffic.\n"
    );

    println!("== Ablation 2: baseline race vs attacker latency scale ==\n");
    println!(
        "{:<12} {:<18} {:<18}",
        "scale", "analytic win rate", "measured"
    );
    println!("{}", "-".repeat(48));
    for (scale, measured) in ablation::race_scale_sweep_with(
        &[0.25, 0.5, 0.8, 0.96, 1.0, 1.19, 2.0, 4.0],
        20_000,
        82,
        jobs,
    ) {
        let model = blap_baseband::race::PageRaceModel::new(scale);
        println!(
            "{:<12.2} {:<18.3} {:<18.3}",
            scale,
            model.expected_attacker_win_rate(),
            measured
        );
    }
    println!(
        "\nThe paper's 42–60% baseline band corresponds to scales 0.80–1.19;\n\
         page blocking removes this dependence entirely."
    );
}
