//! Regenerates Fig 12: the victim phone's HCI dump during (a) a normal
//! pairing and (b) a pairing under the page blocking attack, plus the
//! detector that distinguishes them.
//!
//! ```text
//! cargo run --release -p blap-bench --bin fig12
//! ```

use blap::addrs;
use blap::page_blocking::PageBlockingScenario;
use blap_sim::{profiles, World};
use blap_snoop::pretty;
use blap_types::Duration;

fn main() {
    let c_addr = addrs::C.parse().unwrap();

    // --- Fig 12a: ordinary pairing, M is the connection initiator.
    let mut world = World::new(12);
    let m = world.add_device(profiles::lg_velvet().victim_phone_with_snoop(addrs::M));
    let _c = world.add_device(profiles::car_kit(addrs::C));
    world.device_mut(m).host.pair_with(c_addr);
    world.run_for(Duration::from_secs(5));
    let normal = world.device(m).snoop_trace();

    println!("== Fig 12a: HCI dump for normal pairing (M's side) ==\n");
    print!("{}", pretty::frame_table(&normal));
    println!(
        "\npage blocking signature detected: {}\n",
        normal.has_page_blocking_signature(c_addr)
    );

    // --- Fig 12b: pairing under page blocking.
    let scenario = PageBlockingScenario::new(profiles::lg_velvet(), 12);
    let outcome = scenario.run_blocking_trial(0);
    // Re-run the trial with direct world access to show the trace.
    let mut world = World::new(12);
    let m = world.add_device(profiles::lg_velvet().victim_phone_with_snoop(addrs::M));
    let _c = world.add_device(profiles::car_kit(addrs::C));
    let a = world.add_device(profiles::attacker_nexus_5x(addrs::C));
    let m_addr = addrs::M.parse().unwrap();
    world.device_mut(a).host.connect_only(m_addr);
    world.schedule_in(Duration::from_secs(2), move |w| {
        w.device_mut(m).host.pair_with(c_addr);
    });
    world.run_for(Duration::from_secs(17));
    let attacked = world.device(m).snoop_trace();

    println!("== Fig 12b: HCI dump for pairing under page blocking (M's side) ==\n");
    print!("{}", pretty::frame_table(&attacked));
    println!(
        "\npage blocking signature detected: {}",
        attacked.has_page_blocking_signature(c_addr)
    );
    println!(
        "trial verdict: MITM {}  paired-with-attacker {}  Just Works downgrade {}",
        outcome.mitm_established, outcome.paired_with_attacker, outcome.downgraded_to_just_works
    );
}
