//! Regenerates Table II: MITM connection establishment success rates with
//! and without page blocking, 100 trials per condition per device.
//!
//! ```text
//! cargo run --release -p blap-bench --bin table2 -- [trials] [seed] [jobs] \
//!     [--metrics out/metrics.json] [--trace out/trace.jsonl] [--jobs N]
//! ```
//!
//! `jobs` (or the `BLAP_JOBS` environment variable) sets the worker count;
//! the rows, metrics, and trace are byte-identical at any value.

use std::time::Instant;

use blap::report;
use blap_bench::cli::{self, Args};
use blap_bench::{run_table2_observed_with, run_table2_with};
use blap_obs::MetaValue;

fn main() {
    let args = Args::parse();
    let trials: usize = args.positional_or(0, 100);
    let seed: u64 = args.positional_or(1, 2022);
    let jobs = args.resolve_jobs(2);
    args.init_profiling();
    let observe = args.metrics_path.is_some() || args.trace_path.is_some();

    println!("== Table II: MITM establishment, baseline race vs page blocking ==");
    println!("({trials} trials per condition per device, seed {seed})\n");

    let started = Instant::now();
    let rows = if observe {
        let observed = run_table2_observed_with(seed, trials, jobs);
        if let Some(path) = &args.metrics_path {
            cli::write_metrics(
                path,
                &[
                    ("experiment", MetaValue::Str("table2".to_owned())),
                    ("seed", MetaValue::Int(seed)),
                    ("trials", MetaValue::Int(trials as u64)),
                ],
                &observed.metrics,
                started.elapsed(),
            );
        }
        if let Some(path) = &args.trace_path {
            cli::write_artifact(path, &observed.trace);
        }
        observed.rows
    } else {
        run_table2_with(seed, trials, jobs)
    };
    print!("{}", report::table2(&rows));

    println!();
    for row in &rows {
        println!(
            "{:<24} Fig12b signature: {}  popup value shown: {}",
            row.device,
            row.fig12b_signature,
            if row.popup_had_number {
                "yes (detectable!)"
            } else {
                "no"
            },
        );
    }
    println!("\nExpected shape (paper): baselines scattered in 42–60%, page blocking at 100%.");
    args.write_profile();
}
