//! Regenerates Table II: MITM connection establishment success rates with
//! and without page blocking, 100 trials per condition per device.
//!
//! ```text
//! cargo run --release -p blap-bench --bin table2 [trials] [seed] [jobs]
//! ```
//!
//! `jobs` (or the `BLAP_JOBS` environment variable) sets the worker count;
//! the rows are byte-identical at any value.

use blap::report;
use blap::runner::Jobs;
use blap_bench::run_table2_with;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2022);
    let jobs: Jobs = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(Jobs::from_env);

    println!("== Table II: MITM establishment, baseline race vs page blocking ==");
    println!("({trials} trials per condition per device, seed {seed})\n");

    let rows = run_table2_with(seed, trials, jobs);
    print!("{}", report::table2(&rows));

    println!();
    for row in &rows {
        println!(
            "{:<24} Fig12b signature: {}  popup value shown: {}",
            row.device,
            row.fig12b_signature,
            if row.popup_had_number {
                "yes (detectable!)"
            } else {
                "no"
            },
        );
    }
    println!("\nExpected shape (paper): baselines scattered in 42–60%, page blocking at 100%.");
}
