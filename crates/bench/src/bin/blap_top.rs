//! `blap-top` — a live terminal dashboard over a campaign's telemetry
//! sidecar.
//!
//! ```text
//! blap-top telemetry.jsonl [--once] [--interval MS] [--idle-ms MS]
//! ```
//!
//! Tail-follows the JSONL sidecar `blap-campaign --telemetry` appends
//! to, redrawing the dashboard in place every `--interval` milliseconds
//! (default 500): throughput with a sparkline, per-worker utilization,
//! win rates, violation counts, and the ETA. Follows until interrupted,
//! or — with `--idle-ms N` — until the sidecar stops growing for N
//! milliseconds (the campaign finished).
//!
//! `--once` is the non-interactive mode for CI and scripts: read the
//! whole file, render the latest complete snapshot once, and exit —
//! status 0 on a render, 1 when the file holds no complete snapshot,
//! 2 on a malformed file. A torn final line (the campaign was killed
//! mid-append, or is still writing) is tolerated in both modes: the
//! complete prefix renders, the torn tail waits or is skipped.

use std::time::{Duration, Instant};

use blap_bench::cli::Args;
use blap_bench::top::{self, TailReader};
use blap_obs::telemetry::TelemetrySnapshot;

/// How much snapshot history the follower retains for the sparkline.
const HISTORY: usize = 256;

fn main() {
    let args = Args::parse_with(&["--interval", "--idle-ms"], &["--once"]);
    let Some(path) = args.positional.first().cloned() else {
        die("usage: blap-top <telemetry.jsonl> [--once] [--interval MS] [--idle-ms MS]".to_owned())
    };
    let interval_ms: u64 = args.extra_or("--interval", 500).unwrap_or_else(die);
    let idle_ms: u64 = args.extra_or("--idle-ms", 0).unwrap_or_else(die);

    if args.has_switch("--once") {
        let loaded = top::load_once(&path).unwrap_or_else(die);
        if loaded.snapshots.is_empty() {
            eprintln!("blap-top: {path} holds no complete snapshot yet");
            std::process::exit(1);
        }
        if loaded.torn_tail {
            eprintln!("blap-top: note: skipped a torn final line (writer mid-append)");
        }
        print!("{}", top::render(&loaded.snapshots));
        return;
    }

    let mut reader = TailReader::new();
    let mut history: Vec<TelemetrySnapshot> = Vec::new();
    let mut last_growth = Instant::now();
    loop {
        match reader.poll(&path) {
            Ok(fresh) if !fresh.is_empty() => {
                history.extend(fresh);
                if history.len() > HISTORY {
                    let excess = history.len() - HISTORY;
                    history.drain(..excess);
                }
                last_growth = Instant::now();
                // Redraw in place: home the cursor, repaint, clear the
                // remainder so a shrinking table leaves no residue.
                print!("\x1b[H\x1b[2J{}", top::render(&history));
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
            Ok(_) => {
                if history.is_empty() {
                    // Nothing yet: keep waiting for the first snapshot.
                    last_growth = Instant::now();
                }
                if idle_ms > 0 && last_growth.elapsed() >= Duration::from_millis(idle_ms) {
                    eprintln!("blap-top: {path} idle for {idle_ms} ms, exiting");
                    return;
                }
            }
            Err(err) => die(err),
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(50)));
    }
}

fn die<T>(message: String) -> T {
    eprintln!("error: {message}");
    std::process::exit(2);
}
