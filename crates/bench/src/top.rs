//! The `blap-top` dashboard: loading and rendering telemetry sidecars.
//!
//! The binary in `src/bin/blap_top.rs` is a thin shell over this module
//! so the interesting behavior — tail-following a growing JSONL sidecar
//! without choking on a half-written final line, and rendering the
//! terminal dashboard — is exercisable from unit tests without spawning
//! a process.

use std::fmt::Write as _;

use blap_obs::telemetry::{self, SnapshotFile, TelemetrySnapshot};

/// An incremental tail-follower over a telemetry JSONL sidecar.
///
/// Tracks a byte offset and only ever consumes *complete* lines: a
/// torn final line — the writer mid-append, or the last line a killed
/// campaign got out — stays in the file until its newline arrives (or
/// forever, under `--once`, where it is simply skipped). A complete
/// line that fails to parse is a hard error: that is corruption, not
/// write-in-progress.
#[derive(Debug, Default)]
pub struct TailReader {
    offset: u64,
    carry: Vec<u8>,
}

impl TailReader {
    /// A follower starting at the beginning of the file.
    pub fn new() -> TailReader {
        TailReader::default()
    }

    /// Reads any newly completed snapshots since the last poll.
    ///
    /// Returns the new snapshots (possibly empty — the file may not
    /// have grown, or only a partial line arrived). A shrunken file
    /// resets the follower to the new beginning (the sidecar was
    /// truncated and restarted).
    pub fn poll(&mut self, path: &str) -> Result<Vec<TelemetrySnapshot>, String> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file =
            std::fs::File::open(path).map_err(|err| format!("cannot open {path}: {err}"))?;
        let len = file
            .metadata()
            .map_err(|err| format!("cannot stat {path}: {err}"))?
            .len();
        if len < self.offset {
            self.offset = 0;
            self.carry.clear();
        }
        file.seek(SeekFrom::Start(self.offset))
            .map_err(|err| format!("cannot seek {path}: {err}"))?;
        let mut fresh = Vec::new();
        file.read_to_end(&mut fresh)
            .map_err(|err| format!("cannot read {path}: {err}"))?;
        self.offset += fresh.len() as u64;
        self.carry.extend_from_slice(&fresh);
        let mut out = Vec::new();
        while let Some(pos) = self.carry.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.carry.drain(..=pos).collect();
            let line = std::str::from_utf8(&line[..line.len() - 1])
                .map_err(|_| format!("{path}: snapshot line is not UTF-8"))?;
            if line.is_empty() {
                continue;
            }
            let snapshot = telemetry::parse_snapshot_line(line)
                .map_err(|err| format!("{path}: corrupt snapshot line: {err}"))?;
            out.push(snapshot);
        }
        Ok(out)
    }
}

/// Loads a whole sidecar once ([`--once` mode]), tolerating a torn
/// final line.
pub fn load_once(path: &str) -> Result<SnapshotFile, String> {
    telemetry::read_snapshot_file(path)
}

fn bar(fraction: f64, width: usize) -> String {
    let filled = ((fraction.clamp(0.0, 1.0) * width as f64).round() as usize).min(width);
    format!("[{}{}]", "#".repeat(filled), ".".repeat(width - filled))
}

fn seconds(ms: u64) -> String {
    format!("{:.1}s", ms as f64 / 1000.0)
}

/// A compact ASCII sparkline of the recent throughput history.
fn sparkline(history: &[&TelemetrySnapshot]) -> String {
    const LEVELS: &[u8] = b" .:-=+*#%@";
    let peak = history
        .iter()
        .map(|s| s.trials_per_sec)
        .fold(0.0_f64, f64::max);
    if peak <= 0.0 {
        return String::new();
    }
    history
        .iter()
        .rev()
        .take(32)
        .rev()
        .map(|s| {
            let level = (s.trials_per_sec / peak * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[level.min(LEVELS.len() - 1)] as char
        })
        .collect()
}

/// Renders the dashboard body for the latest snapshot, with `history`
/// (oldest first, latest last — typically everything read so far)
/// feeding the throughput sparkline.
pub fn render(history: &[TelemetrySnapshot]) -> String {
    let Some(s) = history.last() else {
        return "blap-top: no complete snapshot yet\n".to_owned();
    };
    let mut out = String::with_capacity(1024);
    let _ = writeln!(
        out,
        "blap-top — campaign telemetry v{} (snapshot {}, wall {})",
        s.version,
        s.seq,
        seconds(s.wall_ms)
    );
    let trial_fraction = if s.trials_total > 0 {
        s.trials as f64 / s.trials_total as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "trials   {:>10}/{} {} {:5.1}%   {:.1} trials/s",
        s.trials,
        s.trials_total,
        bar(trial_fraction, 24),
        100.0 * trial_fraction,
        s.trials_per_sec
    );
    let refs: Vec<&TelemetrySnapshot> = history.iter().collect();
    let spark = sparkline(&refs);
    if !spark.is_empty() {
        let _ = writeln!(out, "rate     |{spark}|");
    }
    let _ = writeln!(
        out,
        "shards   {:>10}/{}   eta {}   virtual {}",
        s.shards,
        s.shards_total,
        if s.eta_ms > 0 {
            seconds(s.eta_ms)
        } else {
            "-".to_owned()
        },
        seconds(s.virtual_us / 1000)
    );
    let _ = writeln!(
        out,
        "checks   {} violations   {} snapshots dropped",
        s.violations, s.dropped
    );
    if !s.workers.is_empty() {
        let _ = writeln!(out, "workers  ({} busy)", s.workers.len());
        for w in &s.workers {
            let _ = writeln!(
                out,
                "  w{:<3} {} {:5.1}%  {:>6} tasks  busy {}",
                w.worker,
                bar(w.utilization, 16),
                100.0 * w.utilization,
                w.tasks,
                seconds(w.busy_ms)
            );
        }
    }
    if !s.races.is_empty() {
        let _ = writeln!(out, "win rates");
        for (label, cell) in &s.races {
            let percent = if cell.trials > 0 {
                100.0 * cell.wins as f64 / cell.trials as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<32} {:>8}/{:<8} ({percent:.0}%)",
                label, cell.wins, cell.trials
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_obs::telemetry::{RaceCell, WorkerLane};

    fn snapshot(seq: u64, trials: u64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            version: telemetry::SCHEMA_VERSION,
            seq,
            wall_ms: 1000 * (seq + 1),
            virtual_us: 5_000_000,
            trials,
            trials_total: 1000,
            shards: seq,
            shards_total: 10,
            trials_per_sec: 100.0 + seq as f64,
            eta_ms: 9000,
            violations: 2,
            dropped: 1,
            workers: vec![WorkerLane {
                worker: 0,
                tasks: 5,
                busy_ms: 800,
                utilization: 0.8,
            }],
            races: vec![(
                "Galaxy S8/blocking".to_owned(),
                RaceCell { wins: 3, trials: 7 },
            )],
        }
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("blap-top-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_str().expect("utf8").to_owned()
    }

    #[test]
    fn render_shows_every_dashboard_section() {
        let out = render(&[snapshot(0, 100), snapshot(1, 450)]);
        assert!(out.contains("450/1000"), "{out}");
        assert!(out.contains("45.0%"), "{out}");
        assert!(out.contains("101.0 trials/s"), "{out}");
        assert!(out.contains("eta 9.0s"), "{out}");
        assert!(out.contains("2 violations"), "{out}");
        assert!(out.contains("1 snapshots dropped"), "{out}");
        assert!(out.contains("w0"), "{out}");
        assert!(out.contains("Galaxy S8/blocking"), "{out}");
        assert!(out.contains("3/7"), "{out}");
        assert!(out.contains("rate     |"), "sparkline rendered: {out}");
    }

    #[test]
    fn render_with_no_snapshots_degrades() {
        assert!(render(&[]).contains("no complete snapshot"));
    }

    #[test]
    fn tail_reader_consumes_only_complete_lines() {
        let path = temp_path("tail.jsonl");
        let line0 = snapshot(0, 10).to_json_line();
        let line1 = snapshot(1, 20).to_json_line();
        // First poll: one complete line plus the head of a second.
        std::fs::write(&path, format!("{line0}\n{}", &line1[..10])).expect("write");
        let mut reader = TailReader::new();
        let got = reader.poll(&path).expect("poll");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 0);
        // Nothing new yet: the torn tail stays buffered, not an error.
        let got = reader.poll(&path).expect("poll");
        assert!(got.is_empty());
        // The writer finishes the line; the follower picks it up whole.
        std::fs::write(&path, format!("{line0}\n{line1}\n")).expect("write");
        let got = reader.poll(&path).expect("poll");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[0].trials, 20);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tail_reader_resets_on_truncation() {
        let path = temp_path("truncated.jsonl");
        let line = snapshot(0, 10).to_json_line();
        std::fs::write(&path, format!("{line}\n{line}\n")).expect("write");
        let mut reader = TailReader::new();
        assert_eq!(reader.poll(&path).expect("poll").len(), 2);
        // A restarted sidecar (shorter file) re-reads from the top.
        std::fs::write(&path, format!("{line}\n")).expect("write");
        assert_eq!(reader.poll(&path).expect("poll").len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn once_mode_renders_through_a_torn_tail() {
        // Regression (failing first): the one-shot reader used to feed
        // every physical line to the parser, so a campaign killed
        // mid-append (--stop-after injection) left a sidecar whose final
        // half-line made `blap-top --once` exit with a parse error
        // instead of rendering the complete prefix.
        let path = temp_path("killed.jsonl");
        let line = snapshot(3, 300).to_json_line();
        let torn = &line[..line.len() / 3];
        std::fs::write(&path, format!("{line}\n{torn}")).expect("write");
        let loaded = load_once(&path).expect("torn tail is not an error");
        assert_eq!(loaded.snapshots.len(), 1);
        assert!(loaded.torn_tail);
        let out = render(&loaded.snapshots);
        assert!(out.contains("300/1000"), "{out}");
        let _ = std::fs::remove_file(&path);
    }
}
