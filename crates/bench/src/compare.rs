//! Perf-regression gate over the hotpaths artifact.
//!
//! [`compare`] diffs a freshly generated `BENCH_hotpaths.json` against the
//! committed baseline, metric by metric, with per-section relative
//! thresholds (kernel `ns_per_op` numbers are steadier than end-to-end
//! `wall_ms` ones, so they get a tighter budget). The `throughput` section
//! is gated as a *floor*: its metrics (candidates per second) regress by
//! dropping, so only a ratio below `1 - threshold` breaches and a gain can
//! never fail the gate. Wall-clock numbers are
//! only comparable between like machines, so the v2 artifact carries a
//! [`HostFingerprint`]; when the fingerprints differ — or the baseline
//! predates them (`blap-bench-hotpaths-v1`) — a threshold breach is
//! [`Verdict::Excused`] rather than [`Verdict::Regressed`], unless the
//! caller opts into `strict` mode.
//!
//! Every comparison can be appended to `BENCH_history.jsonl` via
//! [`history_record`], one self-describing JSON line per run, so the
//! committed history trends the same metrics the gate checks.

use blap_obs::json::{self, Value};

/// Identity of the machine/toolchain that produced a hotpaths artifact.
///
/// Captured at build time (rustc and target triple via the build script)
/// and at run time (cpu model and core count), this is deliberately
/// coarse: it answers "are these two wall-time numbers from comparable
/// hosts?", not "which exact machine was this?".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostFingerprint {
    /// `rustc --version` of the compiler that built the binary.
    pub rustc: String,
    /// Target triple the binary was built for.
    pub target: String,
    /// CPU model name (`/proc/cpuinfo`), or `"unknown"`.
    pub cpu: String,
    /// Logical core count.
    pub cores: u64,
}

impl HostFingerprint {
    /// The fingerprint of the running binary on the current machine.
    pub fn current() -> HostFingerprint {
        HostFingerprint {
            rustc: env!("BLAP_BUILD_RUSTC").to_owned(),
            target: env!("BLAP_BUILD_TARGET").to_owned(),
            cpu: cpu_model().unwrap_or_else(|| "unknown".to_owned()),
            cores: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }

    /// Renders the fingerprint as a JSON object, one member per line,
    /// each line prefixed with `indent`.
    pub fn render_json(&self, indent: &str) -> String {
        format!(
            "{{\n{indent}  \"rustc\": \"{}\",\n{indent}  \"target\": \"{}\",\n{indent}  \"cpu\": \"{}\",\n{indent}  \"cores\": {}\n{indent}}}",
            json::escape(&self.rustc),
            json::escape(&self.target),
            json::escape(&self.cpu),
            self.cores,
        )
    }

    /// Parses the `"host"` object of a v2 artifact. `None` when any field
    /// is missing or mistyped.
    pub fn from_value(value: &Value) -> Option<HostFingerprint> {
        Some(HostFingerprint {
            rustc: value.get("rustc")?.as_str()?.to_owned(),
            target: value.get("target")?.as_str()?.to_owned(),
            cpu: value.get("cpu")?.as_str()?.to_owned(),
            cores: value.get("cores")?.as_u64()?,
        })
    }
}

/// First `model name` line from `/proc/cpuinfo`.
fn cpu_model() -> Option<String> {
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    cpuinfo.lines().find_map(|line| {
        let rest = line.strip_prefix("model name")?;
        let (_, value) = rest.split_once(':')?;
        let value = value.trim();
        (!value.is_empty()).then(|| value.to_owned())
    })
}

/// Thresholds and strictness for [`compare`].
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Allowed relative growth for `ns_per_op` metrics (0.35 = +35%).
    pub ns_threshold: f64,
    /// Allowed relative growth for `wall_ms` metrics.
    pub wall_threshold: f64,
    /// Allowed relative *shrink* for `throughput` metrics (0.25 = -25%).
    /// Throughput is a floor, not a ceiling: bigger is better, so only a
    /// drop can breach.
    pub throughput_threshold: f64,
    /// When set, a threshold breach regresses even across differing host
    /// fingerprints (useful for local runs where the host is known equal
    /// but the toolchain string moved).
    pub strict: bool,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            ns_threshold: 0.35,
            wall_threshold: 0.50,
            throughput_threshold: 0.25,
            strict: false,
        }
    }
}

/// Gate outcome for one baseline/fresh pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No metric grew past its threshold.
    Pass,
    /// At least one metric breached, but the artifacts came from
    /// non-comparable hosts (differing or missing fingerprints) and the
    /// config was not strict.
    Excused,
    /// At least one metric breached between comparable hosts.
    Regressed,
}

impl Verdict {
    /// Lower-case label used in history records and transcripts.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Excused => "excused",
            Verdict::Regressed => "regressed",
        }
    }
}

/// One metric's baseline/fresh pair.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Artifact section (`ns_per_op`, `wall_ms` or `throughput`).
    pub section: &'static str,
    /// Metric name within the section.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Fresh value.
    pub fresh: f64,
    /// `fresh / baseline`.
    pub ratio: f64,
    /// The relative budget this metric was held to.
    pub threshold: f64,
    /// Floor semantics: bigger is better (throughput), so a breach is a
    /// ratio *below* `1 - threshold`. Ceiling metrics (latencies) breach
    /// above `1 + threshold`.
    pub floor: bool,
}

impl MetricDelta {
    /// Whether this metric moved past its budget in the bad direction.
    pub fn breached(&self) -> bool {
        if self.floor {
            self.ratio < 1.0 - self.threshold
        } else {
            self.ratio > 1.0 + self.threshold
        }
    }

    /// How bad this delta is, normalized so ceilings and floors compare:
    /// `ratio` for ceiling metrics, `baseline / fresh` for floor metrics.
    /// `> 1` means "moved in the bad direction".
    pub fn badness(&self) -> f64 {
        if self.floor {
            self.ratio.recip()
        } else {
            self.ratio
        }
    }
}

/// Result of [`compare`]: the verdict plus everything needed to explain it.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The gate outcome.
    pub verdict: Verdict,
    /// Per-metric deltas, artifact order.
    pub deltas: Vec<MetricDelta>,
    /// Baseline host fingerprint (absent for v1 artifacts).
    pub baseline_host: Option<HostFingerprint>,
    /// Fresh host fingerprint (absent for v1 artifacts).
    pub fresh_host: Option<HostFingerprint>,
    /// Non-fatal observations: skipped metrics, missing counterparts,
    /// excusal reasons.
    pub notes: Vec<String>,
}

impl Comparison {
    /// Whether both artifacts carry fingerprints and they are equal.
    pub fn hosts_comparable(&self) -> bool {
        matches!((&self.baseline_host, &self.fresh_host), (Some(b), Some(f)) if b == f)
    }

    /// Metrics that grew past their budget.
    pub fn breaches(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.breached()).collect()
    }

    /// Human-readable transcript: one line per metric, then the verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:<27} {:>12} {:>12} {:>8}  budget\n",
            "section", "metric", "baseline", "fresh", "ratio"
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<10} {:<27} {:>12.1} {:>12.1} {:>8.3}  {}{:.0}%{}\n",
                d.section,
                d.metric,
                d.baseline,
                d.fresh,
                d.ratio,
                if d.floor { '-' } else { '+' },
                d.threshold * 100.0,
                if d.breached() {
                    "  <-- over budget"
                } else {
                    ""
                },
            ));
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out.push_str(&format!("verdict: {}\n", self.verdict.label()));
        out
    }
}

/// Accepted artifact schemas: the fingerprinted v2 and the fingerprint-free
/// v1 it replaced (old committed baselines must stay readable).
const SCHEMAS: [&str; 2] = ["blap-bench-hotpaths-v2", "blap-bench-hotpaths-v1"];

/// One comparable artifact section: its JSON key and whether its metrics
/// are floors (bigger is better) or ceilings (smaller is better).
struct Section {
    name: &'static str,
    floor: bool,
}

/// Sections compared, with which [`CompareConfig`] threshold governs each
/// (paired up inside [`compare`], artifact order).
const SECTIONS: [Section; 3] = [
    Section {
        name: "ns_per_op",
        floor: false,
    },
    Section {
        name: "wall_ms",
        floor: false,
    },
    Section {
        name: "throughput",
        floor: true,
    },
];

fn parse_artifact(label: &str, text: &str) -> Result<Value, String> {
    let value = json::parse(text).map_err(|err| format!("{label}: {err}"))?;
    let schema = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{label}: missing \"schema\" field"))?;
    if !SCHEMAS.contains(&schema) {
        return Err(format!(
            "{label}: unsupported schema {schema:?} (expected one of {SCHEMAS:?})"
        ));
    }
    Ok(value)
}

fn numeric(value: &Value) -> Option<f64> {
    match value {
        Value::Num(text) => text.parse().ok(),
        _ => None,
    }
}

/// Diffs two hotpaths artifacts (raw JSON text) and gates on the result.
///
/// Errors only on malformed input — unparseable JSON or an unknown
/// schema. Metric-level oddities (nulls, metrics present on one side
/// only) are reported via [`Comparison::notes`] instead, so adding a
/// kernel to the bench never breaks the gate against an older baseline.
pub fn compare(
    baseline_text: &str,
    fresh_text: &str,
    config: &CompareConfig,
) -> Result<Comparison, String> {
    let baseline = parse_artifact("baseline", baseline_text)?;
    let fresh = parse_artifact("fresh", fresh_text)?;
    let baseline_host = baseline.get("host").and_then(HostFingerprint::from_value);
    let fresh_host = fresh.get("host").and_then(HostFingerprint::from_value);

    let mut deltas = Vec::new();
    let mut notes = Vec::new();
    for (section, threshold) in SECTIONS.iter().zip([
        config.ns_threshold,
        config.wall_threshold,
        config.throughput_threshold,
    ]) {
        let Section {
            name: section,
            floor,
        } = *section;
        let (Some(Value::Object(base_members)), fresh_section) =
            (baseline.get(section), fresh.get(section))
        else {
            notes.push(format!("baseline has no \"{section}\" section"));
            continue;
        };
        for (metric, base_value) in base_members {
            let Some(base) = numeric(base_value) else {
                notes.push(format!(
                    "{section}.{metric}: baseline value not numeric, skipped"
                ));
                continue;
            };
            let Some(fresh_value) = fresh_section.and_then(|s| s.get(metric)) else {
                notes.push(format!("{section}.{metric}: missing from fresh artifact"));
                continue;
            };
            let Some(fresh_num) = numeric(fresh_value) else {
                notes.push(format!(
                    "{section}.{metric}: fresh value not numeric, skipped"
                ));
                continue;
            };
            // A ratio needs a positive finite baseline and a finite fresh
            // value. A zero baseline divides to ±inf, inf/inf is NaN, and
            // every NaN comparison is false — `breached()` would quietly
            // report "within budget" for garbage inputs. Lax mode skips the
            // metric with a note (an old baseline missing a real value must
            // not fail CI); strict mode treats it as a broken artifact.
            let undefined = if !(base.is_finite() && base > 0.0) {
                Some(format!(
                    "{section}.{metric}: baseline value {base} is zero or not finite, ratio undefined"
                ))
            } else if !fresh_num.is_finite() {
                Some(format!(
                    "{section}.{metric}: fresh value {fresh_num} is not finite, ratio undefined"
                ))
            } else {
                None
            };
            if let Some(reason) = undefined {
                if config.strict {
                    return Err(format!("{reason} (strict mode rejects ungateable metrics)"));
                }
                notes.push(reason);
                continue;
            }
            deltas.push(MetricDelta {
                section,
                metric: metric.clone(),
                baseline: base,
                fresh: fresh_num,
                ratio: fresh_num / base,
                threshold,
                floor,
            });
        }
    }

    let breached = deltas.iter().any(MetricDelta::breached);
    let hosts_comparable = matches!((&baseline_host, &fresh_host), (Some(b), Some(f)) if b == f);
    let verdict = if !breached {
        Verdict::Pass
    } else if hosts_comparable || config.strict {
        Verdict::Regressed
    } else {
        notes.push(match (&baseline_host, &fresh_host) {
            (None, _) | (_, None) => {
                "threshold breach excused: artifact without a host fingerprint (v1)".to_owned()
            }
            _ => "threshold breach excused: host fingerprints differ".to_owned(),
        });
        Verdict::Excused
    };

    Ok(Comparison {
        verdict,
        deltas,
        baseline_host,
        fresh_host,
        notes,
    })
}

/// One `BENCH_history.jsonl` line for a finished comparison: the verdict,
/// host comparability, every fresh metric value, and the worst ratio —
/// enough to trend the gate's inputs without re-reading old artifacts.
pub fn history_record(comparison: &Comparison, unix_time: u64) -> String {
    let worst = comparison
        .deltas
        .iter()
        .max_by(|a, b| a.badness().total_cmp(&b.badness()));
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"blap-bench-history-v1\",\"unix_time\":{unix_time},\"verdict\":\"{}\",\"hosts_comparable\":{},\"compared\":{},\"breaches\":{}",
        comparison.verdict.label(),
        comparison.hosts_comparable(),
        comparison.deltas.len(),
        comparison.breaches().len(),
    ));
    match worst {
        Some(d) => out.push_str(&format!(
            ",\"worst\":{{\"metric\":\"{}.{}\",\"ratio\":{:.4}}}",
            d.section,
            json::escape(&d.metric),
            d.ratio
        )),
        None => out.push_str(",\"worst\":null"),
    }
    if let Some(host) = &comparison.fresh_host {
        out.push_str(&format!(
            ",\"host\":{{\"rustc\":\"{}\",\"target\":\"{}\",\"cpu\":\"{}\",\"cores\":{}}}",
            json::escape(&host.rustc),
            json::escape(&host.target),
            json::escape(&host.cpu),
            host.cores,
        ));
    } else {
        out.push_str(",\"host\":null");
    }
    for section in SECTIONS.iter().map(|s| s.name) {
        out.push_str(&format!(",\"{section}\":{{"));
        let mut first = true;
        for d in comparison.deltas.iter().filter(|d| d.section == section) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{:.1}", json::escape(&d.metric), d.fresh));
        }
        out.push('}');
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(
        schema: &str,
        host: Option<&HostFingerprint>,
        e1_ns: f64,
        table1_ms: f64,
    ) -> String {
        artifact_with_throughput(schema, host, e1_ns, table1_ms, 2_000_000.0)
    }

    fn artifact_with_throughput(
        schema: &str,
        host: Option<&HostFingerprint>,
        e1_ns: f64,
        table1_ms: f64,
        cand_per_sec: f64,
    ) -> String {
        let host_block = host
            .map(|h| format!("  \"host\": {},\n", h.render_json("  ")))
            .unwrap_or_default();
        format!(
            "{{\n  \"schema\": \"{schema}\",\n{host_block}  \"ns_per_op\": {{\n    \"legacy_e1\": {e1_ns:.1},\n    \"aes128_encrypt_block\": 60.0\n  }},\n  \"wall_ms\": {{\n    \"table1\": {table1_ms:.1},\n    \"table1_units\": null\n  }},\n  \"throughput\": {{\n    \"pincrack_candidates_per_sec\": {cand_per_sec:.1}\n  }}\n}}\n"
        )
    }

    fn host(cpu: &str) -> HostFingerprint {
        HostFingerprint {
            rustc: "rustc 1.75.0".to_owned(),
            target: "x86_64-unknown-linux-gnu".to_owned(),
            cpu: cpu.to_owned(),
            cores: 8,
        }
    }

    #[test]
    fn fingerprint_render_parse_round_trips() {
        let original = HostFingerprint::current();
        let rendered = original.render_json("");
        let parsed = json::parse(&rendered).expect("valid JSON");
        assert_eq!(HostFingerprint::from_value(&parsed), Some(original));
    }

    #[test]
    fn identical_artifacts_pass_with_unit_ratios() {
        let h = host("cpu0");
        let text = artifact("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0);
        let cmp = compare(&text, &text, &CompareConfig::default()).expect("comparable");
        assert_eq!(cmp.verdict, Verdict::Pass);
        assert!(cmp.hosts_comparable());
        // The null wall metric is skipped with a note, the rest compare.
        assert_eq!(cmp.deltas.len(), 4);
        assert!(cmp.deltas.iter().all(|d| d.ratio == 1.0));
        assert!(cmp.notes.iter().any(|n| n.contains("table1_units")));
    }

    #[test]
    fn same_host_breach_regresses() {
        let h = host("cpu0");
        let base = artifact("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0);
        let fresh = artifact("blap-bench-hotpaths-v2", Some(&h), 350.0 * 1.4, 13.0);
        let cmp = compare(&base, &fresh, &CompareConfig::default()).expect("comparable");
        assert_eq!(cmp.verdict, Verdict::Regressed);
        assert_eq!(cmp.breaches().len(), 1);
        assert_eq!(cmp.breaches()[0].metric, "legacy_e1");
    }

    #[test]
    fn cross_host_breach_is_excused_unless_strict() {
        let base = artifact("blap-bench-hotpaths-v2", Some(&host("cpu0")), 350.0, 13.0);
        let fresh = artifact("blap-bench-hotpaths-v2", Some(&host("cpu1")), 800.0, 13.0);
        let lax = compare(&base, &fresh, &CompareConfig::default()).expect("comparable");
        assert_eq!(lax.verdict, Verdict::Excused);
        assert!(lax.notes.iter().any(|n| n.contains("fingerprints differ")));
        let strict = CompareConfig {
            strict: true,
            ..CompareConfig::default()
        };
        let strict_cmp = compare(&base, &fresh, &strict).expect("comparable");
        assert_eq!(strict_cmp.verdict, Verdict::Regressed);
    }

    #[test]
    fn v1_baseline_without_fingerprint_is_readable_and_excuses() {
        let base = artifact("blap-bench-hotpaths-v1", None, 350.0, 13.0);
        let fresh = artifact("blap-bench-hotpaths-v2", Some(&host("cpu0")), 800.0, 13.0);
        let cmp = compare(&base, &fresh, &CompareConfig::default()).expect("comparable");
        assert_eq!(cmp.verdict, Verdict::Excused);
        assert!(cmp.baseline_host.is_none());
        assert!(cmp.notes.iter().any(|n| n.contains("v1")));
    }

    #[test]
    fn wall_metrics_get_the_looser_budget() {
        let h = host("cpu0");
        let base = artifact("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0);
        // +40%: over the 35% ns budget, under the 50% wall budget.
        let fresh = artifact("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0 * 1.4);
        let cmp = compare(&base, &fresh, &CompareConfig::default()).expect("comparable");
        assert_eq!(cmp.verdict, Verdict::Pass);
    }

    #[test]
    fn throughput_drop_past_floor_regresses() {
        let h = host("cpu0");
        let base = artifact_with_throughput("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0, 2e6);
        // -30%: under the default -25% throughput floor.
        let fresh =
            artifact_with_throughput("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0, 2e6 * 0.7);
        let cmp = compare(&base, &fresh, &CompareConfig::default()).expect("comparable");
        assert_eq!(cmp.verdict, Verdict::Regressed);
        assert_eq!(cmp.breaches().len(), 1);
        let breach = cmp.breaches()[0];
        assert_eq!(breach.metric, "pincrack_candidates_per_sec");
        assert!(breach.floor);
        assert!(cmp.render().contains("-25%"), "{}", cmp.render());
    }

    #[test]
    fn throughput_gain_never_breaches() {
        let h = host("cpu0");
        let base = artifact_with_throughput("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0, 2e6);
        // A 10x throughput gain would breach a ceiling budget; as a floor
        // metric it must pass untouched.
        let fresh = artifact_with_throughput("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0, 2e7);
        let cmp = compare(&base, &fresh, &CompareConfig::default()).expect("comparable");
        assert_eq!(cmp.verdict, Verdict::Pass);
        assert!(cmp.breaches().is_empty());
    }

    #[test]
    fn history_worst_metric_accounts_for_floor_direction() {
        let h = host("cpu0");
        let base = artifact_with_throughput("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0, 2e6);
        // Latencies improve slightly; throughput halves. The throughput
        // drop (badness 2.0) must win "worst" over the sub-1.0 latency
        // ratios even though its raw ratio is the *smallest*.
        let fresh = artifact_with_throughput("blap-bench-hotpaths-v2", Some(&h), 340.0, 12.5, 1e6);
        let cmp = compare(&base, &fresh, &CompareConfig::default()).expect("comparable");
        let record = history_record(&cmp, 1_700_000_000);
        let value = json::parse(record.trim_end()).expect("valid JSON");
        assert_eq!(
            value
                .get("worst")
                .and_then(|w| w.get("metric"))
                .and_then(Value::as_str),
            Some("throughput.pincrack_candidates_per_sec")
        );
        assert!(value
            .get("throughput")
            .and_then(|s| s.get("pincrack_candidates_per_sec"))
            .is_some());
    }

    #[test]
    fn zero_baseline_is_skipped_lax_and_fatal_strict() {
        let h = host("cpu0");
        let base = artifact_with_throughput("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0, 0.0);
        let fresh = artifact_with_throughput("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0, 2e6);
        let lax = compare(&base, &fresh, &CompareConfig::default()).expect("lax mode skips");
        assert_eq!(lax.verdict, Verdict::Pass);
        assert!(
            lax.deltas
                .iter()
                .all(|d| d.metric != "pincrack_candidates_per_sec"),
            "an undefined ratio must not be gated"
        );
        assert!(
            lax.notes.iter().any(|n| n.contains("ratio undefined")),
            "{:?}",
            lax.notes
        );
        let strict = CompareConfig {
            strict: true,
            ..CompareConfig::default()
        };
        let err = compare(&base, &fresh, &strict).expect_err("strict mode rejects");
        assert!(err.contains("pincrack_candidates_per_sec"), "{err}");
        assert!(err.contains("ratio undefined"), "{err}");
    }

    #[test]
    fn non_finite_values_cannot_silently_pass_the_gate() {
        let h = host("cpu0");
        let good = artifact("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0);
        // 1e999 parses to +inf; inf/inf is NaN and every NaN comparison is
        // false, so before the explicit check this self-comparison passed
        // the gate with the metric silently ungated.
        let inf = good.replace("\"legacy_e1\": 350.0", "\"legacy_e1\": 1e999");
        let lax = compare(&inf, &inf, &CompareConfig::default()).expect("lax mode skips");
        assert_eq!(lax.verdict, Verdict::Pass);
        assert!(lax.deltas.iter().all(|d| d.metric != "legacy_e1"));
        assert!(
            lax.notes
                .iter()
                .any(|n| n.contains("legacy_e1") && n.contains("not finite")),
            "{:?}",
            lax.notes
        );
        let strict = CompareConfig {
            strict: true,
            ..CompareConfig::default()
        };
        let err = compare(&inf, &inf, &strict).expect_err("strict rejects inf baseline");
        assert!(err.contains("legacy_e1"), "{err}");
        // A non-finite *fresh* value against a healthy baseline is just as
        // ungateable.
        let err = compare(&good, &inf, &strict).expect_err("strict rejects inf fresh");
        assert!(err.contains("fresh value"), "{err}");
    }

    #[test]
    fn unknown_schema_is_an_error() {
        let good = artifact("blap-bench-hotpaths-v2", None, 1.0, 1.0);
        let bad = good.replace("hotpaths-v2", "hotpaths-v9");
        let err = compare(&bad, &good, &CompareConfig::default()).expect_err("must reject");
        assert!(err.contains("unsupported schema"), "{err}");
        let err = compare("not json", &good, &CompareConfig::default()).expect_err("must reject");
        assert!(err.contains("baseline"), "{err}");
    }

    #[test]
    fn history_record_is_single_line_json_with_fresh_values() {
        let h = host("cpu0");
        let base = artifact("blap-bench-hotpaths-v2", Some(&h), 350.0, 13.0);
        let fresh = artifact("blap-bench-hotpaths-v2", Some(&h), 420.0, 14.0);
        let cmp = compare(&base, &fresh, &CompareConfig::default()).expect("comparable");
        let record = history_record(&cmp, 1_700_000_000);
        assert!(record.ends_with('\n'));
        assert_eq!(record.trim_end().lines().count(), 1);
        let value = json::parse(record.trim_end()).expect("valid JSON");
        assert_eq!(
            value.get("schema").and_then(Value::as_str),
            Some("blap-bench-history-v1")
        );
        assert_eq!(value.get("verdict").and_then(Value::as_str), Some("pass"));
        assert_eq!(
            value
                .get("worst")
                .and_then(|w| w.get("metric"))
                .and_then(Value::as_str),
            Some("ns_per_op.legacy_e1")
        );
        assert!(value
            .get("ns_per_op")
            .and_then(|s| s.get("legacy_e1"))
            .is_some());
        assert!(value.get("host").and_then(|h| h.get("cores")).is_some());
    }
}
