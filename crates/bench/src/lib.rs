//! Shared helpers for the BLAP benchmark binaries and Criterion targets.
//!
//! The actual experiment logic lives in the `blap` crate; this crate only
//! holds the entry points that regenerate each table/figure
//! (`cargo run -p blap-bench --bin <target>`) and the Criterion benches
//! that time the attack pipeline's components.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use blap::link_key_extraction::{ExtractionReport, ExtractionScenario};
use blap::page_blocking::{PageBlockingRow, PageBlockingScenario};
use blap::runner::{parallel_map, seed_for, Jobs};
use blap_sim::profiles;

/// Runs the full Table I experiment: one extraction per Table I profile.
/// Worker count comes from the environment (`BLAP_JOBS`).
pub fn run_table1(seed: u64) -> Vec<ExtractionReport> {
    run_table1_with(seed, Jobs::from_env())
}

/// [`run_table1`] with an explicit worker count. Each profile's scenario
/// seed is derived from the profile index alone, so the report list is
/// byte-identical at any parallelism.
pub fn run_table1_with(seed: u64, jobs: Jobs) -> Vec<ExtractionReport> {
    let profiles = profiles::table1_profiles();
    parallel_map(jobs, profiles.len(), |i| {
        ExtractionScenario::new(profiles[i], seed_for(seed, i as u64)).run()
    })
}

/// Runs the full Table II experiment with `trials` per condition per device.
/// Worker count comes from the environment (`BLAP_JOBS`).
pub fn run_table2(seed: u64, trials: usize) -> Vec<PageBlockingRow> {
    run_table2_with(seed, trials, Jobs::from_env())
}

/// [`run_table2`] with an explicit worker count.
///
/// The experiment flattens to (device, trial) units rather than handing
/// each device row to one worker: rows × trials units keep every worker
/// busy even when the device count is smaller than the job count. Each
/// unit's world seed depends only on its (device, trial) coordinates, so
/// the rows are byte-identical at any parallelism.
pub fn run_table2_with(seed: u64, trials: usize, jobs: Jobs) -> Vec<PageBlockingRow> {
    let scenarios: Vec<PageBlockingScenario> = profiles::table2_profiles()
        .into_iter()
        .enumerate()
        .map(|(i, profile)| {
            let mut scenario = PageBlockingScenario::new(profile, seed_for(seed, i as u64));
            scenario.trials = trials;
            scenario
        })
        .collect();
    let outcomes = parallel_map(jobs, scenarios.len() * trials, |unit| {
        scenarios[unit / trials].run_trial_pair(unit % trials)
    });
    scenarios
        .iter()
        .enumerate()
        .map(|(i, scenario)| scenario.aggregate(&outcomes[i * trials..(i + 1) * trials]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_all_rows_vulnerable() {
        // Smoke-test the driver on a single profile to keep unit tests
        // quick; the binary runs all nine.
        let report = ExtractionScenario::new(profiles::ubuntu_bluez(), 99).run();
        assert!(report.vulnerable());
    }

    #[test]
    fn table2_driver_produces_rows() {
        let rows = run_table2(5, 4);
        assert_eq!(rows.len(), 7);
        for row in rows {
            assert_eq!(row.measured_blocking_rate, 1.0, "{}", row.device);
        }
    }
}
