//! Shared helpers for the BLAP benchmark binaries and Criterion targets.
//!
//! The actual experiment logic lives in the `blap` crate; this crate only
//! holds the entry points that regenerate each table/figure
//! (`cargo run -p blap-bench --bin <target>`) and the Criterion benches
//! that time the attack pipeline's components.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use blap::link_key_extraction::{ExtractionReport, ExtractionScenario};
use blap::page_blocking::{PageBlockingRow, PageBlockingScenario};
use blap_sim::profiles;

/// Runs the full Table I experiment: one extraction per Table I profile.
pub fn run_table1(seed: u64) -> Vec<ExtractionReport> {
    profiles::table1_profiles()
        .into_iter()
        .enumerate()
        .map(|(i, profile)| ExtractionScenario::new(profile, seed + i as u64).run())
        .collect()
}

/// Runs the full Table II experiment with `trials` per condition per device.
pub fn run_table2(seed: u64, trials: usize) -> Vec<PageBlockingRow> {
    profiles::table2_profiles()
        .into_iter()
        .enumerate()
        .map(|(i, profile)| {
            let mut scenario = PageBlockingScenario::new(profile, seed + 1000 * i as u64);
            scenario.trials = trials;
            scenario.run()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_all_rows_vulnerable() {
        // Smoke-test the driver on a single profile to keep unit tests
        // quick; the binary runs all nine.
        let report = ExtractionScenario::new(profiles::ubuntu_bluez(), 99).run();
        assert!(report.vulnerable());
    }

    #[test]
    fn table2_driver_produces_rows() {
        let rows = run_table2(5, 4);
        assert_eq!(rows.len(), 7);
        for row in rows {
            assert_eq!(row.measured_blocking_rate, 1.0, "{}", row.device);
        }
    }
}
