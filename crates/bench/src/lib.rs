//! Shared helpers for the BLAP benchmark binaries and Criterion targets.
//!
//! The actual experiment logic lives in the `blap` crate; this crate only
//! holds the entry points that regenerate each table/figure
//! (`cargo run -p blap-bench --bin <target>`) and the Criterion benches
//! that time the attack pipeline's components.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use blap::link_key_extraction::{ExtractionReport, ExtractionScenario};
use blap::page_blocking::{PageBlockingRow, PageBlockingScenario};
use blap::runner::{parallel_map, seed_for, Jobs};
use blap_obs::{JsonlBuffer, Metrics, TraceEvent, Tracer};
use blap_sim::profiles;

pub mod cli;
pub mod compare;
pub mod top;

/// An experiment run with observability attached: the rows the unobserved
/// runner would have produced, plus the merged metrics and the
/// concatenated JSONL trace.
///
/// Both artifacts are assembled in unit-index order after the parallel
/// phase, so they are byte-identical at any worker count.
pub struct Observed<T> {
    /// The experiment rows (same values as the unobserved runner).
    pub rows: Vec<T>,
    /// Per-world metrics merged across all units, in unit-index order.
    pub metrics: Metrics,
    /// Per-unit JSONL traces concatenated in unit-index order. Each unit
    /// opens with a `unit_start` line marking its boundary.
    pub trace: String,
}

fn collect_units<T>(units: Vec<(T, Metrics, String)>) -> (Vec<T>, Metrics, String) {
    let mut rows = Vec::with_capacity(units.len());
    let mut metrics = Metrics::new();
    let mut trace = String::new();
    for (row, unit_metrics, unit_trace) in units {
        rows.push(row);
        metrics.merge(&unit_metrics);
        trace.push_str(&unit_trace);
    }
    (rows, metrics, trace)
}

fn observed_unit<T>(
    unit: usize,
    label: &'static str,
    run: impl FnOnce(&Tracer) -> (T, Metrics),
) -> (T, Metrics, String) {
    let tracer = Tracer::new();
    let buffer = JsonlBuffer::new();
    tracer.attach(buffer.clone());
    tracer.emit(TraceEvent::UnitStart {
        unit: unit as u64,
        label,
    });
    let wall_started = std::time::Instant::now();
    let (row, mut metrics) = run(&tracer);
    // Per-unit duration histograms: virtual time always (deterministic),
    // wall time only on request — it varies run to run, so recording it
    // would break the byte-identical artifact guarantee.
    let virtual_us = metrics.counter("virtual_us");
    metrics.observe("unit_virtual_us", virtual_us);
    if std::env::var("BLAP_METRICS_WALL").is_ok_and(|v| v == "1") {
        metrics.observe("unit_wall_us", wall_started.elapsed().as_micros() as u64);
    }
    (row, metrics, buffer.contents())
}

/// Runs the full Table I experiment: one extraction per Table I profile.
/// Worker count comes from the environment (`BLAP_JOBS`).
pub fn run_table1(seed: u64) -> Vec<ExtractionReport> {
    run_table1_with(seed, Jobs::from_env())
}

/// [`run_table1`] with an explicit worker count. Each profile's scenario
/// seed is derived from the profile index alone, so the report list is
/// byte-identical at any parallelism.
pub fn run_table1_with(seed: u64, jobs: Jobs) -> Vec<ExtractionReport> {
    let profiles = profiles::table1_profiles();
    parallel_map(jobs, profiles.len(), |i| {
        ExtractionScenario::new(profiles[i], seed_for(seed, i as u64)).run()
    })
}

/// [`run_table1_with`] with observability: every extraction world traces
/// into a per-unit buffer and snapshots its metrics; the artifacts are
/// merged in profile-index order.
pub fn run_table1_observed_with(seed: u64, jobs: Jobs) -> Observed<ExtractionReport> {
    let profiles = profiles::table1_profiles();
    let units = parallel_map(jobs, profiles.len(), |i| {
        observed_unit(i, "extraction", |tracer| {
            ExtractionScenario::new(profiles[i], seed_for(seed, i as u64)).run_observed(tracer)
        })
    });
    let (rows, metrics, trace) = collect_units(units);
    Observed {
        rows,
        metrics,
        trace,
    }
}

/// Runs the full Table II experiment with `trials` per condition per device.
/// Worker count comes from the environment (`BLAP_JOBS`).
pub fn run_table2(seed: u64, trials: usize) -> Vec<PageBlockingRow> {
    run_table2_with(seed, trials, Jobs::from_env())
}

/// [`run_table2`] with an explicit worker count.
///
/// The experiment flattens to (device, trial) units rather than handing
/// each device row to one worker: rows × trials units keep every worker
/// busy even when the device count is smaller than the job count. Each
/// unit's world seed depends only on its (device, trial) coordinates, so
/// the rows are byte-identical at any parallelism.
pub fn run_table2_with(seed: u64, trials: usize, jobs: Jobs) -> Vec<PageBlockingRow> {
    let scenarios: Vec<PageBlockingScenario> = profiles::table2_profiles()
        .into_iter()
        .enumerate()
        .map(|(i, profile)| {
            let mut scenario = PageBlockingScenario::new(profile, seed_for(seed, i as u64));
            scenario.trials = trials;
            scenario
        })
        .collect();
    let outcomes = parallel_map(jobs, scenarios.len() * trials, |unit| {
        scenarios[unit / trials].run_trial_pair(unit % trials)
    });
    scenarios
        .iter()
        .enumerate()
        .map(|(i, scenario)| scenario.aggregate(&outcomes[i * trials..(i + 1) * trials]))
        .collect()
}

/// [`run_table2_with`] with observability: each (device, trial) unit runs
/// its baseline+blocking world pair under a per-unit tracer; metrics and
/// traces are merged in unit-index order, so both artifacts are
/// byte-identical at any worker count.
pub fn run_table2_observed_with(seed: u64, trials: usize, jobs: Jobs) -> Observed<PageBlockingRow> {
    let scenarios: Vec<PageBlockingScenario> = profiles::table2_profiles()
        .into_iter()
        .enumerate()
        .map(|(i, profile)| {
            let mut scenario = PageBlockingScenario::new(profile, seed_for(seed, i as u64));
            scenario.trials = trials;
            scenario
        })
        .collect();
    let units = parallel_map(jobs, scenarios.len() * trials, |unit| {
        observed_unit(unit, "trial_pair", |tracer| {
            scenarios[unit / trials].run_trial_pair_observed(unit % trials, tracer)
        })
    });
    let mut outcomes = Vec::with_capacity(units.len());
    let mut metrics = Metrics::new();
    let mut trace = String::new();
    for (unit, (pair, unit_metrics, unit_trace)) in units.into_iter().enumerate() {
        // Global totals plus a per-device section (scoped by the Table II
        // row's device name), so race counters are inspectable per row.
        metrics.merge(&unit_metrics);
        metrics.merge_scoped(scenarios[unit / trials].victim.name, &unit_metrics);
        trace.push_str(&unit_trace);
        outcomes.push(pair);
    }
    let rows = scenarios
        .iter()
        .enumerate()
        .map(|(i, scenario)| scenario.aggregate(&outcomes[i * trials..(i + 1) * trials]))
        .collect();
    Observed {
        rows,
        metrics,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_all_rows_vulnerable() {
        // Smoke-test the driver on a single profile to keep unit tests
        // quick; the binary runs all nine.
        let report = ExtractionScenario::new(profiles::ubuntu_bluez(), 99).run();
        assert!(report.vulnerable());
    }

    #[test]
    fn table2_driver_produces_rows() {
        let rows = run_table2(5, 4);
        assert_eq!(rows.len(), 7);
        for row in rows {
            assert_eq!(row.measured_blocking_rate, 1.0, "{}", row.device);
        }
    }
}
