//! Exporter ↔ parser round-trip properties.
//!
//! The metrics and profile JSON documents are rendered by hand (no serde),
//! and read back by the equally hand-rolled parser in `blap_obs::json`.
//! These two implementations can drift independently — an escaping bug in
//! the renderer or a decoding bug in the parser would silently corrupt the
//! analyzer's view while every unit test of either side still passes.
//! The property here pins them together: any document the exporter emits
//! must parse back with flattened key-paths and values equal to the source
//! data, including hostile label strings (quotes, backslashes, control
//! characters, non-ASCII).

use std::collections::BTreeMap;

use blap_obs::json;
use blap_obs::{export_json, flatten_json, prof, MetaValue, Metrics};
use proptest::collection::vec;
use proptest::prelude::*;

/// Labels that stress the escaper: every JSON escape class plus plain
/// pattern-generated names.
fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9_. ]{1,12}".prop_map(|s| s),
        Just("he said \"hi\"".to_owned()),
        Just("back\\slash\\".to_owned()),
        Just("tab\there".to_owned()),
        Just("new\nline".to_owned()),
        Just("ctrl\u{1}\u{1f}char".to_owned()),
        Just("snowman ☃ naïve".to_owned()),
        Just("\"".to_owned()),
        Just("\\\"\\".to_owned()),
    ]
}

/// Looks up a flattened path, panicking with the full table on a miss.
fn lookup<'a>(flat: &'a [(String, String)], path: &str) -> &'a str {
    flat.iter()
        .find(|(p, _)| p == path)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("path {path:?} missing from flattened export:\n{flat:#?}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_export_parses_back_to_source(
        counters in vec((label(), any::<u32>()), 0..8),
        gauges in vec((label(), any::<u64>()), 0..8),
        samples in vec((label(), vec(any::<u64>(), 1..6)), 0..4),
        experiment in label(),
        seed in any::<u64>(),
    ) {
        // Build the bag and, in parallel, the ground-truth aggregates the
        // same way Metrics defines them (counters add, gauges max).
        let mut m = Metrics::new();
        let mut want_counters: BTreeMap<String, u64> = BTreeMap::new();
        for (name, n) in &counters {
            m.add(name, u64::from(*n));
            *want_counters.entry(name.clone()).or_insert(0) += u64::from(*n);
        }
        let mut want_gauges: BTreeMap<String, u64> = BTreeMap::new();
        for (name, v) in &gauges {
            m.gauge_max(name, *v);
            let slot = want_gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        let mut want_hist: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (name, values) in &samples {
            for v in values {
                m.observe(name, *v);
            }
            want_hist.entry(name.clone()).or_default().extend(values);
        }

        let doc = export_json(
            &[
                ("experiment", MetaValue::Str(experiment.clone())),
                ("seed", MetaValue::Int(seed)),
            ],
            &m,
        );
        let parsed = json::parse(&doc)
            .unwrap_or_else(|e| panic!("exported document must parse: {e:?}\n{doc}"));
        let flat = flatten_json(&parsed);

        // Meta strings survive escape → parse exactly.
        prop_assert_eq!(lookup(&flat, "experiment"), format!("{experiment:?}"));
        prop_assert_eq!(lookup(&flat, "seed"), seed.to_string());

        // Every source key is present at its dotted path with its exact
        // aggregate; hostile characters in `name` must not corrupt either
        // the path or neighboring entries.
        for (name, total) in &want_counters {
            prop_assert_eq!(
                lookup(&flat, &format!("metrics.counters.{name}")),
                total.to_string()
            );
        }
        for (name, max) in &want_gauges {
            prop_assert_eq!(
                lookup(&flat, &format!("metrics.gauges.{name}")),
                max.to_string()
            );
        }
        for (name, values) in &want_hist {
            let base = format!("metrics.histograms.{name}");
            prop_assert_eq!(
                lookup(&flat, &format!("{base}.count")),
                values.len().to_string()
            );
            let sum: u64 = values.iter().fold(0, |acc, v| acc.saturating_add(*v));
            prop_assert_eq!(lookup(&flat, &format!("{base}.sum")), sum.to_string());
            prop_assert_eq!(
                lookup(&flat, &format!("{base}.min")),
                values.iter().min().expect("non-empty").to_string()
            );
            prop_assert_eq!(
                lookup(&flat, &format!("{base}.max")),
                values.iter().max().expect("non-empty").to_string()
            );
        }

        // Scalar-path count must match the source exactly: nothing extra
        // materializes, nothing is swallowed. Meta (2) + counters + gauges
        // + per-histogram (count/sum/min/max + one path per occupied
        // bucket).
        let bucket_paths: usize = want_hist
            .keys()
            .map(|name| {
                let h = m.histogram(name).expect("histogram present");
                (0..=64).filter(|k| h.bucket(*k) > 0).count()
            })
            .sum();
        let expected_paths =
            2 + want_counters.len() + want_gauges.len() + want_hist.len() * 4 + bucket_paths;
        prop_assert_eq!(flat.len(), expected_paths, "flat: {:#?}", flat);
    }
}

/// The profile sidecar must round-trip through the same parser: scope
/// paths (span-name vocabulary), call counts, and pool rows all come back
/// intact.
#[test]
fn profile_export_parses_back_to_source() {
    prof::reset();
    prof::set_enabled(true);
    {
        let _t = prof::scope("trial");
        {
            let _p = prof::scope("page");
            let _h = prof::scope("hci_cmd");
        }
        let _a = prof::scope("lmp_auth");
        let _e = prof::scope("crypto.e1");
    }
    prof::record_worker("parallel_map", 0, std::time::Duration::from_millis(3), 2);
    prof::record_worker("parallel_map", 1, std::time::Duration::from_millis(1), 1);
    prof::record_pool("parallel_map", std::time::Duration::from_millis(4));
    prof::set_enabled(false);
    let report = prof::report();
    let doc = report.to_json();
    prof::reset();

    let parsed =
        json::parse(&doc).unwrap_or_else(|e| panic!("profile sidecar must parse: {e:?}\n{doc}"));
    let flat = flatten_json(&parsed);
    assert_eq!(lookup(&flat, "schema"), "\"blap-prof-v1\"");

    // Each (path, calls) pair in the report appears verbatim in the
    // parsed document, in the same order the exporter walked them.
    for (i, (path, node)) in report.walk().iter().enumerate() {
        assert_eq!(
            lookup(&flat, &format!("scopes[{i}].path")),
            format!("{path:?}")
        );
        assert_eq!(
            lookup(&flat, &format!("scopes[{i}].calls")),
            node.calls.to_string()
        );
        assert_eq!(
            lookup(&flat, &format!("scopes[{i}].self_ns")),
            node.self_ns.to_string()
        );
    }
    assert_eq!(lookup(&flat, "pools[0].pool"), "\"parallel_map\"");
    assert_eq!(lookup(&flat, "pools[0].workers[0].tasks"), "2");
    assert_eq!(lookup(&flat, "pools[0].workers[1].tasks"), "1");
}
