//! Binary ⇄ JSONL trace codec round-trip properties, plus the committed
//! byte-exact fixture pair.
//!
//! The binary encoding and the JSONL renderer are two independent
//! serializations of the same [`Frame`] model; `blap-trace convert`
//! promises the round trip is byte-deterministic in both directions. The
//! properties here generate frames with hostile strings (quotes,
//! backslashes, control characters, non-ASCII) and extreme numeric
//! ranges (`u64::MAX` timestamps, max device ids) and pin:
//!
//! * binary: encode → decode returns the identical frame;
//! * JSONL: render → parse returns the identical frame;
//! * the full convert cycle JSONL → binary → JSONL is byte-identical.
//!
//! The committed fixture pair (`fixtures/trace_small.jsonl` / `.bin`)
//! pins the *encoding itself*: a codec change that silently reshapes
//! bytes fails here even if it round-trips. Regenerate deliberately with
//! `BLAP_REGEN_FIXTURES=1 cargo test -p blap-obs --test binfmt_roundtrip`.

use std::io::Read;
use std::path::Path;

use blap_obs::binfmt::FrameKind;
use blap_obs::{Frame, FrameReader, FrameWriter};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strings that stress both codecs: every JSON escape class, UTF-8
/// multibyte, and plain identifier-ish names.
fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9_.:]{1,16}".prop_map(|s| s),
        Just(String::new()),
        Just("he said \"hi\"".to_owned()),
        Just("back\\slash\\".to_owned()),
        Just("tab\there and new\nline".to_owned()),
        Just("ctrl\u{1}\u{1f}char".to_owned()),
        Just("snowman ☃ naïve — em".to_owned()),
        Just("\"\\\"".to_owned()),
    ]
}

/// Timestamps biased toward the edges: zero, small, and `u64::MAX`
/// (varint encoding uses all ten bytes there).
fn timestamp() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        0..10_000_000u64,
        Just(u64::MAX),
        Just(u64::MAX - 1),
    ]
}

fn device() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![
        Just(None),
        Just(Some(0u32)),
        Just(Some(u32::MAX)),
        (0..64u32).prop_map(Some),
    ]
}

/// All 17 frame kinds, with hostile strings in every string slot and
/// extreme values in every numeric one.
fn kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        (timestamp(), label()).prop_map(|(seq, kind)| FrameKind::Dispatch { seq, kind }),
        label().prop_map(|target| FrameKind::PageStart { target }),
        (label(), timestamp(), timestamp(), any::<bool>()).prop_map(
            |(target, responder, latency_us, raced)| FrameKind::PageConnect {
                target,
                responder,
                latency_us,
                raced,
            }
        ),
        label().prop_map(|target| FrameKind::PageTimeout { target }),
        (label(), any::<bool>()).prop_map(|(target, attacker_won)| FrameKind::Race {
            target,
            attacker_won
        }),
        (any::<bool>(), any::<bool>()).prop_map(|(page_scan, inquiry_scan)| FrameKind::Scan {
            page_scan,
            inquiry_scan,
        }),
        (label(), label()).prop_map(|(peer, pdu)| FrameKind::LmpSend { peer, pdu }),
        (label(), label()).prop_map(|(peer, pdu)| FrameKind::LmpRecv { peer, pdu }),
        label().prop_map(|peer| FrameKind::LmpTimeout { peer }),
        (label(), label(), label()).prop_map(|(dir, kind, name)| FrameKind::Hci {
            dir,
            kind,
            name
        }),
        label().prop_map(|reason| FrameKind::LinkDrop { reason }),
        (label(), label()).prop_map(|(peer, action)| FrameKind::Keystore { peer, action }),
        label().prop_map(|label| FrameKind::AttackPhase { label }),
        label().prop_map(|message| FrameKind::Warning { message }),
        (timestamp(), label()).prop_map(|(unit, label)| FrameKind::UnitStart { unit, label }),
        (
            timestamp(),
            any::<bool>(),
            timestamp(),
            label(),
            any::<bool>(),
            label()
        )
            .prop_map(|(span, has_parent, parent, name, has_detail, detail)| {
                FrameKind::SpanOpen {
                    span,
                    parent: has_parent.then_some(parent),
                    name,
                    // An empty detail renders identically to an absent
                    // one, so keep generated details non-empty.
                    detail: (has_detail && !detail.is_empty()).then_some(detail),
                }
            }),
        (timestamp(), label()).prop_map(|(span, status)| FrameKind::SpanClose { span, status }),
    ]
}

fn frame() -> impl Strategy<Value = Frame> {
    (timestamp(), device(), kind()).prop_map(|(t, dev, kind)| Frame { t, dev, kind })
}

/// Encodes frames to an in-memory binary stream.
fn encode(frames: &[Frame]) -> Vec<u8> {
    let mut writer = FrameWriter::new(Vec::new()).expect("vec write");
    for frame in frames {
        writer.write_frame(frame).expect("vec write");
    }
    writer.finish().expect("vec write")
}

/// Decodes every frame from a binary stream.
fn decode(bytes: &[u8]) -> Vec<Frame> {
    let mut reader = FrameReader::new(bytes).expect("valid magic");
    let mut frames = Vec::new();
    while let Some(frame) = reader.next_frame().expect("valid stream") {
        frames.push(frame);
    }
    frames
}

fn render(frames: &[Frame]) -> String {
    let mut text = String::new();
    for frame in frames {
        frame.render_jsonl(&mut text);
        text.push('\n');
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Binary encode → decode is the identity on frames, hostile strings
    /// and `u64::MAX` timestamps included.
    #[test]
    fn binary_codec_is_identity(frames in vec(frame(), 0..12)) {
        prop_assert_eq!(decode(&encode(&frames)), frames);
    }

    /// JSONL render → parse is the identity on frames: every escape the
    /// renderer emits, the parser must invert exactly.
    #[test]
    fn jsonl_codec_is_identity(frames in vec(frame(), 1..12)) {
        for frame in &frames {
            let mut line = String::new();
            frame.render_jsonl(&mut line);
            let back = Frame::from_jsonl(&line)
                .unwrap_or_else(|e| panic!("own render must parse: {e}\n{line}"));
            prop_assert_eq!(&back, frame);
        }
    }

    /// The full `blap-trace convert` cycle — JSONL → binary → JSONL — is
    /// byte-identical, so converting there and back loses nothing.
    #[test]
    fn convert_cycle_is_byte_identical(frames in vec(frame(), 0..12)) {
        let jsonl = render(&frames);
        // JSONL -> frames -> binary.
        let parsed: Vec<Frame> = jsonl
            .lines()
            .map(|l| Frame::from_jsonl(l).expect("canonical line"))
            .collect();
        let binary = encode(&parsed);
        // binary -> frames -> JSONL.
        prop_assert_eq!(render(&decode(&binary)), jsonl);
    }
}

/// The committed fixture pair pins the byte-level encoding of both
/// formats for a small representative trace. `BLAP_REGEN_FIXTURES=1`
/// rewrites both files from the in-tree sample.
#[test]
fn committed_binary_fixture_is_byte_exact() {
    // One frame per tag, deterministic values — edits here must be
    // paired with a fixture regen and show up in review as byte diffs.
    let frames = vec![
        Frame {
            t: 0,
            dev: None,
            kind: FrameKind::UnitStart {
                unit: 0,
                label: "trial_pair".to_owned(),
            },
        },
        Frame {
            t: 0,
            dev: None,
            kind: FrameKind::SpanOpen {
                span: 1,
                parent: None,
                name: "trial".to_owned(),
                detail: "blocking".to_owned().into(),
            },
        },
        Frame {
            t: 0,
            dev: Some(0),
            kind: FrameKind::Dispatch {
                seq: 1,
                kind: "Script".to_owned(),
            },
        },
        Frame {
            t: 625,
            dev: Some(2),
            kind: FrameKind::PageStart {
                target: "00:1b:7d:da:71:0a".to_owned(),
            },
        },
        Frame {
            t: 625,
            dev: Some(2),
            kind: FrameKind::SpanOpen {
                span: 2,
                parent: Some(1),
                name: "page".to_owned(),
                detail: "00:1b:7d:da:71:0a".to_owned().into(),
            },
        },
        Frame {
            t: 1250,
            dev: Some(2),
            kind: FrameKind::PageConnect {
                target: "00:1b:7d:da:71:0a".to_owned(),
                responder: 0,
                latency_us: 493606,
                raced: false,
            },
        },
        Frame {
            t: 1250,
            dev: Some(0),
            kind: FrameKind::Race {
                target: "00:1b:7d:da:71:0a".to_owned(),
                attacker_won: true,
            },
        },
        Frame {
            t: 1875,
            dev: Some(0),
            kind: FrameKind::Scan {
                page_scan: true,
                inquiry_scan: false,
            },
        },
        Frame {
            t: 2500,
            dev: Some(0),
            kind: FrameKind::LmpSend {
                peer: "00:1b:7d:da:71:0a".to_owned(),
                pdu: "LMP_au_rand".to_owned(),
            },
        },
        Frame {
            t: 3750,
            dev: Some(2),
            kind: FrameKind::LmpRecv {
                peer: "48:90:12:34:56:78".to_owned(),
                pdu: "LMP_au_rand".to_owned(),
            },
        },
        Frame {
            t: 5000,
            dev: Some(2),
            kind: FrameKind::LmpTimeout {
                peer: "48:90:12:34:56:78".to_owned(),
            },
        },
        Frame {
            t: 5625,
            dev: Some(0),
            kind: FrameKind::Hci {
                dir: "sent".to_owned(),
                kind: "command".to_owned(),
                name: "HCI_Create_Connection".to_owned(),
            },
        },
        Frame {
            t: 6250,
            dev: None,
            kind: FrameKind::LinkDrop {
                reason: "supervision_timeout".to_owned(),
            },
        },
        Frame {
            t: 6875,
            dev: Some(2),
            kind: FrameKind::Keystore {
                peer: "48:90:12:34:56:78".to_owned(),
                action: "install".to_owned(),
            },
        },
        Frame {
            t: 7500,
            dev: Some(2),
            kind: FrameKind::AttackPhase {
                label: "ploc_hold".to_owned(),
            },
        },
        Frame {
            t: 8125,
            dev: None,
            kind: FrameKind::Warning {
                message: "clock drift \"high\"\n".to_owned(),
            },
        },
        Frame {
            t: 8750,
            dev: Some(2),
            kind: FrameKind::PageTimeout {
                target: "00:1b:7d:da:71:0a".to_owned(),
            },
        },
        Frame {
            t: u64::MAX,
            dev: Some(0),
            kind: FrameKind::SpanClose {
                span: 1,
                status: "attacker_won".to_owned(),
            },
        },
    ];
    let jsonl = render(&frames);
    let binary = encode(&frames);

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let jsonl_path = dir.join("trace_small.jsonl");
    let bin_path = dir.join("trace_small.bin");
    if std::env::var_os("BLAP_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(&dir).expect("fixture dir");
        std::fs::write(&jsonl_path, &jsonl).expect("write jsonl fixture");
        std::fs::write(&bin_path, &binary).expect("write binary fixture");
    }

    let want_jsonl = std::fs::read_to_string(&jsonl_path)
        .expect("fixture missing — run with BLAP_REGEN_FIXTURES=1 to create it");
    let want_bin = std::fs::read(&bin_path)
        .expect("fixture missing — run with BLAP_REGEN_FIXTURES=1 to create it");
    assert_eq!(jsonl, want_jsonl, "JSONL fixture drifted");
    assert_eq!(binary, want_bin, "binary fixture drifted");

    // And the committed binary fixture decodes back to the JSONL one —
    // the same check CI's convert smoke performs through the CLI.
    let mut bytes = Vec::new();
    std::fs::File::open(&bin_path)
        .expect("fixture opens")
        .read_to_end(&mut bytes)
        .expect("fixture reads");
    assert_eq!(render(&decode(&bytes)), want_jsonl);
}
