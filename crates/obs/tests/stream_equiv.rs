//! Streaming ≡ batch analyzer equivalence properties.
//!
//! `analyze_trace` is a thin wrapper over `StreamAnalyzer`, but the
//! analyzer itself has three ingestion paths that can drift
//! independently: whole-artifact text, incremental `push_line`, and the
//! render-free typed `push_event` path the campaign engine drives. The
//! properties here generate interleaved multi-trial traces — matched and
//! orphaned LMP exchanges, nested spans, keystore mutations, races,
//! page connects, link drops — and pin all three paths to the same
//! violations, phase profile, and counts. A composition property checks
//! that segment retirement is history-free (analyzing two traces
//! back-to-back equals analyzing each alone), and a fault-injection
//! property checks that a torn final line fails the push without
//! corrupting everything already analyzed.

use blap_obs::trace::TraceEvent;
use blap_obs::{analyze_trace, SpanId, StreamAnalyzer, TraceAnalysis};
use blap_types::{BdAddr, Instant};
use proptest::collection::vec;
use proptest::prelude::*;

/// Fixed vocabularies for the `&'static str` event fields. Hostile
/// strings are the binary-codec round-trip suite's territory; here the
/// point is structural interleaving.
const PDUS: &[&str] = &[
    "LMP_au_rand",
    "LMP_sres",
    "LMP_detach",
    "LMP_host_connection_req",
];
const SPAN_NAMES: &[&str] = &["page", "lmp_auth", "host_pairing", "ploc", "hci_cmd"];
const STATUSES: &[&str] = &["ok", "connected", "timeout", "status"];
const TRIAL_STATUSES: &[&str] = &["attacker_won", "attacker_lost"];
const ACTIONS: &[&str] = &["store", "remove", "install"];

fn addr(i: u8) -> BdAddr {
    format!("00:11:22:33:44:{i:02x}")
        .parse()
        .expect("valid address")
}

/// One generated instruction; the builder expands these into timed,
/// span-id-allocated trace events.
#[derive(Clone, Debug)]
enum Op {
    /// `lmp_send`, optionally matched by an `lmp_recv` one LMP latency
    /// later (an unmatched send exercises the lmp-matching checker).
    Lmp {
        dev: u32,
        pdu: usize,
        matched: bool,
    },
    /// Child span open (and optional close) under the current trial.
    Span {
        dev: u32,
        name: usize,
        status: Option<usize>,
    },
    Keystore {
        dev: u32,
        action: usize,
    },
    Race {
        dev: u32,
        attacker_won: bool,
    },
    PageConnect {
        dev: u32,
        responder: u32,
        latency_us: u64,
    },
    LinkDrop,
    Hci {
        dev: u32,
    },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..3u32, 0..PDUS.len(), any::<bool>()).prop_map(|(dev, pdu, matched)| Op::Lmp {
            dev,
            pdu,
            matched
        }),
        (
            0..3u32,
            0..SPAN_NAMES.len(),
            any::<bool>(),
            0..STATUSES.len()
        )
            .prop_map(|(dev, name, close, status)| Op::Span {
                dev,
                name,
                status: close.then_some(status),
            }),
        (0..3u32, 0..ACTIONS.len()).prop_map(|(dev, action)| Op::Keystore { dev, action }),
        (0..3u32, any::<bool>()).prop_map(|(dev, attacker_won)| Op::Race { dev, attacker_won }),
        (0..3u32, 0..3u32, 0..2_000_000u64).prop_map(|(dev, responder, latency_us)| {
            Op::PageConnect {
                dev,
                responder,
                latency_us,
            }
        }),
        Just(Op::LinkDrop),
        (0..3u32).prop_map(|dev| Op::Hci { dev }),
    ]
}

/// One trial segment: an optional `unit_start` marker, a root trial
/// span, interleaved ops, and an optional trial close.
#[derive(Clone, Debug)]
struct SegPlan {
    unit_marker: bool,
    blocking: bool,
    ops: Vec<Op>,
    close: Option<usize>,
}

fn seg_plan() -> impl Strategy<Value = SegPlan> {
    (
        any::<bool>(),
        any::<bool>(),
        vec(op(), 0..10),
        any::<bool>(),
        0..TRIAL_STATUSES.len(),
    )
        .prop_map(|(unit_marker, blocking, ops, closes, close)| SegPlan {
            unit_marker,
            blocking,
            ops,
            close: closes.then_some(close),
        })
}

/// Expands segment plans into a `(device, event)` stream with strictly
/// scheduled times and per-trace-unique span ids. `unit` and `span`
/// counters seed from the caller so two traces can be concatenated
/// without colliding ids (the analyzer must not care either way).
fn build(plans: &[SegPlan], mut unit: u64, mut span: u64) -> Vec<(Option<u32>, TraceEvent)> {
    let mut events = Vec::new();
    let mut t = 0u64;
    for plan in plans {
        if plan.unit_marker {
            unit += 1;
            events.push((
                None,
                TraceEvent::UnitStart {
                    unit,
                    label: "trial_pair",
                },
            ));
        }
        span += 1;
        let trial = span;
        t += 1000;
        events.push((
            None,
            TraceEvent::SpanOpen {
                time: Instant::from_micros(t),
                span: SpanId::from_raw(trial),
                parent: SpanId::from_raw(0),
                name: "trial",
                detail: if plan.blocking {
                    "blocking"
                } else {
                    "baseline"
                }
                .to_owned(),
            },
        ));
        for op in &plan.ops {
            t += 625;
            match *op {
                Op::Lmp { dev, pdu, matched } => {
                    events.push((
                        Some(dev),
                        TraceEvent::LmpSend {
                            time: Instant::from_micros(t),
                            peer: addr(dev as u8 + 1),
                            pdu: PDUS[pdu],
                        },
                    ));
                    if matched {
                        events.push((
                            Some((dev + 1) % 3),
                            TraceEvent::LmpRecv {
                                time: Instant::from_micros(t + 1250),
                                peer: addr(dev as u8),
                                pdu: PDUS[pdu],
                            },
                        ));
                    }
                }
                Op::Span { dev, name, status } => {
                    span += 1;
                    events.push((
                        Some(dev),
                        TraceEvent::SpanOpen {
                            time: Instant::from_micros(t),
                            span: SpanId::from_raw(span),
                            parent: SpanId::from_raw(trial),
                            name: SPAN_NAMES[name],
                            detail: addr(dev as u8).to_string(),
                        },
                    ));
                    if let Some(status) = status {
                        events.push((
                            Some(dev),
                            TraceEvent::SpanClose {
                                time: Instant::from_micros(t + 625),
                                span: SpanId::from_raw(span),
                                status: STATUSES[status],
                            },
                        ));
                    }
                }
                Op::Keystore { dev, action } => events.push((
                    Some(dev),
                    TraceEvent::KeystoreMutation {
                        time: Instant::from_micros(t),
                        peer: addr(dev as u8 + 1),
                        action: ACTIONS[action],
                    },
                )),
                Op::Race { dev, attacker_won } => events.push((
                    Some(dev),
                    TraceEvent::RaceOutcome {
                        time: Instant::from_micros(t),
                        target: addr(dev as u8 + 1),
                        attacker_won,
                    },
                )),
                Op::PageConnect {
                    dev,
                    responder,
                    latency_us,
                } => events.push((
                    Some(dev),
                    TraceEvent::PageConnected {
                        time: Instant::from_micros(t),
                        target: addr(responder as u8),
                        responder,
                        latency_us,
                        raced: responder != dev,
                    },
                )),
                Op::LinkDrop => events.push((
                    None,
                    TraceEvent::LinkDropped {
                        time: Instant::from_micros(t),
                        reason: "supervision_timeout",
                    },
                )),
                Op::Hci { dev } => events.push((
                    Some(dev),
                    TraceEvent::HciSeam {
                        time: Instant::from_micros(t),
                        direction: "sent",
                        kind: "command",
                        name: "HCI_Create_Connection",
                    },
                )),
            }
        }
        if let Some(status) = plan.close {
            t += 625;
            events.push((
                None,
                TraceEvent::SpanClose {
                    time: Instant::from_micros(t),
                    span: SpanId::from_raw(trial),
                    status: TRIAL_STATUSES[status],
                },
            ));
        }
    }
    events
}

fn render(events: &[(Option<u32>, TraceEvent)]) -> String {
    let mut text = String::new();
    for (dev, event) in events {
        event.render_jsonl(*dev, &mut text);
        text.push('\n');
    }
    text
}

/// Full equality over everything `TraceAnalysis` reports.
fn assert_same(a: &TraceAnalysis, b: &TraceAnalysis) {
    assert_eq!(a.line_count, b.line_count);
    assert_eq!(a.segment_count, b.segment_count);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.notes, b.notes);
    assert_eq!(a.profile.render(), b.profile.render());
    assert_eq!(a.report(), b.report());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batch text, per-line pushes, and typed events all yield the same
    /// analysis for arbitrary interleaved multi-trial traces.
    #[test]
    fn three_ingestion_paths_agree(plans in vec(seg_plan(), 1..5)) {
        let events = build(&plans, 0, 0);
        let text = render(&events);
        let batch = analyze_trace(&text).expect("canonical lines parse");

        let mut by_line = StreamAnalyzer::new();
        for line in text.lines() {
            by_line.push_line(line).expect("canonical line pushes");
        }
        assert_same(&batch, &by_line.finish());

        let mut by_event = StreamAnalyzer::new();
        for (dev, event) in &events {
            by_event.push_event(*dev, event);
        }
        assert_same(&batch, &by_event.finish());
    }

    /// Retirement is history-free: a trace analyzed after another trace
    /// (second one opening with a `unit_start` boundary) reports exactly
    /// the sum of the two independent analyses, with segment indices and
    /// line numbers shifted.
    #[test]
    fn segment_retirement_is_compositional(
        first in vec(seg_plan(), 1..4),
        second in vec(seg_plan(), 1..4),
    ) {
        let a = build(&first, 0, 0);
        // Force a boundary so the concatenation point is deterministic,
        // and seed counters past `a`'s so ids stay unique.
        let mut second = second;
        second[0].unit_marker = true;
        let b = build(&second, 100, 1000);

        let solo_a = analyze_trace(&render(&a)).expect("parses");
        let solo_b = analyze_trace(&render(&b)).expect("parses");
        let joint = analyze_trace(&format!("{}{}", render(&a), render(&b))).expect("parses");

        prop_assert_eq!(joint.line_count, solo_a.line_count + solo_b.line_count);
        prop_assert_eq!(joint.segment_count, solo_a.segment_count + solo_b.segment_count);
        prop_assert_eq!(
            joint.violations.len(),
            solo_a.violations.len() + solo_b.violations.len()
        );
        // The joint suffix must be `b`'s violations with reindexed
        // segments/lines; the prefix must be `a`'s verbatim.
        for (joint_v, solo_v) in joint.violations.iter().zip(&solo_a.violations) {
            prop_assert_eq!(joint_v, solo_v);
        }
        for (joint_v, solo_v) in joint.violations[solo_a.violations.len()..]
            .iter()
            .zip(&solo_b.violations)
        {
            prop_assert_eq!(joint_v.invariant, solo_v.invariant);
            prop_assert_eq!(joint_v.segment, solo_v.segment + solo_a.segment_count);
            prop_assert_eq!(joint_v.line, solo_v.line.map(|l| l + solo_a.line_count));
            prop_assert_eq!(&joint_v.message, &solo_v.message);
        }
        prop_assert_eq!(joint.profile.render(), {
            let mut merged = solo_a.profile.clone();
            merged.merge(&solo_b.profile);
            merged.render()
        });
    }

    /// A torn final line (the crash-truncation shape) errors instead of
    /// being half-absorbed: the analyzer still reports exactly what the
    /// intact prefix contained.
    #[test]
    fn torn_final_line_fails_without_corrupting_state(
        plans in vec(seg_plan(), 1..4),
        cut in 1usize..64,
    ) {
        let text = render(&build(&plans, 0, 0));
        let lines: Vec<&str> = text.lines().collect();
        let (intact, last) = lines.split_at(lines.len() - 1);
        let last = last[0];
        // A strict proper prefix of a canonical JSON object line is
        // always unbalanced, hence unparseable.
        prop_assume!(cut < last.len());
        let torn = &last[..cut];

        let mut analyzer = StreamAnalyzer::new();
        for line in intact {
            analyzer.push_line(line).expect("intact line pushes");
        }
        prop_assert!(analyzer.push_line(torn).is_err(), "torn line must fail");

        let mut clean = StreamAnalyzer::new();
        for line in intact {
            clean.push_line(line).expect("intact line pushes");
        }
        assert_same(&clean.finish(), &analyzer.finish());
    }
}
