//! Telemetry snapshot writer ↔ parser round-trip properties.
//!
//! Like the metrics document (see `roundtrip.rs`), the telemetry
//! sidecar line is rendered by a hand-rolled writer and read back by
//! the hand-rolled parser, and the two can drift independently. The
//! properties here pin them together over the whole schema — every
//! numeric field, the per-worker lanes, and win-rate labels chosen to
//! stress the escaper (quotes, backslashes, control characters,
//! non-ASCII) — plus the byte-level guarantee `blap-top` relies on:
//! render → parse → render is the identity on the line itself.

use std::collections::BTreeMap;

use blap_obs::telemetry::{
    parse_snapshot_line, RaceCell, TelemetrySnapshot, WorkerLane, SCHEMA_VERSION,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Labels that stress the escaper: every JSON escape class plus plain
/// `device/mode` names like the campaign emits.
fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9_. ]{1,12}".prop_map(|s| format!("{s}/blocking")),
        Just("he said \"hi\"".to_owned()),
        Just("back\\slash\\".to_owned()),
        Just("tab\there".to_owned()),
        Just("new\nline".to_owned()),
        Just("ctrl\u{1}\u{1f}char".to_owned()),
        Just("snowman ☃ naïve".to_owned()),
        Just("\"".to_owned()),
        Just("\\\"\\".to_owned()),
    ]
}

/// An arbitrary schema-valid snapshot. Floats are generated on the
/// writer's fixed-precision grids (one decimal for the rate, four for
/// utilization), so a faithful round trip reproduces them exactly;
/// worker lanes and race labels are deduplicated and sorted the way
/// the sampler emits them.
fn snapshot() -> impl Strategy<Value = TelemetrySnapshot> {
    (
        (
            any::<u64>(), // seq
            any::<u64>(), // wall_ms
            any::<u64>(), // virtual_us
            any::<u64>(), // trials
            any::<u64>(), // trials_total
            any::<u64>(), // shards
            any::<u64>(), // shards_total
        ),
        (
            0u64..10_000_000, // trials_per_sec, in tenths
            any::<u64>(),     // eta_ms
            any::<u64>(),     // violations
            any::<u64>(),     // dropped
        ),
        vec(
            (0u64..64, any::<u64>(), 0u64..1_000_000, 0u32..=10_000),
            0..5,
        ),
        vec((label(), any::<u64>(), any::<u64>()), 0..4),
    )
        .prop_map(|(ids, stats, workers, races)| {
            let (seq, wall_ms, virtual_us, trials, trials_total, shards, shards_total) = ids;
            let (rate_tenths, eta_ms, violations, dropped) = stats;
            let workers: BTreeMap<u64, WorkerLane> = workers
                .into_iter()
                .map(|(worker, tasks, busy_ms, util)| {
                    (
                        worker,
                        WorkerLane {
                            worker,
                            tasks,
                            busy_ms,
                            utilization: f64::from(util) / 10_000.0,
                        },
                    )
                })
                .collect();
            let races: BTreeMap<String, RaceCell> = races
                .into_iter()
                .map(|(label, wins, trials)| (label, RaceCell { wins, trials }))
                .collect();
            TelemetrySnapshot {
                version: SCHEMA_VERSION,
                seq,
                wall_ms,
                virtual_us,
                trials,
                trials_total,
                shards,
                shards_total,
                trials_per_sec: rate_tenths as f64 / 10.0,
                eta_ms,
                violations,
                dropped,
                workers: workers.into_values().collect(),
                races: races.into_iter().collect(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn snapshot_survives_render_and_parse(source in snapshot()) {
        let line = source.to_json_line();
        prop_assert!(
            !line.contains('\n'),
            "a snapshot must stay a single JSONL line: {line:?}"
        );
        let parsed = parse_snapshot_line(&line)
            .unwrap_or_else(|e| panic!("rendered snapshot must parse: {e}\n{line}"));
        prop_assert_eq!(&parsed, &source);
        // Byte-level fixpoint: re-rendering the parsed snapshot cannot
        // drift, or `blap-top` and any archival tooling would disagree
        // about the same sidecar.
        prop_assert_eq!(parsed.to_json_line(), line);
    }
}
