//! Structural comparison of two observability artifacts.
//!
//! CI used to gate determinism with a bare `diff` over artifact bytes:
//! a one-line divergence failed the job with no hint of *what* drifted.
//! This module produces a structured report instead — for traces, the
//! first divergent line plus divergence counts; for metrics documents, a
//! path-by-path comparison that knows `wall_ms` is run-dependent by
//! design (`BLAP_METRICS_WALL=1`) and must not count as drift.

use std::fmt::Write as _;

use crate::json::{self, ParseError, Value};

/// The result of comparing two artifacts.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Individual findings, in artifact order.
    pub findings: Vec<String>,
    /// Number of differing lines/paths (may exceed `findings.len()` when
    /// the listing is capped).
    pub differences: usize,
}

/// How many individual findings a report lists before truncating.
const MAX_FINDINGS: usize = 50;

impl DiffReport {
    /// Whether the artifacts are equivalent (no unexplained drift).
    pub fn no_drift(&self) -> bool {
        self.differences == 0
    }

    /// Renders the report; `a_name`/`b_name` label the two inputs.
    pub fn render(&self, a_name: &str, b_name: &str) -> String {
        if self.no_drift() {
            return format!("no drift: {a_name} == {b_name}\n");
        }
        let mut out = format!(
            "DRIFT: {} difference(s) between {a_name} and {b_name}\n",
            self.differences
        );
        for finding in &self.findings {
            let _ = writeln!(out, "  {finding}");
        }
        if self.differences > self.findings.len() {
            let _ = writeln!(
                out,
                "  ... and {} more",
                self.differences - self.findings.len()
            );
        }
        out
    }

    fn push(&mut self, finding: String) {
        self.differences += 1;
        if self.findings.len() < MAX_FINDINGS {
            self.findings.push(finding);
        }
    }
}

/// Incremental trace comparison: feed paired lines as they stream off
/// two readers, then [`TraceDiff::finish`]. Memory is bounded — the
/// report holds at most [`MAX_FINDINGS`] findings regardless of artifact
/// length, and no line is retained after its `push_pair` call — which is
/// what lets `blap-trace diff` walk two campaign-scale artifacts without
/// materializing either.
#[derive(Debug, Default)]
pub struct TraceDiff {
    report: DiffReport,
    a_lines: usize,
    b_lines: usize,
}

impl TraceDiff {
    /// A fresh comparison.
    pub fn new() -> TraceDiff {
        TraceDiff::default()
    }

    /// Consumes the next line from each artifact (`None` once that
    /// artifact is exhausted — keep pushing until both are).
    pub fn push_pair(&mut self, a: Option<&str>, b: Option<&str>) {
        if a.is_some() {
            self.a_lines += 1;
        }
        if b.is_some() {
            self.b_lines += 1;
        }
        if let (Some(la), Some(lb)) = (a, b) {
            if la != lb {
                self.report
                    .push(format!("line {}: {la:?} != {lb:?}", self.a_lines));
            }
        }
    }

    /// Completes the comparison (accounting for a length mismatch) and
    /// returns the report.
    pub fn finish(mut self) -> DiffReport {
        if self.a_lines != self.b_lines {
            self.report.push(format!(
                "line count: {} vs {} ({} extra line(s) in the longer artifact)",
                self.a_lines,
                self.b_lines,
                self.a_lines.abs_diff(self.b_lines)
            ));
        }
        self.report
    }
}

/// Compares two trace JSONL artifacts line by line — batch facade over
/// [`TraceDiff`] for callers already holding both artifacts.
pub fn diff_traces(a: &str, b: &str) -> DiffReport {
    let mut diff = TraceDiff::new();
    let mut a_lines = a.lines();
    let mut b_lines = b.lines();
    loop {
        let (la, lb) = (a_lines.next(), b_lines.next());
        if la.is_none() && lb.is_none() {
            return diff.finish();
        }
        diff.push_pair(la, lb);
    }
}

/// Compares two metrics JSON documents structurally, ignoring the
/// run-dependent `wall_ms` meta field.
pub fn diff_metrics(a: &str, b: &str) -> Result<DiffReport, ParseError> {
    let a_paths = flatten(&json::parse(a)?);
    let b_paths = flatten(&json::parse(b)?);
    let mut report = DiffReport::default();
    let mut bi = 0usize;
    // Both flattenings are sorted by path, so a single merge pass finds
    // added, removed, and changed entries.
    let mut ai = 0usize;
    while ai < a_paths.len() || bi < b_paths.len() {
        match (a_paths.get(ai), b_paths.get(bi)) {
            (Some((pa, va)), Some((pb, vb))) if pa == pb => {
                if va != vb && !is_wall_path(pa) {
                    report.push(format!("{pa}: {va} != {vb}"));
                }
                ai += 1;
                bi += 1;
            }
            (Some((pa, va)), Some((pb, _))) if pa < pb => {
                if !is_wall_path(pa) {
                    report.push(format!("{pa}: {va} only in first artifact"));
                }
                ai += 1;
            }
            (Some(_), Some((pb, vb))) => {
                if !is_wall_path(pb) {
                    report.push(format!("{pb}: {vb} only in second artifact"));
                }
                bi += 1;
            }
            (Some((pa, va)), None) => {
                if !is_wall_path(pa) {
                    report.push(format!("{pa}: {va} only in first artifact"));
                }
                ai += 1;
            }
            (None, Some((pb, vb))) => {
                if !is_wall_path(pb) {
                    report.push(format!("{pb}: {vb} only in second artifact"));
                }
                bi += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    Ok(report)
}

fn is_wall_path(path: &str) -> bool {
    // Wall-clock durations are run-dependent by design: the meta header's
    // wall_ms and any *_wall_us histograms collected under
    // BLAP_METRICS_WALL=1.
    path.rsplit('.')
        .next()
        .is_some_and(|leaf| leaf == "wall_ms")
        || path.contains("wall_us")
}

/// Flattens a parsed JSON document into sorted `(dotted.path, scalar)`
/// pairs: object members become `path.key`, array elements `path[i]`,
/// strings render `Debug`-quoted, numbers keep their literal text. This is
/// the canonical form both the metrics differ and the exporter round-trip
/// tests compare in.
pub fn flatten_json(value: &Value) -> Vec<(String, String)> {
    let mut out = Vec::new();
    walk(value, String::new(), &mut out);
    out.sort();
    out
}

fn flatten(value: &Value) -> Vec<(String, String)> {
    flatten_json(value)
}

fn walk(value: &Value, path: String, out: &mut Vec<(String, String)>) {
    match value {
        Value::Object(members) => {
            for (key, v) in members {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                walk(v, child, out);
            }
        }
        Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                walk(v, format!("{path}[{i}]"), out);
            }
        }
        Value::Str(s) => out.push((path, format!("{s:?}"))),
        Value::Num(n) => out.push((path, n.clone())),
        Value::Bool(b) => out.push((path, b.to_string())),
        Value::Null => out.push((path, "null".to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_report_no_drift() {
        let t = "{\"t\":0,\"ev\":\"a\"}\n{\"t\":1,\"ev\":\"b\"}\n";
        let report = diff_traces(t, t);
        assert!(report.no_drift());
        assert!(report.render("a", "b").starts_with("no drift"));
    }

    #[test]
    fn trace_divergence_names_the_line() {
        let a = "{\"t\":0,\"ev\":\"a\"}\n{\"t\":1,\"ev\":\"b\"}\n";
        let b = "{\"t\":0,\"ev\":\"a\"}\n{\"t\":2,\"ev\":\"b\"}\n{\"t\":3,\"ev\":\"c\"}\n";
        let report = diff_traces(a, b);
        assert_eq!(report.differences, 2);
        assert!(report.findings[0].starts_with("line 2:"), "{report:?}");
        assert!(report.findings[1].contains("line count"), "{report:?}");
        assert!(report.render("a", "b").starts_with("DRIFT"));
    }

    #[test]
    fn metrics_diff_finds_changed_and_missing_paths() {
        let a = r#"{"metrics":{"counters":{"x":1,"only_a":2}}}"#;
        let b = r#"{"metrics":{"counters":{"x":3,"only_b":4}}}"#;
        let report = diff_metrics(a, b).expect("parses");
        assert_eq!(report.differences, 3);
        let text = report.render("a", "b");
        assert!(text.contains("metrics.counters.x: 1 != 3"), "{text}");
        assert!(text.contains("only_a"), "{text}");
        assert!(text.contains("only_b"), "{text}");
    }

    #[test]
    fn wall_clock_paths_are_not_drift() {
        let a = r#"{"wall_ms": 120, "metrics":{"histograms":{"unit_wall_us":{"count":5}}}}"#;
        let b = r#"{"wall_ms": 345, "metrics":{"histograms":{"unit_wall_us":{"count":9}}}}"#;
        let report = diff_metrics(a, b).expect("parses");
        assert!(report.no_drift(), "{:?}", report.findings);
        // A wall_ms field present on only one side is also excused.
        let c = r#"{"metrics":{"histograms":{}}}"#;
        let d = r#"{"wall_ms": 1, "metrics":{"histograms":{}}}"#;
        assert!(diff_metrics(c, d).expect("parses").no_drift());
    }

    #[test]
    fn metrics_diff_rejects_malformed_input() {
        assert!(diff_metrics("{", "{}").is_err());
    }
}
