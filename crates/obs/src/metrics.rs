//! Counters, gauges, and power-of-two histograms with deterministic JSON
//! export.
//!
//! A [`Metrics`] bag is built per world (or per experiment unit) and merged
//! upward. Every merge operation is commutative and associative — counter
//! sums, gauge maxima, bucket-wise histogram addition — so folding per-unit
//! bags in unit-index order yields the same bytes regardless of which
//! worker produced which unit. Keys are held in `BTreeMap`s so the JSON
//! rendering is ordered, and all values are integers (virtual microseconds,
//! event counts): no floats, no platform-dependent formatting.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, escape, Value};

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Bucket `k` counts samples whose bit length is `k` (i.e. values in
/// `[2^(k-1), 2^k)`, with bucket 0 holding zeros). Exact `count`/`sum`/
/// `min`/`max` ride along, so averages stay exact even though the buckets
/// are coarse.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<u8, u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let bucket = (u64::BITS - value.leading_zeros()) as u8;
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) under **bucket upper-bound**
    /// interpolation: the reported value is the largest value the rank-th
    /// sample *could* have had given its bucket (`2^k − 1`), clamped to the
    /// exact `[min, max]` the histogram tracks. Because it reads only the
    /// merged bucket counts and the exact min/max — all of which merge
    /// commutatively — the result is identical no matter how per-unit
    /// histograms were merged.
    ///
    /// Returns `None` when empty or when `q` is NaN; a finite `q` outside
    /// `[0, 1]` (and ±∞) is clamped to the nearest valid quantile rather
    /// than silently aliasing some in-range rank.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Largest value in bucket k: 0 for the zero bucket,
                // otherwise 2^k − 1 (saturating at the top bucket).
                let upper = match *bucket {
                    0 => 0,
                    k if k >= 64 => u64::MAX,
                    k => (1u64 << k) - 1,
                };
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Number of samples recorded in power-of-two bucket `k` (values with
    /// bit length `k`; bucket 0 holds zeros, bucket 64 holds
    /// `[2^63, u64::MAX]`).
    pub fn bucket(&self, k: u8) -> u64 {
        self.buckets.get(&k).copied().unwrap_or(0)
    }

    /// Folds another histogram in (bucket-wise addition: commutative).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (bucket, n) in &other.buckets {
            *self.buckets.entry(*bucket).or_insert(0) += n;
        }
    }

    /// Reconstructs a histogram from the object [`Histogram::render_json`]
    /// produced. Exact inverse: re-rendering the result reproduces the
    /// input bytes.
    fn from_value(value: &Value) -> Result<Histogram, String> {
        let field = |key: &str| {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing u64 {key:?} field"))
        };
        let count = field("count")?;
        let sum = field("sum")?;
        let min = field("min")?;
        let max = field("max")?;
        let Some(Value::Object(members)) = value.get("buckets") else {
            return Err("missing \"buckets\" object".to_owned());
        };
        if count == 0 {
            if !members.is_empty() {
                return Err("empty histogram with non-empty buckets".to_owned());
            }
            return Ok(Histogram::new());
        }
        let mut buckets = BTreeMap::new();
        for (label, n) in members {
            let k = bucket_index(label)
                .ok_or_else(|| format!("unrecognized bucket label {label:?}"))?;
            let n = n
                .as_u64()
                .ok_or_else(|| format!("bucket {label:?}: count is not a u64"))?;
            buckets.insert(k, n);
        }
        Ok(Histogram {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }

    fn render_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{",
            self.count,
            self.sum,
            self.min(),
            self.max()
        );
        for (i, (bucket, n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Bucket label = exclusive upper bound of the value range. The
            // top bucket has no exclusive bound above it — u64::MAX itself
            // lands there — so its label is the inclusive "<=MAX".
            if *bucket >= 64 {
                let _ = write!(out, "\"<={}\":{n}", u64::MAX);
            } else {
                let _ = write!(out, "\"<{}\":{n}", 1u64 << bucket);
            }
        }
        out.push_str("}}");
    }
}

/// Maps a rendered bucket label back to its power-of-two bucket index:
/// `"<1"` → 0, `"<2"` → 1, …, `"<=18446744073709551615"` → 64.
fn bucket_index(label: &str) -> Option<u8> {
    if label == "<=18446744073709551615" {
        return Some(64);
    }
    let bound: u64 = label.strip_prefix('<')?.parse().ok()?;
    bound
        .is_power_of_two()
        .then(|| bound.trailing_zeros() as u8)
}

/// A bag of named counters, gauges, and histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty bag.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `n` to a counter, materializing the key even at 0 so "present
    /// but zero" is distinguishable from "never instrumented".
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to the maximum of its current and `value` — the merge
    /// rule, applied locally too, so set order never matters.
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        let slot = self.gauges.entry(name.to_owned()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Reads a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// Reads a histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds a standalone histogram into the named slot — for code that
    /// accumulates a [`Histogram`] locally (hot paths) and exports late.
    pub fn merge_histogram(&mut self, name: &str, histogram: &Histogram) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .merge(histogram);
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another bag in: counters add, gauges take the maximum,
    /// histograms merge bucket-wise. Commutative, so merging per-unit bags
    /// in index order is schedule-independent.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Like [`Metrics::merge`], but with every incoming key prefixed
    /// `"{scope}."` — used for per-device sections of an experiment export.
    pub fn merge_scoped(&mut self, scope: &str, other: &Metrics) {
        for (name, n) in &other.counters {
            *self.counters.entry(format!("{scope}.{name}")).or_insert(0) += n;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(format!("{scope}.{name}")).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(format!("{scope}.{name}"))
                .or_default()
                .merge(h);
        }
    }

    /// Parses a JSON object previously rendered by [`Metrics::to_json`] —
    /// the checkpoint/resume reload path. Exact inverse for anything this
    /// module rendered: all values are integers, so `to_json` of the
    /// result reproduces the input bytes.
    pub fn parse_json(text: &str) -> Result<Metrics, String> {
        let value = json::parse(text).map_err(|e| format!("metrics: {e}"))?;
        Metrics::from_value(&value)
    }

    /// [`Metrics::parse_json`] over an already-parsed [`Value`] — for
    /// metrics objects embedded in a larger document.
    pub fn from_value(value: &Value) -> Result<Metrics, String> {
        fn members<'a>(value: &'a Value, key: &str) -> Result<&'a [(String, Value)], String> {
            match value.get(key) {
                Some(Value::Object(members)) => Ok(members),
                _ => Err(format!("missing {key:?} object")),
            }
        }
        fn uint(value: &Value, name: &str) -> Result<u64, String> {
            value
                .as_u64()
                .ok_or_else(|| format!("{name:?}: value is not a u64"))
        }
        let mut metrics = Metrics::new();
        for (name, v) in members(value, "counters")? {
            metrics.counters.insert(name.clone(), uint(v, name)?);
        }
        for (name, v) in members(value, "gauges")? {
            metrics.gauges.insert(name.clone(), uint(v, name)?);
        }
        for (name, v) in members(value, "histograms")? {
            let histogram =
                Histogram::from_value(v).map_err(|e| format!("histogram {name:?}: {e}"))?;
            metrics.histograms.insert(name.clone(), histogram);
        }
        Ok(metrics)
    }

    /// Renders the bag as a deterministic JSON document:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}` with keys in
    /// lexicographic order and a trailing newline (a standalone metrics
    /// artifact is one line; line-oriented tools want it terminated).
    /// [`Metrics::parse_json`] accepts the document with or without the
    /// terminator.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.render_json(&mut out);
        out.push('\n');
        out
    }

    fn render_json(&self, out: &mut String) {
        out.push_str("{\"counters\":{");
        for (i, (name, n)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(name), n);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(name), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape(name));
            h.render_json(out);
        }
        out.push_str("}}");
    }
}

/// Builds a complete `metrics.json` document: a meta header (experiment
/// name, seed, worker count, …) followed by the metrics body. All values
/// arrive pre-rendered so callers control number formatting; strings are
/// escaped here.
pub fn export_json(meta: &[(&str, MetaValue)], metrics: &Metrics) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\n");
    for (key, value) in meta {
        let _ = write!(out, "  \"{}\": ", escape(key));
        match value {
            MetaValue::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            MetaValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            MetaValue::Raw(raw) => out.push_str(raw),
        }
        out.push_str(",\n");
    }
    out.push_str("  \"metrics\": ");
    metrics.render_json(&mut out);
    out.push_str("\n}\n");
    out
}

/// One meta-header value for [`export_json`].
#[derive(Clone, Debug)]
pub enum MetaValue {
    /// A JSON string (escaped on render).
    Str(String),
    /// An integer.
    Int(u64),
    /// Pre-rendered JSON (arrays, objects) spliced in verbatim.
    Raw(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_render_ordered() {
        let mut m = Metrics::new();
        m.inc("zeta");
        m.add("alpha", 3);
        m.inc("zeta");
        assert_eq!(m.counter("zeta"), 2);
        assert_eq!(m.counter("alpha"), 3);
        assert_eq!(m.counter("missing"), 0);
        let json = m.to_json();
        let alpha = json.find("alpha").expect("alpha present");
        let zeta = json.find("zeta").expect("zeta present");
        assert!(alpha < zeta, "keys must render sorted: {json}");
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Metrics::new();
        a.add("x", 2);
        a.gauge_max("g", 7);
        a.observe("h", 100);
        let mut b = Metrics::new();
        b.add("x", 5);
        b.add("y", 1);
        b.gauge_max("g", 3);
        b.observe("h", 3000);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 7);
        assert_eq!(ab.gauge("g"), 7);
        assert_eq!(ab.histogram("h").map(|h| h.count()), Some(2));
        assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn scoped_merge_prefixes_keys() {
        let mut unit = Metrics::new();
        unit.add("races", 4);
        let mut top = Metrics::new();
        top.merge_scoped("device.Galaxy S8", &unit);
        assert_eq!(top.counter("device.Galaxy S8.races"), 4);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 900, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1930);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        let mut json = String::new();
        h.render_json(&mut json);
        // 0 → bucket "<1"; 1 → "<2"; 2,3 → "<4"; 900 → "<1024"; 1024 → "<2048".
        assert!(json.contains("\"<1\":1"), "{json}");
        assert!(json.contains("\"<4\":2"), "{json}");
        assert!(json.contains("\"<1024\":1"), "{json}");
        assert!(json.contains("\"<2048\":1"), "{json}");
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), None, "empty histogram has no quantile");
        }
    }

    #[test]
    fn quantile_single_sample_is_exact() {
        let mut h = Histogram::new();
        h.observe(900);
        // Bucket upper bound would be 1023, but min/max clamping makes a
        // single sample exact at every q.
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), Some(900));
        }
        let mut zero = Histogram::new();
        zero.observe(0);
        assert_eq!(zero.quantile(0.5), Some(0));
    }

    #[test]
    fn bucketing_at_pow2_boundaries() {
        let mut h = Histogram::new();
        // Zero gets its own bucket, distinct from 1.
        h.observe(0);
        assert_eq!(h.bucket(0), 1);
        // An exact power of two 2^k starts bucket k+1 (range [2^k, 2^(k+1))),
        // while 2^k − 1 tops off bucket k.
        h.observe(1);
        h.observe(2);
        h.observe(1023);
        h.observe(1024);
        assert_eq!(h.bucket(1), 1, "1 is in [1,2)");
        assert_eq!(h.bucket(2), 1, "2 is in [2,4)");
        assert_eq!(h.bucket(10), 1, "1023 is in [512,1024)");
        assert_eq!(h.bucket(11), 1, "1024 is in [1024,2048)");
        // u64::MAX must land in the top bucket, not overflow past it.
        h.observe(u64::MAX);
        h.observe(1u64 << 63);
        assert_eq!(h.bucket(64), 2, "[2^63, u64::MAX] is bucket 64");
        assert_eq!(h.max(), u64::MAX);
        let mut json = String::new();
        h.render_json(&mut json);
        // The top bucket's bound is inclusive — u64::MAX itself is inside —
        // so its label must say so.
        assert!(json.contains("\"<=18446744073709551615\":2"), "{json}");
        assert!(!json.contains("\"<18446744073709551615\""), "{json}");
    }

    #[test]
    fn quantile_is_merge_order_independent() {
        let samples = [3u64, 7, 100, 250, 251, 4000, 65536, 1, 2, 12];
        let mut whole = Histogram::new();
        for v in samples {
            whole.observe(v);
        }
        // Split the samples across three shards and merge in two different
        // orders; every quantile must agree with the all-at-once histogram.
        let mut shards = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, v) in samples.iter().enumerate() {
            shards[i % 3].observe(*v);
        }
        let mut forward = Histogram::new();
        for s in &shards {
            forward.merge(s);
        }
        let mut backward = Histogram::new();
        for s in shards.iter().rev() {
            backward.merge(s);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 1.0] {
            assert_eq!(whole.quantile(q), forward.quantile(q), "q={q}");
            assert_eq!(forward.quantile(q), backward.quantile(q), "q={q}");
        }
        // Sanity on the semantics: p50 of ten samples is the 5th-ranked
        // sample's bucket upper bound (rank 5 = 12 → bucket <16 → 15).
        assert_eq!(whole.quantile(0.5), Some(15));
        // p100 is clamped to the exact max.
        assert_eq!(whole.quantile(1.0), Some(65536));
        // p0 clamps to the exact min.
        assert_eq!(whole.quantile(0.0), Some(1));
    }

    #[test]
    fn quantile_rejects_nan_and_clamps_out_of_range() {
        let mut h = Histogram::new();
        for v in [15u64, 20, 3000] {
            h.observe(v);
        }
        // NaN used to as-cast to rank 0 → clamp to 1 → silently report a
        // low quantile; it must be None.
        assert_eq!(h.quantile(f64::NAN), None);
        // Out-of-range q (including ±∞) clamps to the nearest valid rank.
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(1.5), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NEG_INFINITY), h.quantile(0.0));
        assert_eq!(h.quantile(f64::INFINITY), h.quantile(1.0));
        assert_eq!(h.quantile(0.0), Some(15));
        assert_eq!(h.quantile(1.0), Some(3000));
    }

    #[test]
    fn parse_json_round_trips_rendered_bags() {
        let mut m = Metrics::new();
        m.add("campaign.trials", 1_000_000);
        m.add("zero_counter", 0);
        m.gauge_max("peak", 17);
        for v in [0u64, 1, 3, 900, 1024, u64::MAX, 1u64 << 63] {
            m.observe("latency_us", v);
        }
        m.observe("single", 42);
        let json = m.to_json();
        let parsed = Metrics::parse_json(&json).expect("own rendering parses");
        assert_eq!(parsed, m);
        assert_eq!(parsed.to_json(), json, "byte-exact round trip");
        // Empty bags round-trip too.
        let empty = Metrics::new();
        assert_eq!(
            Metrics::parse_json(&empty.to_json()).expect("empty parses"),
            empty
        );
    }

    #[test]
    fn parse_json_preserves_histogram_semantics() {
        let mut m = Metrics::new();
        for v in [3u64, 7, 100, 250, 4000] {
            m.observe("h", v);
        }
        let parsed = Metrics::parse_json(&m.to_json()).expect("parses");
        let (original, reloaded) = (
            m.histogram("h").expect("present"),
            parsed.histogram("h").expect("present"),
        );
        assert_eq!(reloaded.count(), original.count());
        assert_eq!(reloaded.sum(), original.sum());
        assert_eq!(reloaded.min(), original.min());
        assert_eq!(reloaded.max(), original.max());
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(reloaded.quantile(q), original.quantile(q), "q={q}");
        }
        // A reloaded bag keeps merging exactly like the original — the
        // property checkpoint/resume rests on.
        let mut more = Metrics::new();
        more.observe("h", 9999);
        let mut a = m.clone();
        a.merge(&more);
        let mut b = parsed.clone();
        b.merge(&more);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn parse_json_rejects_malformed_documents() {
        assert!(Metrics::parse_json("not json").is_err());
        assert!(Metrics::parse_json("{}").is_err(), "missing sections");
        assert!(
            Metrics::parse_json(r#"{"counters":{"n":-1},"gauges":{},"histograms":{}}"#).is_err(),
            "negative counter"
        );
        assert!(
            Metrics::parse_json(
                r#"{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":5,"min":5,"max":5,"buckets":{"<3":1}}}}"#
            )
            .is_err(),
            "non-power-of-two bucket label"
        );
        assert!(
            Metrics::parse_json(
                r#"{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":5,"min":5,"buckets":{}}}}"#
            )
            .is_err(),
            "missing max field"
        );
    }

    #[test]
    fn export_json_shape() {
        let mut m = Metrics::new();
        m.inc("n");
        let doc = export_json(
            &[
                ("experiment", MetaValue::Str("table2".to_owned())),
                ("seed", MetaValue::Int(2022)),
                ("units", MetaValue::Raw("[1,2]".to_owned())),
            ],
            &m,
        );
        assert!(doc.starts_with("{\n  \"experiment\": \"table2\",\n"));
        assert!(doc.contains("\"seed\": 2022"));
        assert!(doc.contains("\"units\": [1,2]"));
        assert!(doc.contains("\"metrics\": {\"counters\":{\"n\":1}"));
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn empty_metrics_render() {
        let m = Metrics::new();
        assert!(m.is_empty());
        assert_eq!(
            m.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n"
        );
    }

    #[test]
    fn parse_json_accepts_with_and_without_terminator() {
        // Pre-newline artifacts (v1 documents committed before the
        // terminator fix) must keep loading.
        let mut m = Metrics::new();
        m.inc("n");
        let terminated = m.to_json();
        assert!(terminated.ends_with("}\n"), "{terminated:?}");
        let bare = terminated.trim_end();
        assert_eq!(
            Metrics::parse_json(bare).expect("unterminated v1 doc parses"),
            Metrics::parse_json(&terminated).expect("terminated doc parses"),
        );
    }
}
