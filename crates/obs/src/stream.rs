//! Single-pass streaming trace analysis: the constant-memory core the
//! batch [`crate::analyze`] tier is a thin wrapper over.
//!
//! [`StreamAnalyzer`] consumes a trace one line (or one typed
//! [`TraceEvent`]) at a time and keeps state **per in-flight trial only**:
//! a segment's span table, its LMP send/recv ledgers, link drops and
//! keystore mutations. The moment a segment boundary arrives — a
//! `unit_start` marker, or a root `trial` span opening while a trial is
//! already open — the finished segment is *retired*: its invariant checks
//! run, its spans fold into the phase profile, and every byte of its
//! buffered state is dropped. Memory is therefore bounded by the largest
//! single trial, never by the artifact length, which is what lets
//! `blap-trace check` walk a campaign-scale trace and lets invariant
//! checking run *inside* `blap::campaign` while trials execute.
//!
//! The analysis is deliberately deferred to retirement rather than run
//! eagerly per line: the batch analyzer's checks are whole-segment
//! (an `lmp_recv` may match a send that appears later in line order, and
//! `keystore-after-auth` consults the segment's full span table), so
//! retiring a segment and then checking it reproduces the batch reports
//! byte for byte. One intentional divergence from the historical batch
//! code: unmatched `lmp_send` violations are emitted in artifact line
//! order (the old code iterated a `HashMap`, so their relative order was
//! nondeterministic across runs).
//!
//! Two ingestion paths feed the same state machine and are pinned
//! equivalent in tests:
//!
//! * [`StreamAnalyzer::push_line`] — parses one JSONL artifact line.
//! * [`StreamAnalyzer::push_event`] — consumes a typed [`TraceEvent`]
//!   directly (no render/parse round trip), the campaign hot path. The
//!   [`StreamSink`] adapter attaches it to a [`crate::trace::Tracer`].
//!
//! [`ViolationSummary`] is the bounded-memory aggregate the campaign
//! engine merges in shard order: per-invariant counts plus a capped list
//! of example violations, with a deterministic JSON form for checkpoints.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::analyze::{
    AnalyzeError, PhaseProfile, TraceAnalysis, TraceLine, Violation, LMP_LATENCY_US,
};
use crate::json::{escape, Value};
use crate::trace::{TraceEvent, TraceSink};

/// A reconstructed span within the in-flight segment.
#[derive(Clone, Debug)]
struct SpanRec {
    name: String,
    dev: Option<u32>,
    open_t: u64,
    open_line: usize,
    /// The `detail` qualifier from the open line (`None` when absent).
    detail: Option<String>,
    close: Option<(u64, String)>,
    close_line: Option<usize>,
}

/// One keystore mutation, condensed to what the checks consume.
#[derive(Clone, Debug)]
struct KeystoreRec {
    action: String,
    dev: Option<u32>,
    t: u64,
    line_no: usize,
}

/// Buffered state for the one in-flight segment — everything the
/// whole-segment checks need, and nothing else (scheduler dispatch and
/// HCI seam lines, the bulk of a trace, contribute only to `last_t`).
#[derive(Debug, Default)]
struct SegState {
    /// Whether any line landed in this segment yet.
    non_empty: bool,
    spans: BTreeMap<u64, SpanRec>,
    /// Pending `lmp_send` multiset: `(pdu, t)` → artifact lines.
    sends: HashMap<(String, u64), Vec<usize>>,
    /// `lmp_recv` ledger in artifact order: `(pdu, t, line_no)`.
    recvs: Vec<(String, u64, usize)>,
    /// `link_drop` timestamps.
    drops: Vec<u64>,
    /// Whether any page race in this segment went to the attacker — the
    /// second win path `blocking-implies-win` accepts (a user whose
    /// pairing delay undercuts the attacker's PLOC page can still lose
    /// the page race itself).
    race_won: bool,
    /// `page_connect` ledger: `(responder device, link-registration
    /// time)`. The registration time is the event's `t` plus its page
    /// latency — `page_connect` is stamped when the page *resolves*, but
    /// the link only exists once delivery lands.
    page_connects: Vec<(u64, u64)>,
    /// Keystore mutations in artifact order.
    keystores: Vec<KeystoreRec>,
    /// Max timestamp over every line in the segment (the world deadline).
    last_t: u64,
}

/// The per-line fields the state machine consumes, extracted once from
/// either a parsed JSONL line or a typed event.
struct LineView<'a> {
    line_no: usize,
    t: u64,
    dev: Option<u32>,
    kind: LineKind<'a>,
}

enum LineKind<'a> {
    UnitStart,
    SpanOpen {
        id: Option<u64>,
        parent_absent: bool,
        name: Option<&'a str>,
        detail: Option<&'a str>,
    },
    SpanClose {
        id: Option<u64>,
        status: &'a str,
    },
    LmpSend {
        pdu: Option<&'a str>,
    },
    LmpRecv {
        pdu: Option<&'a str>,
    },
    LinkDrop,
    Race {
        attacker_won: bool,
    },
    PageConnect {
        responder: Option<u64>,
        latency_us: Option<u64>,
    },
    Keystore {
        action: &'a str,
    },
    Other,
}

impl LineView<'_> {
    /// Whether this line is a root `trial` span open — the segment
    /// boundary rule shared with the batch analyzer: name must be
    /// `"trial"` and the `parent` key absent (the span id itself is not
    /// required, matching the historical segmentation).
    fn is_root_trial(&self) -> bool {
        matches!(
            self.kind,
            LineKind::SpanOpen {
                parent_absent: true,
                name: Some("trial"),
                ..
            }
        )
    }
}

/// Single-pass streaming trace analyzer with constant memory per
/// in-flight trial. See the [module docs](self) for the memory model and
/// retirement rule.
#[derive(Debug, Default)]
pub struct StreamAnalyzer {
    /// 1-based number of raw lines seen (blank lines included), so
    /// [`AnalyzeError`]/[`Violation`] line numbers match the artifact.
    next_line_no: usize,
    /// Parsed (non-blank) lines consumed.
    line_count: usize,
    /// Segments already retired.
    segment_count: usize,
    /// Whether a root trial span opened in the current segment.
    trial_open_in_current: bool,
    seg: SegState,
    profile: PhaseProfile,
    violations: Vec<Violation>,
    notes: Vec<String>,
}

impl StreamAnalyzer {
    /// A fresh analyzer with no state.
    pub fn new() -> StreamAnalyzer {
        StreamAnalyzer::default()
    }

    /// Parsed (non-blank) lines consumed so far.
    pub fn lines_seen(&self) -> usize {
        self.line_count
    }

    /// Consumes one raw artifact line (blank lines are counted and
    /// skipped, exactly like the batch parser). Returns the parse error
    /// for a malformed line; analyzer state is unchanged by a failed push
    /// except for the line counter, so a caller may report and stop.
    pub fn push_line(&mut self, raw: &str) -> Result<(), AnalyzeError> {
        self.next_line_no += 1;
        if raw.trim().is_empty() {
            return Ok(());
        }
        let line = crate::analyze::parse_line(self.next_line_no, raw)?;
        self.line_count += 1;
        self.ingest(&view_of_line(&line));
        Ok(())
    }

    /// Consumes one typed event directly — the render/parse-free path the
    /// campaign engine uses. Equivalent to rendering the event as JSONL
    /// and calling [`StreamAnalyzer::push_line`] (pinned in tests), but
    /// it cannot fail: typed events are well-formed by construction.
    pub fn push_event(&mut self, device: Option<u32>, event: &TraceEvent) {
        self.next_line_no += 1;
        self.line_count += 1;
        let line_no = self.next_line_no;
        let t = event.time().as_micros();
        let kind = match event {
            TraceEvent::UnitStart { .. } => LineKind::UnitStart,
            TraceEvent::SpanOpen {
                span,
                parent,
                name,
                detail,
                ..
            } => LineKind::SpanOpen {
                id: Some(span.raw()),
                parent_absent: parent.is_none(),
                name: Some(name),
                detail: (!detail.is_empty()).then_some(detail.as_str()),
            },
            TraceEvent::SpanClose { span, status, .. } => LineKind::SpanClose {
                id: Some(span.raw()),
                status,
            },
            TraceEvent::LmpSend { pdu, .. } => LineKind::LmpSend { pdu: Some(pdu) },
            TraceEvent::LmpRecv { pdu, .. } => LineKind::LmpRecv { pdu: Some(pdu) },
            TraceEvent::LinkDropped { .. } => LineKind::LinkDrop,
            TraceEvent::RaceOutcome { attacker_won, .. } => LineKind::Race {
                attacker_won: *attacker_won,
            },
            TraceEvent::PageConnected {
                responder,
                latency_us,
                ..
            } => LineKind::PageConnect {
                responder: Some(u64::from(*responder)),
                latency_us: Some(*latency_us),
            },
            TraceEvent::KeystoreMutation { action, .. } => LineKind::Keystore { action },
            _ => LineKind::Other,
        };
        self.ingest(&LineView {
            line_no,
            t,
            dev: device,
            kind,
        });
    }

    /// Retires the final segment and returns the completed analysis.
    pub fn finish(mut self) -> TraceAnalysis {
        self.retire();
        TraceAnalysis {
            line_count: self.line_count,
            segment_count: self.segment_count,
            profile: self.profile,
            violations: self.violations,
            notes: self.notes,
        }
    }

    fn ingest(&mut self, line: &LineView<'_>) {
        let is_unit = matches!(line.kind, LineKind::UnitStart);
        let is_root_trial = line.is_root_trial();
        if is_unit || (is_root_trial && self.trial_open_in_current) {
            self.retire();
            self.trial_open_in_current = is_root_trial;
        } else if is_root_trial {
            self.trial_open_in_current = true;
        }
        self.absorb(line);
    }

    /// Folds one line into the in-flight segment's condensed state.
    fn absorb(&mut self, line: &LineView<'_>) {
        let seg = &mut self.seg;
        seg.non_empty = true;
        seg.last_t = seg.last_t.max(line.t);
        match &line.kind {
            LineKind::SpanOpen {
                id: Some(id),
                name: Some(name),
                detail,
                ..
            } => {
                if seg.spans.contains_key(id) {
                    self.violations.push(Violation {
                        invariant: "span-structure",
                        segment: self.segment_count,
                        line: Some(line.line_no),
                        message: format!("span {id} opened twice"),
                    });
                } else {
                    seg.spans.insert(
                        *id,
                        SpanRec {
                            name: (*name).to_owned(),
                            dev: line.dev,
                            open_t: line.t,
                            open_line: line.line_no,
                            detail: detail.map(str::to_owned),
                            close: None,
                            close_line: None,
                        },
                    );
                }
            }
            LineKind::SpanClose {
                id: Some(id),
                status,
            } => match seg.spans.get_mut(id) {
                None => self.violations.push(Violation {
                    invariant: "span-structure",
                    segment: self.segment_count,
                    line: Some(line.line_no),
                    message: format!("span {id} closed but never opened in this segment"),
                }),
                Some(span) if span.close.is_some() => self.violations.push(Violation {
                    invariant: "span-structure",
                    segment: self.segment_count,
                    line: Some(line.line_no),
                    message: format!("span {id} closed twice"),
                }),
                Some(span) => {
                    span.close = Some((line.t, (*status).to_owned()));
                    span.close_line = Some(line.line_no);
                }
            },
            LineKind::LmpSend { pdu: Some(pdu) } if *pdu != "LMP_detach" => {
                seg.sends
                    .entry(((*pdu).to_owned(), line.t))
                    .or_default()
                    .push(line.line_no);
            }
            LineKind::LmpRecv { pdu: Some(pdu) } if *pdu != "LMP_detach" => {
                seg.recvs.push(((*pdu).to_owned(), line.t, line.line_no));
            }
            LineKind::LinkDrop => seg.drops.push(line.t),
            LineKind::Race { attacker_won } => seg.race_won |= attacker_won,
            LineKind::PageConnect {
                responder: Some(responder),
                latency_us: Some(latency_us),
            } => seg
                .page_connects
                .push((*responder, line.t.saturating_add(*latency_us))),
            LineKind::PageConnect { .. } => {}
            LineKind::Keystore { action } => seg.keystores.push(KeystoreRec {
                action: (*action).to_owned(),
                dev: line.dev,
                t: line.t,
                line_no: line.line_no,
            }),
            _ => {}
        }
    }

    /// Retires the in-flight segment: folds its spans into the profile
    /// and runs the whole-segment invariant checks, in the same order the
    /// batch analyzer did, then drops all buffered state.
    fn retire(&mut self) {
        if !self.seg.non_empty {
            return;
        }
        let mut seg = std::mem::take(&mut self.seg);
        let seg_idx = self.segment_count;
        self.segment_count += 1;

        for span in seg.spans.values() {
            let stats = self.profile.stats_mut(&span.name);
            match &span.close {
                Some((close_t, _)) => stats.durations.observe(close_t.saturating_sub(span.open_t)),
                None => stats.unclosed += 1,
            }
        }
        let unclosed = seg.spans.values().filter(|s| s.close.is_none()).count();
        if unclosed > 0 {
            self.notes.push(format!(
                "segment {seg_idx}: {unclosed} span(s) still open at segment end (world deadline)"
            ));
        }
        check_lmp_matching(seg_idx, &mut seg, &mut self.violations);
        check_ploc_no_pairing(seg_idx, &seg.spans, &mut self.violations);
        check_keystore_after_auth(seg_idx, &seg, &mut self.violations);
        check_blocking_implies_win(seg_idx, &seg, &mut self.violations);
    }
}

fn view_of_line<'a>(line: &'a TraceLine) -> LineView<'a> {
    let str_field = |key: &str| line.value.get(key).and_then(Value::as_str);
    let u64_field = |key: &str| line.value.get(key).and_then(Value::as_u64);
    let kind = match line.ev.as_str() {
        "unit_start" => LineKind::UnitStart,
        "span_open" => LineKind::SpanOpen {
            id: u64_field("span"),
            parent_absent: line.value.get("parent").is_none(),
            name: str_field("name"),
            detail: str_field("detail"),
        },
        "span_close" => LineKind::SpanClose {
            id: u64_field("span"),
            status: str_field("status").unwrap_or(""),
        },
        "lmp_send" => LineKind::LmpSend {
            pdu: str_field("pdu"),
        },
        "lmp_recv" => LineKind::LmpRecv {
            pdu: str_field("pdu"),
        },
        "link_drop" => LineKind::LinkDrop,
        "race" => LineKind::Race {
            attacker_won: line.value.get("attacker_won").and_then(Value::as_bool) == Some(true),
        },
        "page_connect" => LineKind::PageConnect {
            responder: line.value.get("responder").and_then(Value::as_u64),
            latency_us: line.value.get("latency_us").and_then(Value::as_u64),
        },
        "keystore" => LineKind::Keystore {
            action: str_field("action").unwrap_or(""),
        },
        _ => LineKind::Other,
    };
    LineView {
        line_no: line.line_no,
        t: line.t,
        dev: line.dev,
        kind,
    }
}

fn check_lmp_matching(seg_idx: usize, seg: &mut SegState, violations: &mut Vec<Violation>) {
    // Multiset matching: sends at (pdu, t) pair with recvs at
    // (pdu, t + LMP_LATENCY_US); LMP_detach was already filtered at
    // ingest (supervision timeouts inject it on both ends).
    for (pdu, t, line_no) in &seg.recvs {
        let matched = t
            .checked_sub(LMP_LATENCY_US)
            .and_then(|sent_t| seg.sends.get_mut(&(pdu.clone(), sent_t)))
            .and_then(Vec::pop)
            .is_some();
        if !matched {
            violations.push(Violation {
                invariant: "lmp-matching",
                segment: seg_idx,
                line: Some(*line_no),
                message: format!(
                    "lmp_recv of {pdu} at t={t} has no matching lmp_send at t={}",
                    t.saturating_sub(LMP_LATENCY_US)
                ),
            });
        }
    }
    // Unmatched sends, in artifact line order (each line number is
    // unique, so the sort is total and deterministic).
    let mut unmatched: Vec<(usize, &str, u64)> = Vec::new();
    for ((pdu, sent_t), line_nos) in &seg.sends {
        for line_no in line_nos {
            unmatched.push((*line_no, pdu, *sent_t));
        }
    }
    unmatched.sort_unstable();
    for (line_no, pdu, sent_t) in unmatched {
        let in_flight_at_deadline = sent_t + LMP_LATENCY_US > seg.last_t;
        let link_died = seg.drops.iter().any(|&drop_t| drop_t >= sent_t);
        if !in_flight_at_deadline && !link_died {
            violations.push(Violation {
                invariant: "lmp-matching",
                segment: seg_idx,
                line: Some(line_no),
                message: format!(
                    "lmp_send of {pdu} at t={sent_t} was never received, \
                     yet no link died and the world outlived the delivery"
                ),
            });
        }
    }
}

fn check_ploc_no_pairing(
    seg_idx: usize,
    spans: &BTreeMap<u64, SpanRec>,
    violations: &mut Vec<Violation>,
) {
    for span in spans.values() {
        if span.name != "host_pairing" {
            continue;
        }
        // A PLOC hold is "active" at the pairing span's open if it opened
        // earlier and had not closed yet — line order is event order within
        // a trial's single-threaded tracer.
        let held_during = spans.values().any(|p| {
            p.name == "ploc"
                && p.dev == span.dev
                && p.open_line < span.open_line
                && p.close_line.is_none_or(|cl| cl > span.open_line)
        });
        if held_during {
            violations.push(Violation {
                invariant: "ploc-no-pairing",
                segment: seg_idx,
                line: Some(span.open_line),
                message: format!(
                    "device {:?} holds a PLOC link but opened a host_pairing span",
                    span.dev
                ),
            });
        }
    }
}

fn check_keystore_after_auth(seg_idx: usize, seg: &SegState, violations: &mut Vec<Violation>) {
    for ks in &seg.keystores {
        if ks.action != "store" && ks.action != "remove" {
            continue; // "install" is the Fig. 10 attack: exempt by design.
        }
        let authed = seg
            .spans
            .values()
            .any(|s| s.name == "lmp_auth" && s.dev == ks.dev && s.open_t <= ks.t);
        if !authed {
            violations.push(Violation {
                invariant: "keystore-after-auth",
                segment: seg_idx,
                line: Some(ks.line_no),
                message: format!(
                    "keystore {} on device {:?} at t={} without a preceding lmp_auth span",
                    ks.action, ks.dev, ks.t
                ),
            });
        }
    }
}

fn check_blocking_implies_win(seg_idx: usize, seg: &SegState, violations: &mut Vec<Violation>) {
    let spans = &seg.spans;
    let Some(trial) = spans
        .values()
        .find(|s| s.name == "trial")
        .filter(|s| s.detail.as_deref() == Some("blocking"))
    else {
        return;
    };
    let trial_status = trial.close.as_ref().map(|(_, s)| s.as_str());
    // The attacker's PLOC link, and the victim pairing spans it overlaps.
    let plocs: Vec<&SpanRec> = spans.values().filter(|s| s.name == "ploc").collect();
    let blocked_pairing = |ploc: &SpanRec| {
        spans.values().any(|s| {
            s.name == "host_pairing"
                && s.dev != ploc.dev
                && s.open_t > ploc.open_t
                && ploc.close.as_ref().is_none_or(|(t, _)| *t >= s.open_t)
        })
    };
    let attacker_stole_key = |ploc: &SpanRec| {
        seg.keystores
            .iter()
            .any(|ks| ks.action == "store" && ks.dev == ploc.dev)
    };
    for ploc in &plocs {
        if blocked_pairing(ploc) && attacker_stole_key(ploc) && trial_status != Some("attacker_won")
        {
            violations.push(Violation {
                invariant: "blocking-implies-win",
                segment: seg_idx,
                line: Some(ploc.open_line),
                message: format!(
                    "PLOC link predates the victim's pairing and the attacker captured a \
                     link key, but the trial closed {trial_status:?} instead of attacker_won"
                ),
            });
        }
    }
    // The converse: an attacker_won verdict needs a mechanism — one of
    //  (a) a PLOC link blocking the victim's pairing (the classic attack);
    //  (b) an outright page-race win (a pairing delay shorter than the
    //      attacker's PLOC page leaves no PLOC to block with, yet the
    //      race can still go to the attacker);
    //  (c) a "late PLOC": a page that connects *onto* the victim device
    //      after its honest pairing already finished. The spoofed
    //      address routes the attacker's Connection_Complete to the real
    //      peer, so no `ploc` span ever opens — but the raw link is
    //      registered and, with no drop after its registration time,
    //      still stands at judgment.
    let victim = spans
        .values()
        .find(|s| s.name == "host_pairing")
        .and_then(|s| s.dev)
        .map(u64::from);
    let trial_close_t = trial.close.as_ref().map(|(t, _)| *t).unwrap_or(u64::MAX);
    let late_link_stands = seg.page_connects.iter().any(|&(responder, connect_t)| {
        Some(responder) == victim
            && connect_t <= trial_close_t
            && seg.drops.iter().all(|&drop_t| drop_t < connect_t)
    });
    if trial_status == Some("attacker_won")
        && !seg.race_won
        && !late_link_stands
        && !plocs.iter().any(|p| blocked_pairing(p))
    {
        violations.push(Violation {
            invariant: "blocking-implies-win",
            segment: seg_idx,
            line: Some(trial.open_line),
            message: "trial closed attacker_won but no PLOC link predates the victim's pairing, \
                      the attacker won no page race, and no surviving link onto the victim was \
                      established"
                .to_owned(),
        });
    }
}

/// A [`TraceSink`] adapter that feeds a [`StreamAnalyzer`] typed events
/// as they are emitted. Clone it before attaching to keep a handle for
/// [`StreamSink::finish`].
#[derive(Clone, Default)]
pub struct StreamSink {
    inner: Arc<Mutex<StreamAnalyzer>>,
}

impl StreamSink {
    /// A sink over a fresh analyzer.
    pub fn new() -> StreamSink {
        StreamSink::default()
    }

    /// Retires the final segment and returns the analysis, resetting the
    /// shared analyzer to a fresh one.
    pub fn finish(&self) -> TraceAnalysis {
        std::mem::take(&mut *self.inner.lock().expect("stream sink lock")).finish()
    }
}

impl TraceSink for StreamSink {
    fn record(&mut self, device: Option<u32>, event: &TraceEvent) {
        self.inner
            .lock()
            .expect("stream sink lock")
            .push_event(device, event);
    }
}

/// How many example violations a [`ViolationSummary`] retains. The cap
/// keeps campaign memory bounded; truncation keeps the earliest examples
/// (shard-merge order), so summaries are split-invariant.
pub const MAX_SUMMARY_EXAMPLES: usize = 16;

/// Bounded-memory aggregate of per-trial invariant checks — the
/// campaign-engine counterpart of a [`crate::metrics::Metrics`] bag:
/// per-shard summaries merge in shard-index order, so the result is
/// byte-identical at any worker count and across checkpoint/resume
/// splits.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViolationSummary {
    /// Trials whose traces were checked.
    pub trials_checked: u64,
    /// Total violations across all checked trials.
    pub violations: u64,
    /// Violation counts keyed by invariant name.
    pub by_invariant: BTreeMap<String, u64>,
    /// Up to [`MAX_SUMMARY_EXAMPLES`] example violations, earliest first.
    pub examples: Vec<String>,
}

impl ViolationSummary {
    /// An empty summary.
    pub fn new() -> ViolationSummary {
        ViolationSummary::default()
    }

    /// Whether every checked trial passed every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }

    /// Folds one checked trial in. `label` identifies the trial in
    /// example lines (e.g. `"trial 1234"`).
    pub fn record(&mut self, label: &str, analysis: &TraceAnalysis) {
        self.trials_checked += 1;
        for v in &analysis.violations {
            self.violations += 1;
            *self.by_invariant.entry(v.invariant.to_owned()).or_insert(0) += 1;
            if self.examples.len() < MAX_SUMMARY_EXAMPLES {
                self.examples.push(format!("{label}: {v}"));
            }
        }
    }

    /// Merges another summary in (commutative on the counts; the example
    /// list keeps the first [`MAX_SUMMARY_EXAMPLES`] in merge order, so
    /// merge summaries in shard-index order for determinism).
    pub fn merge(&mut self, other: &ViolationSummary) {
        self.trials_checked += other.trials_checked;
        self.violations += other.violations;
        for (inv, n) in &other.by_invariant {
            *self.by_invariant.entry(inv.clone()).or_insert(0) += n;
        }
        for example in &other.examples {
            if self.examples.len() >= MAX_SUMMARY_EXAMPLES {
                break;
            }
            self.examples.push(example.clone());
        }
    }

    /// Renders the deterministic human-readable report section.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return format!(
                "invariants: clean — 0 violations across {} checked trial(s)\n",
                self.trials_checked
            );
        }
        let mut out = format!(
            "invariants: {} violation(s) across {} checked trial(s)\n",
            self.violations, self.trials_checked
        );
        for (inv, n) in &self.by_invariant {
            let _ = writeln!(out, "  {inv}: {n}");
        }
        for example in &self.examples {
            let _ = writeln!(out, "  example {example}");
        }
        if self.violations > self.examples.len() as u64 {
            let _ = writeln!(
                out,
                "  ... {} more violation(s) not shown",
                self.violations - self.examples.len() as u64
            );
        }
        out
    }

    /// Renders the summary as a deterministic JSON object (fixed key
    /// order, sorted invariant names) for checkpoint embedding.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"trials_checked\":{},\"violations\":{},\"by_invariant\":{{",
            self.trials_checked, self.violations
        );
        for (i, (inv, n)) in self.by_invariant.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{n}", escape(inv));
        }
        out.push_str("},\"examples\":[");
        for (i, example) in self.examples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", escape(example));
        }
        out.push_str("]}");
        out
    }

    /// Reconstructs a summary from the object [`ViolationSummary::to_json`]
    /// produced — the checkpoint/resume reload path. Exact inverse:
    /// re-rendering the result reproduces the input bytes.
    pub fn from_value(value: &Value) -> Result<ViolationSummary, String> {
        let uint = |key: &str| {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing u64 {key:?} field"))
        };
        let mut summary = ViolationSummary {
            trials_checked: uint("trials_checked")?,
            violations: uint("violations")?,
            ..ViolationSummary::default()
        };
        let Some(Value::Object(members)) = value.get("by_invariant") else {
            return Err("missing \"by_invariant\" object".to_owned());
        };
        for (inv, n) in members {
            let n = n
                .as_u64()
                .ok_or_else(|| format!("invariant {inv:?}: count is not a u64"))?;
            summary.by_invariant.insert(inv.clone(), n);
        }
        let Some(Value::Array(items)) = value.get("examples") else {
            return Err("missing \"examples\" array".to_owned());
        };
        for item in items {
            let s = item
                .as_str()
                .ok_or_else(|| "example is not a string".to_owned())?;
            summary.examples.push(s.to_owned());
        }
        if summary.examples.len() > MAX_SUMMARY_EXAMPLES {
            return Err(format!(
                "{} examples exceed the cap of {MAX_SUMMARY_EXAMPLES}",
                summary.examples.len()
            ));
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_trace;
    use crate::trace::Tracer;
    use blap_types::Instant;

    fn addr() -> blap_types::BdAddr {
        "cc:cc:cc:cc:cc:cc".parse().expect("valid address")
    }

    /// Emits a representative multi-trial event stream through a tracer
    /// wired to both a JSONL buffer and a stream sink.
    fn emit_sample(tracer: &Tracer) {
        for unit in 0..3u64 {
            tracer.emit(TraceEvent::UnitStart {
                unit,
                label: "trial_pair",
            });
            let trial = tracer.open_root_span(Instant::EPOCH, "trial", "blocking");
            let scoped = tracer.scoped(2);
            scoped.emit(TraceEvent::LmpSend {
                time: Instant::from_micros(100),
                peer: addr(),
                pdu: "LMP_au_rand",
            });
            scoped.emit(TraceEvent::LmpRecv {
                time: Instant::from_micros(1350),
                peer: addr(),
                pdu: "LMP_au_rand",
            });
            let auth = scoped.open_span(Instant::from_micros(1500), "lmp_auth", "");
            scoped.emit(TraceEvent::KeystoreMutation {
                time: Instant::from_micros(1600),
                peer: addr(),
                action: "store",
            });
            scoped.close_span(Instant::from_micros(1700), auth, "ok");
            tracer.close_span(Instant::from_micros(5000), trial, "attacker_lost");
        }
    }

    #[test]
    fn push_event_matches_push_line() {
        let tracer = Tracer::new();
        let jsonl = crate::trace::JsonlBuffer::new();
        let sink = StreamSink::new();
        tracer.attach(jsonl.clone());
        tracer.attach(sink.clone());
        emit_sample(&tracer);
        let from_events = sink.finish();
        let from_lines = analyze_trace(&jsonl.contents()).expect("rendered trace parses");
        assert_eq!(from_events.report(), from_lines.report());
        assert_eq!(from_events.profile.render(), from_lines.profile.render());
        assert_eq!(from_events.line_count, from_lines.line_count);
        assert_eq!(from_events.segment_count, from_lines.segment_count);
        assert_eq!(from_events.violations, from_lines.violations);
    }

    #[test]
    fn stream_sink_finish_resets() {
        let tracer = Tracer::new();
        let sink = StreamSink::new();
        tracer.attach(sink.clone());
        emit_sample(&tracer);
        let first = sink.finish();
        assert_eq!(first.segment_count, 3);
        let empty = sink.finish();
        assert_eq!(empty.line_count, 0);
        assert_eq!(empty.segment_count, 0);
    }

    #[test]
    fn incremental_pushes_match_batch_analysis() {
        // A torn-up trace pushed line by line must equal the batch result,
        // including a violation (recv with no send) in the middle trial.
        let text = "\
{\"t\":0,\"ev\":\"unit_start\",\"unit\":0,\"label\":\"x\"}\n\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"baseline\"}\n\
{\"t\":5000,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_lost\"}\n\
{\"t\":0,\"ev\":\"unit_start\",\"unit\":1,\"label\":\"x\"}\n\
{\"t\":1350,\"dev\":1,\"ev\":\"lmp_recv\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"pdu\":\"LMP_au_rand\"}\n\
\n\
{\"t\":0,\"ev\":\"unit_start\",\"unit\":2,\"label\":\"x\"}\n\
{\"t\":9,\"dev\":0,\"ev\":\"span_open\",\"span\":7,\"name\":\"page\"}\n";
        let batch = analyze_trace(text).expect("parses");
        let mut streaming = StreamAnalyzer::new();
        for line in text.lines() {
            streaming.push_line(line).expect("parses");
        }
        let streaming = streaming.finish();
        assert_eq!(streaming.report(), batch.report());
        assert_eq!(streaming.violations, batch.violations);
        assert_eq!(streaming.notes, batch.notes);
        assert_eq!(streaming.segment_count, 3);
        assert_eq!(streaming.violations.len(), 1);
    }

    #[test]
    fn unmatched_sends_report_in_line_order() {
        // Two unmatched sends with different (pdu, t) keys land in one
        // HashMap; the violations must still come out in artifact order.
        let text = "\
{\"t\":100,\"dev\":0,\"ev\":\"lmp_send\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"pdu\":\"LMP_zulu\"}\n\
{\"t\":200,\"dev\":0,\"ev\":\"lmp_send\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"pdu\":\"LMP_alpha\"}\n\
{\"t\":300,\"dev\":0,\"ev\":\"lmp_send\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"pdu\":\"LMP_mike\"}\n\
{\"t\":99999,\"ev\":\"attack_phase\",\"label\":\"end\"}\n";
        for _ in 0..16 {
            let a = analyze_trace(text).expect("parses");
            let lines: Vec<usize> = a.violations.iter().map(|v| v.line.unwrap()).collect();
            assert_eq!(lines, vec![1, 2, 3], "{}", a.report());
        }
    }

    #[test]
    fn failed_push_does_not_corrupt_state() {
        let mut s = StreamAnalyzer::new();
        s.push_line(
            "{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"baseline\"}",
        )
        .expect("valid line");
        let err = s.push_line("{torn").expect_err("malformed line errors");
        assert_eq!(err.line, 2);
        // The analyzer is still usable and line numbering still advances.
        s.push_line("{\"t\":10,\"ev\":\"span_close\",\"span\":1,\"status\":\"done\"}")
            .expect("valid line");
        let a = s.finish();
        assert_eq!(a.line_count, 2);
        assert!(a.ok(), "{}", a.report());
    }

    #[test]
    fn violation_summary_records_and_renders() {
        let clean = analyze_trace("").expect("parses");
        let dirty = analyze_trace(
            "{\"t\":500,\"dev\":0,\"ev\":\"keystore\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"action\":\"store\"}\n",
        )
        .expect("parses");
        let mut summary = ViolationSummary::new();
        summary.record("trial 0", &clean);
        assert!(summary.is_clean());
        assert!(summary.render().starts_with("invariants: clean"));
        summary.record("trial 1", &dirty);
        assert!(!summary.is_clean());
        assert_eq!(summary.trials_checked, 2);
        assert_eq!(summary.violations, 1);
        assert_eq!(summary.by_invariant.get("keystore-after-auth"), Some(&1));
        let text = summary.render();
        assert!(text.contains("keystore-after-auth: 1"), "{text}");
        assert!(text.contains("example trial 1: "), "{text}");
    }

    #[test]
    fn violation_summary_merge_caps_examples_prefix_stable() {
        let dirty = analyze_trace(
            "{\"t\":500,\"dev\":0,\"ev\":\"keystore\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"action\":\"store\"}\n",
        )
        .expect("parses");
        // 3 shards × 10 violating trials: a straight fold and a split
        // merge must produce identical summaries (prefix-stable cap).
        let shard = |base: u64| {
            let mut s = ViolationSummary::new();
            for i in 0..10 {
                s.record(&format!("trial {}", base + i), &dirty);
            }
            s
        };
        let mut straight = ViolationSummary::new();
        straight.merge(&shard(0));
        straight.merge(&shard(10));
        straight.merge(&shard(20));
        let mut split = shard(0);
        let mut rest = shard(10);
        rest.merge(&shard(20));
        split.merge(&rest);
        assert_eq!(straight, split);
        assert_eq!(straight.examples.len(), MAX_SUMMARY_EXAMPLES);
        assert_eq!(straight.violations, 30);
        assert!(straight.render().contains("14 more violation(s)"));
    }

    #[test]
    fn violation_summary_json_round_trips() {
        let dirty = analyze_trace(
            "{\"t\":1350,\"dev\":1,\"ev\":\"lmp_recv\",\"peer\":\"bb:bb:bb:bb:bb:bb\",\"pdu\":\"LMP\\\"quote\"}\n",
        )
        .expect("parses");
        let mut summary = ViolationSummary::new();
        summary.record("trial \"7\"", &dirty);
        let json = summary.to_json();
        let value = crate::json::parse(&json).expect("own rendering parses");
        let reloaded = ViolationSummary::from_value(&value).expect("round trips");
        assert_eq!(reloaded, summary);
        assert_eq!(reloaded.to_json(), json, "byte-exact round trip");
        // Empty summaries round-trip too.
        let empty = ViolationSummary::new();
        let value = crate::json::parse(&empty.to_json()).expect("parses");
        assert_eq!(ViolationSummary::from_value(&value).expect("parses"), empty);
    }
}
