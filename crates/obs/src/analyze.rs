//! Trace analysis: parse JSONL artifacts back into typed lines, rebuild
//! per-trial timelines, profile where virtual time went, and check the
//! causal invariants the BLAP attack arguments rest on.
//!
//! The analyzer consumes exactly what [`crate::trace`] produces. A trace
//! is split into **segments** — one per trial — at `unit_start`
//! markers and at root `trial` span opens (a `trial_pair` unit runs two
//! worlds under one tracer, so virtual time resets mid-unit; the root span
//! is the authoritative boundary). All checks are then per segment, since
//! timestamps are only comparable within one world.
//!
//! Since the streaming rework, this module is a thin batch facade over
//! [`crate::stream::StreamAnalyzer`], which holds state for one in-flight
//! trial at a time and retires each segment as its boundary arrives. The
//! wrapper exists for callers that already hold the whole artifact (tests,
//! small fixtures); anything campaign-scale should push lines or typed
//! events at the streaming core directly.
//!
//! ## Invariant catalog
//!
//! * **`lmp-matching`** — every `lmp_recv` at time *t* must match an
//!   `lmp_send` of the same PDU at *t − 1250 µs* (the model's fixed LMP
//!   latency). Every `lmp_send` must be consumed by a matching recv unless
//!   the link died after the send (`link_drop` at ≥ send time) or the
//!   world deadline passed while the PDU was in flight. `LMP_detach` is
//!   exempt: supervision timeouts inject it directly on both ends.
//! * **`ploc-no-pairing`** — a device holding a PLOC link (opened a
//!   `ploc` span) must never itself open a `host_pairing` span in the same
//!   trial: the attacker parks the link, it does not pair over it.
//! * **`keystore-after-auth`** — keystore `store` / `remove` mutations on
//!   a device must be preceded by an `lmp_auth` span open on that device.
//!   `install` is exempt — planting a stolen key *without* running auth is
//!   the Fig. 10 attack itself.
//! * **`blocking-implies-win`** — in a `blocking` trial, if the attacker's
//!   PLOC link predates the victim's `host_pairing` span, outlives its
//!   start, and the attacker captured a link key, the trial must close
//!   `attacker_won`; conversely a trial closing `attacker_won` must show
//!   one of the win mechanisms: a PLOC link predating the victim's
//!   pairing, a page race the attacker won outright (short pairing delays
//!   can hand the attacker the race before any PLOC link establishes), or
//!   a late link onto the victim that connects after the honest pairing
//!   and survives to the end of the trial (address spoofing routes the
//!   attacker's `Connection_Complete` to the real peer, so no `ploc` span
//!   opens, but the raw link still stands at judgment).
//! * **`span-structure`** — closes must match opens; no double-close.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::json::{self, Value};
use crate::metrics::Histogram;

/// The model's fixed LMP/ACL delivery latency in virtual microseconds.
pub const LMP_LATENCY_US: u64 = 1250;

/// One parsed trace line.
#[derive(Clone, Debug)]
pub struct TraceLine {
    /// 1-based line number in the artifact.
    pub line_no: usize,
    /// Virtual timestamp (µs).
    pub t: u64,
    /// Emitting device index, when the line was device-scoped.
    pub dev: Option<u32>,
    /// Event name (`"lmp_send"`, `"span_open"`, ...).
    pub ev: String,
    /// The full parsed object, for event-specific fields.
    pub value: Value,
}

/// A failure to parse a trace artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalyzeError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

/// One detected invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant fired (e.g. `"lmp-matching"`).
    pub invariant: &'static str,
    /// Segment (trial) index the violation is in, 0-based.
    pub segment: usize,
    /// Offending artifact line, when one line can be blamed.
    pub line: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] segment {}", self.invariant, self.segment)?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Virtual-time attribution per span kind: where did the trial's time go.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    phases: BTreeMap<String, PhaseStats>,
}

/// Stats for one span kind.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// Durations (close − open) of completed spans, in virtual µs.
    pub durations: Histogram,
    /// Spans of this kind never closed before their segment ended.
    pub unclosed: u64,
}

impl PhaseProfile {
    /// Stats for one span kind, when any span of that kind was seen.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.get(name)
    }

    /// Iterates phases in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PhaseStats)> {
        self.phases.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Mutable stats for one span kind, created on first use — the
    /// streaming core's fold entry point.
    pub(crate) fn stats_mut(&mut self, name: &str) -> &mut PhaseStats {
        // Avoids allocating the key when the phase already exists (the
        // common case: a campaign has millions of spans over ~10 kinds).
        if !self.phases.contains_key(name) {
            self.phases.insert(name.to_owned(), PhaseStats::default());
        }
        self.phases.get_mut(name).expect("phase just ensured")
    }

    /// Merges another profile in (histograms and unclosed counts add).
    /// Commutative and associative, like a metrics bag: per-shard
    /// profiles folded in any grouping yield the same totals.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (name, stats) in &other.phases {
            let mine = self.stats_mut(name);
            mine.durations.merge(&stats.durations);
            mine.unclosed += stats.unclosed;
        }
    }

    /// Renders the flamegraph-style table: one row per span kind with
    /// count, total, p50/p95 and max, ordered by total time descending.
    pub fn render(&self) -> String {
        let mut out = String::from("phase-latency profile (virtual time):\n");
        let mut rows: Vec<(&String, &PhaseStats)> = self.phases.iter().collect();
        rows.sort_by(|a, b| {
            (b.1.durations.sum(), a.0.as_str()).cmp(&(a.1.durations.sum(), b.0.as_str()))
        });
        for (name, stats) in rows {
            let h = &stats.durations;
            let _ = write!(
                out,
                "  {name:<14} count={:<6} total_us={:<10} p50_us={:<8} p95_us={:<8} max_us={}",
                h.count(),
                h.sum(),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.95).unwrap_or(0),
                h.max()
            );
            if stats.unclosed > 0 {
                let _ = write!(out, "  (+{} unclosed)", stats.unclosed);
            }
            out.push('\n');
        }
        if self.phases.is_empty() {
            out.push_str("  (no spans in trace)\n");
        }
        out
    }
}

/// The full result of analyzing one trace artifact.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Number of event lines parsed.
    pub line_count: usize,
    /// Number of trial segments reconstructed.
    pub segment_count: usize,
    /// Virtual-time attribution per span kind.
    pub profile: PhaseProfile,
    /// Invariant violations, in artifact order.
    pub violations: Vec<Violation>,
    /// Informational notes (unclosed spans etc.) — not failures.
    pub notes: Vec<String>,
}

impl TraceAnalysis {
    /// Whether the trace passed every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the human-readable check report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} lines, {} trial segments, {} violations",
            self.line_count,
            self.segment_count,
            self.violations.len()
        );
        for v in &self.violations {
            let _ = writeln!(out, "VIOLATION {v}");
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }
}

/// Parses one non-blank trace line into its typed form.
pub(crate) fn parse_line(line_no: usize, raw: &str) -> Result<TraceLine, AnalyzeError> {
    let value = json::parse(raw).map_err(|e| AnalyzeError {
        line: line_no,
        message: e.to_string(),
    })?;
    let t = value.get("t").and_then(Value::as_u64).ok_or(AnalyzeError {
        line: line_no,
        message: "missing integer \"t\" field".to_owned(),
    })?;
    let ev = value
        .get("ev")
        .and_then(Value::as_str)
        .ok_or(AnalyzeError {
            line: line_no,
            message: "missing string \"ev\" field".to_owned(),
        })?
        .to_owned();
    // Device ids are u32 everywhere else in the pipeline; a larger
    // value is a corrupt or forged line, and truncating it would
    // silently attribute the event to an unrelated device.
    let dev = match value.get("dev").and_then(Value::as_u64) {
        Some(d) => Some(u32::try_from(d).map_err(|_| AnalyzeError {
            line: line_no,
            message: format!("\"dev\" value {d} exceeds the u32 device-id range"),
        })?),
        None => None,
    };
    Ok(TraceLine {
        line_no,
        t,
        dev,
        ev,
        value,
    })
}

/// Parses a trace JSONL artifact into typed lines (blank lines skipped).
pub fn parse_trace(text: &str) -> Result<Vec<TraceLine>, AnalyzeError> {
    let mut lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        lines.push(parse_line(idx + 1, raw)?);
    }
    Ok(lines)
}

/// Parses and fully analyzes a trace artifact: segmentation, phase
/// profile, and the invariant catalog.
///
/// Batch facade over [`crate::stream::StreamAnalyzer`]: every line is
/// pushed through the streaming core, so the two tiers cannot drift. The
/// first malformed line aborts the analysis with its parse error, exactly
/// as the historical whole-artifact parser did.
pub fn analyze_trace(text: &str) -> Result<TraceAnalysis, AnalyzeError> {
    let mut analyzer = crate::stream::StreamAnalyzer::new();
    for raw in text.lines() {
        analyzer.push_line(raw)?;
    }
    Ok(analyzer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(text: &str) -> TraceAnalysis {
        analyze_trace(text).expect("trace parses")
    }

    #[test]
    fn empty_trace_is_clean() {
        let a = analyze("");
        assert!(a.ok());
        assert_eq!(a.line_count, 0);
        assert_eq!(a.segment_count, 0);
    }

    #[test]
    fn out_of_range_device_id_is_rejected_not_truncated() {
        // 2^32 truncates to dev 0 under an `as u32` cast — the line would
        // silently attribute its span to the victim device. It must be a
        // parse error instead.
        let trace = "{\"t\":1,\"dev\":4294967296,\"ev\":\"lmp_send\"}\n";
        let err = parse_trace(trace).expect_err("oversized dev must not parse");
        assert_eq!(err.line, 1);
        assert!(err.message.contains("4294967296"), "{}", err.message);
        assert!(err.message.contains("u32"), "{}", err.message);
        // u32::MAX itself is still a valid id.
        let ok = parse_trace("{\"t\":1,\"dev\":4294967295,\"ev\":\"lmp_send\"}\n")
            .expect("u32::MAX device id parses");
        assert_eq!(ok[0].dev, Some(u32::MAX));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = analyze_trace("{\"t\":1,\"ev\":\"x\"}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = analyze_trace("{\"ev\":\"missing-t\"}\n").unwrap_err();
        assert!(err.message.contains("\"t\""), "{err}");
    }

    #[test]
    fn matched_lmp_send_recv_passes() {
        let trace = "\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"baseline\"}\n\
{\"t\":100,\"dev\":0,\"ev\":\"lmp_send\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"pdu\":\"LMP_au_rand\"}\n\
{\"t\":1350,\"dev\":1,\"ev\":\"lmp_recv\",\"peer\":\"bb:bb:bb:bb:bb:bb\",\"pdu\":\"LMP_au_rand\"}\n\
{\"t\":2000,\"ev\":\"span_close\",\"span\":1,\"status\":\"done\"}\n";
        let a = analyze(trace);
        assert!(a.ok(), "{}", a.report());
        assert_eq!(a.segment_count, 1);
    }

    #[test]
    fn recv_without_send_is_flagged() {
        let trace =
            "{\"t\":1350,\"dev\":1,\"ev\":\"lmp_recv\",\"peer\":\"bb:bb:bb:bb:bb:bb\",\"pdu\":\"LMP_au_rand\"}\n";
        let a = analyze(trace);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].invariant, "lmp-matching");
    }

    #[test]
    fn unreceived_send_is_flagged_unless_excused() {
        // Send at t=100 with the segment living to t=10000 and no link
        // death: violation.
        let send = "{\"t\":100,\"dev\":0,\"ev\":\"lmp_send\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"pdu\":\"LMP_au_rand\"}\n";
        let late = "{\"t\":10000,\"ev\":\"attack_phase\",\"label\":\"end\"}\n";
        let a = analyze(&format!("{send}{late}"));
        assert_eq!(a.violations.len(), 1, "{}", a.report());

        // Same send, but the link died after it: excused.
        let drop = "{\"t\":600,\"dev\":1,\"ev\":\"link_drop\",\"reason\":\"detach\"}\n";
        assert!(analyze(&format!("{send}{drop}{late}")).ok());

        // Same send still in flight when the segment ends: excused.
        assert!(analyze(send).ok());

        // LMP_detach is exempt in both directions.
        let fabricated =
            "{\"t\":500,\"dev\":1,\"ev\":\"lmp_recv\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"pdu\":\"LMP_detach\"}\n";
        assert!(analyze(&format!("{fabricated}{late}")).ok());
    }

    #[test]
    fn ploc_device_pairing_is_flagged() {
        let trace = "\
{\"t\":0,\"dev\":2,\"ev\":\"span_open\",\"span\":1,\"name\":\"ploc\"}\n\
{\"t\":100,\"dev\":2,\"ev\":\"span_open\",\"span\":2,\"name\":\"host_pairing\"}\n";
        let a = analyze(trace);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].invariant, "ploc-no-pairing");
        // A different device pairing is fine.
        let ok = "\
{\"t\":0,\"dev\":2,\"ev\":\"span_open\",\"span\":1,\"name\":\"ploc\"}\n\
{\"t\":100,\"dev\":0,\"ev\":\"span_open\",\"span\":2,\"name\":\"host_pairing\"}\n";
        assert!(analyze(ok).ok());
    }

    #[test]
    fn keystore_store_requires_prior_auth_span() {
        let bare = "{\"t\":500,\"dev\":0,\"ev\":\"keystore\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"action\":\"store\"}\n";
        let a = analyze(bare);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].invariant, "keystore-after-auth");

        let authed = "\
{\"t\":100,\"dev\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"lmp_auth\"}\n\
{\"t\":500,\"dev\":0,\"ev\":\"keystore\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"action\":\"store\"}\n";
        assert!(analyze(authed).ok());

        // The planted key of Fig. 10 is exempt by design.
        let install = "{\"t\":500,\"dev\":0,\"ev\":\"keystore\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"action\":\"install\"}\n";
        assert!(analyze(install).ok());
    }

    #[test]
    fn blocking_win_consistency() {
        let base = "\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"blocking\"}\n\
{\"t\":10,\"dev\":2,\"ev\":\"span_open\",\"span\":2,\"name\":\"ploc\"}\n\
{\"t\":100,\"dev\":0,\"ev\":\"span_open\",\"span\":3,\"name\":\"host_pairing\"}\n\
{\"t\":150,\"dev\":2,\"ev\":\"span_open\",\"span\":4,\"name\":\"lmp_auth\"}\n\
{\"t\":200,\"dev\":2,\"ev\":\"keystore\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"action\":\"store\"}\n";
        // Blocked pairing + stolen key + attacker_won: consistent.
        let won = format!(
            "{base}{}",
            "{\"t\":300,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_won\"}\n"
        );
        assert!(analyze(&won).ok(), "{}", analyze(&won).report());
        // Same evidence but the trial claims the attacker lost: flagged.
        let lost = format!(
            "{base}{}",
            "{\"t\":300,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_lost\"}\n"
        );
        let a = analyze(&lost);
        assert_eq!(a.violations.len(), 1, "{}", a.report());
        assert_eq!(a.violations[0].invariant, "blocking-implies-win");
        // attacker_won without any PLOC link predating the pairing: flagged.
        let phantom = "\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"blocking\"}\n\
{\"t\":100,\"dev\":0,\"ev\":\"span_open\",\"span\":2,\"name\":\"host_pairing\"}\n\
{\"t\":300,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_won\"}\n";
        let a = analyze(phantom);
        assert_eq!(a.violations.len(), 1, "{}", a.report());
    }

    #[test]
    fn trial_pair_units_are_segmented_at_root_spans() {
        let trace = "\
{\"t\":0,\"ev\":\"unit_start\",\"unit\":0,\"label\":\"trial_pair\"}\n\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"baseline\"}\n\
{\"t\":5000,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_lost\"}\n\
{\"t\":0,\"ev\":\"span_open\",\"span\":2,\"name\":\"trial\",\"detail\":\"blocking\"}\n\
{\"t\":5000,\"ev\":\"span_close\",\"span\":2,\"status\":\"attacker_lost\"}\n\
{\"t\":0,\"ev\":\"unit_start\",\"unit\":1,\"label\":\"trial_pair\"}\n\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"baseline\"}\n\
{\"t\":5000,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_won\"}\n";
        let a = analyze(trace);
        assert_eq!(a.segment_count, 3, "{}", a.report());
        assert!(a.ok(), "{}", a.report());
        let trial = a.profile.phase("trial").expect("trial spans profiled");
        assert_eq!(trial.durations.count(), 3);
        assert_eq!(trial.durations.quantile(0.5), Some(5000));
    }

    #[test]
    fn double_close_and_unknown_close_are_structural_violations() {
        let trace = "\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"page\"}\n\
{\"t\":10,\"ev\":\"span_close\",\"span\":1,\"status\":\"connected\"}\n\
{\"t\":20,\"ev\":\"span_close\",\"span\":1,\"status\":\"connected\"}\n\
{\"t\":30,\"ev\":\"span_close\",\"span\":9,\"status\":\"ok\"}\n";
        let a = analyze(trace);
        assert_eq!(a.violations.len(), 2, "{}", a.report());
        assert!(a.violations.iter().all(|v| v.invariant == "span-structure"));
    }

    #[test]
    fn profile_counts_unclosed_spans() {
        let trace = "{\"t\":0,\"dev\":1,\"ev\":\"span_open\",\"span\":1,\"name\":\"page\"}\n";
        let a = analyze(trace);
        assert!(a.ok());
        assert_eq!(a.profile.phase("page").map(|p| p.unclosed), Some(1));
        assert_eq!(a.notes.len(), 1);
        assert!(a.profile.render().contains("unclosed"));
    }
}
