//! Trace analysis: parse JSONL artifacts back into typed lines, rebuild
//! per-trial timelines, profile where virtual time went, and check the
//! causal invariants the BLAP attack arguments rest on.
//!
//! The analyzer consumes exactly what [`crate::trace`] produces. A trace
//! is first split into **segments** — one per trial — at `unit_start`
//! markers and at root `trial` span opens (a `trial_pair` unit runs two
//! worlds under one tracer, so virtual time resets mid-unit; the root span
//! is the authoritative boundary). All checks are then per segment, since
//! timestamps are only comparable within one world.
//!
//! ## Invariant catalog
//!
//! * **`lmp-matching`** — every `lmp_recv` at time *t* must match an
//!   `lmp_send` of the same PDU at *t − 1250 µs* (the model's fixed LMP
//!   latency). Every `lmp_send` must be consumed by a matching recv unless
//!   the link died after the send (`link_drop` at ≥ send time) or the
//!   world deadline passed while the PDU was in flight. `LMP_detach` is
//!   exempt: supervision timeouts inject it directly on both ends.
//! * **`ploc-no-pairing`** — a device holding a PLOC link (opened a
//!   `ploc` span) must never itself open a `host_pairing` span in the same
//!   trial: the attacker parks the link, it does not pair over it.
//! * **`keystore-after-auth`** — keystore `store` / `remove` mutations on
//!   a device must be preceded by an `lmp_auth` span open on that device.
//!   `install` is exempt — planting a stolen key *without* running auth is
//!   the Fig. 10 attack itself.
//! * **`blocking-implies-win`** — in a `blocking` trial, if the attacker's
//!   PLOC link predates the victim's `host_pairing` span, outlives its
//!   start, and the attacker captured a link key, the trial must close
//!   `attacker_won`; conversely a trial closing `attacker_won` must show a
//!   PLOC link predating the victim's pairing.
//! * **`span-structure`** — closes must match opens; no double-close.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fmt::Write as _;

use crate::json::{self, Value};
use crate::metrics::Histogram;

/// The model's fixed LMP/ACL delivery latency in virtual microseconds.
pub const LMP_LATENCY_US: u64 = 1250;

/// One parsed trace line.
#[derive(Clone, Debug)]
pub struct TraceLine {
    /// 1-based line number in the artifact.
    pub line_no: usize,
    /// Virtual timestamp (µs).
    pub t: u64,
    /// Emitting device index, when the line was device-scoped.
    pub dev: Option<u32>,
    /// Event name (`"lmp_send"`, `"span_open"`, ...).
    pub ev: String,
    /// The full parsed object, for event-specific fields.
    pub value: Value,
}

impl TraceLine {
    fn str_field(&self, key: &str) -> Option<&str> {
        self.value.get(key).and_then(Value::as_str)
    }

    fn u64_field(&self, key: &str) -> Option<u64> {
        self.value.get(key).and_then(Value::as_u64)
    }
}

/// A failure to parse a trace artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalyzeError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

/// One detected invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant fired (e.g. `"lmp-matching"`).
    pub invariant: &'static str,
    /// Segment (trial) index the violation is in, 0-based.
    pub segment: usize,
    /// Offending artifact line, when one line can be blamed.
    pub line: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] segment {}", self.invariant, self.segment)?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Virtual-time attribution per span kind: where did the trial's time go.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    phases: BTreeMap<String, PhaseStats>,
}

/// Stats for one span kind.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// Durations (close − open) of completed spans, in virtual µs.
    pub durations: Histogram,
    /// Spans of this kind never closed before their segment ended.
    pub unclosed: u64,
}

impl PhaseProfile {
    /// Stats for one span kind, when any span of that kind was seen.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.get(name)
    }

    /// Iterates phases in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PhaseStats)> {
        self.phases.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the flamegraph-style table: one row per span kind with
    /// count, total, p50/p95 and max, ordered by total time descending.
    pub fn render(&self) -> String {
        let mut out = String::from("phase-latency profile (virtual time):\n");
        let mut rows: Vec<(&String, &PhaseStats)> = self.phases.iter().collect();
        rows.sort_by(|a, b| {
            (b.1.durations.sum(), a.0.as_str()).cmp(&(a.1.durations.sum(), b.0.as_str()))
        });
        for (name, stats) in rows {
            let h = &stats.durations;
            let _ = write!(
                out,
                "  {name:<14} count={:<6} total_us={:<10} p50_us={:<8} p95_us={:<8} max_us={}",
                h.count(),
                h.sum(),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.95).unwrap_or(0),
                h.max()
            );
            if stats.unclosed > 0 {
                let _ = write!(out, "  (+{} unclosed)", stats.unclosed);
            }
            out.push('\n');
        }
        if self.phases.is_empty() {
            out.push_str("  (no spans in trace)\n");
        }
        out
    }
}

/// The full result of analyzing one trace artifact.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Number of event lines parsed.
    pub line_count: usize,
    /// Number of trial segments reconstructed.
    pub segment_count: usize,
    /// Virtual-time attribution per span kind.
    pub profile: PhaseProfile,
    /// Invariant violations, in artifact order.
    pub violations: Vec<Violation>,
    /// Informational notes (unclosed spans etc.) — not failures.
    pub notes: Vec<String>,
}

impl TraceAnalysis {
    /// Whether the trace passed every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the human-readable check report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} lines, {} trial segments, {} violations",
            self.line_count,
            self.segment_count,
            self.violations.len()
        );
        for v in &self.violations {
            let _ = writeln!(out, "VIOLATION {v}");
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }
}

/// Parses a trace JSONL artifact into typed lines (blank lines skipped).
pub fn parse_trace(text: &str) -> Result<Vec<TraceLine>, AnalyzeError> {
    let mut lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let value = json::parse(raw).map_err(|e| AnalyzeError {
            line: line_no,
            message: e.to_string(),
        })?;
        let t = value.get("t").and_then(Value::as_u64).ok_or(AnalyzeError {
            line: line_no,
            message: "missing integer \"t\" field".to_owned(),
        })?;
        let ev = value
            .get("ev")
            .and_then(Value::as_str)
            .ok_or(AnalyzeError {
                line: line_no,
                message: "missing string \"ev\" field".to_owned(),
            })?
            .to_owned();
        // Device ids are u32 everywhere else in the pipeline; a larger
        // value is a corrupt or forged line, and truncating it would
        // silently attribute the event to an unrelated device.
        let dev = match value.get("dev").and_then(Value::as_u64) {
            Some(d) => Some(u32::try_from(d).map_err(|_| AnalyzeError {
                line: line_no,
                message: format!("\"dev\" value {d} exceeds the u32 device-id range"),
            })?),
            None => None,
        };
        lines.push(TraceLine {
            line_no,
            t,
            dev,
            ev,
            value,
        });
    }
    Ok(lines)
}

/// A reconstructed span within one segment.
#[derive(Clone, Debug)]
struct Span {
    name: String,
    dev: Option<u32>,
    open_t: u64,
    open_line: usize,
    close: Option<(u64, String)>,
    close_line: Option<usize>,
}

/// One trial segment: a half-open range of line indices.
#[derive(Clone, Debug)]
struct Segment {
    start: usize,
    end: usize,
}

fn segment(lines: &[TraceLine]) -> Vec<Segment> {
    let mut boundaries = Vec::new();
    let mut trial_open_in_current = false;
    for (i, line) in lines.iter().enumerate() {
        let is_unit = line.ev == "unit_start";
        let is_root_trial = line.ev == "span_open"
            && line.str_field("name") == Some("trial")
            && line.value.get("parent").is_none();
        if is_unit || (is_root_trial && trial_open_in_current) {
            boundaries.push(i);
            trial_open_in_current = is_root_trial;
        } else if is_root_trial {
            trial_open_in_current = true;
        }
    }
    if boundaries.first() != Some(&0) && !lines.is_empty() {
        boundaries.insert(0, 0);
    }
    boundaries
        .iter()
        .enumerate()
        .map(|(i, &start)| Segment {
            start,
            end: boundaries.get(i + 1).copied().unwrap_or(lines.len()),
        })
        .collect()
}

/// Parses and fully analyzes a trace artifact: segmentation, phase
/// profile, and the invariant catalog.
pub fn analyze_trace(text: &str) -> Result<TraceAnalysis, AnalyzeError> {
    let lines = parse_trace(text)?;
    let segments = segment(&lines);
    let mut profile = PhaseProfile::default();
    let mut violations = Vec::new();
    let mut notes = Vec::new();

    for (seg_idx, seg) in segments.iter().enumerate() {
        let seg_lines = &lines[seg.start..seg.end];
        let spans = collect_spans(seg_idx, seg_lines, &mut violations);
        for span in spans.values() {
            let stats = profile.phases.entry(span.name.clone()).or_default();
            match &span.close {
                Some((close_t, _)) => stats.durations.observe(close_t.saturating_sub(span.open_t)),
                None => stats.unclosed += 1,
            }
        }
        let unclosed = spans.values().filter(|s| s.close.is_none()).count();
        if unclosed > 0 {
            notes.push(format!(
                "segment {seg_idx}: {unclosed} span(s) still open at segment end (world deadline)"
            ));
        }
        check_lmp_matching(seg_idx, seg_lines, &mut violations);
        check_ploc_no_pairing(seg_idx, &spans, &mut violations);
        check_keystore_after_auth(seg_idx, seg_lines, &spans, &mut violations);
        check_blocking_implies_win(seg_idx, seg_lines, &spans, &mut violations);
    }

    Ok(TraceAnalysis {
        line_count: lines.len(),
        segment_count: segments.len(),
        profile,
        violations,
        notes,
    })
}

fn collect_spans(
    seg_idx: usize,
    seg_lines: &[TraceLine],
    violations: &mut Vec<Violation>,
) -> BTreeMap<u64, Span> {
    let mut spans: BTreeMap<u64, Span> = BTreeMap::new();
    for line in seg_lines {
        match line.ev.as_str() {
            "span_open" => {
                let (Some(id), Some(name)) = (line.u64_field("span"), line.str_field("name"))
                else {
                    continue;
                };
                if spans.contains_key(&id) {
                    violations.push(Violation {
                        invariant: "span-structure",
                        segment: seg_idx,
                        line: Some(line.line_no),
                        message: format!("span {id} opened twice"),
                    });
                    continue;
                }
                spans.insert(
                    id,
                    Span {
                        name: name.to_owned(),
                        dev: line.dev,
                        open_t: line.t,
                        open_line: line.line_no,
                        close: None,
                        close_line: None,
                    },
                );
            }
            "span_close" => {
                let Some(id) = line.u64_field("span") else {
                    continue;
                };
                let status = line.str_field("status").unwrap_or("").to_owned();
                match spans.get_mut(&id) {
                    None => violations.push(Violation {
                        invariant: "span-structure",
                        segment: seg_idx,
                        line: Some(line.line_no),
                        message: format!("span {id} closed but never opened in this segment"),
                    }),
                    Some(span) if span.close.is_some() => violations.push(Violation {
                        invariant: "span-structure",
                        segment: seg_idx,
                        line: Some(line.line_no),
                        message: format!("span {id} closed twice"),
                    }),
                    Some(span) => {
                        span.close = Some((line.t, status));
                        span.close_line = Some(line.line_no);
                    }
                }
            }
            _ => {}
        }
    }
    spans
}

fn check_lmp_matching(seg_idx: usize, seg_lines: &[TraceLine], violations: &mut Vec<Violation>) {
    // Multiset matching: sends at (pdu, t) pair with recvs at
    // (pdu, t + LMP_LATENCY_US). LMP_detach is exempt — supervision
    // timeouts inject it on both ends without a send.
    let mut sends: HashMap<(&str, u64), Vec<usize>> = HashMap::new();
    let mut seg_last_t = 0u64;
    let mut drops: Vec<u64> = Vec::new();
    for line in seg_lines {
        seg_last_t = seg_last_t.max(line.t);
        match line.ev.as_str() {
            "lmp_send" => {
                if let Some(pdu) = line.str_field("pdu") {
                    if pdu != "LMP_detach" {
                        sends.entry((pdu, line.t)).or_default().push(line.line_no);
                    }
                }
            }
            "link_drop" => drops.push(line.t),
            _ => {}
        }
    }
    for line in seg_lines {
        if line.ev != "lmp_recv" {
            continue;
        }
        let Some(pdu) = line.str_field("pdu") else {
            continue;
        };
        if pdu == "LMP_detach" {
            continue;
        }
        let matched = line
            .t
            .checked_sub(LMP_LATENCY_US)
            .and_then(|sent_t| sends.get_mut(&(pdu, sent_t)))
            .and_then(Vec::pop)
            .is_some();
        if !matched {
            violations.push(Violation {
                invariant: "lmp-matching",
                segment: seg_idx,
                line: Some(line.line_no),
                message: format!(
                    "lmp_recv of {pdu} at t={} has no matching lmp_send at t={}",
                    line.t,
                    line.t.saturating_sub(LMP_LATENCY_US)
                ),
            });
        }
    }
    for ((pdu, sent_t), unmatched) in sends {
        for line_no in unmatched {
            let in_flight_at_deadline = sent_t + LMP_LATENCY_US > seg_last_t;
            let link_died = drops.iter().any(|&drop_t| drop_t >= sent_t);
            if !in_flight_at_deadline && !link_died {
                violations.push(Violation {
                    invariant: "lmp-matching",
                    segment: seg_idx,
                    line: Some(line_no),
                    message: format!(
                        "lmp_send of {pdu} at t={sent_t} was never received, \
                         yet no link died and the world outlived the delivery"
                    ),
                });
            }
        }
    }
}

fn check_ploc_no_pairing(
    seg_idx: usize,
    spans: &BTreeMap<u64, Span>,
    violations: &mut Vec<Violation>,
) {
    for span in spans.values() {
        if span.name != "host_pairing" {
            continue;
        }
        // A PLOC hold is "active" at the pairing span's open if it opened
        // earlier and had not closed yet — line order is event order within
        // a trial's single-threaded tracer.
        let held_during = spans.values().any(|p| {
            p.name == "ploc"
                && p.dev == span.dev
                && p.open_line < span.open_line
                && p.close_line.is_none_or(|cl| cl > span.open_line)
        });
        if held_during {
            violations.push(Violation {
                invariant: "ploc-no-pairing",
                segment: seg_idx,
                line: Some(span.open_line),
                message: format!(
                    "device {:?} holds a PLOC link but opened a host_pairing span",
                    span.dev
                ),
            });
        }
    }
}

fn check_keystore_after_auth(
    seg_idx: usize,
    seg_lines: &[TraceLine],
    spans: &BTreeMap<u64, Span>,
    violations: &mut Vec<Violation>,
) {
    for line in seg_lines {
        if line.ev != "keystore" {
            continue;
        }
        let action = line.str_field("action").unwrap_or("");
        if action != "store" && action != "remove" {
            continue; // "install" is the Fig. 10 attack: exempt by design.
        }
        let authed = spans
            .values()
            .any(|s| s.name == "lmp_auth" && s.dev == line.dev && s.open_t <= line.t);
        if !authed {
            violations.push(Violation {
                invariant: "keystore-after-auth",
                segment: seg_idx,
                line: Some(line.line_no),
                message: format!(
                    "keystore {action} on device {:?} at t={} without a preceding lmp_auth span",
                    line.dev, line.t
                ),
            });
        }
    }
}

fn check_blocking_implies_win(
    seg_idx: usize,
    seg_lines: &[TraceLine],
    spans: &BTreeMap<u64, Span>,
    violations: &mut Vec<Violation>,
) {
    let Some(trial) = spans
        .values()
        .find(|s| s.name == "trial")
        .filter(|s| trial_detail(seg_lines, s) == Some("blocking"))
    else {
        return;
    };
    let trial_status = trial.close.as_ref().map(|(_, s)| s.as_str());
    // The attacker's PLOC link, and the victim pairing spans it overlaps.
    let plocs: Vec<&Span> = spans.values().filter(|s| s.name == "ploc").collect();
    let blocked_pairing = |ploc: &Span| {
        spans.values().any(|s| {
            s.name == "host_pairing"
                && s.dev != ploc.dev
                && s.open_t > ploc.open_t
                && ploc.close.as_ref().is_none_or(|(t, _)| *t >= s.open_t)
        })
    };
    let attacker_stole_key = |ploc: &Span| {
        seg_lines.iter().any(|l| {
            l.ev == "keystore" && l.str_field("action") == Some("store") && l.dev == ploc.dev
        })
    };
    for ploc in &plocs {
        if blocked_pairing(ploc) && attacker_stole_key(ploc) && trial_status != Some("attacker_won")
        {
            violations.push(Violation {
                invariant: "blocking-implies-win",
                segment: seg_idx,
                line: Some(ploc.open_line),
                message: format!(
                    "PLOC link predates the victim's pairing and the attacker captured a \
                     link key, but the trial closed {trial_status:?} instead of attacker_won"
                ),
            });
        }
    }
    if trial_status == Some("attacker_won") && !plocs.iter().any(|p| blocked_pairing(p)) {
        violations.push(Violation {
            invariant: "blocking-implies-win",
            segment: seg_idx,
            line: Some(trial.open_line),
            message: "trial closed attacker_won but no PLOC link predates the victim's pairing"
                .to_owned(),
        });
    }
}

fn trial_detail<'a>(seg_lines: &'a [TraceLine], trial: &Span) -> Option<&'a str> {
    seg_lines
        .iter()
        .find(|l| l.line_no == trial.open_line)
        .and_then(|l| l.str_field("detail"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(text: &str) -> TraceAnalysis {
        analyze_trace(text).expect("trace parses")
    }

    #[test]
    fn empty_trace_is_clean() {
        let a = analyze("");
        assert!(a.ok());
        assert_eq!(a.line_count, 0);
        assert_eq!(a.segment_count, 0);
    }

    #[test]
    fn out_of_range_device_id_is_rejected_not_truncated() {
        // 2^32 truncates to dev 0 under an `as u32` cast — the line would
        // silently attribute its span to the victim device. It must be a
        // parse error instead.
        let trace = "{\"t\":1,\"dev\":4294967296,\"ev\":\"lmp_send\"}\n";
        let err = parse_trace(trace).expect_err("oversized dev must not parse");
        assert_eq!(err.line, 1);
        assert!(err.message.contains("4294967296"), "{}", err.message);
        assert!(err.message.contains("u32"), "{}", err.message);
        // u32::MAX itself is still a valid id.
        let ok = parse_trace("{\"t\":1,\"dev\":4294967295,\"ev\":\"lmp_send\"}\n")
            .expect("u32::MAX device id parses");
        assert_eq!(ok[0].dev, Some(u32::MAX));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = analyze_trace("{\"t\":1,\"ev\":\"x\"}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = analyze_trace("{\"ev\":\"missing-t\"}\n").unwrap_err();
        assert!(err.message.contains("\"t\""), "{err}");
    }

    #[test]
    fn matched_lmp_send_recv_passes() {
        let trace = "\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"baseline\"}\n\
{\"t\":100,\"dev\":0,\"ev\":\"lmp_send\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"pdu\":\"LMP_au_rand\"}\n\
{\"t\":1350,\"dev\":1,\"ev\":\"lmp_recv\",\"peer\":\"bb:bb:bb:bb:bb:bb\",\"pdu\":\"LMP_au_rand\"}\n\
{\"t\":2000,\"ev\":\"span_close\",\"span\":1,\"status\":\"done\"}\n";
        let a = analyze(trace);
        assert!(a.ok(), "{}", a.report());
        assert_eq!(a.segment_count, 1);
    }

    #[test]
    fn recv_without_send_is_flagged() {
        let trace =
            "{\"t\":1350,\"dev\":1,\"ev\":\"lmp_recv\",\"peer\":\"bb:bb:bb:bb:bb:bb\",\"pdu\":\"LMP_au_rand\"}\n";
        let a = analyze(trace);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].invariant, "lmp-matching");
    }

    #[test]
    fn unreceived_send_is_flagged_unless_excused() {
        // Send at t=100 with the segment living to t=10000 and no link
        // death: violation.
        let send = "{\"t\":100,\"dev\":0,\"ev\":\"lmp_send\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"pdu\":\"LMP_au_rand\"}\n";
        let late = "{\"t\":10000,\"ev\":\"attack_phase\",\"label\":\"end\"}\n";
        let a = analyze(&format!("{send}{late}"));
        assert_eq!(a.violations.len(), 1, "{}", a.report());

        // Same send, but the link died after it: excused.
        let drop = "{\"t\":600,\"dev\":1,\"ev\":\"link_drop\",\"reason\":\"detach\"}\n";
        assert!(analyze(&format!("{send}{drop}{late}")).ok());

        // Same send still in flight when the segment ends: excused.
        assert!(analyze(send).ok());

        // LMP_detach is exempt in both directions.
        let fabricated =
            "{\"t\":500,\"dev\":1,\"ev\":\"lmp_recv\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"pdu\":\"LMP_detach\"}\n";
        assert!(analyze(&format!("{fabricated}{late}")).ok());
    }

    #[test]
    fn ploc_device_pairing_is_flagged() {
        let trace = "\
{\"t\":0,\"dev\":2,\"ev\":\"span_open\",\"span\":1,\"name\":\"ploc\"}\n\
{\"t\":100,\"dev\":2,\"ev\":\"span_open\",\"span\":2,\"name\":\"host_pairing\"}\n";
        let a = analyze(trace);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].invariant, "ploc-no-pairing");
        // A different device pairing is fine.
        let ok = "\
{\"t\":0,\"dev\":2,\"ev\":\"span_open\",\"span\":1,\"name\":\"ploc\"}\n\
{\"t\":100,\"dev\":0,\"ev\":\"span_open\",\"span\":2,\"name\":\"host_pairing\"}\n";
        assert!(analyze(ok).ok());
    }

    #[test]
    fn keystore_store_requires_prior_auth_span() {
        let bare = "{\"t\":500,\"dev\":0,\"ev\":\"keystore\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"action\":\"store\"}\n";
        let a = analyze(bare);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].invariant, "keystore-after-auth");

        let authed = "\
{\"t\":100,\"dev\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"lmp_auth\"}\n\
{\"t\":500,\"dev\":0,\"ev\":\"keystore\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"action\":\"store\"}\n";
        assert!(analyze(authed).ok());

        // The planted key of Fig. 10 is exempt by design.
        let install = "{\"t\":500,\"dev\":0,\"ev\":\"keystore\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"action\":\"install\"}\n";
        assert!(analyze(install).ok());
    }

    #[test]
    fn blocking_win_consistency() {
        let base = "\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"blocking\"}\n\
{\"t\":10,\"dev\":2,\"ev\":\"span_open\",\"span\":2,\"name\":\"ploc\"}\n\
{\"t\":100,\"dev\":0,\"ev\":\"span_open\",\"span\":3,\"name\":\"host_pairing\"}\n\
{\"t\":150,\"dev\":2,\"ev\":\"span_open\",\"span\":4,\"name\":\"lmp_auth\"}\n\
{\"t\":200,\"dev\":2,\"ev\":\"keystore\",\"peer\":\"aa:aa:aa:aa:aa:aa\",\"action\":\"store\"}\n";
        // Blocked pairing + stolen key + attacker_won: consistent.
        let won = format!(
            "{base}{}",
            "{\"t\":300,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_won\"}\n"
        );
        assert!(analyze(&won).ok(), "{}", analyze(&won).report());
        // Same evidence but the trial claims the attacker lost: flagged.
        let lost = format!(
            "{base}{}",
            "{\"t\":300,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_lost\"}\n"
        );
        let a = analyze(&lost);
        assert_eq!(a.violations.len(), 1, "{}", a.report());
        assert_eq!(a.violations[0].invariant, "blocking-implies-win");
        // attacker_won without any PLOC link predating the pairing: flagged.
        let phantom = "\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"blocking\"}\n\
{\"t\":100,\"dev\":0,\"ev\":\"span_open\",\"span\":2,\"name\":\"host_pairing\"}\n\
{\"t\":300,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_won\"}\n";
        let a = analyze(phantom);
        assert_eq!(a.violations.len(), 1, "{}", a.report());
    }

    #[test]
    fn trial_pair_units_are_segmented_at_root_spans() {
        let trace = "\
{\"t\":0,\"ev\":\"unit_start\",\"unit\":0,\"label\":\"trial_pair\"}\n\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"baseline\"}\n\
{\"t\":5000,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_lost\"}\n\
{\"t\":0,\"ev\":\"span_open\",\"span\":2,\"name\":\"trial\",\"detail\":\"blocking\"}\n\
{\"t\":5000,\"ev\":\"span_close\",\"span\":2,\"status\":\"attacker_lost\"}\n\
{\"t\":0,\"ev\":\"unit_start\",\"unit\":1,\"label\":\"trial_pair\"}\n\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"baseline\"}\n\
{\"t\":5000,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_won\"}\n";
        let a = analyze(trace);
        assert_eq!(a.segment_count, 3, "{}", a.report());
        assert!(a.ok(), "{}", a.report());
        let trial = a.profile.phase("trial").expect("trial spans profiled");
        assert_eq!(trial.durations.count(), 3);
        assert_eq!(trial.durations.quantile(0.5), Some(5000));
    }

    #[test]
    fn double_close_and_unknown_close_are_structural_violations() {
        let trace = "\
{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"page\"}\n\
{\"t\":10,\"ev\":\"span_close\",\"span\":1,\"status\":\"connected\"}\n\
{\"t\":20,\"ev\":\"span_close\",\"span\":1,\"status\":\"connected\"}\n\
{\"t\":30,\"ev\":\"span_close\",\"span\":9,\"status\":\"ok\"}\n";
        let a = analyze(trace);
        assert_eq!(a.violations.len(), 2, "{}", a.report());
        assert!(a.violations.iter().all(|v| v.invariant == "span-structure"));
    }

    #[test]
    fn profile_counts_unclosed_spans() {
        let trace = "{\"t\":0,\"dev\":1,\"ev\":\"span_open\",\"span\":1,\"name\":\"page\"}\n";
        let a = analyze(trace);
        assert!(a.ok());
        assert_eq!(a.profile.phase("page").map(|p| p.unclosed), Some(1));
        assert_eq!(a.notes.len(), 1);
        assert!(a.profile.render().contains("unclosed"));
    }
}
