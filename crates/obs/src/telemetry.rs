//! Live wall-clock telemetry: the snapshot bus behind `blap-campaign
//! --telemetry` and the `blap-top` dashboard.
//!
//! A fleet campaign sweeps 10^6+ trials for minutes at a time, and until
//! this tier existed the operator saw nothing between the banner and the
//! final summary. This module samples the run **from the side**, on a
//! wall-clock interval, into versioned [`TelemetrySnapshot`] documents:
//! trials and shards completed, throughput, per-worker busy time (the
//! same accounting the PR 5 profiler pools use), win-rate counters,
//! invariant-violation counts from the streaming checkers, and an ETA.
//! Snapshots land in a fixed-capacity [`SnapshotRing`] (an explicit
//! dropped-snapshot counter — never silent truncation) and, when a
//! sidecar path is given, are appended as JSONL one atomic line write at
//! a time so a tail-follower never sees an interleaved line.
//!
//! The same hard rules as [`crate::prof`] apply, enforced by
//! construction:
//!
//! * **Sidecar only.** Nothing recorded here reaches a `--trace`,
//!   `--metrics`, or checkpoint artifact; those stay byte-identical with
//!   telemetry on or off at any `BLAP_JOBS` (pinned in
//!   `tests/parallel_determinism.rs`).
//! * **Zero-cost when disabled.** Every recording hook starts with one
//!   relaxed atomic load and a branch ([`enabled`]); no clock is read,
//!   no lock taken. `BENCH_hotpaths.json` pins the disabled-path cost as
//!   `telemetry_disabled`.
//! * **Observation, never participation.** The hub is written with
//!   relaxed atomics from worker threads and read by the sampler thread;
//!   trial *results* never flow through it, so a torn read can at worst
//!   make one snapshot momentarily stale.
//!
//! The reader half ([`read_snapshot_file`], [`parse_snapshot_line`])
//! tolerates a torn final line — the file is being appended to while it
//! is read, and a `--stop-after` kill can leave a half-written tail —
//! so `blap-top` keeps rendering from whatever prefix is complete.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::{self, escape, Value};

/// Snapshot schema version stamped into every line (`"v":1`).
pub const SCHEMA_VERSION: u64 = 1;

/// Per-worker lanes the hub tracks; workers past the last lane fold into
/// it, so memory stays fixed no matter what `BLAP_JOBS` says.
pub const MAX_WORKER_LANES: usize = 64;

/// Default ring capacity: enough history for a dashboard sparkline while
/// bounding memory to a few hundred KiB even with hostile label sets.
pub const DEFAULT_RING_CAPACITY: usize = 512;

// --- enable switch ----------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently collecting. One relaxed load — this is
/// the entire cost of every hook when telemetry is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// --- the hub ----------------------------------------------------------------

#[derive(Default)]
struct Lane {
    tasks: AtomicU64,
    busy_ns: AtomicU64,
}

/// Process-wide live counters, written by worker threads with relaxed
/// atomics and read by the sampler. One instance for the process, like
/// the profiler registry.
struct Hub {
    started: Mutex<Option<Instant>>,
    trials: AtomicU64,
    trials_total: AtomicU64,
    shards: AtomicU64,
    shards_total: AtomicU64,
    virtual_us: AtomicU64,
    violations: AtomicU64,
    lanes: Vec<Lane>,
    /// Win-rate counters keyed by free-form label (`device/mode`); the
    /// key space is bounded by the campaign's device pool, not the trial
    /// count.
    races: Mutex<BTreeMap<String, (u64, u64)>>,
}

fn hub() -> &'static Hub {
    static HUB: OnceLock<Hub> = OnceLock::new();
    HUB.get_or_init(|| Hub {
        started: Mutex::new(None),
        trials: AtomicU64::new(0),
        trials_total: AtomicU64::new(0),
        shards: AtomicU64::new(0),
        shards_total: AtomicU64::new(0),
        virtual_us: AtomicU64::new(0),
        violations: AtomicU64::new(0),
        lanes: (0..MAX_WORKER_LANES).map(|_| Lane::default()).collect(),
        races: Mutex::new(BTreeMap::new()),
    })
}

/// Starts a telemetry session: zeroes the hub, stamps the wall-clock
/// origin, and seeds the totals (and the already-done counts, so a
/// `--resume` run reports honest progress and ETA).
pub fn begin_session(totals: SessionTotals) {
    let h = hub();
    *h.started.lock().expect("telemetry hub lock") = Some(Instant::now());
    h.trials.store(totals.trials_done, Ordering::Relaxed);
    h.trials_total.store(totals.trials_total, Ordering::Relaxed);
    h.shards.store(totals.shards_done, Ordering::Relaxed);
    h.shards_total.store(totals.shards_total, Ordering::Relaxed);
    h.virtual_us.store(0, Ordering::Relaxed);
    h.violations.store(0, Ordering::Relaxed);
    for lane in &h.lanes {
        lane.tasks.store(0, Ordering::Relaxed);
        lane.busy_ns.store(0, Ordering::Relaxed);
    }
    h.races.lock().expect("telemetry hub lock").clear();
}

/// The sweep shape a telemetry session reports progress against.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionTotals {
    /// Trials the whole sweep will run.
    pub trials_total: u64,
    /// Shards the whole sweep will run.
    pub shards_total: u64,
    /// Trials already aggregated before this session (resume).
    pub trials_done: u64,
    /// Shards already aggregated before this session (resume).
    pub shards_done: u64,
}

/// Clears the hub and stops the session clock. Tests use this to
/// isolate runs; production code just starts the next session.
pub fn reset() {
    set_enabled(false);
    begin_session(SessionTotals::default());
    *hub().started.lock().expect("telemetry hub lock") = None;
}

/// Records one completed pool unit from a runner worker: which worker
/// ran it and how long it was busy. Inert (one relaxed load) when
/// telemetry is off.
#[inline]
pub fn record_unit(worker: usize, busy: Duration) {
    if !enabled() {
        return;
    }
    let lane = &hub().lanes[worker.min(MAX_WORKER_LANES - 1)];
    lane.tasks.fetch_add(1, Ordering::Relaxed);
    lane.busy_ns
        .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
}

/// Records one completed campaign trial: the win-rate label it falls
/// under (`device/mode`), whether the attacker established MITM, and
/// the trial world's final virtual time.
#[inline]
pub fn record_trial(label: &str, won: bool, virtual_us: u64) {
    if !enabled() {
        return;
    }
    let h = hub();
    h.trials.fetch_add(1, Ordering::Relaxed);
    h.virtual_us.fetch_add(virtual_us, Ordering::Relaxed);
    let mut races = h.races.lock().expect("telemetry hub lock");
    let cell = races.entry(label.to_owned()).or_insert((0, 0));
    cell.0 += u64::from(won);
    cell.1 += 1;
}

/// Records one completed campaign shard.
#[inline]
pub fn record_shard() {
    if !enabled() {
        return;
    }
    hub().shards.fetch_add(1, Ordering::Relaxed);
}

/// Records invariant violations surfaced by the streaming checkers.
#[inline]
pub fn record_violations(count: u64) {
    if !enabled() || count == 0 {
        return;
    }
    hub().violations.fetch_add(count, Ordering::Relaxed);
}

// --- snapshots --------------------------------------------------------------

/// One worker's cumulative contribution at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerLane {
    /// Worker index (lane index; workers past [`MAX_WORKER_LANES`] fold
    /// into the last lane).
    pub worker: u64,
    /// Pool units completed.
    pub tasks: u64,
    /// Wall time spent inside unit bodies, milliseconds.
    pub busy_ms: u64,
    /// `busy / session wall` — the fraction of the session this worker
    /// spent executing units.
    pub utilization: f64,
}

/// One win-rate counter cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceCell {
    /// Trials that established MITM under this label.
    pub wins: u64,
    /// Trials run under this label.
    pub trials: u64,
}

/// One sampled point of a running sweep — the versioned unit of the
/// telemetry sidecar and the `blap-top` wire format.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub version: u64,
    /// Snapshot sequence number within the session.
    pub seq: u64,
    /// Wall milliseconds since the session began.
    pub wall_ms: u64,
    /// Cumulative *virtual* microseconds simulated by completed trials.
    pub virtual_us: u64,
    /// Trials completed so far (includes resumed-in work).
    pub trials: u64,
    /// Trials the whole sweep will run (0 when unknown).
    pub trials_total: u64,
    /// Shards completed so far.
    pub shards: u64,
    /// Shards the whole sweep will run (0 when unknown).
    pub shards_total: u64,
    /// Throughput over the last sampling interval (cumulative average
    /// for the first snapshot).
    pub trials_per_sec: f64,
    /// Estimated wall milliseconds to completion from the cumulative
    /// rate; 0 when unknown (no progress yet, or no total).
    pub eta_ms: u64,
    /// Invariant violations counted by the streaming checkers so far.
    pub violations: u64,
    /// Snapshots evicted from the ring before this one (no silent
    /// truncation: a consumer can always see what it missed).
    pub dropped: u64,
    /// Per-worker lanes, in worker order; idle lanes are omitted.
    pub workers: Vec<WorkerLane>,
    /// Win-rate counters in label order.
    pub races: Vec<(String, RaceCell)>,
}

/// Samples the hub into a snapshot. `prev` supplies the previous sample
/// for the interval rate; `dropped` is the ring's eviction count.
pub fn sample(seq: u64, prev: Option<&TelemetrySnapshot>, dropped: u64) -> TelemetrySnapshot {
    let h = hub();
    let wall = h
        .started
        .lock()
        .expect("telemetry hub lock")
        .map(|t| t.elapsed())
        .unwrap_or(Duration::ZERO);
    let wall_ms = wall.as_millis() as u64;
    let trials = h.trials.load(Ordering::Relaxed);
    let trials_total = h.trials_total.load(Ordering::Relaxed);
    let rate_window = |t0: u64, w0: u64| {
        let dt = trials.saturating_sub(t0);
        let dw = wall_ms.saturating_sub(w0);
        if dw == 0 {
            0.0
        } else {
            dt as f64 * 1000.0 / dw as f64
        }
    };
    let trials_per_sec = match prev {
        Some(p) => rate_window(p.trials, p.wall_ms),
        None => rate_window(0, 0),
    };
    let cumulative = rate_window(0, 0);
    let eta_ms = if cumulative > 0.0 && trials_total > trials {
        ((trials_total - trials) as f64 * 1000.0 / cumulative) as u64
    } else {
        0
    };
    let workers = h
        .lanes
        .iter()
        .enumerate()
        .filter(|(_, lane)| lane.tasks.load(Ordering::Relaxed) > 0)
        .map(|(i, lane)| {
            let busy_ns = lane.busy_ns.load(Ordering::Relaxed);
            WorkerLane {
                worker: i as u64,
                tasks: lane.tasks.load(Ordering::Relaxed),
                busy_ms: busy_ns / 1_000_000,
                utilization: if wall_ms == 0 {
                    0.0
                } else {
                    (busy_ns as f64 / 1e6 / wall_ms as f64).min(1.0)
                },
            }
        })
        .collect();
    let races = h
        .races
        .lock()
        .expect("telemetry hub lock")
        .iter()
        .map(|(label, &(wins, trials))| (label.clone(), RaceCell { wins, trials }))
        .collect();
    TelemetrySnapshot {
        version: SCHEMA_VERSION,
        seq,
        wall_ms,
        virtual_us: h.virtual_us.load(Ordering::Relaxed),
        trials,
        trials_total,
        shards: h.shards.load(Ordering::Relaxed),
        shards_total: h.shards_total.load(Ordering::Relaxed),
        trials_per_sec,
        eta_ms,
        violations: h.violations.load(Ordering::Relaxed),
        dropped,
        workers,
        races,
    }
}

impl TelemetrySnapshot {
    /// Renders the snapshot as one JSONL line (no trailing newline).
    /// Hand-rolled like the metrics renderer: deterministic member
    /// order, every label through the shared escaper, floats at fixed
    /// precision so render → parse → render is byte-exact.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"v\":{},\"seq\":{},\"wall_ms\":{},\"virtual_us\":{},\
             \"trials\":{},\"trials_total\":{},\"shards\":{},\"shards_total\":{},\
             \"trials_per_sec\":{:.1},\"eta_ms\":{},\"violations\":{},\"dropped\":{}",
            self.version,
            self.seq,
            self.wall_ms,
            self.virtual_us,
            self.trials,
            self.trials_total,
            self.shards,
            self.shards_total,
            self.trials_per_sec,
            self.eta_ms,
            self.violations,
            self.dropped,
        );
        out.push_str(",\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{},\"tasks\":{},\"busy_ms\":{},\"utilization\":{:.4}}}",
                w.worker, w.tasks, w.busy_ms, w.utilization
            );
        }
        out.push_str("],\"races\":{");
        for (i, (label, cell)) in self.races.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"wins\":{},\"trials\":{}}}",
                escape(label),
                cell.wins,
                cell.trials
            );
        }
        out.push_str("}}");
        out
    }

    /// Parses a snapshot back from a parsed JSON value — the exact
    /// inverse of [`TelemetrySnapshot::to_json_line`].
    pub fn from_value(value: &Value) -> Result<TelemetrySnapshot, String> {
        let uint = |key: &str| {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("snapshot field {key:?} missing or not an integer"))
        };
        let float = |key: &str| {
            match value.get(key) {
                Some(Value::Num(n)) => n.parse::<f64>().ok(),
                _ => None,
            }
            .ok_or_else(|| format!("snapshot field {key:?} missing or not a number"))
        };
        let version = uint("v")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "snapshot version {version} is not the supported {SCHEMA_VERSION}"
            ));
        }
        let mut workers = Vec::new();
        match value.get("workers") {
            Some(Value::Array(items)) => {
                for item in items {
                    let wuint = |key: &str| {
                        item.get(key)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("worker field {key:?} missing"))
                    };
                    let utilization = match item.get("utilization") {
                        Some(Value::Num(n)) => n
                            .parse::<f64>()
                            .map_err(|_| "worker utilization is not a number".to_owned())?,
                        _ => return Err("worker field \"utilization\" missing".to_owned()),
                    };
                    workers.push(WorkerLane {
                        worker: wuint("worker")?,
                        tasks: wuint("tasks")?,
                        busy_ms: wuint("busy_ms")?,
                        utilization,
                    });
                }
            }
            _ => return Err("snapshot field \"workers\" missing or not an array".to_owned()),
        }
        let mut races = Vec::new();
        match value.get("races") {
            Some(Value::Object(members)) => {
                for (label, cell) in members {
                    let cuint = |key: &str| {
                        cell.get(key)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("race cell field {key:?} missing"))
                    };
                    races.push((
                        label.clone(),
                        RaceCell {
                            wins: cuint("wins")?,
                            trials: cuint("trials")?,
                        },
                    ));
                }
            }
            _ => return Err("snapshot field \"races\" missing or not an object".to_owned()),
        }
        Ok(TelemetrySnapshot {
            version,
            seq: uint("seq")?,
            wall_ms: uint("wall_ms")?,
            virtual_us: uint("virtual_us")?,
            trials: uint("trials")?,
            trials_total: uint("trials_total")?,
            shards: uint("shards")?,
            shards_total: uint("shards_total")?,
            trials_per_sec: float("trials_per_sec")?,
            eta_ms: uint("eta_ms")?,
            violations: uint("violations")?,
            dropped: uint("dropped")?,
            workers,
            races,
        })
    }
}

/// Parses one sidecar line into a snapshot.
pub fn parse_snapshot_line(line: &str) -> Result<TelemetrySnapshot, String> {
    let value = json::parse(line).map_err(|err| err.to_string())?;
    TelemetrySnapshot::from_value(&value)
}

// --- the ring ---------------------------------------------------------------

/// A fixed-capacity snapshot history. Publishing to a full ring evicts
/// the oldest snapshot and counts it in [`SnapshotRing::dropped`] — the
/// count rides inside every later snapshot, so truncation is always
/// visible to consumers.
#[derive(Debug)]
pub struct SnapshotRing {
    capacity: usize,
    buf: VecDeque<TelemetrySnapshot>,
    dropped: u64,
}

impl SnapshotRing {
    /// A ring holding at most `capacity` snapshots (at least one).
    pub fn new(capacity: usize) -> SnapshotRing {
        SnapshotRing {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends a snapshot, evicting (and counting) the oldest when full.
    pub fn publish(&mut self, snapshot: TelemetrySnapshot) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(snapshot);
    }

    /// The most recent snapshot.
    pub fn latest(&self) -> Option<&TelemetrySnapshot> {
        self.buf.back()
    }

    /// Snapshots currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TelemetrySnapshot> {
        self.buf.iter()
    }

    /// Snapshots currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Snapshots evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

// --- the collector ----------------------------------------------------------

/// What a stopped [`Collector`] hands back: the in-memory ring and the
/// session's final snapshot (one is always taken at stop, so even a
/// sub-interval run produces at least one line).
#[derive(Debug)]
pub struct CollectorReport {
    /// The retained snapshot history.
    pub ring: SnapshotRing,
    /// Lines appended to the sidecar file (0 without a sidecar).
    pub lines_written: u64,
}

struct CollectorShared {
    stop: AtomicBool,
}

/// A background sampler: wakes on a wall-clock interval, samples the
/// hub, publishes to the ring, appends a JSONL line to the sidecar (one
/// `write_all` per line — a tail-follower never sees two interleaved
/// lines), and optionally redraws a one-line stderr heartbeat.
pub struct Collector {
    shared: std::sync::Arc<CollectorShared>,
    handle: Option<std::thread::JoinHandle<CollectorReport>>,
}

impl Collector {
    /// Enables telemetry and starts the sampler thread. `path` is the
    /// JSONL sidecar (`None` keeps snapshots in memory only);
    /// `heartbeat` redraws a progress line on stderr each tick.
    pub fn start(
        path: Option<String>,
        interval: Duration,
        heartbeat: bool,
    ) -> std::io::Result<Collector> {
        let mut file = match &path {
            Some(p) => Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)?,
            ),
            None => None,
        };
        set_enabled(true);
        let shared = std::sync::Arc::new(CollectorShared {
            stop: AtomicBool::new(false),
        });
        let thread_shared = shared.clone();
        let interval = interval.max(Duration::from_millis(10));
        let handle = std::thread::Builder::new()
            .name("blap-telemetry".to_owned())
            .spawn(move || {
                let mut ring = SnapshotRing::new(DEFAULT_RING_CAPACITY);
                let mut seq = 0u64;
                let mut prev: Option<TelemetrySnapshot> = None;
                let mut lines_written = 0u64;
                let mut next_tick = Instant::now() + interval;
                loop {
                    let stopping = thread_shared.stop.load(Ordering::Relaxed);
                    if !stopping && Instant::now() < next_tick {
                        std::thread::sleep(Duration::from_millis(10).min(interval));
                        continue;
                    }
                    next_tick += interval;
                    let snapshot = sample(seq, prev.as_ref(), ring.dropped());
                    seq += 1;
                    if let Some(file) = &mut file {
                        let mut line = snapshot.to_json_line();
                        line.push('\n');
                        // One write per line: the append-mode file offset
                        // makes this atomic with respect to a reader
                        // scanning for complete lines.
                        if file.write_all(line.as_bytes()).is_ok() {
                            let _ = file.flush();
                            lines_written += 1;
                        }
                    }
                    if heartbeat {
                        eprint!("\r{}\x1b[K", heartbeat_line(&snapshot));
                    }
                    prev = Some(snapshot.clone());
                    ring.publish(snapshot);
                    if stopping {
                        if heartbeat {
                            eprintln!();
                        }
                        return CollectorReport {
                            ring,
                            lines_written,
                        };
                    }
                }
            })?;
        Ok(Collector {
            shared,
            handle: Some(handle),
        })
    }

    /// Stops the sampler after one final snapshot, disables telemetry,
    /// and returns what was collected.
    pub fn stop(mut self) -> CollectorReport {
        self.shared.stop.store(true, Ordering::Relaxed);
        let report = self
            .handle
            .take()
            .expect("collector stopped once")
            .join()
            .expect("telemetry sampler panicked");
        set_enabled(false);
        report
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
            set_enabled(false);
        }
    }
}

/// The one-line stderr heartbeat `blap-campaign` redraws each tick.
pub fn heartbeat_line(s: &TelemetrySnapshot) -> String {
    let percent = if s.trials_total > 0 {
        100.0 * s.trials as f64 / s.trials_total as f64
    } else {
        0.0
    };
    let mut line = format!(
        "campaign: {}/{} trials ({percent:.1}%)  {:.0} trials/s  shards {}/{}",
        s.trials, s.trials_total, s.trials_per_sec, s.shards, s.shards_total
    );
    if s.violations > 0 {
        let _ = write!(line, "  VIOLATIONS {}", s.violations);
    }
    if s.eta_ms > 0 {
        let _ = write!(line, "  eta {:.1}s", s.eta_ms as f64 / 1000.0);
    }
    line
}

// --- the reader -------------------------------------------------------------

/// A loaded telemetry sidecar: every complete snapshot plus whether the
/// final line was torn (half-written when read — a live writer mid-line
/// or a killed campaign's last append).
#[derive(Debug, Default)]
pub struct SnapshotFile {
    /// Complete snapshots, in file order.
    pub snapshots: Vec<TelemetrySnapshot>,
    /// Whether a torn (unparseable, newline-less) final line was
    /// skipped.
    pub torn_tail: bool,
}

/// Reads a telemetry sidecar, tolerating a torn final line.
///
/// A malformed line *with* a trailing newline is a hard error (the file
/// is corrupt, not merely in flight); a malformed or incomplete final
/// line without one is reported via [`SnapshotFile::torn_tail`] and
/// skipped, so a reader racing the writer — or picking up after a
/// `--stop-after` kill — still gets every complete snapshot.
pub fn read_snapshot_file(path: &str) -> Result<SnapshotFile, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let mut out = SnapshotFile::default();
    let mut rest = text.as_str();
    while !rest.is_empty() {
        let (line, complete, tail) = match rest.find('\n') {
            Some(pos) => (&rest[..pos], true, &rest[pos + 1..]),
            None => (rest, false, ""),
        };
        rest = tail;
        if line.is_empty() {
            continue;
        }
        match parse_snapshot_line(line) {
            Ok(snapshot) => out.snapshots.push(snapshot),
            Err(err) if complete => {
                return Err(format!("{path}: corrupt snapshot line: {err}"));
            }
            Err(_) => out.torn_tail = true,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The hub is process-global; serialize the tests that enable it.
    static TELEMETRY_TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TELEMETRY_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn sample_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            version: SCHEMA_VERSION,
            seq: 3,
            wall_ms: 2500,
            virtual_us: 190_000_000,
            trials: 4520,
            trials_total: 10_000,
            shards: 2,
            shards_total: 5,
            trials_per_sec: 1503.2,
            eta_ms: 3600,
            violations: 1,
            dropped: 7,
            workers: vec![
                WorkerLane {
                    worker: 0,
                    tasks: 2,
                    busy_ms: 2100,
                    utilization: 0.84,
                },
                WorkerLane {
                    worker: 3,
                    tasks: 1,
                    busy_ms: 900,
                    utilization: 0.36,
                },
            ],
            races: vec![
                (
                    "Galaxy S8/blocking".to_owned(),
                    RaceCell {
                        wins: 45,
                        trials: 80,
                    },
                ),
                (
                    "hostile \"label\"\n/baseline".to_owned(),
                    RaceCell { wins: 0, trials: 3 },
                ),
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_byte_exactly() {
        let snapshot = sample_snapshot();
        let line = snapshot.to_json_line();
        assert!(!line.contains('\n'), "one line per snapshot: {line}");
        let back = parse_snapshot_line(&line).expect("parses");
        assert_eq!(back, snapshot);
        assert_eq!(back.to_json_line(), line, "render→parse→render is exact");
    }

    #[test]
    fn disabled_hooks_record_nothing() {
        let _guard = locked();
        reset();
        begin_session(SessionTotals {
            trials_total: 10,
            shards_total: 2,
            ..Default::default()
        });
        record_unit(0, Duration::from_millis(5));
        record_trial("dev/blocking", true, 100);
        record_shard();
        record_violations(3);
        let snapshot = sample(0, None, 0);
        assert_eq!(snapshot.trials, 0);
        assert_eq!(snapshot.shards, 0);
        assert_eq!(snapshot.violations, 0);
        assert!(snapshot.workers.is_empty());
        assert!(snapshot.races.is_empty());
        reset();
    }

    #[test]
    fn hub_accumulates_and_samples() {
        let _guard = locked();
        reset();
        begin_session(SessionTotals {
            trials_total: 100,
            shards_total: 4,
            ..Default::default()
        });
        set_enabled(true);
        record_unit(1, Duration::from_millis(20));
        record_unit(1, Duration::from_millis(10));
        record_unit(70 + MAX_WORKER_LANES, Duration::from_millis(1));
        for i in 0..10 {
            record_trial("dev/blocking", i % 2 == 0, 1000);
        }
        record_shard();
        record_violations(2);
        set_enabled(false);
        let snapshot = sample(5, None, 3);
        assert_eq!(snapshot.seq, 5);
        assert_eq!(snapshot.dropped, 3);
        assert_eq!(snapshot.trials, 10);
        assert_eq!(snapshot.trials_total, 100);
        assert_eq!(snapshot.shards, 1);
        assert_eq!(snapshot.shards_total, 4);
        assert_eq!(snapshot.virtual_us, 10_000);
        assert_eq!(snapshot.violations, 2);
        assert_eq!(snapshot.workers.len(), 2, "lane 1 and the overflow lane");
        assert_eq!(snapshot.workers[0].worker, 1);
        assert_eq!(snapshot.workers[0].tasks, 2);
        assert_eq!(snapshot.workers[0].busy_ms, 30);
        assert_eq!(
            snapshot.workers[1].worker,
            MAX_WORKER_LANES as u64 - 1,
            "out-of-range workers fold into the last lane"
        );
        assert_eq!(snapshot.races.len(), 1);
        assert_eq!(
            snapshot.races[0].1,
            RaceCell {
                wins: 5,
                trials: 10
            }
        );
        reset();
    }

    #[test]
    fn resumed_session_seeds_progress() {
        let _guard = locked();
        reset();
        begin_session(SessionTotals {
            trials_total: 100,
            shards_total: 10,
            trials_done: 40,
            shards_done: 4,
        });
        let snapshot = sample(0, None, 0);
        assert_eq!(snapshot.trials, 40);
        assert_eq!(snapshot.shards, 4);
        reset();
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = SnapshotRing::new(2);
        for seq in 0..5 {
            ring.publish(TelemetrySnapshot {
                seq,
                ..Default::default()
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let held: Vec<u64> = ring.iter().map(|s| s.seq).collect();
        assert_eq!(held, [3, 4], "oldest evicted first");
        assert_eq!(ring.latest().map(|s| s.seq), Some(4));
    }

    #[test]
    fn reader_tolerates_torn_tail_but_rejects_corrupt_body() {
        let dir = std::env::temp_dir().join(format!("blap-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("torn.jsonl");
        let line = sample_snapshot().to_json_line();
        // Two complete lines plus a torn tail (killed mid-append).
        std::fs::write(
            &path,
            format!("{line}\n{line}\n{}", &line[..line.len() / 2]),
        )
        .expect("write");
        let loaded = read_snapshot_file(path.to_str().expect("utf8")).expect("loads");
        assert_eq!(loaded.snapshots.len(), 2);
        assert!(loaded.torn_tail);
        // A complete final line parses and is not torn.
        std::fs::write(&path, format!("{line}\n{line}")).expect("write");
        let loaded = read_snapshot_file(path.to_str().expect("utf8")).expect("loads");
        assert_eq!(loaded.snapshots.len(), 2);
        assert!(!loaded.torn_tail, "newline-less but complete line parses");
        // Corruption *before* the tail is an error, not a skip.
        std::fs::write(&path, format!("not json\n{line}\n")).expect("write");
        assert!(read_snapshot_file(path.to_str().expect("utf8")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn collector_writes_at_least_one_line_and_final_snapshot() {
        let _guard = locked();
        reset();
        let dir = std::env::temp_dir().join(format!("blap-telemetry-coll-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("telemetry.jsonl");
        let path_str = path.to_str().expect("utf8").to_owned();
        begin_session(SessionTotals {
            trials_total: 4,
            shards_total: 1,
            ..Default::default()
        });
        let collector = Collector::start(
            Some(path_str.clone()),
            Duration::from_secs(3600), // longer than the test: only the stop tick fires
            false,
        )
        .expect("collector starts");
        assert!(enabled(), "collector enables the hub");
        record_trial("dev/blocking", true, 10);
        record_shard();
        let report = collector.stop();
        assert!(!enabled(), "stop disables the hub");
        assert_eq!(report.lines_written, 1, "stop always takes a final sample");
        assert_eq!(report.ring.len(), 1);
        let loaded = read_snapshot_file(&path_str).expect("sidecar parses");
        assert_eq!(loaded.snapshots.len(), 1);
        assert_eq!(loaded.snapshots[0].trials, 1);
        assert_eq!(loaded.snapshots[0].shards, 1);
        let _ = std::fs::remove_dir_all(&dir);
        reset();
    }

    #[test]
    fn heartbeat_line_reports_progress_and_violations() {
        let snapshot = sample_snapshot();
        let line = heartbeat_line(&snapshot);
        assert!(line.contains("4520/10000"), "{line}");
        assert!(line.contains("45.2%"), "{line}");
        assert!(line.contains("VIOLATIONS 1"), "{line}");
        assert!(line.contains("eta 3.6s"), "{line}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let line = sample_snapshot()
            .to_json_line()
            .replacen("{\"v\":1,", "{\"v\":2,", 1);
        let err = parse_snapshot_line(&line).expect_err("future version rejected");
        assert!(err.contains("version 2"), "{err}");
    }
}
