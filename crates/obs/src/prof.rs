//! `blap-prof`: wall-clock scoped profiling, layered **beside** the
//! deterministic artifacts.
//!
//! The trace/metrics tier is stamped with virtual time only, so it can say
//! *what* a run did but never where real CPU time went. This module is the
//! wall-clock counterpart: RAII [`scope`] guards record self/child
//! wall-time attribution into a per-thread call tree, merged commutatively
//! into a process-wide registry when a thread exits (worker threads in
//! `blap::runner` are scoped and exit at the pool barrier) or when
//! [`report`] drains the calling thread explicitly.
//!
//! Hard rules, enforced by construction:
//!
//! * **Sidecar only.** Nothing recorded here ever reaches a `--trace` or
//!   `--metrics` artifact; profiles are written to their own
//!   `profile.json` / `profile.folded` files, so deterministic artifacts
//!   stay byte-identical whether profiling is on or off, at any
//!   `BLAP_JOBS`.
//! * **Zero-cost when disabled.** [`scope`] is one relaxed atomic load and
//!   a branch; no clock is read, no thread-local touched. The default
//!   state is disabled; enable with [`set_enabled`], the `--profile` flag
//!   on the experiment binaries, or `BLAP_PROF=1`
//!   ([`enable_from_env`]).
//! * **Commutative merge.** Per-thread trees are keyed by scope-name
//!   paths; merging is node-wise addition, so the aggregate is independent
//!   of worker scheduling (the *numbers* are still wall times and vary run
//!   to run — only the shape is schedule-independent).
//!
//! Scope names follow the span-name contract of the deterministic tier
//! (`trial`, `page`, `hci_cmd`, `lmp_auth`, `host_pairing`, `ploc`) plus
//! `crypto.*` kernel scopes and the scheduler's dispatch families, so a
//! flamegraph line like `trial;lmp_auth;crypto.e1` reads in the same
//! vocabulary as the virtual-time analyzer.
//!
//! With the `prof-alloc` feature, [`CountingAlloc`] additionally
//! attributes heap allocation counts and bytes to the innermost open
//! scope (and keeps exact process-wide totals), replacing the ad-hoc
//! counting allocators the regression tests used to carry.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::escape;

/// The environment variable that enables profiling (`BLAP_PROF=1`).
pub const ENV_VAR: &str = "BLAP_PROF";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether profiling is currently collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide. Scopes already open keep the
/// state they observed at entry, so flipping mid-run never unbalances the
/// call tree.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables profiling when `BLAP_PROF=1`; returns the resulting state.
pub fn enable_from_env() -> bool {
    if std::env::var(ENV_VAR).is_ok_and(|v| v == "1") {
        set_enabled(true);
    }
    enabled()
}

// --- per-thread call tree ---------------------------------------------------

struct Node {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
    alloc_count: u64,
    alloc_bytes: u64,
}

impl Node {
    fn new(name: &'static str) -> Node {
        Node {
            name,
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
            alloc_count: 0,
            alloc_bytes: 0,
        }
    }
}

/// Thread-local profiling state: an arena call tree (node 0 is a synthetic
/// root) plus the stack of currently open node indices.
#[derive(Default)]
struct LocalProf {
    nodes: Vec<Node>,
    stack: Vec<usize>,
}

impl LocalProf {
    fn enter(&mut self, name: &'static str) {
        if self.nodes.is_empty() {
            self.nodes.push(Node::new(""));
        }
        let parent = self.stack.last().copied().unwrap_or(0);
        let child = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        let node = match child {
            Some(c) => c,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(Node::new(name));
                self.nodes[parent].children.push(idx);
                idx
            }
        };
        self.stack.push(node);
    }

    fn exit(&mut self, elapsed: Duration) {
        if let Some(node) = self.stack.pop() {
            let n = &mut self.nodes[node];
            n.calls += 1;
            n.total_ns = n.total_ns.saturating_add(elapsed.as_nanos() as u64);
        }
    }

    #[cfg(feature = "prof-alloc")]
    fn note_alloc(&mut self, bytes: usize) {
        if let Some(&top) = self.stack.last() {
            let n = &mut self.nodes[top];
            n.alloc_count += 1;
            n.alloc_bytes = n.alloc_bytes.saturating_add(bytes as u64);
        }
    }

    fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
            || self
                .nodes
                .iter()
                .all(|n| n.calls == 0 && n.alloc_count == 0)
    }

    /// Folds this thread's arena into the global registry's merge tree.
    fn merge_into(&self, tree: &mut MergeNode) {
        if self.nodes.is_empty() {
            return;
        }
        fn fold(nodes: &[Node], idx: usize, into: &mut MergeNode) {
            for &c in &nodes[idx].children {
                let slot = into.children.entry(nodes[c].name).or_default();
                slot.calls += nodes[c].calls;
                slot.total_ns = slot.total_ns.saturating_add(nodes[c].total_ns);
                slot.alloc_count += nodes[c].alloc_count;
                slot.alloc_bytes = slot.alloc_bytes.saturating_add(nodes[c].alloc_bytes);
                fold(nodes, c, slot);
            }
        }
        fold(&self.nodes, 0, tree);
    }
}

impl Drop for LocalProf {
    fn drop(&mut self) {
        if !self.is_empty() {
            let mut global = registry().lock().expect("prof registry lock");
            self.merge_into(&mut global.tree);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalProf> = const {
        RefCell::new(LocalProf { nodes: Vec::new(), stack: Vec::new() })
    };
}

/// RAII guard for one profiled scope; see [`scope`].
///
/// Guards must be dropped in LIFO order (the natural block-scoped usage);
/// out-of-order drops would mis-attribute the interval to whichever scope
/// is innermost at drop time.
pub struct Scope {
    started: Option<Instant>,
}

/// Opens a wall-time scope named `name` on the current thread.
///
/// When profiling is disabled this is a relaxed atomic load and returns an
/// inert guard without reading the clock. When enabled, the interval from
/// this call to the guard's drop is attributed to `name` under the
/// innermost open scope.
#[inline]
pub fn scope(name: &'static str) -> Scope {
    if !enabled() {
        return Scope { started: None };
    }
    let entered = LOCAL
        .try_with(|local| {
            if let Ok(mut local) = local.try_borrow_mut() {
                local.enter(name);
                true
            } else {
                false
            }
        })
        .unwrap_or(false);
    Scope {
        started: entered.then(Instant::now),
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let elapsed = started.elapsed();
        let _ = LOCAL.try_with(|local| {
            if let Ok(mut local) = local.try_borrow_mut() {
                local.exit(elapsed);
            }
        });
    }
}

// --- global registry --------------------------------------------------------

/// One merged node of the process-wide call tree.
#[derive(Clone, Debug, Default)]
struct MergeNode {
    calls: u64,
    total_ns: u64,
    alloc_count: u64,
    alloc_bytes: u64,
    children: BTreeMap<&'static str, MergeNode>,
}

#[derive(Clone, Debug, Default)]
struct PoolStats {
    runs: u64,
    wall_ns: u64,
    workers: BTreeMap<usize, WorkerSlot>,
}

#[derive(Clone, Debug, Default)]
struct WorkerSlot {
    busy_ns: u64,
    tasks: u64,
}

#[derive(Default)]
struct Registry {
    tree: MergeNode,
    pools: BTreeMap<&'static str, PoolStats>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Records one worker's contribution to a pool run: wall time spent
/// executing tasks (`busy`) and how many tasks it completed. Idle time is
/// derived at report time as the pool's wall envelope minus busy time.
pub fn record_worker(pool: &'static str, worker: usize, busy: Duration, tasks: u64) {
    if !enabled() {
        return;
    }
    let mut global = registry().lock().expect("prof registry lock");
    let slot = global
        .pools
        .entry(pool)
        .or_default()
        .workers
        .entry(worker)
        .or_default();
    slot.busy_ns = slot.busy_ns.saturating_add(busy.as_nanos() as u64);
    slot.tasks += tasks;
}

/// Records one completed pool run's wall-clock envelope.
pub fn record_pool(pool: &'static str, wall: Duration) {
    if !enabled() {
        return;
    }
    let mut global = registry().lock().expect("prof registry lock");
    let stats = global.pools.entry(pool).or_default();
    stats.runs += 1;
    stats.wall_ns = stats.wall_ns.saturating_add(wall.as_nanos() as u64);
}

/// Drains the calling thread's local tree into the global registry.
///
/// Threads that record scopes should call this before they finish.
/// A thread-exit `Drop` merge exists as a backstop, but it is *best
/// effort*: `std::thread::scope` (and `JoinHandle` packets) signal
/// completion when the closure returns, **before** thread-local
/// destructors run, so a reader calling [`report`] right after a join can
/// race a destructor-time merge. An explicit drain at the end of the
/// closure is sequenced before the join and never races. The `blap`
/// runner's workers do exactly that; [`report`] drains the calling thread
/// for you.
pub fn drain_thread() {
    let _ = LOCAL.try_with(|local| {
        if let Ok(mut local) = local.try_borrow_mut() {
            if !local.is_empty() {
                let mut global = registry().lock().expect("prof registry lock");
                local.merge_into(&mut global.tree);
            }
            // Emptied in place so the thread-exit Drop won't double-merge.
            local.nodes.clear();
            local.stack.clear();
        }
    });
}

/// Clears all recorded data (global registry and this thread's local
/// tree). Tests use this to isolate runs; production code never needs it.
pub fn reset() {
    let _ = LOCAL.try_with(|local| {
        if let Ok(mut local) = local.try_borrow_mut() {
            local.nodes.clear();
            local.stack.clear();
        }
    });
    let mut global = registry().lock().expect("prof registry lock");
    *global = Registry::default();
}

// --- report -----------------------------------------------------------------

/// One scope in a drained [`Report`], with its children.
#[derive(Clone, Debug)]
pub struct ReportNode {
    /// Scope name (one path segment).
    pub name: String,
    /// Times this scope was entered.
    pub calls: u64,
    /// Inclusive wall time.
    pub total_ns: u64,
    /// Exclusive wall time: `total_ns` minus children's inclusive time.
    pub self_ns: u64,
    /// Heap allocations attributed to this scope (`prof-alloc` only).
    pub alloc_count: u64,
    /// Heap bytes attributed to this scope (`prof-alloc` only).
    pub alloc_bytes: u64,
    /// Child scopes, in name order.
    pub children: Vec<ReportNode>,
}

/// Utilization of one worker across a pool's runs.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Worker index within the pool.
    pub worker: usize,
    /// Tasks completed.
    pub tasks: u64,
    /// Wall time spent inside task bodies.
    pub busy_ns: u64,
    /// `busy / mean(busy)` across the pool's workers; > 1 marks the
    /// overloaded side of an imbalance.
    pub imbalance: f64,
}

/// Utilization of one worker pool (e.g. `parallel_map`).
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// Pool name.
    pub pool: String,
    /// Completed runs aggregated here.
    pub runs: u64,
    /// Summed wall-clock envelope of those runs.
    pub wall_ns: u64,
    /// Per-worker breakdown, by worker index.
    pub workers: Vec<WorkerReport>,
}

impl PoolReport {
    /// Total busy time across all workers.
    pub fn busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Busy fraction of the pool's total capacity
    /// (`Σbusy / (wall × workers)`), 0.0 when nothing ran.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_ns.saturating_mul(self.workers.len() as u64);
        if capacity == 0 {
            return 0.0;
        }
        self.busy_ns() as f64 / capacity as f64
    }
}

/// A drained snapshot of everything recorded so far.
#[derive(Clone, Debug)]
pub struct Report {
    /// Top-level scopes (no parent), in name order.
    pub roots: Vec<ReportNode>,
    /// Worker pools, in name order.
    pub pools: Vec<PoolReport>,
}

fn build_node(name: &str, node: &MergeNode) -> ReportNode {
    let children: Vec<ReportNode> = node
        .children
        .iter()
        .map(|(child_name, child)| build_node(child_name, child))
        .collect();
    let child_total: u64 = children.iter().map(|c| c.total_ns).sum();
    ReportNode {
        name: name.to_owned(),
        calls: node.calls,
        total_ns: node.total_ns,
        self_ns: node.total_ns.saturating_sub(child_total),
        alloc_count: node.alloc_count,
        alloc_bytes: node.alloc_bytes,
        children,
    }
}

/// Drains the calling thread and snapshots the merged profile.
pub fn report() -> Report {
    drain_thread();
    let global = registry().lock().expect("prof registry lock");
    let roots = global
        .tree
        .children
        .iter()
        .map(|(name, node)| build_node(name, node))
        .collect();
    let pools = global
        .pools
        .iter()
        .map(|(pool, stats)| {
            let n = stats.workers.len().max(1) as u64;
            let total_busy: u64 = stats.workers.values().map(|w| w.busy_ns).sum();
            let mean = (total_busy / n).max(1);
            PoolReport {
                pool: (*pool).to_owned(),
                runs: stats.runs,
                wall_ns: stats.wall_ns,
                workers: stats
                    .workers
                    .iter()
                    .map(|(worker, slot)| WorkerReport {
                        worker: *worker,
                        tasks: slot.tasks,
                        busy_ns: slot.busy_ns,
                        imbalance: slot.busy_ns as f64 / mean as f64,
                    })
                    .collect(),
            }
        })
        .collect();
    Report { roots, pools }
}

impl Report {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty() && self.pools.is_empty()
    }

    /// Summed inclusive time of the top-level scopes.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Looks up a pool report by name.
    pub fn pool(&self, name: &str) -> Option<&PoolReport> {
        self.pools.iter().find(|p| p.pool == name)
    }

    /// Depth-first walk over `(path, node)` pairs, `;`-joined paths.
    pub fn walk(&self) -> Vec<(String, &ReportNode)> {
        fn descend<'a>(
            prefix: &str,
            node: &'a ReportNode,
            out: &mut Vec<(String, &'a ReportNode)>,
        ) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            out.push((path.clone(), node));
            for child in &node.children {
                descend(&path, child, out);
            }
        }
        let mut out = Vec::new();
        for root in &self.roots {
            descend("", root, &mut out);
        }
        out
    }

    /// Renders the sidecar `profile.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"blap-prof-v1\",\n  \"scopes\": [");
        for (i, (path, node)) in self.walk().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"path\":\"{}\",\"calls\":{},\"total_ns\":{},\"self_ns\":{},\"alloc_count\":{},\"alloc_bytes\":{}}}",
                escape(path),
                node.calls,
                node.total_ns,
                node.self_ns,
                node.alloc_count,
                node.alloc_bytes
            );
        }
        out.push_str("\n  ],\n  \"pools\": [");
        for (i, pool) in self.pools.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"pool\":\"{}\",\"runs\":{},\"wall_ns\":{},\"utilization\":{:.4},\"workers\":[",
                escape(&pool.pool),
                pool.runs,
                pool.wall_ns,
                pool.utilization()
            );
            for (j, w) in pool.workers.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"worker\":{},\"tasks\":{},\"busy_ns\":{},\"imbalance\":{:.4}}}",
                    w.worker, w.tasks, w.busy_ns, w.imbalance
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the collapsed-stack `profile.folded` form: one line per
    /// scope path with its **self** time in microseconds — the format
    /// `flamegraph.pl` / `inferno` consume directly.
    pub fn to_folded(&self) -> String {
        let mut out = String::with_capacity(256);
        for (path, node) in self.walk() {
            let _ = writeln!(out, "{path} {}", node.self_ns / 1_000);
        }
        out
    }

    /// Renders the human summary table `blap-bench prof` prints.
    pub fn render_table(&self) -> String {
        let mut out = String::from("wall-time profile (self/total per scope):\n");
        if self.roots.is_empty() {
            out.push_str("  (no scopes recorded)\n");
        }
        for (path, node) in self.walk() {
            let depth = path.matches(';').count();
            let _ = writeln!(
                out,
                "  {:indent$}{:<24} calls={:<8} total_ms={:<10.3} self_ms={:<10.3}{}",
                "",
                node.name,
                node.calls,
                node.total_ns as f64 / 1e6,
                node.self_ns as f64 / 1e6,
                if node.alloc_count > 0 {
                    format!(" allocs={} ({} B)", node.alloc_count, node.alloc_bytes)
                } else {
                    String::new()
                },
                indent = depth * 2
            );
        }
        if !self.pools.is_empty() {
            out.push_str("worker utilization:\n");
            for pool in &self.pools {
                let _ = writeln!(
                    out,
                    "  {:<16} runs={} wall_ms={:.3} utilization={:.1}%",
                    pool.pool,
                    pool.runs,
                    pool.wall_ns as f64 / 1e6,
                    pool.utilization() * 100.0
                );
                for w in &pool.workers {
                    let _ = writeln!(
                        out,
                        "    worker {:<3} tasks={:<8} busy_ms={:<10.3} imbalance={:.2}",
                        w.worker,
                        w.tasks,
                        w.busy_ns as f64 / 1e6,
                        w.imbalance
                    );
                }
            }
        }
        out
    }
}

// --- counting allocator (feature prof-alloc) --------------------------------

#[cfg(feature = "prof-alloc")]
mod alloc_counting {
    use super::LOCAL;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static TOTAL_COUNT: AtomicU64 = AtomicU64::new(0);
    static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

    /// A pass-through global allocator that counts every allocation and,
    /// when profiling is enabled, attributes it to the innermost open
    /// scope on the allocating thread.
    ///
    /// Install it from a binary or test crate:
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static GLOBAL: blap_obs::prof::CountingAlloc = blap_obs::prof::CountingAlloc;
    /// ```
    pub struct CountingAlloc;

    fn note(bytes: usize) {
        TOTAL_COUNT.fetch_add(1, Ordering::Relaxed);
        TOTAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
        if !super::enabled() {
            return;
        }
        // try_with + try_borrow_mut: never allocate, never recurse, and
        // stay inert during thread-local destruction.
        let _ = LOCAL.try_with(|local| {
            if let Ok(mut local) = local.try_borrow_mut() {
                local.note_alloc(bytes);
            }
        });
    }

    // SAFETY: pure pass-through to `System`; the counting side effect
    // touches only atomics and (re-entrancy-guarded) thread-local
    // counters, never the allocator itself.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            note(layout.size());
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            note(new_size);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Process-wide `(allocation count, bytes)` since start.
    pub fn global_allocations() -> (u64, u64) {
        (
            TOTAL_COUNT.load(Ordering::Relaxed),
            TOTAL_BYTES.load(Ordering::Relaxed),
        )
    }

    /// Allocations performed by the current thread of execution while `f`
    /// runs, as a `(count, bytes)` delta of the process totals.
    ///
    /// Meaningful when [`CountingAlloc`] is installed as the global
    /// allocator and the surrounding test keeps concurrent allocation
    /// quiet (the alloc-count regression tests run single-threaded).
    pub fn allocations_during(f: impl FnOnce()) -> (u64, u64) {
        let (count_before, bytes_before) = global_allocations();
        f();
        let (count_after, bytes_after) = global_allocations();
        (count_after - count_before, bytes_after - bytes_before)
    }
}

#[cfg(feature = "prof-alloc")]
pub use alloc_counting::{allocations_during, global_allocations, CountingAlloc};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The profiler is process-global state; serialize the tests that
    // enable it so they cannot observe each other's scopes.
    static PROF_TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        PROF_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_scope_is_inert() {
        let _guard = locked();
        reset();
        set_enabled(false);
        {
            let _s = scope("trial");
            let _t = scope("page");
        }
        assert!(report().is_empty(), "disabled profiler records nothing");
    }

    #[test]
    fn nested_scopes_build_a_tree_with_self_times() {
        let _guard = locked();
        reset();
        set_enabled(true);
        {
            let _trial = scope("trial");
            {
                let _page = scope("page");
                std::thread::sleep(Duration::from_millis(2));
            }
            {
                let _lmp = scope("lmp_auth");
                let _e1 = scope("crypto.e1");
            }
        }
        set_enabled(false);
        let report = report();
        assert_eq!(report.roots.len(), 1);
        let trial = &report.roots[0];
        assert_eq!(trial.name, "trial");
        assert_eq!(trial.calls, 1);
        let names: Vec<&str> = trial.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["lmp_auth", "page"], "children in name order");
        let child_total: u64 = trial.children.iter().map(|c| c.total_ns).sum();
        assert_eq!(trial.self_ns, trial.total_ns - child_total);
        assert!(trial.total_ns >= child_total, "inclusive ≥ children");
        let paths: Vec<String> = report.walk().into_iter().map(|(p, _)| p).collect();
        assert!(
            paths.contains(&"trial;lmp_auth;crypto.e1".to_owned()),
            "{paths:?}"
        );
        // Folded export carries the full hierarchy with self-times.
        let folded = report.to_folded();
        assert!(folded.contains("trial;page "), "{folded}");
        assert!(folded.contains("trial;lmp_auth;crypto.e1 "), "{folded}");
    }

    #[test]
    fn sibling_threads_merge_commutatively() {
        let _guard = locked();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    {
                        let _t = scope("trial");
                        let _p = scope("page");
                    }
                    // Explicit drain: scope() signals completion before
                    // TLS destructors run, so the Drop-merge backstop can
                    // race the report() below.
                    drain_thread();
                });
            }
        });
        set_enabled(false);
        let report = report();
        let trial = report
            .roots
            .iter()
            .find(|r| r.name == "trial")
            .expect("trial");
        assert_eq!(trial.calls, 2, "both threads' trees merged");
        assert_eq!(trial.children[0].calls, 2);
    }

    #[test]
    fn worker_pool_accounting_and_imbalance() {
        let _guard = locked();
        reset();
        set_enabled(true);
        record_worker("parallel_map", 0, Duration::from_millis(30), 1);
        record_worker("parallel_map", 1, Duration::from_millis(10), 3);
        record_pool("parallel_map", Duration::from_millis(32));
        set_enabled(false);
        let report = report();
        let pool = report.pool("parallel_map").expect("pool recorded");
        assert_eq!(pool.runs, 1);
        assert_eq!(pool.workers.len(), 2);
        assert_eq!(pool.busy_ns(), 40_000_000);
        let w0 = &pool.workers[0];
        assert!(w0.imbalance > 1.0, "slow worker above the mean: {w0:?}");
        assert!(pool.workers[1].imbalance < 1.0);
        assert!(pool.utilization() > 0.5 && pool.utilization() <= 1.0);
        let json = report.to_json();
        assert!(json.contains("\"pool\":\"parallel_map\""), "{json}");
        assert!(json.contains("\"schema\": \"blap-prof-v1\""), "{json}");
    }

    #[test]
    fn reset_clears_everything() {
        let _guard = locked();
        reset();
        set_enabled(true);
        {
            let _s = scope("trial");
        }
        record_pool("parallel_map", Duration::from_millis(1));
        set_enabled(false);
        assert!(!report().is_empty());
        reset();
        assert!(report().is_empty());
    }

    #[test]
    fn render_table_lists_scopes_and_workers() {
        let _guard = locked();
        reset();
        set_enabled(true);
        {
            let _t = scope("trial");
            let _h = scope("hci_cmd");
        }
        record_worker("parallel_map", 0, Duration::from_millis(5), 7);
        record_pool("parallel_map", Duration::from_millis(6));
        set_enabled(false);
        let table = report().render_table();
        assert!(table.contains("trial"), "{table}");
        assert!(table.contains("hci_cmd"), "{table}");
        assert!(table.contains("worker 0"), "{table}");
        assert!(table.contains("tasks=7"), "{table}");
    }
}
